"""Tests for the α score and compatibility degree C (Section 5.1, Eq. 4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compatibility import compatibility
from repro.policy.lpp import LocationPrivacyPolicy
from repro.policy.timeset import TimeInterval
from repro.spatial.geometry import Rect

S = 1000.0 * 1000.0
T = 1440.0


def policy(owner, locr, tint):
    return LocationPrivacyPolicy(owner=owner, role="friend", locr=locr, tint=tint)


def test_no_policies_means_unrelated():
    result = compatibility(None, None, S, T)
    assert result.alpha == 0.0
    assert result.degree == 0.0
    assert not result.mutual
    assert not result.related


def test_mutual_case_formula():
    """Overlapping regions and times: α = O/S * D/T, C = (1+α)/2."""
    p12 = policy(1, Rect(0, 200, 0, 200), TimeInterval(0, 720))
    p21 = policy(2, Rect(100, 300, 100, 300), TimeInterval(360, 1080))
    result = compatibility(p12, p21, S, T)
    expected_alpha = (100 * 100 / S) * (360 / T)
    assert result.mutual
    assert result.alpha == pytest.approx(expected_alpha)
    assert result.degree == pytest.approx((1 + expected_alpha) / 2)
    assert result.degree > 0.5


def test_disjoint_regions_fall_to_one_way_formula():
    p12 = policy(1, Rect(0, 100, 0, 100), TimeInterval(0, 720))
    p21 = policy(2, Rect(500, 600, 0, 100), TimeInterval(0, 720))
    result = compatibility(p12, p21, S, T)
    expected = 0.5 * (
        (100 * 100 / S) * (720 / T) + (100 * 100 / S) * (720 / T)
    )
    assert not result.mutual
    assert result.alpha == pytest.approx(expected)
    assert result.degree == pytest.approx(expected)
    assert result.degree <= 0.5


def test_disjoint_times_fall_to_one_way_formula():
    p12 = policy(1, Rect(0, 100, 0, 100), TimeInterval(0, 360))
    p21 = policy(2, Rect(0, 100, 0, 100), TimeInterval(720, 1080))
    result = compatibility(p12, p21, S, T)
    assert not result.mutual
    assert result.degree <= 0.5


def test_single_policy_omits_missing_term():
    p12 = policy(1, Rect(0, 500, 0, 500), TimeInterval(0, 720))
    result = compatibility(p12, None, S, T)
    expected = 0.5 * (500 * 500 / S) * (720 / T)
    assert result.alpha == pytest.approx(expected)
    assert result.degree == pytest.approx(expected)
    assert not result.mutual
    # Symmetric position of the argument.
    assert compatibility(None, p12, S, T).degree == pytest.approx(expected)


def test_mutual_beats_one_way_priority():
    """Eq. 4's goal: simultaneous visibility scores above 0.5, one-way
    or disjoint visibility never exceeds 0.5."""
    mutual = compatibility(
        policy(1, Rect(0, 10, 0, 10), TimeInterval(0, 1)),
        policy(2, Rect(0, 10, 0, 10), TimeInterval(0, 1)),
        S,
        T,
    )
    one_way = compatibility(
        policy(1, Rect(0, 1000, 0, 1000), TimeInterval(0, 1440)),
        None,
        S,
        T,
    )
    assert mutual.degree > 0.5 >= one_way.degree


def test_invalid_domains_rejected():
    p = policy(1, Rect(0, 1, 0, 1), TimeInterval(0, 1))
    with pytest.raises(ValueError):
        compatibility(p, None, 0.0, T)
    with pytest.raises(ValueError):
        compatibility(p, None, S, -1.0)


boxes = st.tuples(
    st.floats(0, 900), st.floats(1, 100), st.floats(0, 900), st.floats(1, 100)
)
windows = st.tuples(st.floats(0, 1300), st.floats(1, 140))


def _mk(owner, box, window):
    x, w, y, h = box
    s, d = window
    return policy(owner, Rect(x, x + w, y, y + h), TimeInterval(s, s + d))


@settings(max_examples=150, deadline=None)
@given(b1=boxes, w1=windows, b2=boxes, w2=windows)
def test_degree_always_in_unit_interval(b1, w1, b2, w2):
    result = compatibility(_mk(1, b1, w1), _mk(2, b2, w2), S, T)
    assert 0.0 <= result.degree <= 1.0
    assert 0.0 <= result.alpha <= 1.0
    if result.mutual:
        assert result.degree > 0.5
    else:
        assert result.degree <= 0.5 + 1e-12


@settings(max_examples=150, deadline=None)
@given(b1=boxes, w1=windows, b2=boxes, w2=windows)
def test_compatibility_is_symmetric(b1, w1, b2, w2):
    p12 = _mk(1, b1, w1)
    p21 = _mk(2, b2, w2)
    forward = compatibility(p12, p21, S, T)
    backward = compatibility(p21, p12, S, T)
    assert forward.degree == pytest.approx(backward.degree)
    assert forward.mutual == backward.mutual
