"""Tests for the rectangle-union measure (``repro.spatial.union``)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial.geometry import Rect
from repro.spatial.union import (
    intersection_area,
    interval_union_length,
    pairwise_intersections,
    union_area,
)

# ----------------------------------------------------------------------
# 1-D interval unions
# ----------------------------------------------------------------------


def test_interval_union_empty():
    assert interval_union_length([]) == 0.0


def test_interval_union_single():
    assert interval_union_length([(2.0, 5.0)]) == 3.0


def test_interval_union_disjoint():
    assert interval_union_length([(0, 1), (2, 4)]) == 3.0


def test_interval_union_overlapping():
    assert interval_union_length([(0, 3), (2, 5)]) == 5.0


def test_interval_union_nested():
    assert interval_union_length([(0, 10), (2, 5)]) == 10.0


def test_interval_union_touching_merge():
    assert interval_union_length([(0, 2), (2, 4)]) == 4.0


def test_interval_union_ignores_degenerate():
    assert interval_union_length([(3, 3), (5, 4), (0, 1)]) == 1.0


def test_interval_union_unsorted_input():
    assert interval_union_length([(6, 8), (0, 1), (3, 5)]) == 5.0


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=50),
            st.integers(min_value=0, max_value=50),
        ),
        max_size=12,
    )
)
def test_interval_union_matches_integer_cover(raw):
    """With integer endpoints the union length equals the covered-cell count."""
    intervals = [(float(min(a, b)), float(max(a, b))) for a, b in raw]
    covered = set()
    for lo, hi in intervals:
        covered.update(range(int(lo), int(hi)))
    assert interval_union_length(intervals) == pytest.approx(len(covered))


# ----------------------------------------------------------------------
# 2-D rectangle unions
# ----------------------------------------------------------------------


def test_union_area_empty():
    assert union_area([]) == 0.0


def test_union_area_single():
    assert union_area([Rect(0, 4, 0, 3)]) == 12.0


def test_union_area_only_degenerate():
    assert union_area([Rect(1, 1, 0, 5), Rect(0, 5, 2, 2)]) == 0.0


def test_union_area_disjoint_sum():
    rects = [Rect(0, 1, 0, 1), Rect(5, 7, 5, 8)]
    assert union_area(rects) == pytest.approx(1.0 + 6.0)


def test_union_area_identical_counted_once():
    rect = Rect(0, 10, 0, 10)
    assert union_area([rect, rect, rect]) == pytest.approx(100.0)


def test_union_area_nested_is_outer():
    rects = [Rect(0, 10, 0, 10), Rect(2, 5, 2, 5)]
    assert union_area(rects) == pytest.approx(100.0)


def test_union_area_partial_overlap():
    # Two 2x2 squares overlapping in a 1x2 strip: 4 + 4 - 2 = 6.
    rects = [Rect(0, 2, 0, 2), Rect(1, 3, 0, 2)]
    assert union_area(rects) == pytest.approx(6.0)


def test_union_area_cross_shape():
    # A plus sign: horizontal 6x2 bar and vertical 2x6 bar sharing a 2x2 core.
    rects = [Rect(0, 6, 2, 4), Rect(2, 4, 0, 6)]
    assert union_area(rects) == pytest.approx(12.0 + 12.0 - 4.0)


def rects_strategy(max_side=20, max_count=8):
    coord = st.integers(min_value=0, max_value=max_side)

    def to_rect(values):
        x1, x2, y1, y2 = values
        return Rect(min(x1, x2), max(x1, x2), min(y1, y2), max(y1, y2))

    return st.lists(
        st.tuples(coord, coord, coord, coord).map(to_rect), max_size=max_count
    )


@settings(max_examples=150)
@given(rects_strategy())
def test_union_area_matches_rasterization(rects):
    """Integer-cornered rectangles: exact union equals covered unit cells."""
    cells = set()
    for rect in rects:
        for ix in range(int(rect.x_lo), int(rect.x_hi)):
            for iy in range(int(rect.y_lo), int(rect.y_hi)):
                cells.add((ix, iy))
    assert union_area(rects) == pytest.approx(len(cells))


@settings(max_examples=150)
@given(rects_strategy())
def test_union_area_bounds(rects):
    """max single area <= union <= sum of areas."""
    total = union_area(rects)
    areas = [rect.area for rect in rects]
    assert total <= sum(areas) + 1e-9
    if areas:
        assert total >= max(areas) - 1e-9


@settings(max_examples=100)
@given(rects_strategy(max_count=5), rects_strategy(max_count=5))
def test_union_area_monotone(lhs, rhs):
    """Adding rectangles never shrinks the union."""
    assert union_area(lhs + rhs) >= union_area(lhs) - 1e-9


# ----------------------------------------------------------------------
# Intersections of unions
# ----------------------------------------------------------------------


def test_pairwise_intersections_drops_degenerate():
    # The rectangles touch along an edge: zero-area overlap is dropped.
    pieces = pairwise_intersections([Rect(0, 2, 0, 2)], [Rect(2, 4, 0, 2)])
    assert pieces == []


def test_intersection_area_simple():
    lhs = [Rect(0, 4, 0, 4)]
    rhs = [Rect(2, 6, 2, 6)]
    assert intersection_area(lhs, rhs) == pytest.approx(4.0)


def test_intersection_area_union_on_one_side():
    # Two left pieces jointly cover the right rectangle's overlap zone;
    # double counting would report 8 instead of 4.
    lhs = [Rect(0, 3, 0, 2), Rect(2, 4, 0, 2)]
    rhs = [Rect(2, 4, 0, 2)]
    assert intersection_area(lhs, rhs) == pytest.approx(4.0)


@settings(max_examples=100)
@given(rects_strategy(max_count=4), rects_strategy(max_count=4))
def test_intersection_area_matches_rasterization(lhs, rhs):
    cells_l = set()
    for rect in lhs:
        for ix in range(int(rect.x_lo), int(rect.x_hi)):
            for iy in range(int(rect.y_lo), int(rect.y_hi)):
                cells_l.add((ix, iy))
    cells_r = set()
    for rect in rhs:
        for ix in range(int(rect.x_lo), int(rect.x_hi)):
            for iy in range(int(rect.y_lo), int(rect.y_hi)):
                cells_r.add((ix, iy))
    assert intersection_area(lhs, rhs) == pytest.approx(len(cells_l & cells_r))


@settings(max_examples=100)
@given(rects_strategy(max_count=4), rects_strategy(max_count=4))
def test_intersection_bounded_by_each_union(lhs, rhs):
    shared = intersection_area(lhs, rhs)
    assert shared <= union_area(lhs) + 1e-9
    assert shared <= union_area(rhs) + 1e-9
