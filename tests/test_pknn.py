"""Tests for the privacy-aware kNN query (Figures 8-10)."""

import pytest

from repro.bench.oracle import brute_force_pknn
from repro.core.pknn import pknn


def _expected_distances(world, query):
    expected = brute_force_pknn(
        world.states,
        world.store,
        query.q_uid,
        query.qx,
        query.qy,
        query.k,
        query.t_query,
    )
    return [round(d, 9) for d, _ in expected]


def test_matches_brute_force_on_random_queries(small_world):
    world = small_world
    for query in world.query_generator().knn_queries(world.states, 20, 5, 5.0):
        result = pknn(world.peb, query.q_uid, query.qx, query.qy, query.k, query.t_query)
        got = [round(d, 9) for d, _ in result.neighbors]
        assert got == _expected_distances(world, query)


def test_various_k(small_world):
    world = small_world
    for k in (1, 2, 8):
        for query in world.query_generator().knn_queries(world.states, 5, k, 5.0):
            result = pknn(
                world.peb, query.q_uid, query.qx, query.qy, query.k, query.t_query
            )
            got = [round(d, 9) for d, _ in result.neighbors]
            assert got == _expected_distances(world, query)


def test_results_sorted_by_distance(small_world):
    world = small_world
    for query in world.query_generator().knn_queries(world.states, 10, 6, 5.0):
        result = pknn(world.peb, query.q_uid, query.qx, query.qy, query.k, query.t_query)
        distances = [d for d, _ in result.neighbors]
        assert distances == sorted(distances)


def test_no_friends_returns_empty(small_world):
    world = small_world
    stranger = max(world.uids) + 1000
    result = pknn(world.peb, stranger, 500.0, 500.0, 5, 5.0)
    assert result.neighbors == []
    assert result.candidates_examined == 0


def test_k_larger_than_qualifying_set(small_world):
    """When fewer than k users qualify, all of them come back."""
    world = small_world
    issuer = world.uids[0]
    expected = brute_force_pknn(
        world.states, world.store, issuer, 500.0, 500.0, 10_000, 5.0
    )
    result = pknn(world.peb, issuer, 500.0, 500.0, 10_000, 5.0)
    assert len(result.neighbors) == len(expected)
    got = [round(d, 9) for d, _ in result.neighbors]
    assert got == [round(d, 9) for d, _ in expected]


def test_zero_k(small_world):
    world = small_world
    result = pknn(world.peb, world.uids[0], 500.0, 500.0, 0, 5.0)
    assert result.neighbors == []


def test_neighbors_are_policy_qualified(small_world):
    world = small_world
    for query in world.query_generator().knn_queries(world.states, 10, 5, 5.0):
        result = pknn(world.peb, query.q_uid, query.qx, query.qy, query.k, query.t_query)
        for _, obj in result.neighbors:
            x, y = obj.position_at(query.t_query)
            assert world.store.evaluate(obj.uid, query.q_uid, x, y, query.t_query)


def test_rounds_reported(small_world):
    world = small_world
    query = world.query_generator().knn_queries(world.states, 1, 3, 5.0)[0]
    result = pknn(world.peb, query.q_uid, query.qx, query.qy, query.k, query.t_query)
    assert result.rounds >= 1


def test_distance_ties_resolve_to_same_multiset(small_world):
    """Ties at the k-th distance may legitimately pick either user; the
    distance multiset must still match the oracle exactly."""
    world = small_world
    query = world.query_generator().knn_queries(world.states, 1, 5, 5.0)[0]
    result = pknn(world.peb, query.q_uid, query.qx, query.qy, query.k, query.t_query)
    got = sorted(round(d, 9) for d, _ in result.neighbors)
    assert got == sorted(_expected_distances(world, query))


def test_corner_query_location(small_world):
    """Query from a space corner: enlargement windows overhang the domain."""
    world = small_world
    issuer = world.uids[1]
    expected = brute_force_pknn(world.states, world.store, issuer, 0.0, 0.0, 4, 5.0)
    result = pknn(world.peb, issuer, 0.0, 0.0, 4, 5.0)
    assert [round(d, 9) for d, _ in result.neighbors] == [
        round(d, 9) for d, _ in expected
    ]


def test_span_cache_stays_within_documented_bound(small_world):
    """The per-query span cache is bounded by contexts x (rounds + 1)."""
    from repro.core.pknn import _MatrixSearch

    world = small_world
    for query in world.query_generator().knn_queries(world.states, 5, 4, 5.0):
        search = _MatrixSearch(
            world.peb, query.q_uid, query.qx, query.qy, query.k, query.t_query
        )
        search.run()
        assert len(search._span_cache) <= search._span_cache_capacity
        assert search._span_cache_capacity == max(1, len(search.contexts)) * (
            search.max_rounds + 1
        )
