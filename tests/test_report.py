"""Tests for the EXPERIMENTS.md generator's verdict and rendering logic.

The expensive experiment drivers are covered by the benchmark suite;
here the pure pieces — trend checks, win/loss verdicts, markdown
rendering — are verified on synthetic series.
"""

from repro.bench.experiments import REDUCED
from repro.bench.report import Section, _speedups, _trend, _wins_verdict, render_report


def test_section_markdown_shape():
    section = Section(
        figure="Figure 12(a)",
        title="PRQ I/O vs users",
        paper_claim="PEB wins.",
        columns=["users", "PEB"],
        rows=[["1000", "3.00"], ["2000", "4.00"]],
        verdicts=["Shape: **HOLDS**."],
    )
    text = section.to_markdown()
    assert "### Figure 12(a) — PRQ I/O vs users" in text
    assert "| users | PEB |" in text
    assert "| 1000 | 3.00 |" in text
    assert "- Shape: **HOLDS**." in text


def test_speedups():
    rows = [
        {"peb": 2.0, "base": 10.0},
        {"peb": 5.0, "base": 5.0},
    ]
    assert _speedups(rows, "peb", "base") == [5.0, 1.0]


def test_speedups_handles_zero_peb():
    rows = [{"peb": 0.0, "base": 3.0}]
    assert _speedups(rows, "peb", "base") == [float("inf")]


def test_wins_verdict_all_points():
    rows = [{"peb": 1.0, "base": 4.0}, {"peb": 2.0, "base": 10.0}]
    lines = _wins_verdict(rows, "peb", "base", "PRQ")
    assert "wins 2/2" in lines[0]
    assert "**HOLDS**" in lines[1]


def test_wins_verdict_one_point_off():
    rows = [
        {"peb": 1.0, "base": 4.0},
        {"peb": 2.0, "base": 10.0},
        {"peb": 5.0, "base": 4.0},
    ]
    lines = _wins_verdict(rows, "peb", "base", "PRQ")
    assert "wins 2/3" in lines[0]
    assert "**MOSTLY HOLDS**" in lines[1]


def test_wins_verdict_deviates():
    rows = [
        {"peb": 5.0, "base": 4.0},
        {"peb": 5.0, "base": 4.0},
        {"peb": 5.0, "base": 4.0},
    ]
    lines = _wins_verdict(rows, "peb", "base", "PRQ")
    assert "**DEVIATES**" in lines[1]


def test_trend_grows():
    assert "**HOLDS**" in _trend([1.0, 2.0, 5.0], "cost", "grows")
    assert "**DEVIATES**" in _trend([5.0, 2.0, 1.0], "cost", "grows")


def test_trend_shrinks():
    assert "**HOLDS**" in _trend([5.0, 2.0, 1.0], "cost", "shrinks")
    assert "**DEVIATES**" in _trend([1.0, 2.0, 5.0], "cost", "shrinks")


def test_trend_flat_tolerates_band():
    assert "**HOLDS**" in _trend([10.0, 12.0, 11.0], "cost", "flat", 5.0)
    assert "**DEVIATES**" in _trend([10.0, 80.0], "cost", "flat", 5.0)


def test_render_report_counts_verdicts():
    sections = [
        Section(
            figure="Figure X",
            title="t",
            paper_claim="c",
            columns=["a"],
            rows=[["1"]],
            verdicts=["Shape: **HOLDS**.", "Trend: **DEVIATES**."],
        )
    ]
    text = render_report(REDUCED, sections, elapsed=12.0)
    assert "# EXPERIMENTS — paper vs measured" in text
    assert "1 HOLDS" in text
    assert "1 DEVIATES" in text
    assert "## Table 1 — parameters" in text
    assert "Figure X" in text
