"""Tests for sequence-value assignment — including the paper's worked
example from Section 5.1 reproduced digit for digit."""

import pytest

from repro.core.sequencing import assign_sequence_values
from repro.policy.lpp import LocationPrivacyPolicy
from repro.policy.store import PolicyStore
from repro.policy.timeset import TimeInterval
from repro.spatial.geometry import Rect

SPACE_AREA = 1000.0 * 1000.0


def _store_with_degrees(degrees: dict[tuple[int, int], float]) -> PolicyStore:
    """Build a store whose pairwise compatibility degrees equal ``degrees``.

    Mutual policies over the full space with time windows sized so that
    C = (1 + D/T)/2 equals the requested degree: D = (2*degree - 1) * T.
    All requested degrees must exceed 0.5 for this construction; for
    degrees <= 0.5 a single one-way policy with |locr||tint| chosen to
    match is used (C = alpha).
    """
    store = PolicyStore(time_domain=1440.0)
    everywhere = Rect(0, 1000, 0, 1000)
    for (u, v), degree in degrees.items():
        if degree > 0.5:
            duration = (2.0 * degree - 1.0) * store.time_domain
            tint = TimeInterval(0.0, duration)
            store.add_policy(
                LocationPrivacyPolicy(owner=u, role="f", locr=everywhere, tint=tint),
                members=[v],
            )
            store.add_policy(
                LocationPrivacyPolicy(owner=v, role="f", locr=everywhere, tint=tint),
                members=[u],
            )
        else:
            # One-way: C = 0.5 * (|locr|/S) * (|tint|/T); use the full
            # space and solve for the duration.
            duration = 2.0 * degree * store.time_domain
            store.add_policy(
                LocationPrivacyPolicy(
                    owner=u,
                    role="f",
                    locr=everywhere,
                    tint=TimeInterval(0.0, duration),
                ),
                members=[v],
            )
    return store


def test_paper_worked_example():
    """Six users with C(u2,u1)=0.4, C(u4,u1)=0.9, C(u4,u3)=0.8,
    C(u5,u3)=0.2, C(u6,u3)=0.6 must yield the paper's assignment:
    SV(u3)=2, SV(u4)=2.2, SV(u5)=2.8, SV(u6)=2.4, SV(u1)=4, SV(u2)=4.6."""
    degrees = {
        (2, 1): 0.4,
        (4, 1): 0.9,
        (4, 3): 0.8,
        (5, 3): 0.2,
        (6, 3): 0.6,
    }
    store = _store_with_degrees(degrees)
    users = [1, 2, 3, 4, 5, 6]
    report = assign_sequence_values(users, store, SPACE_AREA, initial_sv=2.0, delta=2.0)
    sv = report.sequence_values
    assert sv[3] == pytest.approx(2.0)
    assert sv[4] == pytest.approx(2.2)
    assert sv[5] == pytest.approx(2.8)
    assert sv[6] == pytest.approx(2.4)
    assert sv[1] == pytest.approx(4.0)
    assert sv[2] == pytest.approx(4.6)
    assert report.group_count == 2
    assert report.related_pair_count == 5


def test_every_user_gets_a_value():
    degrees = {(1, 2): 0.7, (3, 4): 0.3}
    store = _store_with_degrees(degrees)
    users = [1, 2, 3, 4, 5, 6, 7]  # 5..7 are isolated
    report = assign_sequence_values(users, store, SPACE_AREA)
    assert set(report.sequence_values) == set(users)


def test_isolated_users_get_distinct_group_values():
    store = PolicyStore()
    users = [1, 2, 3]
    report = assign_sequence_values(users, store, SPACE_AREA, initial_sv=2.0, delta=2.0)
    assert sorted(report.sequence_values.values()) == [2.0, 4.0, 6.0]
    assert report.group_count == 3


def test_high_compatibility_means_close_values():
    close = _store_with_degrees({(1, 2): 0.95})
    far = _store_with_degrees({(1, 2): 0.55})
    sv_close = assign_sequence_values([1, 2], close, SPACE_AREA).sequence_values
    sv_far = assign_sequence_values([1, 2], far, SPACE_AREA).sequence_values
    assert abs(sv_close[1] - sv_close[2]) < abs(sv_far[1] - sv_far[2])


def test_members_cluster_within_delta_of_leader():
    degrees = {(1, j): 0.6 for j in range(2, 12)}
    store = _store_with_degrees(degrees)
    report = assign_sequence_values(list(range(1, 12)), store, SPACE_AREA, delta=2.0)
    sv = report.sequence_values
    leader = sv[1]
    for member in range(2, 12):
        assert leader < sv[member] < leader + 1.0  # 1 - C in (0, 1)


def test_parameters_validated():
    store = PolicyStore()
    with pytest.raises(ValueError):
        assign_sequence_values([1], store, SPACE_AREA, initial_sv=1.0)
    with pytest.raises(ValueError):
        assign_sequence_values([1], store, SPACE_AREA, delta=0.5)


def test_report_carries_timing():
    store = _store_with_degrees({(1, 2): 0.8})
    report = assign_sequence_values([1, 2], store, SPACE_AREA)
    assert report.elapsed_seconds >= 0.0
