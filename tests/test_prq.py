"""Tests for the privacy-aware range query (Figure 7)."""

from repro.bench.oracle import brute_force_prq
from repro.core.prq import prq
from repro.spatial.geometry import Rect


def test_matches_brute_force_on_random_windows(small_world):
    world = small_world
    generator = world.query_generator()
    for query in generator.range_queries(world.uids, 25, 200.0, 5.0):
        expected = brute_force_prq(
            world.states, world.store, query.q_uid, query.window, query.t_query
        )
        result = prq(world.peb, query.q_uid, query.window, query.t_query)
        assert result.uids == expected


def test_various_window_sizes(small_world):
    world = small_world
    generator = world.query_generator()
    for side in (50.0, 400.0, 1000.0):
        for query in generator.range_queries(world.uids, 5, side, 5.0):
            expected = brute_force_prq(
                world.states, world.store, query.q_uid, query.window, query.t_query
            )
            assert prq(world.peb, query.q_uid, query.window, query.t_query).uids == expected


def test_no_friends_means_no_results_and_no_scanning(small_world):
    world = small_world
    stranger = max(world.uids) + 1000  # nobody holds a policy about them
    result = prq(world.peb, stranger, Rect(0, 1000, 0, 1000), 5.0)
    assert result.users == []
    assert result.candidates_examined == 0


def test_results_only_contain_friends(small_world):
    world = small_world
    for query in world.query_generator().range_queries(world.uids, 10, 400.0, 5.0):
        result = prq(world.peb, query.q_uid, query.window, query.t_query)
        friends = {uid for _, uid in world.store.friend_list(query.q_uid)}
        assert result.uids <= friends


def test_candidates_bounded_by_friend_count(small_world):
    """The PEB-tree property motivating Figure 15(a): no matter the
    window, at most the issuer's related users are examined (plus users
    sharing a quantized SV with some friend)."""
    world = small_world
    for query in world.query_generator().range_queries(world.uids, 10, 1000.0, 5.0):
        result = prq(world.peb, query.q_uid, query.window, query.t_query)
        friend_count = len(world.store.friend_list(query.q_uid))
        # Allow slack for coincidental SV collisions.
        assert result.candidates_examined <= 3 * friend_count + 5


def test_full_space_window_returns_all_qualifying(small_world):
    world = small_world
    issuer = world.uids[3]
    window = Rect(0, 1000, 0, 1000)
    expected = brute_force_prq(world.states, world.store, issuer, window, 5.0)
    assert prq(world.peb, issuer, window, 5.0).uids == expected


def test_query_after_updates():
    """PRQ stays correct when entries move across time partitions."""
    import random

    from tests.conftest import build_world

    world = build_world(n_users=250, n_policies=8, seed=41)
    rng = random.Random(77)
    now = 40.0
    for uid in world.uids[:100]:
        old = world.states[uid]
        x, y = old.position_at(now)
        moved = old.moved_to(
            min(max(x, 0.0), 1000.0),
            min(max(y, 0.0), 1000.0),
            rng.uniform(-3, 3),
            rng.uniform(-3, 3),
            now,
        )
        world.states[uid] = moved
        world.peb.update(moved)
        world.bx.update(moved)
    for query in world.query_generator().range_queries(world.uids, 10, 250.0, now):
        expected = brute_force_prq(
            world.states, world.store, query.q_uid, query.window, query.t_query
        )
        assert prq(world.peb, query.q_uid, query.window, query.t_query).uids == expected
