"""End-to-end test of the EXPERIMENTS.md generator on a micro preset.

The full generator runs every figure driver; at 250 users this stays
within seconds while exercising the same code path as
``python -m repro report``.
"""

import pytest

from repro.bench.experiments import HarnessCache, ScalePreset
from repro.bench.harness import ExperimentConfig
from repro.bench.report import build_all_sections, generate, render_report

MICRO = ScalePreset(
    name="micro",
    base=ExperimentConfig(
        n_users=250,
        n_policies=6,
        n_queries=4,
        window_side=250.0,
        k=3,
        page_size=512,
        buffer_pages=8,
        build_buffer_pages=512,
        seed=21,
    ),
    user_sweep=(150, 250),
    policy_sweep=(4, 8),
    theta_sweep=(0.0, 1.0),
    window_sweep=(100.0, 500.0),
    k_sweep=(1, 4),
    speed_sweep=(1.0, 6.0),
    destination_sweep=(15,),
    update_rounds=2,
    encoding_user_sweep=(100, 200),
    encoding_policy_sweep=(4, 8),
)


@pytest.fixture(scope="module")
def sections():
    return build_all_sections(MICRO, HarnessCache())


def test_every_figure_has_a_section(sections):
    figures = [section.figure for section in sections]
    for expected in (
        "Figure 11(a)",
        "Figure 11(b)",
        "Figure 12(a)",
        "Figure 12(b)",
        "Figure 13(a)",
        "Figure 13(b)",
        "Figure 14(a)",
        "Figure 14(b)",
        "Figure 15(a)",
        "Figure 15(b)",
        "Figure 16(a)",
        "Figure 16(b)",
        "Figure 17(a)",
        "Figure 17(b)",
        "Figure 18(a)",
        "Figure 18(b)",
    ):
        assert expected in figures
    assert sum("Figure 19" in figure for figure in figures) == 3


def test_every_section_has_rows_and_verdicts(sections):
    for section in sections:
        assert section.rows, section.figure
        assert section.verdicts, section.figure
        assert section.paper_claim


def test_render_includes_all_sections(sections):
    text = render_report(MICRO, sections, elapsed=1.0)
    for section in sections:
        assert section.figure in text
    assert "## Summary" in text


def test_generate_writes_file(tmp_path, sections):
    # Reuse nothing: generate() runs its own drivers, so keep it micro.
    path = tmp_path / "EXPERIMENTS.md"
    markdown = generate(str(path), MICRO)
    assert path.read_text() == markdown
    assert "# EXPERIMENTS — paper vs measured" in markdown
    assert "micro" in markdown
