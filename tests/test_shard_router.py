"""Unit tests for the shard routing layer and its stats plumbing."""

import pytest

from repro.core.peb_key import PEBKeyCodec
from repro.engine.plan import BandRequest
from repro.motion.objects import MovingObject
from repro.shard import ShardRouter, ShardStats, ShardedPEBTree, ShardedQueryEngine
from repro.shard.engine import ShardScatterScanner
from repro.storage import BufferPool, IOStats, SimulatedDisk, StatsView, merge_stats

from tests.conftest import build_world

CODEC = PEBKeyCodec(tid_count=3, sv_bits=8, zv_bits=6, sv_scale=1)
MAX_Z = (1 << CODEC.zv_bits) - 1


def make_router(boundaries=(64, 128, 192), policy="sv"):
    return ShardRouter(CODEC, boundaries, policy=policy)


# ----------------------------------------------------------------------
# Routing
# ----------------------------------------------------------------------


def test_shard_of_respects_boundaries():
    router = make_router()
    assert router.n_shards == 4
    assert router.shard_of(0, 0) == 0
    assert router.shard_of(0, 63) == 0
    assert router.shard_of(0, 64) == 1
    assert router.shard_of(2, 191) == 2
    assert router.shard_of(2, 255) == 3


def test_shard_of_key_roundtrips_compose():
    router = make_router()
    for tid in range(CODEC.tid_count):
        for sv_q in (0, 63, 64, 129, 255):
            key = CODEC.compose_quantized(tid, sv_q, 17)
            assert router.shard_of_key(key) == router.shard_of(tid, sv_q)


def test_tid_policy_routes_by_partition():
    router = make_router(boundaries=(1, 2), policy="tid")
    assert router.shard_of(0, 200) == 0
    assert router.shard_of(1, 0) == 1
    assert router.shard_of(2, 50) == 2


def test_rejects_bad_boundaries_and_policy():
    with pytest.raises(ValueError):
        make_router(boundaries=(10, 5))
    with pytest.raises(ValueError):
        make_router(boundaries=(-1,))
    with pytest.raises(ValueError):
        ShardRouter(CODEC, (), policy="frob")


def test_shard_field_range_covers_the_space():
    router = make_router()
    spans = [router.shard_field_range(shard) for shard in range(router.n_shards)]
    assert spans[0][0] == 0
    assert spans[-1][1] == (1 << CODEC.sv_bits) - 1
    for (_, hi), (lo, _) in zip(spans, spans[1:]):
        assert lo == hi + 1


# ----------------------------------------------------------------------
# Band splitting
# ----------------------------------------------------------------------


def test_single_sv_band_routes_whole():
    router = make_router()
    band = BandRequest(1, 70, 70, 3, 9)
    assert router.split_band(band) == [(1, band)]


def test_straddling_band_splits_at_boundary_keys():
    router = make_router()
    band = BandRequest(1, 50, 200, 5, 40)
    parts = router.split_band(band)
    assert [shard for shard, _ in parts] == [0, 1, 2, 3]
    sub0, sub1, sub2, sub3 = [sub for _, sub in parts]
    # Low fragment keeps z_lo and runs to the end of its SV range.
    assert (sub0.sv_lo_q, sub0.sv_hi_q, sub0.z_lo, sub0.z_hi) == (50, 63, 5, MAX_Z)
    # Interior fragments span their SV ranges fully.
    assert (sub1.sv_lo_q, sub1.sv_hi_q, sub1.z_lo, sub1.z_hi) == (64, 127, 0, MAX_Z)
    assert (sub2.sv_lo_q, sub2.sv_hi_q, sub2.z_lo, sub2.z_hi) == (128, 191, 0, MAX_Z)
    # High fragment ends at the original z_hi.
    assert (sub3.sv_lo_q, sub3.sv_hi_q, sub3.z_lo, sub3.z_hi) == (192, 200, 0, 40)
    # Exact key-interval cover: contiguous, no overlap, no gap.
    lo_key = CODEC.compose_quantized(band.tid, band.sv_lo_q, band.z_lo)
    hi_key = CODEC.compose_quantized(band.tid, band.sv_hi_q, band.z_hi)
    edges = []
    for _, sub in parts:
        edges.append(
            (
                CODEC.compose_quantized(sub.tid, sub.sv_lo_q, sub.z_lo),
                CODEC.compose_quantized(sub.tid, sub.sv_hi_q, sub.z_hi),
            )
        )
    assert edges[0][0] == lo_key
    assert edges[-1][1] == hi_key
    for (_, prev_hi), (next_lo, _) in zip(edges, edges[1:]):
        assert next_lo == prev_hi + 1


def test_duplicate_boundary_leaves_shard_empty_but_cover_exact():
    router = make_router(boundaries=(64, 64, 192))
    band = BandRequest(0, 0, 255, 0, MAX_Z)
    parts = router.split_band(band)
    assert [shard for shard, _ in parts] == [0, 2, 3]  # shard 1 squeezed empty
    covered = sum(
        sub.sv_hi_q - sub.sv_lo_q + 1 for _, sub in parts
    )
    assert covered == 256


def test_tid_policy_never_splits_bands():
    router = make_router(boundaries=(1, 2), policy="tid")
    band = BandRequest(1, 0, 255, 3, 9)  # multi-SV but single TID
    assert router.split_band(band) == [(1, band)]


def test_split_sorted_run_preserves_order_per_shard():
    router = make_router()
    ops = []
    for sv_q in (10, 60, 64, 70, 130, 250):
        for zv in (1, 5):
            ops.append(("insert", CODEC.compose_quantized(1, sv_q, zv), sv_q + zv, b""))
    ops.sort(key=lambda op: (op[1], op[2]))
    runs = router.split_sorted_run(ops)
    assert [shard for shard, _ in runs] == [0, 1, 2, 3]
    rebuilt = []
    for _, run in runs:
        assert run == sorted(run, key=lambda op: (op[1], op[2]))
        assert len({router.shard_of_key(op[1]) for op in run}) == 1
        rebuilt.extend(run)
    assert sorted(rebuilt, key=lambda op: (op[1], op[2])) == ops


def test_for_store_balances_population():
    world = build_world(n_users=120, n_policies=6, seed=4)
    codec = world.peb.codec
    router = ShardRouter.for_store(4, codec, world.store, world.uids, policy="sv")
    counts = [0, 0, 0, 0]
    for uid in world.uids:
        sv_q = codec.quantize_sv(world.store.sequence_value(uid))
        counts[router.shard_of(0, sv_q)] += 1
    assert sum(counts) == 120
    assert max(counts) <= 2 * (120 / 4)  # roughly balanced quantile cuts


# ----------------------------------------------------------------------
# Stats plumbing
# ----------------------------------------------------------------------


def test_stats_view_is_live_and_resets():
    parts = [IOStats(), IOStats()]
    view = StatsView(parts)
    assert view.physical_reads == 0
    parts[0].physical_reads += 3
    parts[1].physical_reads += 4
    parts[1].physical_writes += 2
    assert view.physical_reads == 7
    assert view.physical_writes == 2
    assert view.total_io == 9
    before = view.physical_reads
    parts[0].physical_reads += 5
    assert view.physical_reads - before == 5  # delta reading works
    view.reset()
    assert parts[0].physical_reads == 0 and parts[1].physical_reads == 0
    assert view.snapshot()["physical_reads"] == 0


def test_stats_view_hit_ratio_and_validation():
    with pytest.raises(ValueError):
        StatsView([])
    part = IOStats()
    view = merge_stats([part])
    assert view.hit_ratio == 1.0
    part.logical_reads = 10
    part.physical_reads = 2
    assert view.hit_ratio == pytest.approx(0.8)


def test_buffer_pool_merged_stats():
    pools = [
        BufferPool(SimulatedDisk(page_size=256), capacity=2) for _ in range(3)
    ]
    view = BufferPool.merged_stats(pools)
    pools[1].disk.stats.physical_writes += 4
    assert view.physical_writes == 4
    assert set(view.snapshot()) == {
        "physical_reads",
        "physical_writes",
        "logical_reads",
        "logical_writes",
    }


def test_shard_stats_skew_and_snapshot():
    stats = ShardStats(
        entries=(30, 10, 0, 0), physical_reads=(5, 1, 0, 0), physical_writes=(2, 0, 0, 0)
    )
    assert stats.n_shards == 4
    assert stats.total_entries == 40
    assert stats.balance_skew == pytest.approx(3.0)
    assert stats.snapshot()["entries"] == [30, 10, 0, 0]
    assert ShardStats((0,), (0,), (0,)).balance_skew == 1.0
    with pytest.raises(ValueError):
        ShardStats((), (), ())
    with pytest.raises(ValueError):
        ShardStats((1,), (0, 0), (0,))


# ----------------------------------------------------------------------
# Facade behaviour
# ----------------------------------------------------------------------


def test_facade_insert_delete_contains():
    world = build_world(n_users=80, n_policies=6, seed=8)
    sharded = ShardedPEBTree.build(
        3, world.grid, world.partitioner, world.store, uids=world.uids, page_size=1024
    )
    for uid in world.uids:
        sharded.insert(world.states[uid])
    assert len(sharded) == 80
    assert sharded.contains(world.uids[0])
    with pytest.raises(KeyError):
        sharded.insert(world.states[world.uids[0]])
    assert sharded.delete(world.uids[0])
    assert not sharded.contains(world.uids[0])
    assert not sharded.delete(world.uids[0])
    assert len(sharded) == 79
    # Facade update() == single-state update_batch: reinsert via update.
    sharded.update(world.states[world.uids[0]])
    assert sharded.contains(world.uids[0])
    assert sharded.check_consistency() == []


def test_facade_rejects_mismatched_router():
    world = build_world(n_users=40, n_policies=4, seed=8)
    sharded = ShardedPEBTree.build(
        2, world.grid, world.partitioner, world.store, uids=world.uids
    )
    other = ShardRouter.for_store(
        3, sharded.codec, world.store, world.uids, policy="sv"
    )
    with pytest.raises(ValueError):
        ShardedPEBTree(sharded.trees, other)


def test_parallel_prefetch_matches_sequential_exactly():
    world = build_world(n_users=220, n_policies=8, seed=13)

    def deployment():
        sharded = ShardedPEBTree.build(
            4,
            world.grid,
            world.partitioner,
            world.store,
            uids=world.uids,
            page_size=1024,
            buffer_pages=64,
        )
        for uid in world.uids:
            sharded.insert(world.states[uid])
        for pool in sharded.pools:
            pool.clear()
        return sharded

    specs = world.query_generator().range_queries(world.uids, 24, 240.0, 5.0)
    sequential_tree = deployment()
    sequential = ShardedQueryEngine(sequential_tree, parallel_prefetch=False)
    sequential_report = sequential.execute_batch(specs)
    parallel_tree = deployment()
    parallel = ShardedQueryEngine(parallel_tree, parallel_prefetch=True)
    parallel_report = parallel.execute_batch(specs)

    for expected, got in zip(sequential_report.results, parallel_report.results):
        assert got.uids == expected.uids
    assert parallel_report.stats.physical_reads == sequential_report.stats.physical_reads
    assert parallel_report.stats.bands_scanned == sequential_report.stats.bands_scanned
    assert (
        parallel_tree.shard_stats().physical_reads
        == sequential_tree.shard_stats().physical_reads
    )


def test_scatter_scanner_memoizes_band_splits():
    world = build_world(n_users=100, n_policies=6, seed=2)
    sharded = ShardedPEBTree.build(
        2, world.grid, world.partitioner, world.store, uids=world.uids
    )
    for uid in world.uids:
        sharded.insert(world.states[uid])
    scanner = ShardScatterScanner(sharded)
    band = BandRequest(0, 0, (1 << sharded.codec.sv_bits) - 1, 0, world.grid.max_z)
    first = scanner.scan(band)
    scans_after_first = scanner.physical_scans
    second = scanner.scan(band)
    assert second == first
    assert scanner.physical_scans == scans_after_first  # served from memos
    assert scanner.requests == 2
    assert scanner.deduped >= 1
