"""Checkpoint-based shard recovery: rebuild a quarantined shard in place.

:class:`repro.shard.ShardCheckpointer` is the durable half of the
fault-tolerance layer: per-shard checkpoints plus replay logs let a
shard whose on-disk state is damaged be restored to its checkpoint,
the post-checkpoint updates replayed through the tree's own batch
path, and its breaker closed — all without touching the other shards.
"""

from repro.fault import BreakerPolicy, RetryPolicy
from repro.shard import ShardCheckpointer, ShardedPEBTree, ShardedQueryEngine
from repro.storage.faults import FaultyDisk

from tests.conftest import build_world

N_SHARDS = 3
PAGE_SIZE = 1024

WORLD = build_world(n_users=130, n_policies=6, seed=17)
STREAM = WORLD.query_generator().update_stream(WORLD.states, 90, 3.0, 0.0, 100.0)
BATCH = [(obj, obj.uid % 3) for obj in STREAM]


def deploy():
    sharded = ShardedPEBTree.build(
        N_SHARDS,
        WORLD.grid,
        WORLD.partitioner,
        WORLD.store,
        uids=WORLD.uids,
        page_size=PAGE_SIZE,
        buffer_pages=16,
        disk_factory=lambda shard: FaultyDisk(page_size=PAGE_SIZE),
        fault_policy=RetryPolicy(max_attempts=2, base_backoff_us=0.0),
        breaker_policy=BreakerPolicy(),
    )
    for uid in WORLD.uids:
        sharded.insert(WORLD.states[uid])
    for pool in sharded.pools:
        pool.clear()
    return sharded


def shard_disk(sharded, shard) -> FaultyDisk:
    disk = sharded.trees[shard].btree.pool.disk
    while hasattr(disk, "inner"):
        disk = disk.inner
    return disk


def reference_items():
    sharded = deploy()
    sharded.update_batch(list(BATCH))
    return list(sharded.items())


REFERENCE_ITEMS = reference_items()


def test_checkpoint_logs_and_truncation(tmp_path):
    sharded = deploy()
    checkpointer = ShardCheckpointer(sharded, str(tmp_path))
    assert sharded.checkpointer is checkpointer
    checkpointer.checkpoint()  # post-build baseline

    sharded.update_batch(list(BATCH))
    logged = [checkpointer.log_length(shard) for shard in range(N_SHARDS)]
    assert sum(logged) == len(BATCH)  # every applied item logged, once
    assert all(n > 0 for n in logged)  # this workload hits every shard

    checkpointer.checkpoint(1)  # one shard: only its log truncates
    assert checkpointer.log_length(1) == 0
    assert checkpointer.log_length(0) == logged[0]
    checkpointer.checkpoint()
    assert all(
        checkpointer.log_length(shard) == 0 for shard in range(N_SHARDS)
    )


def test_recover_restores_checkpoint_plus_replay(tmp_path):
    sharded = deploy()
    checkpointer = ShardCheckpointer(sharded, str(tmp_path))
    checkpointer.checkpoint()
    sharded.update_batch(list(BATCH))
    assert list(sharded.items()) == REFERENCE_ITEMS

    # Damage shard 1: roll a handful of its users back to their
    # pre-batch states directly through the shard tree, bypassing the
    # facade — the shard now diverges from checkpoint + log.
    batch_uids = {obj.uid for obj, _ in BATCH}
    stale = [
        (WORLD.states[uid], uid % 3)
        for uid in sorted(batch_uids)
        if sharded.router.shard_of_key(sharded.live_keys()[uid]) == 1
    ][:8]
    assert stale  # this workload updates users on every shard
    sharded.trees[1].update_batch(stale)
    assert list(sharded.items()) != REFERENCE_ITEMS  # actually damaged

    replayed = checkpointer.recover(1)
    assert replayed == checkpointer.log_length(1)  # log kept, not cleared
    assert replayed > 0
    assert list(sharded.items()) == REFERENCE_ITEMS

    # Recovery is repeatable from the same checkpoint: replay restores
    # first, so a second recovery lands on the same state.
    assert checkpointer.recover(1) == replayed
    assert list(sharded.items()) == REFERENCE_ITEMS


def test_recover_closes_the_breaker_and_requeues_deferred(tmp_path):
    """The full degraded-to-healthy arc: quarantine, defer, heal,
    recover, re-apply — ending bit-identical to the fault-free run."""
    sharded = deploy()
    checkpointer = ShardCheckpointer(sharded, str(tmp_path))
    checkpointer.checkpoint()

    dead = 1
    disk = shard_disk(sharded, dead)
    disk.heal()
    disk.fail_every_nth_read = 1

    result = sharded.update_batch(list(BATCH))
    assert sharded.supervisor.is_quarantined(dead)
    assert result.deferred  # the dead shard's updates were deferred ...
    assert checkpointer.log_length(dead) == 0  # ... and never logged

    disk.heal()
    replayed = checkpointer.recover(dead)
    assert replayed == 0  # nothing post-checkpoint ever applied there
    assert not sharded.supervisor.is_quarantined(dead)
    assert sharded.supervisor.stats.recoveries >= 1

    # The deferred states re-apply through the normal path and the
    # deployment converges on the fault-free end state.
    sharded.update_batch(list(result.deferred))
    assert list(sharded.items()) == REFERENCE_ITEMS

    # And the recovered shard serves queries again, un-degraded.
    specs = WORLD.query_generator().range_queries(WORLD.uids, 6, 240.0, 100.0)
    report = ShardedQueryEngine(sharded).execute_batch(specs)
    assert report.degraded == [False] * len(specs)


def test_recovered_shard_checkpoints_again(tmp_path):
    """checkpoint -> update -> recover -> checkpoint -> update -> recover:
    the second cycle replays only the second tail."""
    sharded = deploy()
    checkpointer = ShardCheckpointer(sharded, str(tmp_path))
    checkpointer.checkpoint()

    half = len(BATCH) // 2
    sharded.update_batch(list(BATCH[:half]))
    first_tail = checkpointer.log_length(0)
    checkpointer.checkpoint(0)  # new baseline for shard 0
    sharded.update_batch(list(BATCH[half:]))
    second_tail = checkpointer.log_length(0)
    assert first_tail > 0 and second_tail > 0

    expected = list(sharded.items())
    assert checkpointer.recover(0) == second_tail
    assert list(sharded.items()) == expected
