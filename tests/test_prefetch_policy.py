"""Tests for the adaptive prefetch policy layer.

The contract under test is *observational safety*: a
:class:`repro.engine.PrefetchPolicy` (any mode), a bounded scan memo,
and the over-scan accounting may only move I/O counters — query
results, ``candidates_examined``, and the index itself must be
bit-identical to the policy-free engine.  The property test drives
randomized mixed range+kNN batch streams through all four engine
configurations (no policy, ``merge``, ``exact``, ``auto``) and pins
them against each other; the unit tests exercise the decision
machinery (cold-start merging, zero-demand flips to exact, gap
coalescing, the deterministic explore/exploit arm) directly.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import PrefetchPolicy, QueryEngine, StratumOutcome
from repro.engine.plan import BandRequest, QueryPlanner
from repro.engine.policy import MIN_STRATUM_SAMPLES, REEXPLORE_EVERY
from repro.engine.scanner import BandScanner
from repro.workloads import QueryGenerator

from tests.conftest import build_world

MODES = (None, "merge", "exact", "auto")


@pytest.fixture(scope="module")
def world():
    return build_world(n_users=220, n_policies=8, seed=29)


# ----------------------------------------------------------------------
# The safety property: any policy == no policy, observationally
# ----------------------------------------------------------------------


def _result_signature(result):
    if hasattr(result, "uids"):
        return ("range", frozenset(result.uids), result.candidates_examined)
    return (
        "knn",
        tuple((round(d, 9), uid) for d, uid in result.neighbors),
        result.candidates_examined,
    )


@given(
    seed=st.integers(0, 2**16),
    n_batches=st.integers(1, 3),
    batch_size=st.integers(4, 14),
)
@settings(max_examples=8, deadline=None)
def test_any_policy_mode_is_observationally_identical(
    world, seed, n_batches, batch_size
):
    """Results and candidates match the policy-free engine, per spec,
    across a multi-batch stream (so warmed-up EWMAs and arm switches
    are exercised, not just the cold path)."""
    streams = {}
    for mode in MODES:
        generator = QueryGenerator(world.space_side, random.Random(seed))
        engine = QueryEngine(world.peb, prefetch_policy=mode)
        reports = []
        for _ in range(n_batches):
            specs = generator.mixed_queries(
                world.states, batch_size, 300.0, 3, 5.0
            )
            reports.append(engine.execute_batch(specs))
        streams[mode] = reports
    reference = streams[None]
    for mode in MODES[1:]:
        for ref_report, got_report in zip(reference, streams[mode]):
            assert len(got_report.results) == len(ref_report.results)
            for ref, got in zip(ref_report.results, got_report.results):
                assert _result_signature(got) == _result_signature(ref), mode


def test_merge_mode_matches_legacy_io_exactly(world):
    """mode="merge" is the legacy unconditional merge — not just the
    same answers but the same physical scan count as no policy."""
    specs = world.query_generator().range_queries(world.uids, 20, 280.0, 5.0)
    legacy = QueryEngine(world.peb).execute_batch(specs)
    merged = QueryEngine(world.peb, prefetch_policy="merge").execute_batch(specs)
    assert merged.stats.bands_scanned == legacy.stats.bands_scanned
    assert merged.stats.bands_deduped == legacy.stats.bands_deduped
    assert merged.stats.entries_prefetched == legacy.stats.entries_prefetched


# ----------------------------------------------------------------------
# Satellite: bounded memo — eviction costs I/O, never answers
# ----------------------------------------------------------------------


def _stratum_bands(world, n_queries=12):
    """Single-SV bands from real range plans, in plan order."""
    planner = QueryPlanner(world.peb)
    bands = []
    for spec in world.query_generator().range_queries(
        world.uids, n_queries, 320.0, 5.0
    ):
        plan = planner.plan_range(spec.q_uid, spec.window, spec.t_query)
        bands.extend(p.band for p in plan.bands if p.band.is_single_sv)
    return bands


def _rows_signature(rows):
    return [(zv, obj.uid) for zv, obj in rows]


def test_memo_eviction_never_changes_scan_results(world):
    bands = _stratum_bands(world)
    assert bands
    unbounded = BandScanner(world.peb)
    tiny = BandScanner(world.peb, memo_entries=4)
    # Two passes: the second pass hits the big scanner's memo but
    # re-scans whatever the tiny scanner evicted.
    for _ in range(2):
        for band in bands:
            assert _rows_signature(tiny.scan(band)) == _rows_signature(
                unbounded.scan(band)
            )
    assert unbounded.memo_evictions == 0
    assert tiny.memo_evictions > 0
    assert tiny.physical_scans > unbounded.physical_scans


def test_memo_always_keeps_the_newest_band(world):
    scanner = BandScanner(world.peb, memo_entries=0)
    for band in _stratum_bands(world):
        rows = scanner.scan(band)
        # The band that just populated the memo survives even a zero
        # bound; eviction only reaches colder entries.
        assert band.key in scanner._memo
        if len(rows) > 0:
            assert list(scanner._memo) == [band.key]


# ----------------------------------------------------------------------
# Satellite: over-scan accounting
# ----------------------------------------------------------------------


def _populated_stratum(world):
    """A (band, full-width band, rows) triple with >= 2 distinct ZVs."""
    probe = BandScanner(world.peb)
    for band in _stratum_bands(world, n_queries=20):
        full = BandRequest(
            band.tid, band.sv_lo_q, band.sv_hi_q, 0, world.peb.grid.max_z
        )
        rows = probe.scan(full)
        if len({zv for zv, _ in rows}) >= 2:
            return band, full, _rows_signature(rows)
    pytest.skip("no stratum with two distinct ZVs in this world")


def test_dead_entries_count_unrequested_prefetched_rows(world):
    band, full, rows = _populated_stratum(world)
    first_zv = rows[0][0]
    scanner = BandScanner(world.peb)
    scanner.prefetch([full])
    narrow = BandRequest(
        band.tid, band.sv_lo_q, band.sv_hi_q, first_zv, first_zv
    )
    served = scanner.scan(narrow)
    assert _rows_signature(served) == [r for r in rows if r[0] == first_zv]
    assert scanner.store_hits == 1
    used = sum(1 for zv, _ in rows if zv == first_zv)
    assert scanner.dead_entries == len(rows) - used
    assert scanner.dead_entries > 0
    outcome = scanner.stratum_outcomes()[(band.tid, band.sv_lo_q)]
    assert outcome.prefetched_entries == len(rows)
    assert outcome.requested_zv == 1
    assert outcome.unique_bands == 1


def test_execution_stats_surface_prefetch_accounting(world):
    generator = world.query_generator()
    specs = generator.mixed_queries(world.states, 16, 300.0, 3, 5.0)
    report = QueryEngine(world.peb, prefetch_policy="merge").execute_batch(specs)
    stats = report.stats
    assert stats.entries_prefetched > 0
    assert 0 <= stats.dead_entries <= stats.entries_prefetched
    assert stats.overscan_ratio == pytest.approx(
        stats.dead_entries / stats.entries_prefetched
    )
    assert stats.memo_evictions == 0  # default bound never evicts here
    assert stats.seeks == 0 and stats.sequential_hits == 0  # untimed tree


# ----------------------------------------------------------------------
# Decision machinery units
# ----------------------------------------------------------------------


def _observe(policy, outcome, times=MIN_STRATUM_SAMPLES, scope=0):
    for _ in range(times):
        policy.observe_batch(
            {(scope, outcome.tid, outcome.sv_q): outcome},
            physical_reads=0,
            virtual_time_us=0.0,
            n_requests=1,
        )


def test_mode_strings_validated():
    with pytest.raises(ValueError):
        PrefetchPolicy(mode="bogus")
    with pytest.raises(TypeError):
        PrefetchPolicy.coerce(42, tree=None)
    assert PrefetchPolicy.coerce(None, tree=None) is None


def test_static_modes_ignore_observations():
    merge = PrefetchPolicy(mode="merge")
    exact = PrefetchPolicy(mode="exact")
    firm, spec = [(0, 10)], [(5, 30)]
    assert merge.decide(0, 0, 1, firm, spec) == [(0, 30)]
    assert merge.decide(0, 0, 1, [], []) is None
    assert exact.decide(0, 0, 1, firm, spec) is None


def test_cold_stratum_merges_like_legacy():
    policy = PrefetchPolicy(mode="auto")
    coverage = policy.decide(0, 0, 1, [(0, 10), (200, 210)], [])
    assert coverage == [(0, 10), (200, 210)]  # merged, not coalesced


def test_zero_demand_stratum_flips_to_exact():
    """Prefetched-but-never-requested strata (skip-rule casualties,
    unused probe supersets) are the waste — they must flip."""
    policy = PrefetchPolicy(mode="auto")
    wasted = StratumOutcome(
        tid=0, sv_q=1, coverage_runs=1, coverage_zv=11, prefetched_entries=110
    )
    _observe(policy, wasted)
    assert policy.decide(0, 0, 1, [(0, 10)], []) is None
    assert policy.exact_strata == 1


def test_fully_consumed_stratum_keeps_merging():
    policy = PrefetchPolicy(mode="auto")
    consumed = StratumOutcome(
        tid=0,
        sv_q=1,
        requests=5,
        unique_bands=5,
        requested_zv=11,
        coverage_runs=1,
        coverage_zv=11,
        prefetched_entries=110,
    )
    _observe(policy, consumed)
    # 1 seek for the merged run vs 5 seeks for exact scans of the same
    # entries: merging wins outright.
    assert policy.decide(0, 0, 1, [(0, 10)], []) == [(0, 10)]
    assert policy.merged_strata == 1


def test_gap_coalescing_follows_the_seek_budget():
    # budget = (seek/read) * entries_per_page = 96 dead entries per
    # saved seek under the default pricing.
    sparse = PrefetchPolicy(mode="auto")
    outcome = StratumOutcome(
        tid=0,
        sv_q=1,
        requests=8,
        unique_bands=8,
        requested_zv=22,
        coverage_runs=2,
        coverage_zv=22,
        prefetched_entries=22,  # density 1: the 4-wide gap costs 4 entries
    )
    _observe(sparse, outcome)
    assert sparse.decide(0, 0, 1, [(0, 10), (15, 25)], []) == [(0, 25)]
    assert sparse.coalesced_runs == 1

    dense = PrefetchPolicy(mode="auto")
    outcome = StratumOutcome(
        tid=0,
        sv_q=1,
        requests=8,
        unique_bands=8,
        requested_zv=22,
        coverage_runs=2,
        coverage_zv=22,
        prefetched_entries=2200,  # density 100: the gap costs 400 > 96
    )
    _observe(dense, outcome)
    assert dense.decide(0, 0, 1, [(0, 10), (15, 25)], []) == [
        (0, 10),
        (15, 25),
    ]
    assert dense.coalesced_runs == 0


def test_arm_explores_both_then_exploits_the_cheaper():
    policy = PrefetchPolicy(mode="auto")

    def run_knn_batch(reads):
        policy.begin_batch(0, 4)
        arm = policy._arm_speculative
        policy.observe_batch(
            {}, physical_reads=reads, virtual_time_us=0.0, n_requests=4
        )
        return arm

    assert run_knn_batch(reads=100) is True  # explore on
    assert run_knn_batch(reads=40) is False  # explore off
    assert run_knn_batch(reads=40) is False  # exploit the cheaper arm
    # Range-only batches carry no speculative bands: arm pinned on,
    # nothing scored.
    policy.begin_batch(4, 0)
    assert policy._arm_speculative is True
    snapshot = policy.snapshot()
    assert snapshot["arm_scores"]["off"] < snapshot["arm_scores"]["on"]


def test_losing_arm_is_reexplored_periodically():
    policy = PrefetchPolicy(mode="auto")
    arms = []
    for _ in range(REEXPLORE_EVERY):
        policy.begin_batch(0, 2)
        arms.append(policy._arm_speculative)
        reads = 100 if policy._arm_speculative else 40
        policy.observe_batch(
            {}, physical_reads=reads, virtual_time_us=0.0, n_requests=2
        )
    assert arms[0] is True and arms[1] is False
    assert all(arm is False for arm in arms[2:-1])  # exploitation
    assert arms[-1] is True  # the REEXPLORE_EVERY-th batch retries on


def test_service_signal_breaks_batch_score_ties():
    policy = PrefetchPolicy(mode="auto")
    for arm, service_us in ((True, 900.0), (False, 300.0)):
        policy.begin_batch(0, 2)
        assert policy._arm_speculative is arm
        policy.observe_batch(
            {}, physical_reads=50, virtual_time_us=0.0, n_requests=2
        )
        policy.observe_service(
            n_range=0,
            n_knn=2,
            n_updates=1,
            service_us=service_us,
            physical_reads=50,
        )
    # Batch scores are a dead heat (same reads/request); the service
    # per-request signal picks the off arm.
    assert policy._best_arm() is False


def test_for_tree_prices_from_the_device_profile(world):
    policy = PrefetchPolicy.for_tree(world.peb)
    # Untimed tree: default pricing, real leaf capacity.
    assert policy.cost.entries_per_page == float(
        world.peb.btree.config.leaf_capacity
    )

    class FakeProfile:
        seek_us = 8000.0
        read_us = 30.0

    class FakeModel:
        profile = FakeProfile()

    class FakeTree:
        latency_model = FakeModel()

    hdd = PrefetchPolicy.for_tree(FakeTree())
    assert hdd.cost.seek_us == 8000.0
    assert hdd.cost.read_us == 30.0


def test_snapshot_reports_decision_state():
    policy = PrefetchPolicy(mode="auto")
    snapshot = policy.snapshot()
    assert snapshot["mode"] == "auto"
    for key in (
        "knn_share",
        "arm_speculative",
        "arm_scores",
        "strata_tracked",
        "merged_strata",
        "exact_strata",
        "coalesced_runs",
    ):
        assert key in snapshot
