"""Tests for the open-loop service front-end.

Covers the request envelopes, the admission/batching queue (size and
time triggers, busy-worker absorption, conservation of requests), the
open-loop arrival processes, the sojourn statistics, and the worker
loop — including the property that every result a service run produces
is identical to applying the same recorded batches directly through
``UpdatePipeline`` + ``execute_batch`` on a twin deployment.
"""

import random

import pytest

from repro.bench.harness import ExperimentConfig, ExperimentHarness
from repro.engine import QueryEngine, UpdatePipeline
from repro.service import (
    BatchPolicy,
    OpenLoopGenerator,
    RequestQueue,
    ServiceRequest,
    SimulatedService,
    build_stats,
    detect_saturation,
    percentile,
    query_request,
    update_request,
)
from repro.shard import ShardedPEBTree, ShardedQueryEngine
from repro.spatial.geometry import Rect
from repro.workloads.queries import KnnQuerySpec, QueryGenerator, RangeQuerySpec

from tests.conftest import build_world
from tests.test_peb_tree import make_peb, mover


def upd(seq, arrival_us, uid=0, x=100.0):
    return update_request(seq, arrival_us, mover(uid, x=x))


# ----------------------------------------------------------------------
# Request envelopes
# ----------------------------------------------------------------------


def test_request_kinds_derived_and_validated():
    range_spec = RangeQuerySpec(q_uid=1, window=Rect(0, 10, 0, 10), t_query=0.0)
    knn_spec = KnnQuerySpec(q_uid=1, qx=5.0, qy=5.0, k=3, t_query=0.0)
    assert query_request(0, 0.0, range_spec).kind == "range"
    assert query_request(1, 0.0, knn_spec).kind == "knn"
    assert update_request(2, 0.0, mover(1)).is_update
    with pytest.raises(TypeError):
        query_request(3, 0.0, "not a spec")
    with pytest.raises(ValueError):
        ServiceRequest(seq=0, arrival_us=0.0, kind="scan", query=range_spec)
    with pytest.raises(ValueError):
        ServiceRequest(seq=0, arrival_us=-1.0, kind="range", query=range_spec)
    with pytest.raises(ValueError):
        # An update request must not also carry a query spec.
        ServiceRequest(
            seq=0, arrival_us=0.0, kind="update", update=mover(1), query=range_spec
        )
    with pytest.raises(ValueError):
        ServiceRequest(seq=0, arrival_us=0.0, kind="range")


def test_policy_validation():
    with pytest.raises(ValueError):
        BatchPolicy(max_batch=0)
    with pytest.raises(ValueError):
        BatchPolicy(max_wait_us=-1.0)


# ----------------------------------------------------------------------
# Admission queue
# ----------------------------------------------------------------------


def test_queue_rejects_unsorted_arrivals():
    requests = [upd(0, 100.0), upd(1, 50.0)]
    with pytest.raises(ValueError):
        RequestQueue(requests, BatchPolicy())


def test_size_trigger_dispatches_at_fill_instant():
    stamps = [0.0, 10.0, 20.0, 30.0, 100.0, 110.0, 120.0, 130.0]
    requests = [upd(seq, stamp, uid=seq) for seq, stamp in enumerate(stamps)]
    queue = RequestQueue(requests, BatchPolicy(max_batch=4, max_wait_us=1e9))

    first = queue.next_batch(free_at=0.0)
    assert [r.seq for r in first.requests] == [0, 1, 2, 3]
    assert first.dispatch_us == 30.0
    assert first.trigger == "full"
    second = queue.next_batch(free_at=first.dispatch_us)
    assert [r.seq for r in second.requests] == [4, 5, 6, 7]
    assert second.dispatch_us == 130.0
    assert queue.next_batch(free_at=200.0) is None


def test_timeout_trigger_dispatches_partial_batch():
    requests = [upd(0, 0.0), upd(1, 10.0, uid=1), upd(2, 200.0, uid=2)]
    queue = RequestQueue(requests, BatchPolicy(max_batch=64, max_wait_us=50.0))

    first = queue.next_batch(free_at=0.0)
    assert [r.seq for r in first.requests] == [0, 1]
    assert first.dispatch_us == 50.0
    assert first.trigger == "timeout"
    second = queue.next_batch(free_at=first.dispatch_us)
    assert [r.seq for r in second.requests] == [2]
    assert second.dispatch_us == 250.0


def test_busy_worker_absorbs_late_arrivals_up_to_cap():
    stamps = [0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0]
    requests = [upd(seq, stamp, uid=seq) for seq, stamp in enumerate(stamps)]
    queue = RequestQueue(requests, BatchPolicy(max_batch=4, max_wait_us=1000.0))

    first = queue.next_batch(free_at=0.0)
    assert first.dispatch_us == 30.0

    # The worker stays busy until 500; by then every remaining request
    # has arrived, but only a capful dispatches.
    second = queue.next_batch(free_at=500.0)
    assert [r.seq for r in second.requests] == [4, 5, 6, 7]
    assert second.dispatch_us == 500.0
    # Depth counts the batch plus the arrived-but-unserved leftover.
    assert second.queue_depth == 5

    third = queue.next_batch(free_at=500.0)
    assert [r.seq for r in third.requests] == [8]
    assert queue.exhausted


def test_queue_conserves_requests_in_arrival_order():
    rng = random.Random(7)
    stamps = sorted(rng.uniform(0, 5000.0) for _ in range(100))
    requests = [upd(seq, stamp, uid=seq) for seq, stamp in enumerate(stamps)]
    for policy in (
        BatchPolicy(max_batch=1, max_wait_us=0.0),
        BatchPolicy(max_batch=7, max_wait_us=100.0),
        BatchPolicy(max_batch=64, max_wait_us=250.0),
    ):
        queue = RequestQueue(requests, policy)
        free_at, seen = 0.0, []
        while (batch := queue.next_batch(free_at)) is not None:
            assert batch.dispatch_us >= free_at
            assert len(batch.requests) <= policy.max_batch
            seen.extend(r.seq for r in batch.requests)
            free_at = batch.dispatch_us + 120.0  # fixed service time
        assert seen == list(range(100))
        assert queue.remaining() == 0


def test_backlog_probe_counts_waiting_and_unabsorbed():
    requests = [upd(seq, 10.0 * seq, uid=seq) for seq in range(10)]
    queue = RequestQueue(requests, BatchPolicy(max_batch=4, max_wait_us=1e9))
    queue.next_batch(free_at=0.0)  # takes seqs 0-3 at t=30
    assert queue.backlog_at(65.0) == 3  # seqs 4, 5, 6 arrived, none served
    assert queue.backlog_at(1e9) == 6


# ----------------------------------------------------------------------
# Arrival processes
# ----------------------------------------------------------------------


def open_loop(seed=3, n_users=50):
    rng = random.Random(seed)
    generator = QueryGenerator(1000.0, rng)
    states = {uid: mover(uid, x=50.0 + uid) for uid in range(n_users)}
    return OpenLoopGenerator(generator, states)


def test_poisson_stamps_ascending_at_target_rate():
    loop = open_loop()
    stamps = loop.poisson_stamps(2000, rate_per_sec=500.0)
    assert all(b >= a for a, b in zip(stamps, stamps[1:]))
    mean_gap = stamps[-1] / len(stamps)
    assert 2000.0 * 0.85 < mean_gap < 2000.0 * 1.15  # 1e6/500 = 2000 µs
    # Same seed, same stream.
    again = open_loop().poisson_stamps(2000, rate_per_sec=500.0)
    assert again == stamps


def test_burst_stamps_share_instants_at_same_mean_rate():
    loop = open_loop()
    stamps = loop.burst_stamps(64, rate_per_sec=1000.0, burst_size=16)
    assert stamps[0:16] == [0.0] * 16
    assert stamps[16:32] == [16000.0] * 16
    assert len(set(stamps)) == 4


def test_generate_mixes_kinds_with_ascending_stamps():
    loop = open_loop()
    requests = loop.generate(
        40, rate_per_sec=2000.0, update_fraction=0.5, knn_fraction=0.25
    )
    assert len(requests) == 40
    assert [r.seq for r in requests] == list(range(40))
    stamps = [r.arrival_us for r in requests]
    assert all(b >= a for a, b in zip(stamps, stamps[1:]))
    kinds = [r.kind for r in requests]
    assert kinds.count("update") == 20
    assert kinds.count("range") + kinds.count("knn") == 20
    assert kinds.count("knn") > 0
    # Update world-timestamps ascend along arrival order.
    t_updates = [r.update.t_update for r in requests if r.is_update]
    assert t_updates == sorted(t_updates)
    with pytest.raises(ValueError):
        loop.generate(10, rate_per_sec=100.0, arrival="unknown")


# ----------------------------------------------------------------------
# Statistics
# ----------------------------------------------------------------------


def test_percentile_is_nearest_rank():
    values = [float(v) for v in range(10, 110, 10)]
    assert percentile(values, 0.50) == 50.0
    assert percentile(values, 0.95) == 100.0
    assert percentile(values, 0.99) == 100.0
    assert percentile(values, 0.0) == 10.0
    assert percentile([], 0.5) == 0.0
    with pytest.raises(ValueError):
        percentile(values, 1.5)


def test_detect_saturation_requires_both_signals():
    policy = BatchPolicy(max_batch=4, max_wait_us=100.0)
    flat = [100.0] * 30
    growing = [100.0 * (1 + i) for i in range(30)]
    # Growing sojourns but drained backlog: not saturated.
    assert not detect_saturation(growing, backlog_at_last_arrival=2, policy=policy)
    # Backlog but flat sojourns: not saturated.
    assert not detect_saturation(flat, backlog_at_last_arrival=50, policy=policy)
    assert detect_saturation(growing, backlog_at_last_arrival=50, policy=policy)
    # Too few samples to call a trend.
    assert not detect_saturation(growing[:5], backlog_at_last_arrival=50, policy=policy)


def test_build_stats_aggregates_sojourns_and_batches():
    class Batch:
        def __init__(self, requests, dispatch_us, finish_us, queue_depth):
            self.requests = requests
            self.dispatch_us = dispatch_us
            self.finish_us = finish_us
            self.queue_depth = queue_depth

    requests = [upd(0, 0.0), upd(1, 10.0, uid=1), upd(2, 40.0, uid=2)]
    records = [
        (requests[0], 20.0, 30.0),
        (requests[1], 20.0, 30.0),
        (requests[2], 40.0, 55.0),
    ]
    batches = [
        Batch(requests[:2], 20.0, 30.0, queue_depth=2),
        Batch(requests[2:], 40.0, 55.0, queue_depth=1),
    ]
    stats = build_stats(
        records,
        batches,
        BatchPolicy(max_batch=2, max_wait_us=100.0),
        backlog_at_last_arrival=1,
        physical_reads=12,
        physical_writes=3,
    )
    assert stats.n_requests == 3 and stats.n_batches == 2
    assert stats.overall.count == 3
    assert stats.overall.max_us == 30.0  # request 0: finish 30 - arrival 0
    assert stats.per_class["update"].count == 3
    assert stats.batch_size_hist == {2: 1, 1: 1}
    assert stats.queue_depth_max == 2
    assert stats.busy_us == pytest.approx(25.0)
    assert stats.makespan_us == pytest.approx(55.0)
    assert stats.throughput_per_sec == pytest.approx(3 / 55e-6)
    assert stats.reads_per_request == pytest.approx(4.0)
    snapshot = stats.snapshot()
    assert snapshot["overall"]["p50_us"] == stats.overall.p50_us
    assert snapshot["batch_size_hist"] == {"1": 1, "2": 1}


# ----------------------------------------------------------------------
# Worker loop
# ----------------------------------------------------------------------


def make_service(tree, policy):
    engine = QueryEngine(tree)
    pipeline = UpdatePipeline(tree, capacity=256, flush_on_rollover=True)
    return SimulatedService(engine, pipeline, policy)


def test_service_rejects_mismatched_engine_and_pipeline():
    tree_a, tree_b = make_peb(range(6)), make_peb(range(6))
    with pytest.raises(ValueError):
        SimulatedService(QueryEngine(tree_a), UpdatePipeline(tree_b))


def test_batch_queries_see_the_batch_own_updates():
    tree = make_peb(range(6))
    for uid in range(6):
        tree.insert(mover(uid, x=100.0 + uid, y=100.0))
    service = make_service(tree, BatchPolicy(max_batch=8, max_wait_us=10.0))
    # make_store grants uid 1 access to uid 0; move uid 0 far away and
    # range-query its new neighbourhood in the same batch.
    requests = [
        update_request(0, 0.0, mover(0, x=900.0, y=900.0, vx=0.0, vy=0.0)),
        query_request(
            1,
            1.0,
            RangeQuerySpec(q_uid=1, window=Rect(850, 950, 850, 950), t_query=0.0),
        ),
    ]
    report = service.run(requests)
    assert len(report.batches) == 1
    batch = report.batches[0]
    assert batch.n_updates == 1 and batch.n_queries == 1
    assert 0 in batch.query_results[0].uids


def test_untimed_run_records_every_request_once():
    world = build_world(n_users=80, n_policies=6, seed=21)
    loop = OpenLoopGenerator(world.query_generator(), world.states)
    requests = loop.generate(50, rate_per_sec=5000.0, update_fraction=0.4)
    service = make_service(world.peb, BatchPolicy(max_batch=8, max_wait_us=1500.0))
    report = service.run(requests)

    assert [record[0].seq for record in report.records] == list(range(50))
    assert sum(len(b.requests) for b in report.batches) == 50
    for request, dispatch, finish in report.records:
        assert dispatch >= request.arrival_us
        # Untimed storage: zero service time, so finish == dispatch and
        # the sojourn is pure admission delay.
        assert finish == dispatch
        assert report.sojourn_us(request.seq) >= 0.0
    stats = report.stats
    assert stats.n_requests == 50
    assert stats.overall.count == 50
    assert set(stats.per_class) <= {"range", "knn", "update"}
    assert sum(s.count for s in stats.per_class.values()) == 50
    assert sum(size * n for size, n in stats.batch_size_hist.items()) == 50


@pytest.mark.parametrize("arrival", ["poisson", "burst"])
def test_timed_sharded_run_pins_to_direct_replay(arrival):
    """The tentpole property: a service run is an *orchestration* of
    the engine.  Replaying the recorded batches directly through a twin
    deployment's UpdatePipeline + execute_batch reproduces every query
    result, and the final trees match entry for entry."""
    world = build_world(n_users=120, n_policies=8, seed=33)
    twin_world = build_world(n_users=120, n_policies=8, seed=33)

    def deploy(w):
        sharded = ShardedPEBTree.build(
            2,
            w.grid,
            w.partitioner,
            w.store,
            uids=w.uids,
            page_size=1024,
            buffer_pages=256,
            latency="ssd",
            parallel_io=True,
        )
        for uid in w.uids:
            sharded.insert(w.states[uid])
        for pool in sharded.pools:
            pool.clear()
        return sharded

    sharded = deploy(world)
    twin = deploy(twin_world)

    loop = OpenLoopGenerator(world.query_generator(), world.states)
    requests = loop.generate(
        48,
        rate_per_sec=3000.0,
        arrival=arrival,
        update_fraction=0.5,
        burst_size=8,
    )
    policy = BatchPolicy(max_batch=8, max_wait_us=2000.0)
    service = SimulatedService(
        ShardedQueryEngine(sharded), UpdatePipeline(sharded, capacity=256), policy
    )
    report = service.run(requests)

    # Virtual-time sanity: positive service time, ordered dispatches.
    assert report.stats.busy_us > 0.0
    assert 0.0 < report.stats.utilization <= 1.0
    finishes = [batch.finish_us for batch in report.batches]
    for batch, finish in zip(report.batches, finishes):
        assert finish > batch.dispatch_us  # cold pools: real simulated I/O
    assert finishes == sorted(finishes)
    assert report.stats.overall.p99_us >= report.stats.overall.p50_us > 0.0
    assert report.stats.physical_reads > 0

    # Replay pin: same batches, direct application, twin deployment.
    twin_engine = ShardedQueryEngine(twin)
    twin_pipeline = UpdatePipeline(twin, capacity=256)
    for batch in report.batches:
        if batch.updates:
            twin_pipeline.extend(batch.updates)
            twin_pipeline.flush()
        specs = batch.query_specs
        if not specs:
            assert batch.query_results == []
            continue
        direct = twin_engine.execute_batch(specs).results
        assert len(direct) == len(batch.query_results)
        for served, replayed in zip(batch.query_results, direct):
            if hasattr(served, "uids"):
                assert served.uids == replayed.uids
            else:
                served_nn = [(round(d, 9), o.uid) for d, o in served.neighbors]
                direct_nn = [(round(d, 9), o.uid) for d, o in replayed.neighbors]
                assert served_nn == direct_nn
    assert sorted(sharded.fetch_all(), key=lambda o: o.uid) == sorted(
        twin.fetch_all(), key=lambda o: o.uid
    )


def test_smaller_batches_trade_reads_for_latency():
    """The knee the benchmark sweeps, in miniature: at the same offered
    load, B=1 must not batch (mean batch size 1) while a large-B policy
    amortizes I/O across multi-request batches."""
    world = build_world(n_users=100, n_policies=6, seed=44)

    def run(policy):
        sharded = ShardedPEBTree.build(
            2,
            world.grid,
            world.partitioner,
            world.store,
            uids=world.uids,
            page_size=1024,
            buffer_pages=256,
            latency="ssd",
            parallel_io=True,
        )
        for uid in world.uids:
            sharded.insert(world.states[uid])
        for pool in sharded.pools:
            pool.clear()
        loop = OpenLoopGenerator(
            QueryGenerator(world.space_side, random.Random(91)), world.states
        )
        requests = loop.generate(40, rate_per_sec=4000.0, update_fraction=0.5)
        service = SimulatedService(
            ShardedQueryEngine(sharded), UpdatePipeline(sharded, capacity=256), policy
        )
        return service.run(requests)

    solo = run(BatchPolicy(max_batch=1, max_wait_us=0.0))
    batched = run(BatchPolicy(max_batch=16, max_wait_us=4000.0))
    assert solo.stats.mean_batch_size == 1.0
    assert batched.stats.mean_batch_size > 1.5
    assert batched.stats.n_batches < solo.stats.n_batches


# ----------------------------------------------------------------------
# Harness integration
# ----------------------------------------------------------------------

TINY = ExperimentConfig(
    n_users=300,
    n_policies=6,
    n_queries=4,
    page_size=1024,
    build_buffer_pages=1024,
    seed=29,
)


def test_harness_run_service_pins_and_reports():
    harness = ExperimentHarness(TINY)
    costs = harness.run_service(
        rate_per_sec=2500.0,
        n_requests=40,
        max_batch=8,
        max_wait_us=2000.0,
        n_shards=2,
        latency="ssd",
    )
    assert costs.pinned
    assert costs.n_requests == 40
    assert costs.stats.n_requests == 40
    assert costs.p99_us >= costs.stats.overall.p50_us > 0.0
    assert costs.throughput_per_sec > 0.0
    assert costs.stats.physical_reads > 0
    snapshot = costs.snapshot()
    assert snapshot["stats"]["n_requests"] == 40
    assert snapshot["rate_per_sec"] == 2500.0
    # The harness's own indexes are untouched by a service run.
    assert len(harness.peb_tree) == TINY.n_users


def test_harness_run_service_same_seed_is_deterministic():
    first = ExperimentHarness(TINY).run_service(
        rate_per_sec=2500.0, n_requests=24, max_batch=8, pin=False
    )
    second = ExperimentHarness(TINY).run_service(
        rate_per_sec=2500.0, n_requests=24, max_batch=8, pin=False
    )
    assert first.snapshot() == second.snapshot()
