"""Unit tests for the simulated-latency I/O subsystem (repro.simio)."""

import pytest

from repro.simio import (
    IOScheduler,
    LatencyModel,
    LatencyStats,
    LatencyView,
    PROFILES,
    SimClock,
    TimedDisk,
    make_latency_model,
)
from repro.storage.disk import SimulatedDisk
from repro.storage.stats import StatsView


# ----------------------------------------------------------------------
# LatencyModel
# ----------------------------------------------------------------------


def test_random_access_pays_seek_plus_transfer():
    model = LatencyModel("hdd")
    cost, sequential = model.access_cost("read", 7, None)
    assert cost == PROFILES["hdd"].seek_us + PROFILES["hdd"].read_us
    assert not sequential


def test_sequential_run_skips_the_seek():
    model = LatencyModel("hdd")
    for last in (6, 7):  # next page, or a re-access of the same page
        cost, sequential = model.access_cost("read", 7, last)
        assert cost == PROFILES["hdd"].read_us
        assert sequential
    # A backwards or skipping access is not sequential.
    for last in (8, 3):
        cost, sequential = model.access_cost("read", 7, last)
        assert cost == PROFILES["hdd"].seek_us + PROFILES["hdd"].read_us
        assert not sequential


def test_write_cost_uses_the_write_transfer():
    model = LatencyModel("ssd")
    cost, _ = model.access_cost("write", 0, None)
    assert cost == PROFILES["ssd"].seek_us + PROFILES["ssd"].write_us


def test_profiles_order_by_device_class():
    """Positioning cost must dominate on hdd and nearly vanish on nvme."""
    hdd, ssd, nvme = PROFILES["hdd"], PROFILES["ssd"], PROFILES["nvme"]
    assert hdd.seek_us > ssd.seek_us > nvme.seek_us
    assert hdd.seek_us / hdd.read_us > ssd.seek_us / ssd.read_us
    assert ssd.seek_us / ssd.read_us >= nvme.seek_us / nvme.read_us


def test_model_rejects_unknown_profile_and_kind():
    with pytest.raises(ValueError):
        LatencyModel("floppy")
    with pytest.raises(ValueError):
        LatencyModel("hdd").access_cost("erase", 0, None)
    assert make_latency_model("nvme").name == "nvme"
    model = LatencyModel("hdd")
    assert make_latency_model(model) is model


# ----------------------------------------------------------------------
# SimClock
# ----------------------------------------------------------------------


def test_distinct_devices_overlap_same_device_serializes():
    clock = SimClock()
    model = LatencyModel("ssd")
    dev_a = clock.register_device("a")
    dev_b = clock.register_device("b")
    cost, _ = model.access_cost("read", 0, None)

    # Two forked contexts, one device each: elapsed is max, not sum.
    base = clock.cursor()
    clock.set_cursor(base)
    clock.charge(dev_a, "read", 0, model)
    end_a = clock.cursor()
    clock.set_cursor(base)
    clock.charge(dev_b, "read", 0, model)
    end_b = clock.cursor()
    clock.join([end_a, end_b])
    assert end_a == end_b == base + cost
    assert clock.elapsed == base + cost

    # Two forked contexts on the *same* device: the second access finds
    # the device busy and serializes behind the first.
    base = clock.cursor()
    clock.charge(dev_a, "read", 100, model)
    first_end = clock.cursor()
    clock.set_cursor(base)
    clock.charge(dev_a, "read", 200, model)
    second_end = clock.cursor()
    assert second_end > first_end  # waited for the device
    assert second_end == first_end + cost


def test_advance_is_cpu_only_and_horizon_is_monotonic():
    clock = SimClock()
    device = clock.register_device()
    clock.advance(50.0)
    assert clock.cursor() == 50.0
    assert clock.elapsed == 50.0
    assert clock.device_free_at(device) == 0.0  # no device was touched
    with pytest.raises(ValueError):
        clock.advance(-1.0)
    # Moving a context backwards never moves the horizon backwards.
    clock.set_cursor(0.0)
    assert clock.elapsed == 50.0


# ----------------------------------------------------------------------
# TimedDisk
# ----------------------------------------------------------------------


def make_timed(profile="hdd"):
    clock = SimClock()
    model = LatencyModel(profile)
    disk = TimedDisk(SimulatedDisk(page_size=256), clock, model, name="t0")
    return disk, clock, model


def test_timed_disk_charges_reads_and_writes():
    disk, clock, model = make_timed()
    page = disk.allocate()
    assert clock.elapsed == 0.0  # allocation costs no time
    disk.write(page, b"x" * 10)
    write_cost, _ = model.access_cost("write", page, None)
    assert clock.elapsed == write_cost
    disk.read(page)  # same page: sequential, transfer only
    assert clock.elapsed == write_cost + model.profile.read_us
    assert disk.latency.writes == 1 and disk.latency.reads == 1
    assert disk.latency.sequential_hits == 1 and disk.latency.seeks == 1
    assert disk.latency.busy_us == clock.elapsed


def test_timed_disk_counters_match_the_plain_stack():
    """Timing is layered on, never changes what the counters say."""
    plain = SimulatedDisk(page_size=256)
    timed, _, _ = make_timed()
    for disk in (plain, timed):
        first = disk.allocate()
        second = disk.allocate()
        disk.write(first, b"a")
        disk.write(second, b"b")
        disk.read(first)
        disk.read(first)
    assert timed.stats.snapshot() == plain.stats.snapshot()
    assert timed.page_count == plain.page_count
    assert timed.allocated_count == plain.allocated_count
    assert timed.contains(0) and not timed.contains(5)
    assert timed.page_size == plain.page_size


def test_failed_access_charges_no_time():
    disk, clock, _ = make_timed()
    with pytest.raises(KeyError):
        disk.read(99)  # never allocated
    assert clock.elapsed == 0.0
    assert disk.latency.accesses == 0


def test_timed_disk_sequential_sweep_is_cheaper_than_random():
    disk, clock, model = make_timed("hdd")
    pages = [disk.allocate() for _ in range(8)]
    for page in pages:
        disk.write(page, b"x")
    sweep_start = clock.elapsed
    for page in pages:  # ascending: one seek, then sequential
        disk.read(page)
    sweep_cost = clock.elapsed - sweep_start
    random_start = clock.elapsed
    for page in reversed(pages):  # descending: every access seeks
        disk.read(page)
    random_cost = clock.elapsed - random_start
    assert sweep_cost < random_cost
    assert disk.latency.sequential_ratio > 0


# ----------------------------------------------------------------------
# IOScheduler
# ----------------------------------------------------------------------


def scheduler_world(n_devices=3, profile="hdd"):
    clock = SimClock()
    model = LatencyModel(profile)
    disks = [
        TimedDisk(SimulatedDisk(page_size=256), clock, model, name=f"d{i}")
        for i in range(n_devices)
    ]
    for disk in disks:
        page = disk.allocate()
        disk.write(page, b"x")
    return clock, disks


def touch(disk, times=4):
    def job():
        for _ in range(times):
            disk.read(0)
        return disk.latency.reads

    return job


def test_scheduler_overlaps_distinct_devices():
    clock, disks = scheduler_world(3)
    serial_start = clock.elapsed
    for disk in disks:
        disk.read(0)
    serial_cost = clock.elapsed - serial_start

    overlapped = IOScheduler(clock)
    start = clock.elapsed
    results = overlapped.run([touch(disk, 1) for disk in disks])
    overlapped_cost = clock.elapsed - start
    assert len(results) == 3
    # Each job re-reads its device's page 0 (sequential): the overlapped
    # round costs one transfer, the serial round three.
    assert overlapped_cost * 3 == pytest.approx(serial_cost)


def test_scheduler_threads_and_sequential_agree_in_virtual_time():
    ends = {}
    for use_threads in (False, True):
        clock, disks = scheduler_world(4)
        scheduler = IOScheduler(clock, use_threads=use_threads)
        scheduler.run([touch(disk) for disk in disks])
        ends[use_threads] = clock.elapsed
    assert ends[False] == ends[True]


def test_scheduler_runs_every_job_and_raises_the_first_failure():
    clock, disks = scheduler_world(3)
    seen = []

    def ok(tag):
        def job():
            seen.append(tag)
            disks[tag].read(0)

        return job

    def boom():
        raise RuntimeError("first")

    def boom2():
        raise ValueError("second")

    with pytest.raises(RuntimeError, match="first"):
        IOScheduler(clock).run([ok(0), boom, ok(2), boom2])
    assert seen == [0, 2]  # later jobs still ran (and charged time)
    assert clock.elapsed > 0


def test_scheduler_without_clock_degrades_to_plain_execution():
    scheduler = IOScheduler()
    assert not scheduler.overlapped
    assert scheduler.run([]) == []
    results, ends = scheduler.run_timed([lambda: 1, lambda: 2])
    assert results == [1, 2]
    assert ends == [0.0, 0.0]


def test_bounded_thread_pool_matches_unbounded_and_sequential():
    """``max_workers`` smaller than the job count only queues real
    threads; the virtual schedule — per-job ends, results, and the
    joined horizon — is identical to an unbounded pool and to a plain
    sequential loop."""
    outcomes = {}
    for label, kwargs in (
        ("sequential", dict(use_threads=False)),
        ("unbounded", dict(use_threads=True)),
        ("bounded", dict(use_threads=True, max_workers=2)),
        ("single", dict(use_threads=True, max_workers=1)),
    ):
        clock, disks = scheduler_world(6)
        scheduler = IOScheduler(clock, **kwargs)
        results, ends = scheduler.run_timed([touch(disk) for disk in disks])
        outcomes[label] = (results, ends, clock.elapsed)
    for label in ("unbounded", "bounded", "single"):
        assert outcomes[label] == outcomes["sequential"], label


def test_bounded_pool_keeps_deterministic_failure_order():
    clock, disks = scheduler_world(4)

    def boom(tag, exc_type):
        def job():
            disks[tag].read(0)
            raise exc_type(f"job {tag}")

        return job

    # Two failures; with max_workers=1 the pool serializes the jobs,
    # and the first failure in *job order* must still be the one raised.
    with pytest.raises(RuntimeError, match="job 1"):
        IOScheduler(clock, use_threads=True, max_workers=1).run(
            [touch(disks[0], 1), boom(1, RuntimeError), boom(2, ValueError)]
        )


# ----------------------------------------------------------------------
# Stats plumbing
# ----------------------------------------------------------------------


def test_latency_view_aggregates_and_resets():
    first, second = LatencyStats(), LatencyStats()
    first.record("read", 10.0, False)
    second.record("write", 5.0, True)
    view = LatencyView([first, second])
    assert view.reads == 1 and view.writes == 1
    assert view.busy_us == 15.0
    assert view.seeks == 1 and view.sequential_hits == 1
    assert view.sequential_ratio == 0.5
    view.reset()
    assert view.busy_us == 0.0 and first.reads == 0 and second.writes == 0
    with pytest.raises(ValueError):
        LatencyView([])


def test_stats_view_carries_the_latency_aggregate():
    disk, clock, _ = make_timed()
    page = disk.allocate()
    disk.write(page, b"x")
    view = StatsView([disk.stats], latency=LatencyView([disk.latency]))
    assert view.latency.busy_us == clock.elapsed
    assert view.snapshot()["latency"]["writes"] == 1
    view.reset()
    assert view.physical_writes == 0 and view.latency.busy_us == 0.0
    # Untimed deployments carry no latency surface.
    assert StatsView([SimulatedDisk().stats]).latency is None
