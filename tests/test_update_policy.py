"""Tests for the deviation/deadline update trigger."""

import pytest

from repro.motion.objects import MovingObject
from repro.motion.update_policy import UpdatePolicy


def served(**overrides):
    fields = dict(uid=1, x=0.0, y=0.0, vx=1.0, vy=0.0, t_update=0.0)
    fields.update(overrides)
    return MovingObject(**fields)


def test_no_update_when_prediction_holds():
    policy = UpdatePolicy(deviation_threshold=5.0, max_update_interval=120.0)
    # True position exactly on the predicted track.
    assert not policy.must_update(served(), true_x=10.0, true_y=0.0, now=10.0)


def test_update_on_deviation():
    policy = UpdatePolicy(deviation_threshold=5.0, max_update_interval=120.0)
    # Predicted (10, 0); true position 7 units off.
    assert policy.must_update(served(), true_x=10.0, true_y=7.0, now=10.0)


def test_small_deviation_tolerated():
    policy = UpdatePolicy(deviation_threshold=5.0, max_update_interval=120.0)
    assert not policy.must_update(served(), true_x=10.0, true_y=4.9, now=10.0)


def test_deadline_forces_update_even_without_deviation():
    policy = UpdatePolicy(deviation_threshold=5.0, max_update_interval=120.0)
    assert policy.must_update(served(), true_x=120.0, true_y=0.0, now=120.0)


def test_zero_threshold_updates_on_any_drift():
    policy = UpdatePolicy(deviation_threshold=0.0, max_update_interval=120.0)
    assert policy.must_update(served(), true_x=10.0, true_y=1e-9, now=10.0)


def test_invalid_parameters():
    with pytest.raises(ValueError):
        UpdatePolicy(deviation_threshold=-1.0)
    with pytest.raises(ValueError):
        UpdatePolicy(max_update_interval=0.0)
