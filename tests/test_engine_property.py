"""Property tests: the engine is observationally identical to the seed.

The unified engine replaced five hand-rolled copies of the Section 5.3
pipeline.  These tests pin the refactor: over randomized populations,
policies, and seeds, the engine-based ``prq`` / ``pcount`` /
``pdensity_grid`` return *identical results and identical
``candidates_examined``* to the seed implementations (reproduced below,
verbatim from the pre-engine code), ``pknn`` matches the brute-force
oracle, and a batch of N queries matches N individual runs exactly.
"""

import random

import pytest

from repro.bench.oracle import brute_force_pknn
from repro.core.aggregate import pcount, pdensity_grid
from repro.core.continuous import ContinuousPRQ
from repro.core.pknn import pknn
from repro.core.prq import prq
from repro.engine import QueryEngine

from repro.bxtree.queries import enlargement_for_label

from tests.conftest import build_world

SEEDS = (3, 23, 59)


@pytest.fixture(scope="module", params=SEEDS)
def world(request):
    return build_world(n_users=220, n_policies=8, seed=request.param)


# ----------------------------------------------------------------------
# Reference implementations (the seed pipelines, kept verbatim)
# ----------------------------------------------------------------------


def reference_prq(tree, q_uid, window, t_query):
    """The pre-engine PRQ loop; returns (uids, candidates_examined)."""
    friends = tree.store.friend_list(q_uid)
    users, candidates = set(), 0
    if not friends:
        return users, candidates
    located = set()
    for label in tree.partitioner.live_labels(t_query):
        tid = tree.partitioner.partition_of_label(label)
        enlarged = window.expanded(
            enlargement_for_label(label, t_query, tree.max_speed_x),
            enlargement_for_label(label, t_query, tree.max_speed_y),
        )
        span = tree.grid.z_span(enlarged)
        if span is None:
            continue
        z_lo, z_hi = span
        for sv, friend_uid in friends:
            if friend_uid in located:
                continue
            for obj in tree.scan_sv_zrange(tid, sv, z_lo, z_hi):
                if obj.uid in located:
                    continue
                located.add(obj.uid)
                candidates += 1
                x, y = obj.position_at(t_query)
                if window.contains(x, y) and tree.store.evaluate(
                    obj.uid, q_uid, x, y, t_query
                ):
                    users.add(obj.uid)
    return users, candidates


def reference_pcount(tree, q_uid, window, t_query, at_least=None):
    """The pre-engine pcount loop; (count, candidates, terminated_early)."""
    friends = tree.store.friend_list(q_uid)
    count, candidates = 0, 0
    if not friends:
        return count, candidates, False
    located = set()
    for label in tree.partitioner.live_labels(t_query):
        tid = tree.partitioner.partition_of_label(label)
        enlarged = window.expanded(
            enlargement_for_label(label, t_query, tree.max_speed_x),
            enlargement_for_label(label, t_query, tree.max_speed_y),
        )
        span = tree.grid.z_span(enlarged)
        if span is None:
            continue
        z_lo, z_hi = span
        for sv, friend_uid in friends:
            if friend_uid in located:
                continue
            for obj in tree.scan_sv_zrange(tid, sv, z_lo, z_hi):
                if obj.uid in located:
                    continue
                located.add(obj.uid)
                candidates += 1
                x, y = obj.position_at(t_query)
                if window.contains(x, y) and tree.store.evaluate(
                    obj.uid, q_uid, x, y, t_query
                ):
                    count += 1
                    if at_least is not None and count >= at_least:
                        return count, candidates, True
    return count, candidates, False


def reference_seed_states(tree, q_uid):
    """The pre-engine ContinuousPRQ._seed sweep."""
    friends = tree.store.friend_list(q_uid)
    tracked = {}
    for tid in range(tree.partitioner.num_partitions):
        for sv, friend_uid in friends:
            if friend_uid in tracked:
                continue
            for obj in tree.scan_sv_zrange(tid, sv, 0, tree.grid.max_z):
                if obj.uid not in tracked and tree.store.policies_for(
                    obj.uid, q_uid
                ):
                    tracked[obj.uid] = obj
    return tracked


# ----------------------------------------------------------------------
# Engine == seed, per query type
# ----------------------------------------------------------------------


def test_prq_identical_to_seed_implementation(world):
    for query in world.query_generator().range_queries(world.uids, 20, 280.0, 5.0):
        expected_uids, expected_candidates = reference_prq(
            world.peb, query.q_uid, query.window, query.t_query
        )
        result = prq(world.peb, query.q_uid, query.window, query.t_query)
        assert result.uids == expected_uids
        assert result.candidates_examined == expected_candidates


def test_pcount_identical_to_seed_implementation(world):
    rng = random.Random(101)
    for query in world.query_generator().range_queries(world.uids, 12, 350.0, 5.0):
        at_least = rng.choice((None, 1, 2, 5))
        count, candidates, early = reference_pcount(
            world.peb, query.q_uid, query.window, query.t_query, at_least
        )
        result = pcount(
            world.peb, query.q_uid, query.window, query.t_query, at_least
        )
        assert result.count == count
        assert result.candidates_examined == candidates
        assert result.terminated_early == early


def test_pdensity_consistent_with_prq(world):
    for query in world.query_generator().range_queries(world.uids, 8, 400.0, 5.0):
        range_result = prq(world.peb, query.q_uid, query.window, query.t_query)
        density = pdensity_grid(
            world.peb, query.q_uid, query.window, query.t_query, rows=3, columns=3
        )
        assert density.total == len(range_result.users)
        assert sum(density.cells.values()) == density.total
        assert density.candidates_examined == range_result.candidates_examined


def test_pknn_matches_brute_force(world):
    for query in world.query_generator().knn_queries(world.states, 12, 3, 5.0):
        expected = brute_force_pknn(
            world.states,
            world.store,
            query.q_uid,
            query.qx,
            query.qy,
            query.k,
            query.t_query,
        )
        result = pknn(
            world.peb, query.q_uid, query.qx, query.qy, query.k, query.t_query
        )
        assert [round(d, 9) for d, _ in result.neighbors] == [
            round(d, 9) for d, _ in expected
        ]


def test_continuous_seed_identical_to_seed_implementation(world):
    for issuer in world.uids[:8]:
        expected = reference_seed_states(world.peb, issuer)
        monitor = ContinuousPRQ(
            world.peb,
            issuer,
            window=world.grid.bounds,
            t_start=0.0,
        )
        assert set(monitor._tracked) == set(expected)
        for uid, obj in monitor._tracked.items():
            assert obj.uid == expected[uid].uid
            assert (obj.x, obj.y) == (expected[uid].x, expected[uid].y)


# ----------------------------------------------------------------------
# Batch == N individual runs
# ----------------------------------------------------------------------


def test_batch_identical_to_individual_runs(world):
    generator = world.query_generator()
    for batch_size in (1, 7, 33):
        specs = generator.range_queries(world.uids, batch_size, 260.0, 5.0)
        report = QueryEngine(world.peb).execute_batch(specs)
        assert len(report.results) == batch_size
        for spec, batched in zip(specs, report.results):
            single = prq(world.peb, spec.q_uid, spec.window, spec.t_query)
            assert batched.uids == single.uids
            assert batched.candidates_examined == single.candidates_examined
