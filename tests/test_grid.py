"""Tests for the continuous-space <-> cell-grid mapping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial import Grid, Rect
from repro.spatial.zcurve import z_decode, z_encode


def test_cell_size():
    grid = Grid(1000.0, 10)
    assert grid.cells_per_axis == 1024
    assert grid.cell_size == pytest.approx(1000.0 / 1024)
    assert grid.zv_bits == 20
    assert grid.max_z == (1 << 20) - 1


def test_cell_of_clamps():
    grid = Grid(1000.0, 4)
    assert grid.cell_of(-10) == 0
    assert grid.cell_of(0) == 0
    assert grid.cell_of(999.99) == 15
    assert grid.cell_of(5000) == 15


def test_z_value_of_known_cell():
    grid = Grid(8.0, 3)  # cell size 1
    assert grid.z_value(2.5, 3.5) == z_encode(2, 3)


def test_cell_box():
    grid = Grid(8.0, 3)
    assert grid.cell_box(Rect(1.2, 3.8, 0.0, 2.0)) == (1, 3, 0, 2)


def test_decompose_covers_exactly_intersecting_cells():
    grid = Grid(8.0, 3)
    intervals = grid.decompose(Rect(1.2, 3.8, 0.0, 2.0))
    cells = set()
    for lo, hi in intervals:
        for z in range(lo, hi + 1):
            cells.add(z_decode(z))
    assert cells == {(x, y) for x in range(1, 4) for y in range(0, 3)}


def test_decompose_clips_overhanging_windows():
    grid = Grid(8.0, 3)
    assert grid.decompose(Rect(-100, 100, -100, 100)) == [(0, 63)]


def test_decompose_outside_space_is_empty():
    grid = Grid(8.0, 3)
    assert grid.decompose(Rect(10, 20, 0, 5)) == []


def test_z_span_is_corner_codes():
    grid = Grid(8.0, 3)
    span = grid.z_span(Rect(1.0, 3.0, 2.0, 5.0))
    assert span == (z_encode(1, 2), z_encode(3, 5))


def test_z_span_outside_space_is_none():
    grid = Grid(8.0, 3)
    assert grid.z_span(Rect(9, 10, 0, 1)) is None


def test_invalid_parameters():
    with pytest.raises(ValueError):
        Grid(0, 4)
    with pytest.raises(ValueError):
        Grid(10, 0)
    with pytest.raises(ValueError):
        Grid(10, 40)


@settings(max_examples=120, deadline=None)
@given(
    x0=st.floats(min_value=0, max_value=7.9),
    y0=st.floats(min_value=0, max_value=7.9),
    w=st.floats(min_value=0, max_value=8),
    h=st.floats(min_value=0, max_value=8),
)
def test_z_span_contains_every_decomposed_interval(x0, y0, w, h):
    """The single-span window is always a superset of the exact cover."""
    grid = Grid(8.0, 3)
    window = Rect(x0, x0 + w, y0, y0 + h)
    span = grid.z_span(window)
    intervals = grid.decompose(window)
    assert span is not None
    for lo, hi in intervals:
        assert span[0] <= lo and hi <= span[1]


@settings(max_examples=120, deadline=None)
@given(
    x=st.floats(min_value=0, max_value=999.999),
    y=st.floats(min_value=0, max_value=999.999),
)
def test_point_z_value_inside_own_window_span(x, y):
    grid = Grid(1000.0, 8)
    z = grid.z_value(x, y)
    span = grid.z_span(Rect(x, x, y, y))
    assert span == (z, z)
