"""Property tests pinning the packed columnar leaf path.

Two layers, both against the simplest possible model:

* B+-tree layer: randomized insert / delete / ``apply_sorted_batch`` /
  buffer-flush sequences against a plain dict.  After every sequence
  the packed scans (``scan_composite``, ``scan_chunks``,
  ``leaf_runs``) must reproduce the sorted model exactly, survive a
  full ``pool.clear()`` (every page re-parsed from its serialized
  image), and incur *identical* physical reads on the cold re-scan —
  page traffic is part of the contract, not an implementation detail.
* Engine layer: the packed :class:`repro.engine.QueryEngine` against
  the object-at-a-time reference on the same world — per-query
  results, ``candidates_examined``, and physical reads all pinned
  equal over randomized mixed range/kNN batches.
"""

from __future__ import annotations

from functools import lru_cache

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import QueryEngine
from repro.spatial.geometry import Rect
from repro.workloads.queries import KnnQuerySpec, RangeQuerySpec

from tests.conftest import build_world, make_tree

VALUE_BYTES = 16

# A deliberately small key space: collisions force duplicate-identity
# handling, deletes of real entries, and dense leaves that split.
KEYS = st.integers(min_value=0, max_value=400)
UIDS = st.integers(min_value=0, max_value=15)


def value_for(key: int, uid: int, salt: int = 0) -> bytes:
    return (key * 1_000_003 + uid * 97 + salt).to_bytes(VALUE_BYTES, "big")


# One op is ("insert"|"delete"|"flush"|"batch", payload).  Batch
# payloads are raw (key, uid) draws turned into a valid sorted op list
# against the live model at application time.
OPS = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.tuples(KEYS, UIDS)),
        st.tuples(st.just("delete"), st.tuples(KEYS, UIDS)),
        st.tuples(st.just("flush"), st.none()),
        st.tuples(
            st.just("batch"),
            st.lists(st.tuples(KEYS, UIDS), min_size=1, max_size=30),
        ),
    ),
    min_size=1,
    max_size=70,
)

WINDOWS = st.tuples(KEYS, KEYS, UIDS, UIDS)


def apply_ops(tree, model: dict, ops) -> None:
    salt = 0
    for kind, payload in ops:
        salt += 1
        if kind == "insert":
            key, uid = payload
            if (key, uid) not in model:
                value = value_for(key, uid, salt)
                tree.insert(key, uid, value)
                model[(key, uid)] = value
        elif kind == "delete":
            key, uid = payload
            assert tree.delete(key, uid) == ((key, uid) in model)
            model.pop((key, uid), None)
        elif kind == "flush":
            tree.pool.clear()
        else:  # batch: dedupe, sort, pick a valid kind per identity
            batch = []
            for key, uid in sorted(set(payload)):
                if (key, uid) in model:
                    op_kind = "replace" if (key + uid) % 2 else "delete"
                else:
                    op_kind = "insert"
                value = value_for(key, uid, salt)
                batch.append((op_kind, key, uid, value))
                if op_kind == "delete":
                    del model[(key, uid)]
                else:
                    model[(key, uid)] = value
            tree.apply_sorted_batch(batch)
        tree.check_invariants()


def model_slice(model: dict, lo, hi):
    return [
        (key, uid, value)
        for (key, uid), value in sorted(model.items())
        if lo <= (key, uid) <= hi
    ]


@settings(max_examples=40, deadline=None)
@given(ops=OPS, window=WINDOWS)
def test_packed_scans_match_dict_model(ops, window):
    tree = make_tree(page_size=512, buffer_pages=8)
    model: dict = {}
    apply_ops(tree, model, ops)
    expected = sorted((k, u, v) for (k, u), v in model.items())

    key_a, key_b, uid_a, uid_b = window
    lo = min((key_a, uid_a), (key_b, uid_b))
    hi = max((key_a, uid_a), (key_b, uid_b))

    # Packed scans against the model, warm buffer.
    assert list(tree.items()) == expected
    assert list(tree.scan_composite(lo, hi)) == model_slice(model, lo, hi)
    vb = tree.config.value_bytes
    for keys, payload in tree.scan_chunks(lo, hi):
        assert len(payload) == len(keys) * vb
        for i, (key, uid) in enumerate(keys):
            assert payload[i * vb : (i + 1) * vb] == model[(key, uid)]
    runs = [
        (key, uid, payload[i * vb : (i + 1) * vb])
        for keys, payload in tree.leaf_runs()
        for i, (key, uid) in enumerate(keys)
    ]
    assert runs == expected

    # Serialization round trip: drop every in-memory page, re-parse
    # from the packed images, and re-scan cold — same entries, and the
    # cold scan's physical page traffic is repeatable exactly.
    tree.pool.clear()
    base = tree.pool.stats.physical_reads
    first = list(tree.scan_composite(lo, hi))
    first_reads = tree.pool.stats.physical_reads - base

    tree.pool.clear()
    base = tree.pool.stats.physical_reads
    second = list(tree.scan_composite(lo, hi))
    second_reads = tree.pool.stats.physical_reads - base

    assert first == model_slice(model, lo, hi)
    assert second == first
    assert second_reads == first_reads
    tree.check_invariants()


@lru_cache(maxsize=None)
def _world(seed: int):
    return build_world(n_users=220, n_policies=8, seed=seed)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.sampled_from((5, 31)),
    picks=st.lists(st.integers(min_value=0, max_value=219), min_size=1, max_size=6),
    half=st.floats(min_value=10.0, max_value=450.0),
    center=st.tuples(
        st.floats(min_value=0.0, max_value=1000.0),
        st.floats(min_value=0.0, max_value=1000.0),
    ),
    k=st.integers(min_value=1, max_value=4),
    t_query=st.sampled_from((0.0, 7.5, 30.0)),
)
def test_packed_engine_pins_reference(seed, picks, half, center, k, t_query):
    world = _world(seed)
    uids = sorted(world.uids)
    cx, cy = center
    specs = []
    for i, pick in enumerate(picks):
        q_uid = uids[pick % len(uids)]
        if i % 2 == 0:
            specs.append(
                RangeQuerySpec(q_uid, Rect.from_center(cx, cy, half), t_query)
            )
        else:
            state = world.states[q_uid]
            specs.append(KnnQuerySpec(q_uid, state.x, state.y, k, t_query))

    pool = world.peb.btree.pool

    pool.clear()
    base = pool.stats.physical_reads
    packed = QueryEngine(world.peb, packed_scan=True).execute_batch(specs)
    packed_reads = pool.stats.physical_reads - base

    pool.clear()
    base = pool.stats.physical_reads
    legacy = QueryEngine(world.peb, packed_scan=False).execute_batch(specs)
    legacy_reads = pool.stats.physical_reads - base

    assert packed_reads == legacy_reads
    for spec, got, expected in zip(specs, packed.results, legacy.results):
        assert got.candidates_examined == expected.candidates_examined, spec
        if isinstance(spec, RangeQuerySpec):
            assert got.uids == expected.uids, spec
        else:
            assert [(round(d, 9), obj.uid) for d, obj in got.neighbors] == [
                (round(d, 9), obj.uid) for d, obj in expected.neighbors
            ], spec
