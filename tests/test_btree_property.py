"""Property-based B+-tree testing against a dictionary model.

A random operation sequence is applied both to the tree and to a plain
dict; after every batch the tree must agree with the model on content,
order, point lookups, and range scans, and must satisfy its structural
invariants.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import make_tree

operation = st.tuples(
    st.sampled_from(["insert", "delete", "flush"]),
    st.integers(min_value=0, max_value=120),
    st.integers(min_value=0, max_value=6),
)


@settings(max_examples=40, deadline=None)
@given(ops=st.lists(operation, min_size=1, max_size=400))
def test_tree_matches_dict_model(ops):
    tree = make_tree(page_size=512, buffer_pages=12)
    model: dict[tuple[int, int], bytes] = {}
    for action, key, uid in ops:
        if action == "insert":
            if (key, uid) not in model:
                value = bytes([key % 256, uid % 256]) * 8
                tree.insert(key, uid, value)
                model[(key, uid)] = value
        elif action == "delete":
            existed = (key, uid) in model
            assert tree.delete(key, uid) is existed
            model.pop((key, uid), None)
        else:
            tree.pool.clear()  # cold restart mid-sequence
    tree.check_invariants()
    assert [(k, u) for k, u, _ in tree.items()] == sorted(model)
    for (key, uid), value in model.items():
        assert tree.search(key, uid) == value


@settings(max_examples=25, deadline=None)
@given(
    keys=st.sets(st.integers(min_value=0, max_value=500), min_size=1, max_size=200),
    lo=st.integers(min_value=0, max_value=500),
    span=st.integers(min_value=0, max_value=200),
)
def test_range_scan_matches_model(keys, lo, span):
    tree = make_tree(page_size=512, buffer_pages=12)
    for key in keys:
        tree.insert(key, 0, b"v" * 16)
    hi = lo + span
    got = [k for k, _, _ in tree.scan_range(lo, hi)]
    assert got == sorted(k for k in keys if lo <= k <= hi)


@settings(max_examples=25, deadline=None)
@given(count=st.integers(min_value=0, max_value=300))
def test_entry_and_leaf_counters_track_traversal(count):
    tree = make_tree(page_size=512, buffer_pages=12)
    for key in range(count):
        tree.insert(key, 0, b"v" * 16)
    assert len(tree) == count
    tree.check_invariants()  # asserts counters against a real traversal
