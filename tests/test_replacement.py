"""Tests for buffer replacement policies (LRU / FIFO / CLOCK / LFU)."""

import pytest

from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.storage.page import RawBytesSerializer
from repro.storage.replacement import (
    POLICIES,
    ClockPolicy,
    FIFOPolicy,
    LFUPolicy,
    LRUPolicy,
    make_policy,
)


def test_registry_and_lookup():
    assert set(POLICIES) == {"lru", "fifo", "clock", "lfu"}
    assert isinstance(make_policy("clock"), ClockPolicy)
    with pytest.raises(ValueError, match="unknown replacement policy"):
        make_policy("arc")


@pytest.mark.parametrize("name", sorted(POLICIES))
def test_victim_on_empty_policy_raises(name):
    with pytest.raises(LookupError):
        make_policy(name).victim()


# ----------------------------------------------------------------------
# Victim selection on hand-crafted traces
# ----------------------------------------------------------------------


def test_lru_evicts_least_recently_used():
    policy = LRUPolicy()
    for page in (1, 2, 3):
        policy.on_admit(page)
    policy.on_access(1)  # 2 is now coldest
    assert policy.victim() == 2


def test_fifo_ignores_accesses():
    policy = FIFOPolicy()
    for page in (1, 2, 3):
        policy.on_admit(page)
    policy.on_access(1)
    policy.on_access(1)
    assert policy.victim() == 1  # oldest admission regardless of touches


def test_clock_gives_second_chance():
    policy = ClockPolicy()
    for page in (1, 2, 3):
        policy.on_admit(page)  # all referenced
    # First sweep clears 1, 2, 3; the hand returns to 1, now unreferenced.
    assert policy.victim() == 1
    # Touching 1 re-references it, so the next victim is 2.
    policy.on_access(1)
    assert policy.victim() == 2


def test_clock_respects_reference_bit():
    policy = ClockPolicy()
    policy.on_admit(1)
    policy.on_admit(2)
    assert policy.victim() == 1  # full sweep, then 1 unreferenced
    policy.on_access(1)  # re-reference 1; 2 still clear from the sweep
    assert policy.victim() == 2


def test_lfu_evicts_least_frequent():
    policy = LFUPolicy()
    for page in (1, 2, 3):
        policy.on_admit(page)
    policy.on_access(1)
    policy.on_access(1)
    policy.on_access(3)
    assert policy.victim() == 2  # count 1 vs 3 and 2


def test_lfu_breaks_ties_fifo():
    policy = LFUPolicy()
    policy.on_admit(5)
    policy.on_admit(6)
    assert policy.victim() == 5  # equal counts -> earliest arrival


def test_on_remove_forgets_page():
    for name in POLICIES:
        policy = make_policy(name)
        policy.on_admit(1)
        policy.on_admit(2)
        policy.on_remove(1)
        assert policy.victim() == 2


# ----------------------------------------------------------------------
# Policies inside the pool
# ----------------------------------------------------------------------


def make_pool(policy, capacity=3):
    disk = SimulatedDisk(page_size=64)
    pool = BufferPool(
        disk, capacity=capacity, serializer=RawBytesSerializer(), policy=policy
    )
    return disk, pool


@pytest.mark.parametrize("name", sorted(POLICIES))
def test_pool_serves_correct_data_under_any_policy(name):
    """Whatever gets evicted, reads must return the latest contents."""
    disk, pool = make_pool(name, capacity=2)
    pages = [disk.allocate() for _ in range(6)]
    for index, page in enumerate(pages):
        pool.put(page, bytes([index]) * 4)
    for index, page in enumerate(pages):
        assert pool.get(page) == bytes([index]) * 4


@pytest.mark.parametrize("name", sorted(POLICIES))
def test_pool_capacity_respected(name):
    disk, pool = make_pool(name, capacity=3)
    for _ in range(10):
        pool.put(disk.allocate(), b"x")
    assert len(pool) <= 3


def test_pool_accepts_policy_instance():
    disk = SimulatedDisk(page_size=64)
    policy = FIFOPolicy()
    pool = BufferPool(disk, capacity=2, serializer=RawBytesSerializer(), policy=policy)
    assert pool.policy is policy


def test_lru_vs_fifo_differ_on_loop_with_touch():
    """A trace where the two policies evict different pages.

    Admit a, b; touch a; admit c (evicts: LRU -> b, FIFO -> a).
    """
    results = {}
    for name in ("lru", "fifo"):
        disk, pool = make_pool(name, capacity=2)
        a, b, c = (disk.allocate() for _ in range(3))
        pool.put(a, b"a")
        pool.put(b, b"b")
        pool.get(a)
        pool.put(c, b"c")
        results[name] = set(pool.resident_pages)
    assert results["lru"] == {0, 2}  # b evicted
    assert results["fifo"] == {1, 2}  # a evicted


@pytest.mark.parametrize("name", sorted(POLICIES))
def test_eviction_writes_back_dirty_pages(name):
    disk, pool = make_pool(name, capacity=1)
    first = disk.allocate()
    second = disk.allocate()
    pool.put(first, b"dirty")
    pool.put(second, b"other")  # evicts first, which must be written back
    assert disk.read(first) == b"dirty"


@pytest.mark.parametrize("name", sorted(POLICIES))
def test_hit_miss_accounting_per_policy(name):
    disk, pool = make_pool(name, capacity=2)
    pages = [disk.allocate() for _ in range(3)]
    for page in pages:
        pool.put(page, b"v")
    pool.flush()
    pool.clear()
    for page in pages:
        pool.get(page)
    assert disk.stats.physical_reads == 3  # cold cache: all misses