"""Tests for the continuous privacy-aware range query monitor.

Central invariant: between two consecutive events reported by
``events_between`` the result set is constant, and at every sampled time
``result_at`` equals the brute-force Definition-2 evaluation over the
tracked population.
"""

import random

import pytest

from repro.bench.oracle import brute_force_prq
from repro.core.continuous import (
    ContinuousPRQ,
    MembershipEvent,
    _axis_crossing,
    _merge,
    _rect_crossing,
    _unrolled_tint,
)
from repro.core.peb_tree import PEBTree
from repro.core.sequencing import assign_sequence_values
from repro.motion.objects import MovingObject
from repro.motion.partitions import TimePartitioner
from repro.policy.lpp import LocationPrivacyPolicy
from repro.policy.store import PolicyStore
from repro.policy.timeset import TimeInterval, TimeSet
from repro.spatial.geometry import Rect
from repro.spatial.grid import Grid
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.workloads.policies import PolicyGenerator
from repro.workloads.uniform import UniformMovement

T = 1440.0
EVERYWHERE = Rect(0, 1000, 0, 1000)
ALWAYS = TimeInterval(0, 1440)


def mover(uid, x, y, vx=0.0, vy=0.0, t=0.0):
    return MovingObject(uid=uid, x=x, y=y, vx=vx, vy=vy, t_update=t)


def policy(owner, locr=EVERYWHERE, tint=ALWAYS):
    return LocationPrivacyPolicy(owner=owner, role="friend", locr=locr, tint=tint)


def build_tree(states, store, page_size=1024):
    grid = Grid(1000.0, 10)
    pool = BufferPool(SimulatedDisk(page_size=page_size), capacity=512)
    tree = PEBTree(pool, grid, TimePartitioner(120.0, 2), store)
    for obj in states.values():
        tree.insert(obj)
    return tree


# ----------------------------------------------------------------------
# Interval arithmetic helpers
# ----------------------------------------------------------------------


def test_axis_crossing_static_inside():
    assert _axis_crossing(5.0, 0.0, 0.0, 10.0) == (-float("inf"), float("inf"))


def test_axis_crossing_static_outside():
    assert _axis_crossing(15.0, 0.0, 0.0, 10.0) is None


def test_axis_crossing_moving_right():
    # x(t) = 0 + 2t enters [4, 10] at t=2, exits at t=5.
    assert _axis_crossing(0.0, 2.0, 4.0, 10.0) == (2.0, 5.0)


def test_axis_crossing_moving_left():
    # x(t) = 20 - 2t: enters [4, 10] at t=5, exits at t=8.
    assert _axis_crossing(20.0, -2.0, 4.0, 10.0) == (5.0, 8.0)


def test_rect_crossing_combines_axes():
    obj = mover(1, 0.0, 0.0, vx=1.0, vy=2.0)
    rect = Rect(5, 20, 8, 30)
    # x in [5,20] for t in [5,20]; y in [8,30] for t in [4,15] -> [5,15].
    assert _rect_crossing(obj, rect, 0.0, 100.0) == (5.0, 15.0)


def test_rect_crossing_clamps_to_horizon():
    obj = mover(1, 0.0, 0.0, vx=1.0, vy=1.0)
    rect = Rect(0, 100, 0, 100)
    assert _rect_crossing(obj, rect, 10.0, 50.0) == (10.0, 50.0)


def test_rect_crossing_disjoint_none():
    obj = mover(1, 0.0, 0.0, vx=-1.0, vy=0.0)
    assert _rect_crossing(obj, Rect(5, 10, 0, 10), 0.0, 100.0) is None


def test_rect_crossing_respects_update_time():
    obj = mover(1, 0.0, 0.0, vx=1.0, vy=0.0, t=100.0)
    rect = Rect(10, 20, -5, 5)
    assert _rect_crossing(obj, rect, 0.0, 1000.0) == (110.0, 120.0)


def test_unrolled_tint_spans_cycles():
    p = policy(1, tint=TimeInterval(60, 120))
    pieces = _unrolled_tint(p, T, 0.0, 2 * T)
    assert pieces == [(60.0, 120.0), (T + 60.0, T + 120.0)]


def test_unrolled_tint_clips_to_window():
    p = policy(1, tint=TimeInterval(60, 120))
    assert _unrolled_tint(p, T, 90.0, 100.0) == [(90.0, 100.0)]


def test_unrolled_tint_timeset():
    p = policy(1, tint=TimeSet([TimeInterval(0, 10), TimeInterval(50, 60)]))
    pieces = _unrolled_tint(p, T, 0.0, 100.0)
    assert pieces == [(0.0, 10.0), (50.0, 60.0)]


def test_merge_fuses_overlaps():
    assert _merge([(5.0, 8.0), (0.0, 6.0), (10.0, 11.0)]) == [
        (0.0, 8.0),
        (10.0, 11.0),
    ]


# ----------------------------------------------------------------------
# Monitor on a hand-built scenario
# ----------------------------------------------------------------------


@pytest.fixture
def crossing_world():
    """Issuer 0; friend 1 crosses the window; friend 2 sits inside but has
    a time-limited policy; user 3 crosses but is not a friend."""
    store = PolicyStore(time_domain=T)
    store.add_policy(policy(1), [0])
    store.add_policy(policy(2, tint=TimeInterval(0, 50)), [0])
    states = {
        0: mover(0, 500, 500),
        1: mover(1, 0, 500, vx=2.0),  # reaches x=400 at t=200, x=600 at t=300
        2: mover(2, 450, 450),
        3: mover(3, 0, 450, vx=2.0),
    }
    report = assign_sequence_values(sorted(states), store, 1000.0**2)
    store.set_sequence_values(report.sequence_values)
    tree = build_tree(states, store)
    return states, store, tree


WINDOW = Rect(400, 600, 400, 600)


def test_monitor_tracks_only_friends(crossing_world):
    states, _, tree = crossing_world
    # Cold buffer so the seeding scan's I/O is observable.
    tree.btree.pool.flush()
    tree.btree.pool.clear()
    monitor = ContinuousPRQ(tree, 0, WINDOW, t_start=0.0)
    assert monitor.tracked_count == 2  # users 1 and 2; 3 is not a friend
    assert monitor.seed_io > 0


def test_monitor_initial_result(crossing_world):
    _, _, tree = crossing_world
    monitor = ContinuousPRQ(tree, 0, WINDOW, t_start=0.0)
    # At t=0: friend 1 at x=0 (outside); friend 2 inside and in tint.
    assert monitor.result_at(0.0) == {2}


def test_monitor_result_evolves(crossing_world):
    _, _, tree = crossing_world
    monitor = ContinuousPRQ(tree, 0, WINDOW, t_start=0.0)
    # t=100: friend 2's tint [0,50) expired; friend 1 at x=200, outside.
    assert monitor.result_at(100.0) == set()
    # t=250: friend 1 at x=500, inside window and always-visible.
    assert monitor.result_at(250.0) == {1}
    # t=350: friend 1 at x=700, left the window.
    assert monitor.result_at(350.0) == set()


def test_monitor_events_match_transitions(crossing_world):
    _, _, tree = crossing_world
    monitor = ContinuousPRQ(tree, 0, WINDOW, t_start=0.0)
    events = monitor.events_between(0.0, 400.0)
    # Friend 2 leaves at t=50 (tint end); friend 1 enters at 200, leaves at 300.
    assert events == [
        MembershipEvent(time=50.0, uid=2, enters=False),
        MembershipEvent(time=200.0, uid=1, enters=True),
        MembershipEvent(time=300.0, uid=1, enters=False),
    ]


def test_monitor_refresh_changes_prediction(crossing_world):
    _, _, tree = crossing_world
    monitor = ContinuousPRQ(tree, 0, WINDOW, t_start=0.0)
    # Friend 1 stops dead at (100, 500) at t=100: never enters.
    assert monitor.refresh(mover(1, 100, 500, vx=0.0, t=100.0))
    assert monitor.result_at(250.0) == set()
    assert monitor.events_between(100.0, 400.0) == []


def test_monitor_ignores_non_friend_updates(crossing_world):
    _, _, tree = crossing_world
    monitor = ContinuousPRQ(tree, 0, WINDOW, t_start=0.0)
    assert not monitor.refresh(mover(3, 500, 500))
    assert monitor.result_at(0.0) == {2}


def test_monitor_forget(crossing_world):
    _, _, tree = crossing_world
    monitor = ContinuousPRQ(tree, 0, WINDOW, t_start=0.0)
    assert monitor.forget(2)
    assert not monitor.forget(2)
    assert monitor.result_at(0.0) == set()


def test_monitor_rejects_bad_horizon(crossing_world):
    _, _, tree = crossing_world
    monitor = ContinuousPRQ(tree, 0, WINDOW, t_start=0.0)
    with pytest.raises(ValueError):
        monitor.events_between(10.0, 5.0)


def test_tint_reentry_across_cycles():
    """A static friend with a morning-only policy re-enters every day."""
    store = PolicyStore(time_domain=T)
    store.add_policy(policy(1, tint=TimeInterval(60, 120)), [0])
    states = {0: mover(0, 500, 500), 1: mover(1, 450, 450)}
    report = assign_sequence_values([0, 1], store, 1000.0**2)
    store.set_sequence_values(report.sequence_values)
    tree = build_tree(states, store)
    monitor = ContinuousPRQ(tree, 0, WINDOW, t_start=0.0)
    events = monitor.events_between(0.0, 2 * T)
    times = [(e.time, e.enters) for e in events]
    assert times == [
        (60.0, True),
        (120.0, False),
        (T + 60.0, True),
        (T + 120.0, False),
    ]


# ----------------------------------------------------------------------
# Equivalence against brute force on a random population
# ----------------------------------------------------------------------


def random_world(n_users=120, seed=21):
    movement = UniformMovement(1000.0, 3.0, random.Random(seed))
    states = {obj.uid: obj for obj in movement.initial_objects(n_users, t=0.0)}
    store = PolicyGenerator(1000.0, T, random.Random(seed + 1)).generate(
        sorted(states), 8, 0.7
    )
    report = assign_sequence_values(sorted(states), store, 1000.0**2)
    store.set_sequence_values(report.sequence_values)
    return states, store, build_tree(states, store)


def test_monitor_matches_brute_force_over_time():
    states, store, tree = random_world()
    rng = random.Random(33)
    issuers = rng.sample(sorted(states), 5)
    window = Rect(300, 700, 300, 700)
    for q_uid in issuers:
        monitor = ContinuousPRQ(tree, q_uid, window, t_start=0.0)
        for t in (0.0, 15.0, 40.0, 90.0, 200.0):
            expected = brute_force_prq(states, store, q_uid, window, t)
            assert monitor.result_at(t) == expected, (q_uid, t)


def test_result_constant_between_events():
    states, store, tree = random_world(n_users=80, seed=5)
    q_uid = sorted(states)[0]
    window = Rect(200, 800, 200, 800)
    monitor = ContinuousPRQ(tree, q_uid, window, t_start=0.0)
    horizon = (0.0, 300.0)
    events = monitor.events_between(*horizon)
    boundaries = [horizon[0]] + [e.time for e in events] + [horizon[1]]
    for lo, hi in zip(boundaries, boundaries[1:]):
        if hi - lo < 1e-6:
            continue
        # Sample strictly inside the open segment: membership must agree.
        probes = [lo + (hi - lo) * f for f in (0.25, 0.5, 0.75)]
        reference = monitor.result_at(probes[0])
        for t in probes[1:]:
            assert monitor.result_at(t) == reference, (lo, hi, t)


def test_events_sorted_and_well_formed():
    states, _, tree = random_world(n_users=60, seed=8)
    q_uid = sorted(states)[1]
    monitor = ContinuousPRQ(tree, q_uid, Rect(100, 900, 100, 900), t_start=0.0)
    events = monitor.events_between(0.0, 500.0)
    times = [e.time for e in events]
    assert times == sorted(times)
    # Per uid, enters/leaves must alternate.
    last_kind: dict[int, bool] = {}
    for event in events:
        if event.uid in last_kind:
            assert event.enters != last_kind[event.uid], event
        last_kind[event.uid] = event.enters


# ----------------------------------------------------------------------
# Property: monitor stays exact under a random update stream
# ----------------------------------------------------------------------


from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(st.integers(min_value=0, max_value=2**31))
def test_monitor_exact_under_update_stream(seed):
    """Interleaved updates + probes: the monitor must always agree with a
    brute-force evaluation over the *current* server state."""
    rng = random.Random(seed)
    states, store, tree = random_world(n_users=60, seed=seed % 1000)
    q_uid = rng.choice(sorted(states))
    window = Rect(
        *(sorted((rng.uniform(0, 1000), rng.uniform(0, 1000)))),
        *(sorted((rng.uniform(0, 1000), rng.uniform(0, 1000)))),
    )
    monitor = ContinuousPRQ(tree, q_uid, window, t_start=0.0)

    now = 0.0
    for _ in range(25):
        now += rng.uniform(0.5, 10.0)
        if rng.random() < 0.6:
            uid = rng.choice(sorted(states))
            old = states[uid]
            x, y = old.position_at(now)
            moved = old.moved_to(
                x % 1000, y % 1000, rng.uniform(-3, 3), rng.uniform(-3, 3), now
            )
            states[uid] = moved
            tree.update(moved)
            monitor.refresh(moved)
        else:
            expected = brute_force_prq(states, store, q_uid, window, now)
            assert monitor.result_at(now) == expected, (q_uid, now)

    # Final probe regardless of the action mix.
    expected = brute_force_prq(states, store, q_uid, window, now)
    assert monitor.result_at(now) == expected
