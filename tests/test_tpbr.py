"""Tests for time-parameterized bounding rectangles."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.motion.objects import MovingObject
from repro.spatial.geometry import Rect
from repro.tprtree.tpbr import TPBR, union_all


def mover(uid=1, x=0.0, y=0.0, vx=0.0, vy=0.0, t=0.0):
    return MovingObject(uid=uid, x=x, y=y, vx=vx, vy=vy, t_update=t)


def test_from_object_is_degenerate_point():
    tpbr = TPBR.from_object(mover(x=3.0, y=4.0, vx=1.0, vy=-1.0, t=2.0))
    assert tpbr.x_lo == tpbr.x_hi == 3.0
    assert tpbr.vy_lo == tpbr.vy_hi == -1.0
    assert tpbr.t_ref == 2.0
    assert tpbr.area_at(100.0) == 0.0


def test_rejects_inverted_bounds():
    with pytest.raises(ValueError):
        TPBR(1, 0, 0, 1, 0, 0, 0, 0, 0.0)
    with pytest.raises(ValueError):
        TPBR(0, 1, 0, 1, 1, 0, 0, 0, 0.0)


def test_bounds_grow_with_velocity_spread():
    tpbr = TPBR(0, 10, 0, 10, -1, 1, -2, 2, t_ref=0.0)
    box = tpbr.bounds_at(5.0)
    assert box == Rect(-5, 15, -10, 20)


def test_bounds_widen_backward_in_time():
    """Before t_ref the walls swap velocity roles and keep widening."""
    tpbr = TPBR(0, 10, 0, 10, -1, 1, -2, 2, t_ref=50.0)
    box = tpbr.bounds_at(40.0)  # dt = -10
    assert box == Rect(-10, 20, -20, 30)


def test_backward_bounds_contain_member_trajectories():
    """A member's backward-extrapolated position stays inside."""
    a = mover(uid=1, x=0, y=0, vx=2, vy=1, t=10.0)
    b = mover(uid=2, x=50, y=50, vx=-1, vy=0, t=30.0)
    merged = TPBR.from_object(a).union(TPBR.from_object(b))
    assert merged.t_ref == 30.0
    for t in (0.0, 5.0, 15.0, 25.0):
        box = merged.bounds_at(t)
        for obj in (a, b):
            x, y = obj.position_at(t)
            assert box.x_lo - 1e-9 <= x <= box.x_hi + 1e-9, (t, obj.uid)
            assert box.y_lo - 1e-9 <= y <= box.y_hi + 1e-9, (t, obj.uid)


def test_as_of_preserves_bounds_at_later_times():
    tpbr = TPBR(0, 10, 0, 10, -1, 1, 0, 2, t_ref=0.0)
    advanced = tpbr.as_of(5.0)
    assert advanced.t_ref == 5.0
    for t in (5.0, 8.0, 20.0):
        assert advanced.bounds_at(t) == tpbr.bounds_at(t)


def test_union_covers_both_forever():
    a = TPBR.from_object(mover(uid=1, x=0, y=0, vx=2, vy=0))
    b = TPBR.from_object(mover(uid=2, x=10, y=10, vx=-1, vy=1, t=3.0))
    merged = a.union(b)
    for t in (3.0, 10.0, 50.0):
        box = merged.bounds_at(t)
        for tpbr in (a, b):
            inner = tpbr.bounds_at(t)
            assert box.contains_rect(inner), (t, inner, box)


def test_union_all_requires_input():
    with pytest.raises(ValueError):
        union_all([])


def test_area_integral_static_box():
    tpbr = TPBR(0, 2, 0, 3, 0, 0, 0, 0, t_ref=0.0)
    assert tpbr.area_integral(0.0, 10.0) == pytest.approx(60.0)


def test_area_integral_growing_box():
    # Width 0 + 2t, height 0 + 2t -> area 4t^2, integral 4/3 t^3.
    tpbr = TPBR(0, 0, 0, 0, -1, 1, -1, 1, t_ref=0.0)
    assert tpbr.area_integral(0.0, 3.0) == pytest.approx(4 * 27 / 3)


def test_area_integral_starts_at_t_ref():
    tpbr = TPBR(0, 1, 0, 1, 0, 0, 0, 0, t_ref=5.0)
    assert tpbr.area_integral(0.0, 5.0) == 0.0
    assert tpbr.area_integral(0.0, 7.0) == pytest.approx(2.0)


def test_area_integral_rejects_reversed():
    tpbr = TPBR(0, 1, 0, 1, 0, 0, 0, 0, t_ref=0.0)
    with pytest.raises(ValueError):
        tpbr.area_integral(5.0, 1.0)


@settings(max_examples=80)
@given(
    st.floats(min_value=0, max_value=100),
    st.floats(min_value=0.1, max_value=50),
)
def test_area_integral_matches_riemann_sum(start, span):
    tpbr = TPBR(0, 5, 0, 3, -1, 2, -0.5, 1, t_ref=0.0)
    end = start + span
    steps = 2000
    dt = span / steps
    riemann = sum(
        tpbr.area_at(start + (i + 0.5) * dt) * dt for i in range(steps)
    )
    assert tpbr.area_integral(start, end) == pytest.approx(riemann, rel=1e-3)


def test_contains_object_positive_and_negative():
    a = mover(uid=1, x=0, y=0, vx=1, vy=1)
    b = mover(uid=2, x=5, y=5, vx=-1, vy=0, t=2.0)
    merged = TPBR.from_object(a).union(TPBR.from_object(b))
    assert merged.contains_object(a)
    assert merged.contains_object(b)
    # Too fast for the velocity bounds.
    assert not merged.contains_object(mover(uid=3, x=1, y=1, vx=9, vy=0))
    # Outside the position bounds at its update time.
    assert not merged.contains_object(mover(uid=4, x=500, y=500))


@settings(max_examples=80)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=100),
            st.floats(min_value=0, max_value=100),
            st.floats(min_value=-3, max_value=3),
            st.floats(min_value=-3, max_value=3),
            st.floats(min_value=0, max_value=10),
        ),
        min_size=1,
        max_size=8,
    )
)
def test_union_always_contains_members(raw):
    objects = [
        mover(uid=i, x=x, y=y, vx=vx, vy=vy, t=t)
        for i, (x, y, vx, vy, t) in enumerate(raw)
    ]
    merged = union_all([TPBR.from_object(obj) for obj in objects])
    for obj in objects:
        assert merged.contains_object(obj)
        # And pointwise at sampled times after both references.
        for t in (12.0, 40.0):
            x, y = obj.position_at(t)
            box = merged.bounds_at(t)
            assert box.x_lo - 1e-6 <= x <= box.x_hi + 1e-6
            assert box.y_lo - 1e-6 <= y <= box.y_hi + 1e-6


def test_min_distance_at():
    tpbr = TPBR(0, 10, 0, 10, 0, 0, 0, 0, t_ref=0.0)
    assert tpbr.min_distance_at(5, 5, 0.0) == 0.0
    assert tpbr.min_distance_at(13, 14, 0.0) == pytest.approx(5.0)
