"""Shared fixtures: tiny trees and a small prebuilt world.

The ``small_world`` fixture builds one complete system (movement, policy
store, sequence values, PEB-tree, Bx-tree baseline) per test session;
query-correctness tests reuse it instead of paying the build repeatedly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import pytest

from repro.btree import BPlusTree, BTreeConfig
from repro.bxtree import BxTree, SpatialFilterBaseline
from repro.core.peb_tree import PEBTree
from repro.core.sequencing import assign_sequence_values
from repro.motion import MovingObject, TimePartitioner
from repro.policy.store import PolicyStore
from repro.spatial import Grid
from repro.storage import BufferPool, SimulatedDisk
from repro.workloads import PolicyGenerator, QueryGenerator, UniformMovement


def make_tree(
    page_size: int = 512,
    buffer_pages: int = 32,
    key_bytes: int = 8,
    value_bytes: int = 16,
) -> BPlusTree:
    """A small-page B+-tree (deep trees from few keys)."""
    disk = SimulatedDisk(page_size=page_size)
    pool = BufferPool(disk, capacity=buffer_pages)
    config = BTreeConfig(
        key_bytes=key_bytes, value_bytes=value_bytes, page_size=page_size
    )
    return BPlusTree(pool, config)


@pytest.fixture
def tiny_tree() -> BPlusTree:
    return make_tree()


@dataclass
class World:
    """A complete small system shared by query tests."""

    space_side: float
    grid: Grid
    partitioner: TimePartitioner
    states: dict[int, MovingObject]
    store: PolicyStore
    peb: PEBTree
    bx: BxTree
    baseline: SpatialFilterBaseline
    query_rng: random.Random

    @property
    def uids(self) -> list[int]:
        return sorted(self.states)

    def query_generator(self) -> QueryGenerator:
        return QueryGenerator(self.space_side, self.query_rng)


def build_world(
    n_users: int = 400,
    n_policies: int = 10,
    theta: float = 0.7,
    seed: int = 11,
    page_size: int = 1024,
    max_speed: float = 3.0,
) -> World:
    space_side = 1000.0
    rng = random.Random(seed)
    grid = Grid(space_side, 10)
    partitioner = TimePartitioner(120.0, 2)
    movement = UniformMovement(space_side, max_speed, rng)
    objects = movement.initial_objects(n_users, t=0.0)
    states = {obj.uid: obj for obj in objects}

    generator = PolicyGenerator(space_side, 1440.0, random.Random(seed + 1))
    store = generator.generate(sorted(states), n_policies, theta)
    report = assign_sequence_values(sorted(states), store, space_side**2)
    store.set_sequence_values(report.sequence_values)

    peb_pool = BufferPool(SimulatedDisk(page_size=page_size), capacity=512)
    peb = PEBTree(peb_pool, grid, partitioner, store)
    bx_pool = BufferPool(SimulatedDisk(page_size=page_size), capacity=512)
    bx = BxTree(bx_pool, grid, partitioner)
    for obj in objects:
        peb.insert(obj)
        bx.insert(obj)

    return World(
        space_side=space_side,
        grid=grid,
        partitioner=partitioner,
        states=states,
        store=store,
        peb=peb,
        bx=bx,
        baseline=SpatialFilterBaseline(bx, store),
        query_rng=random.Random(seed + 2),
    )


@pytest.fixture(scope="session")
def small_world() -> World:
    return build_world()
