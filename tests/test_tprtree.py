"""Tests for the TPR-tree: structure, queries, updates, and the
policy-filter baseline built on it."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench.oracle import brute_force_pknn, brute_force_prq
from repro.core.sequencing import assign_sequence_values
from repro.motion.objects import MovingObject
from repro.spatial.geometry import Rect, euclidean
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.tprtree.filter_baseline import TPRFilterBaseline
from repro.tprtree.node import TPRNodeSerializer
from repro.tprtree.tree import TPRTree, TPRTreeConfig
from repro.workloads.policies import PolicyGenerator
from repro.workloads.uniform import UniformMovement


def make_tree(page_size=512, capacity=256):
    disk = SimulatedDisk(page_size=page_size)
    pool = BufferPool(disk, capacity=capacity, serializer=TPRNodeSerializer())
    return TPRTree(pool)


def mover(uid, x, y, vx=0.0, vy=0.0, t=0.0):
    return MovingObject(uid=uid, x=x, y=y, vx=vx, vy=vy, t_update=t)


def uniform_objects(n, seed=4, speed=3.0):
    movement = UniformMovement(1000.0, speed, random.Random(seed))
    return movement.initial_objects(n, t=0.0)


# ----------------------------------------------------------------------
# Config
# ----------------------------------------------------------------------


def test_capacities_from_page_geometry():
    config = TPRTreeConfig(page_size=512)
    assert config.leaf_capacity == (512 - 3) // 48
    assert config.internal_capacity == (512 - 3) // 80
    assert config.min_fill(config.leaf_capacity) >= 1


def test_config_rejects_tiny_page():
    with pytest.raises(ValueError):
        TPRTreeConfig(page_size=50).leaf_capacity


def test_tree_rejects_config_larger_than_disk_page():
    disk = SimulatedDisk(page_size=256)
    pool = BufferPool(disk, capacity=16, serializer=TPRNodeSerializer())
    with pytest.raises(ValueError):
        TPRTree(pool, TPRTreeConfig(page_size=4096))


# ----------------------------------------------------------------------
# Basic maintenance
# ----------------------------------------------------------------------


def test_insert_and_len():
    tree = make_tree()
    for obj in uniform_objects(50):
        tree.insert(obj)
    assert len(tree) == 50
    assert tree.contains(0)
    assert not tree.contains(10_000)


def test_duplicate_insert_rejected():
    tree = make_tree()
    tree.insert(mover(1, 5, 5))
    with pytest.raises(KeyError):
        tree.insert(mover(1, 6, 6))


def test_delete_roundtrip():
    tree = make_tree()
    objects = uniform_objects(120)
    for obj in objects:
        tree.insert(obj)
    for obj in objects[:60]:
        assert tree.delete(obj.uid)
    assert len(tree) == 60
    assert not tree.delete(objects[0].uid)  # already gone
    remaining = {obj.uid for obj in tree.fetch_all()}
    assert remaining == {obj.uid for obj in objects[60:]}


def test_delete_everything_leaves_empty_tree():
    tree = make_tree()
    objects = uniform_objects(80)
    for obj in objects:
        tree.insert(obj)
    for obj in objects:
        assert tree.delete(obj.uid)
    assert len(tree) == 0
    assert tree.fetch_all() == []
    assert tree.range_query(Rect(0, 1000, 0, 1000), 0.0) == []


def test_update_moves_entry():
    tree = make_tree()
    tree.insert(mover(7, 100, 100, vx=1.0))
    tree.update(mover(7, 900, 900, vx=-1.0, t=10.0))
    found = tree.range_query(Rect(890, 910, 890, 910), 10.0)
    assert [obj.uid for obj in found] == [7]
    assert tree.range_query(Rect(90, 120, 90, 120), 10.0) == []


def test_validate_after_bulk_inserts():
    tree = make_tree()
    for obj in uniform_objects(400):
        tree.insert(obj)
    assert tree.height >= 2  # the split machinery actually ran
    tree.validate()


def test_validate_after_mixed_workload():
    tree = make_tree()
    rng = random.Random(9)
    objects = uniform_objects(300)
    for obj in objects:
        tree.insert(obj)
    # Delete a third, update a third.
    for obj in rng.sample(objects, 100):
        tree.delete(obj.uid)
    survivors = [obj for obj in objects if tree.contains(obj.uid)]
    for obj in rng.sample(survivors, 100):
        x, y = obj.position_at(20.0)
        tree.update(obj.moved_to(x % 1000, y % 1000, -obj.vx, obj.vy, 20.0))
    tree.validate()


def test_serializer_roundtrip_through_cold_cache():
    tree = make_tree(capacity=4)  # tiny buffer: nodes go to disk and back
    objects = uniform_objects(200)
    for obj in objects:
        tree.insert(obj)
    tree.pool.flush()
    tree.pool.clear()
    assert {obj.uid for obj in tree.fetch_all()} == {obj.uid for obj in objects}
    tree.validate()


# ----------------------------------------------------------------------
# Queries vs brute force
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def populated():
    tree = make_tree()
    objects = uniform_objects(350, seed=12)
    for obj in objects:
        tree.insert(obj)
    return tree, {obj.uid: obj for obj in objects}


@pytest.mark.parametrize("t_query", [0.0, 5.0, 30.0])
def test_range_query_matches_brute_force(populated, t_query):
    tree, states = populated
    rng = random.Random(31)
    for _ in range(10):
        cx, cy = rng.uniform(0, 1000), rng.uniform(0, 1000)
        window = Rect.from_center(cx, cy, rng.uniform(30, 200))
        expected = {
            uid
            for uid, obj in states.items()
            if window.contains(*obj.position_at(t_query))
        }
        got = {obj.uid for obj in tree.range_query(window, t_query)}
        assert got == expected


@pytest.mark.parametrize("t_query", [0.0, 15.0])
def test_knn_matches_brute_force(populated, t_query):
    tree, states = populated
    rng = random.Random(32)
    for _ in range(8):
        qx, qy = rng.uniform(0, 1000), rng.uniform(0, 1000)
        ranked = sorted(
            (euclidean(qx, qy, *obj.position_at(t_query)), uid)
            for uid, obj in states.items()
        )
        got = tree.knn(qx, qy, 5, t_query)
        assert [round(d, 9) for d, _ in got] == [
            round(d, 9) for d, _ in ranked[:5]
        ]


def test_knn_rejects_bad_k(populated):
    tree, _ = populated
    with pytest.raises(ValueError):
        tree.knn(0, 0, 0, 0.0)


def test_nearest_is_sorted(populated):
    tree, _ = populated
    import itertools

    distances = [d for d, _ in itertools.islice(tree.nearest(500, 500, 0.0), 40)]
    assert distances == sorted(distances)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(st.integers(min_value=0, max_value=2**31))
def test_random_workload_property(seed):
    """Random insert/delete/update interleaving keeps queries exact."""
    rng = random.Random(seed)
    tree = make_tree()
    states: dict[int, MovingObject] = {}
    uid_counter = 0
    for _ in range(120):
        action = rng.random()
        if action < 0.6 or not states:
            obj = mover(
                uid_counter,
                rng.uniform(0, 1000),
                rng.uniform(0, 1000),
                rng.uniform(-3, 3),
                rng.uniform(-3, 3),
                rng.uniform(0, 10),
            )
            tree.insert(obj)
            states[obj.uid] = obj
            uid_counter += 1
        elif action < 0.8:
            uid = rng.choice(sorted(states))
            tree.delete(uid)
            del states[uid]
        else:
            uid = rng.choice(sorted(states))
            old = states[uid]
            t_new = old.t_update + rng.uniform(0, 10)
            x, y = old.position_at(t_new)
            updated = old.moved_to(
                x, y, rng.uniform(-3, 3), rng.uniform(-3, 3), t_new
            )
            tree.update(updated)
            states[uid] = updated

    tree.validate()
    t_query = 25.0
    window = Rect(200, 800, 200, 800)
    expected = {
        uid
        for uid, obj in states.items()
        if window.contains(*obj.position_at(t_query))
    }
    got = {obj.uid for obj in tree.range_query(window, t_query)}
    assert got == expected


# ----------------------------------------------------------------------
# Policy-filter baseline on the TPR-tree
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def privacy_world():
    objects = uniform_objects(250, seed=40)
    states = {obj.uid: obj for obj in objects}
    store = PolicyGenerator(1000.0, 1440.0, random.Random(41)).generate(
        sorted(states), 8, 0.7
    )
    report = assign_sequence_values(sorted(states), store, 1000.0**2)
    store.set_sequence_values(report.sequence_values)
    tree = make_tree(page_size=1024)
    for obj in objects:
        tree.insert(obj)
    return states, store, TPRFilterBaseline(tree, store)


def test_tpr_baseline_prq_matches_oracle(privacy_world):
    states, store, baseline = privacy_world
    rng = random.Random(50)
    for q_uid in rng.sample(sorted(states), 10):
        window = Rect.from_center(
            rng.uniform(0, 1000), rng.uniform(0, 1000), 150.0
        )
        expected = brute_force_prq(states, store, q_uid, window, 0.0)
        got = {obj.uid for obj in baseline.range_query(q_uid, window, 0.0)}
        assert got == expected


def test_tpr_baseline_pknn_matches_oracle(privacy_world):
    states, store, baseline = privacy_world
    rng = random.Random(51)
    for q_uid in rng.sample(sorted(states), 10):
        qx, qy = states[q_uid].position_at(0.0)
        expected = brute_force_pknn(states, store, q_uid, qx, qy, 3, 0.0)
        got = baseline.knn_query(q_uid, qx, qy, 3, 0.0)
        assert [round(d, 9) for d, _ in got] == [
            round(d, 9) for d, _ in expected
        ]


def test_tpr_baseline_rejects_bad_k(privacy_world):
    _, _, baseline = privacy_world
    with pytest.raises(ValueError):
        baseline.knn_query(0, 10, 10, 0, 0.0)

def test_height_collapses_after_mass_deletion():
    """Deleting most entries shrinks the tree through root collapse."""
    tree = make_tree()
    objects = uniform_objects(400, seed=19)
    for obj in objects:
        tree.insert(obj)
    tall = tree.height
    assert tall >= 2
    for obj in objects[:-5]:
        tree.delete(obj.uid)
    tree.validate()
    assert tree.height <= tall
    assert {obj.uid for obj in tree.fetch_all()} == {
        obj.uid for obj in objects[-5:]
    }


def test_reuse_after_full_deletion():
    """A fully emptied tree accepts new inserts and answers queries."""
    tree = make_tree()
    first = uniform_objects(150, seed=23)
    for obj in first:
        tree.insert(obj)
    for obj in first:
        tree.delete(obj.uid)
    assert len(tree) == 0

    second = uniform_objects(150, seed=24)
    relabeled = [
        MovingObject(
            uid=obj.uid + 10_000,
            x=obj.x, y=obj.y, vx=obj.vx, vy=obj.vy, t_update=obj.t_update,
        )
        for obj in second
    ]
    for obj in relabeled:
        tree.insert(obj)
    tree.validate()
    window = Rect(200, 800, 200, 800)
    expected = {
        obj.uid for obj in relabeled if window.contains(*obj.position_at(5.0))
    }
    assert {obj.uid for obj in tree.range_query(window, 5.0)} == expected
