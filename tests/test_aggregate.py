"""Tests for privacy-aware aggregates (count / existential / density)."""

import random

import pytest

from repro.bench.oracle import brute_force_prq
from repro.core.aggregate import pcount, pdensity_grid
from repro.core.peb_tree import PEBTree
from repro.core.sequencing import assign_sequence_values
from repro.motion.partitions import TimePartitioner
from repro.spatial.geometry import Rect
from repro.spatial.grid import Grid
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.workloads.policies import PolicyGenerator
from repro.workloads.queries import QueryGenerator
from repro.workloads.uniform import UniformMovement


def build_world(n_users=150, n_policies=8, seed=17):
    space = 1000.0
    movement = UniformMovement(space, 3.0, random.Random(seed))
    states = {obj.uid: obj for obj in movement.initial_objects(n_users, t=0.0)}
    store = PolicyGenerator(space, 1440.0, random.Random(seed + 1)).generate(
        sorted(states), n_policies, 0.7
    )
    report = assign_sequence_values(sorted(states), store, space**2)
    store.set_sequence_values(report.sequence_values)
    grid = Grid(space, 10)
    pool = BufferPool(SimulatedDisk(page_size=1024), capacity=512)
    tree = PEBTree(pool, grid, TimePartitioner(120.0, 2), store)
    for obj in states.values():
        tree.insert(obj)
    return states, store, tree


@pytest.fixture(scope="module")
def world():
    return build_world()


# ----------------------------------------------------------------------
# pcount
# ----------------------------------------------------------------------


def test_pcount_matches_brute_force(world):
    states, store, tree = world
    queries = QueryGenerator(1000.0, random.Random(2)).range_queries(
        sorted(states), 15, 300.0, 0.0
    )
    for query in queries:
        expected = brute_force_prq(
            states, store, query.q_uid, query.window, query.t_query
        )
        result = pcount(tree, query.q_uid, query.window, query.t_query)
        assert result.count == len(expected)
        assert not result.terminated_early


def test_pcount_no_friends_zero(world):
    _, store, tree = world
    lonely_uid = 10**6  # not in the system, has no friend list
    result = pcount(tree, lonely_uid, Rect(0, 1000, 0, 1000), 0.0)
    assert result.count == 0
    assert result.candidates_examined == 0


def test_pcount_whole_space(world):
    states, store, tree = world
    q_uid = sorted(states)[0]
    window = Rect(0, 1000, 0, 1000)
    expected = brute_force_prq(states, store, q_uid, window, 0.0)
    assert pcount(tree, q_uid, window, 0.0).count == len(expected)


def test_pcount_at_least_certifies_lower_bound(world):
    states, store, tree = world
    window = Rect(0, 1000, 0, 1000)
    for q_uid in sorted(states)[:20]:
        expected = len(brute_force_prq(states, store, q_uid, window, 0.0))
        result = pcount(tree, q_uid, window, 0.0, at_least=1)
        if expected >= 1:
            assert result.count >= 1
            assert result.terminated_early
        else:
            assert result.count == 0
            assert not result.terminated_early


def test_pcount_at_least_examines_no_more(world):
    states, _, tree = world
    window = Rect(0, 1000, 0, 1000)
    for q_uid in sorted(states)[:20]:
        full = pcount(tree, q_uid, window, 0.0)
        capped = pcount(tree, q_uid, window, 0.0, at_least=1)
        assert capped.candidates_examined <= full.candidates_examined


def test_pcount_at_least_above_total_scans_everything(world):
    states, store, tree = world
    window = Rect(0, 1000, 0, 1000)
    q_uid = sorted(states)[3]
    expected = len(brute_force_prq(states, store, q_uid, window, 0.0))
    result = pcount(tree, q_uid, window, 0.0, at_least=expected + 5)
    assert result.count == expected
    assert not result.terminated_early


def test_pcount_rejects_bad_threshold(world):
    _, _, tree = world
    with pytest.raises(ValueError):
        pcount(tree, 0, Rect(0, 1, 0, 1), 0.0, at_least=0)


# ----------------------------------------------------------------------
# pdensity_grid
# ----------------------------------------------------------------------


def test_density_total_matches_pcount(world):
    states, _, tree = world
    window = Rect(200, 800, 200, 800)
    for q_uid in sorted(states)[:10]:
        count = pcount(tree, q_uid, window, 0.0).count
        density = pdensity_grid(tree, q_uid, window, 0.0, rows=4, columns=4)
        assert density.total == count
        assert sum(density.cells.values()) == count


def test_density_cells_place_users_correctly(world):
    states, store, tree = world
    window = Rect(0, 1000, 0, 1000)
    q_uid = sorted(states)[5]
    density = pdensity_grid(tree, q_uid, window, 0.0, rows=2, columns=2)
    expected = brute_force_prq(states, store, q_uid, window, 0.0)
    # Recompute each qualifying user's bucket from its true position.
    buckets: dict[tuple[int, int], int] = {}
    for uid in expected:
        x, y = states[uid].position_at(0.0)
        col = min(int(x / 500.0), 1)
        row = min(int(y / 500.0), 1)
        buckets[(row, col)] = buckets.get((row, col), 0) + 1
    assert density.cells == buckets


def test_density_count_at_accessor(world):
    states, _, tree = world
    q_uid = sorted(states)[5]
    density = pdensity_grid(tree, q_uid, Rect(0, 1000, 0, 1000), 0.0, 2, 2)
    total = sum(
        density.count_at(row, col) for row in range(2) for col in range(2)
    )
    assert total == density.total
    assert density.count_at(50, 50) == 0


def test_density_rejects_bad_grid(world):
    _, _, tree = world
    with pytest.raises(ValueError):
        pdensity_grid(tree, 0, Rect(0, 10, 0, 10), 0.0, rows=0)
    with pytest.raises(ValueError):
        pdensity_grid(tree, 0, Rect(5, 5, 0, 10), 0.0)


def test_density_single_cell_is_plain_count(world):
    states, _, tree = world
    window = Rect(300, 700, 300, 700)
    q_uid = sorted(states)[7]
    density = pdensity_grid(tree, q_uid, window, 0.0, rows=1, columns=1)
    assert density.count_at(0, 0) == density.total
