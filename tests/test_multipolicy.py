"""Tests for multi-policy compatibility and the MultiPolicyStore.

The paper's Section 8 future-work item: "consider multiple policies
between two users for computing policy compatibility degree".  The
generalization must (a) reduce exactly to the single-policy Equation 4
when each side holds one policy, (b) never double-count overlapping
grants, and (c) plug into the unchanged Figure 5 sequence-value encoder.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compatibility import compatibility
from repro.core.multipolicy import (
    grant_volume,
    set_compatibility,
    simultaneous_volume,
)
from repro.core.sequencing import assign_sequence_values
from repro.policy.lpp import LocationPrivacyPolicy
from repro.policy.multistore import MultiPolicyStore
from repro.policy.timeset import TimeInterval, TimeSet
from repro.spatial.geometry import Rect

S = 1000.0 * 1000.0
T = 1440.0


def policy(owner, locr, tint, role="friend"):
    return LocationPrivacyPolicy(owner=owner, role=role, locr=locr, tint=tint)


# ----------------------------------------------------------------------
# Volumes
# ----------------------------------------------------------------------


def test_grant_volume_empty():
    assert grant_volume([], T) == 0.0


def test_grant_volume_single_policy_is_area_times_duration():
    p = policy(1, Rect(0, 100, 0, 50), TimeInterval(60, 180))
    assert grant_volume([p], T) == pytest.approx(100 * 50 * 120)


def test_grant_volume_disjoint_policies_add():
    p1 = policy(1, Rect(0, 10, 0, 10), TimeInterval(0, 60))
    p2 = policy(1, Rect(50, 60, 50, 60), TimeInterval(600, 720))
    assert grant_volume([p1, p2], T) == pytest.approx(100 * 60 + 100 * 120)


def test_grant_volume_identical_policies_not_double_counted():
    p = policy(1, Rect(0, 10, 0, 10), TimeInterval(0, 60))
    assert grant_volume([p, p], T) == pytest.approx(grant_volume([p], T))


def test_grant_volume_same_region_overlapping_times():
    region = Rect(0, 10, 0, 10)
    p1 = policy(1, region, TimeInterval(0, 100))
    p2 = policy(1, region, TimeInterval(50, 150))
    assert grant_volume([p1, p2], T) == pytest.approx(100 * 150)


def test_grant_volume_timeset_policy():
    tint = TimeSet([TimeInterval(0, 60), TimeInterval(600, 660)])
    p = policy(1, Rect(0, 10, 0, 10), tint)
    assert grant_volume([p], T) == pytest.approx(100 * 120)


def test_grant_volume_rejects_bad_domain():
    with pytest.raises(ValueError):
        grant_volume([], 0.0)


def test_simultaneous_volume_disjoint_times_zero():
    p1 = policy(1, Rect(0, 10, 0, 10), TimeInterval(0, 60))
    p2 = policy(2, Rect(0, 10, 0, 10), TimeInterval(120, 180))
    assert simultaneous_volume([p1], [p2], T) == 0.0


def test_simultaneous_volume_disjoint_regions_zero():
    p1 = policy(1, Rect(0, 10, 0, 10), TimeInterval(0, 60))
    p2 = policy(2, Rect(100, 110, 0, 10), TimeInterval(0, 60))
    assert simultaneous_volume([p1], [p2], T) == 0.0


def test_simultaneous_volume_single_pair_matches_product():
    p1 = policy(1, Rect(0, 200, 0, 200), TimeInterval(0, 720))
    p2 = policy(2, Rect(100, 300, 100, 300), TimeInterval(360, 1080))
    expected = (100 * 100) * 360  # O(locr1, locr2) * D(tint1, tint2)
    assert simultaneous_volume([p1], [p2], T) == pytest.approx(expected)


def test_simultaneous_volume_multiple_grants_union_not_sum():
    # u1 grants the same window twice; the shared volume must not double.
    p1a = policy(1, Rect(0, 100, 0, 100), TimeInterval(0, 120))
    p1b = policy(1, Rect(0, 100, 0, 100), TimeInterval(0, 120))
    p2 = policy(2, Rect(0, 100, 0, 100), TimeInterval(0, 120))
    assert simultaneous_volume([p1a, p1b], [p2], T) == pytest.approx(
        simultaneous_volume([p1a], [p2], T)
    )


# ----------------------------------------------------------------------
# Set compatibility vs the single-policy Equation 4
# ----------------------------------------------------------------------


def rect_strategy():
    coord = st.integers(min_value=0, max_value=1000)

    def to_rect(values):
        x1, x2, y1, y2 = values
        return Rect(min(x1, x2), max(x1, x2), min(y1, y2), max(y1, y2))

    return st.tuples(coord, coord, coord, coord).map(to_rect)


def interval_strategy():
    minute = st.integers(min_value=0, max_value=1440)
    return st.tuples(minute, minute).map(
        lambda pair: TimeInterval(min(pair), max(pair))
    )


@settings(max_examples=200)
@given(rect_strategy(), interval_strategy(), rect_strategy(), interval_strategy())
def test_single_policy_reduces_to_equation_4(locr1, tint1, locr2, tint2):
    p12 = policy(1, locr1, tint1)
    p21 = policy(2, locr2, tint2)
    single = compatibility(p12, p21, S, T)
    multi = set_compatibility([p12], [p21], S, T)
    assert multi.mutual == single.mutual
    assert multi.alpha == pytest.approx(single.alpha, abs=1e-12)
    assert multi.degree == pytest.approx(single.degree, abs=1e-12)


@settings(max_examples=100)
@given(rect_strategy(), interval_strategy())
def test_one_sided_reduces_to_equation_4(locr, tint):
    p12 = policy(1, locr, tint)
    single = compatibility(p12, None, S, T)
    multi = set_compatibility([p12], [], S, T)
    assert multi.alpha == pytest.approx(single.alpha, abs=1e-12)
    assert multi.degree == pytest.approx(single.degree, abs=1e-12)
    assert not multi.mutual


def test_no_policies_unrelated():
    result = set_compatibility([], [], S, T)
    assert result.degree == 0.0
    assert not result.related


def test_mutual_case_exceeds_half():
    p12 = policy(1, Rect(0, 500, 0, 500), TimeInterval(0, 720))
    p21 = policy(2, Rect(0, 500, 0, 500), TimeInterval(0, 720))
    result = set_compatibility([p12], [p21], S, T)
    assert result.mutual
    assert result.degree > 0.5


def test_degree_never_exceeds_one():
    everywhere = Rect(0, 1000, 0, 1000)
    always = TimeInterval(0, 1440)
    p12 = [policy(1, everywhere, always), policy(1, everywhere, always)]
    p21 = [policy(2, everywhere, always)]
    result = set_compatibility(p12, p21, S, T)
    assert result.alpha == pytest.approx(1.0)
    assert result.degree == pytest.approx(1.0)


def test_stacked_policies_cannot_push_alpha_past_one():
    """Redundant grants must not break the [0, 1] normalization."""
    everywhere = Rect(0, 1000, 0, 1000)
    p12 = [policy(1, everywhere, TimeInterval(0, 1440)) for _ in range(5)]
    result = set_compatibility(p12, [], S, T)
    assert result.alpha <= 0.5 + 1e-12


def test_second_policy_extends_mutual_window():
    """A second policy adding an overlap flips the pair to mutual."""
    p12_morning = policy(1, Rect(0, 100, 0, 100), TimeInterval(0, 360))
    p21_evening = policy(2, Rect(0, 100, 0, 100), TimeInterval(720, 1080))
    base = set_compatibility([p12_morning], [p21_evening], S, T)
    assert not base.mutual

    p12_evening = policy(1, Rect(0, 100, 0, 100), TimeInterval(720, 1080))
    extended = set_compatibility([p12_morning, p12_evening], [p21_evening], S, T)
    assert extended.mutual
    assert extended.degree > base.degree


def test_rejects_bad_normalizers():
    with pytest.raises(ValueError):
        set_compatibility([], [], 0.0, T)
    with pytest.raises(ValueError):
        set_compatibility([], [], S, -1.0)


# ----------------------------------------------------------------------
# MultiPolicyStore
# ----------------------------------------------------------------------


def make_store():
    return MultiPolicyStore(time_domain=T)


def test_multistore_accepts_duplicate_pairs():
    store = make_store()
    store.add_policy(policy(1, Rect(0, 100, 0, 100), TimeInterval(0, 360)), [2])
    store.add_policy(policy(1, Rect(200, 300, 0, 100), TimeInterval(600, 720)), [2])
    assert len(store.policies_for(1, 2)) == 2
    assert store.policy_count() == 2
    assert store.pair_count() == 1


def test_multistore_policy_for_single_ok_multiple_raises():
    store = make_store()
    assert store.policy_for(1, 2) is None
    store.add_policy(policy(1, Rect(0, 100, 0, 100), TimeInterval(0, 360)), [2])
    assert store.policy_for(1, 2) is not None
    store.add_policy(policy(1, Rect(0, 50, 0, 50), TimeInterval(600, 700)), [2])
    with pytest.raises(LookupError):
        store.policy_for(1, 2)


def test_multistore_rejects_self_policy():
    store = make_store()
    with pytest.raises(ValueError):
        store.add_policy(policy(1, Rect(0, 1, 0, 1), TimeInterval(0, 1)), [1])


def test_multistore_evaluate_any_policy_admits():
    store = make_store()
    store.add_policy(policy(1, Rect(0, 100, 0, 100), TimeInterval(0, 360)), [2])
    store.add_policy(policy(1, Rect(200, 300, 0, 100), TimeInterval(600, 720)), [2])
    assert store.evaluate(1, 2, 50, 50, 100)  # first policy
    assert store.evaluate(1, 2, 250, 50, 650)  # second policy
    assert not store.evaluate(1, 2, 250, 50, 100)  # right place, wrong time
    assert not store.evaluate(1, 2, 500, 500, 100)  # neither region
    assert not store.evaluate(1, 3, 50, 50, 100)  # no policy for viewer 3


def test_multistore_evaluate_folds_time():
    store = make_store()
    store.add_policy(policy(1, Rect(0, 100, 0, 100), TimeInterval(0, 360)), [2])
    assert store.evaluate(1, 2, 50, 50, T + 100)


def test_multistore_related_pairs_deduplicated():
    store = make_store()
    store.add_policy(policy(1, Rect(0, 100, 0, 100), TimeInterval(0, 360)), [2])
    store.add_policy(policy(1, Rect(0, 50, 0, 50), TimeInterval(0, 100)), [2])
    store.add_policy(policy(2, Rect(0, 100, 0, 100), TimeInterval(0, 360)), [1])
    assert list(store.related_pairs()) == [(1, 2)]


def test_multistore_pair_compatibility_uses_set_semantics():
    store = make_store()
    region = Rect(0, 100, 0, 100)
    p12a = policy(1, region, TimeInterval(0, 100))
    p12b = policy(1, region, TimeInterval(0, 100))
    p21 = policy(2, region, TimeInterval(50, 150))
    store.add_policy(p12a, [2])
    store.add_policy(p12b, [2])
    store.add_policy(p21, [1])
    expected = set_compatibility([p12a, p12b], [p21], S, T)
    result = store.pair_compatibility(1, 2, S)
    assert result.alpha == pytest.approx(expected.alpha)
    assert result.mutual


def test_multistore_friend_list_sorted_by_sv():
    store = make_store()
    store.add_policy(policy(1, Rect(0, 100, 0, 100), TimeInterval(0, 360)), [9])
    store.add_policy(policy(2, Rect(0, 100, 0, 100), TimeInterval(0, 360)), [9])
    store.set_sequence_values({1: 4.0, 2: 2.0})
    assert store.friend_list(9) == [(2.0, 2), (4.0, 1)]


def test_sequencing_runs_on_multistore():
    """Figure 5 must work unchanged on the multi-policy directory."""
    store = make_store()
    region = Rect(0, 200, 0, 200)
    store.add_policy(policy(1, region, TimeInterval(0, 720)), [2])
    store.add_policy(policy(1, region, TimeInterval(720, 1080)), [2])
    store.add_policy(policy(2, region, TimeInterval(0, 720)), [1])
    store.add_policy(policy(3, region, TimeInterval(0, 100)), [1])
    report = assign_sequence_values([1, 2, 3], store, S)
    values = report.sequence_values
    assert set(values) == {1, 2, 3}
    # 1 and 2 are mutually compatible: their SVs differ by 1 - C < 0.5.
    assert abs(values[1] - values[2]) < 0.5
    assert report.related_pair_count == 2


def test_base_store_pair_compatibility_matches_direct_call():
    """The dispatch hook on the base store reproduces the direct formula."""
    from repro.policy.store import PolicyStore

    store = PolicyStore(time_domain=T)
    p12 = policy(1, Rect(0, 200, 0, 200), TimeInterval(0, 720))
    p21 = policy(2, Rect(100, 300, 100, 300), TimeInterval(360, 1080))
    store.add_policy(p12, [2])
    store.add_policy(p21, [1])
    direct = compatibility(p12, p21, S, T)
    via_store = store.pair_compatibility(1, 2, S)
    assert via_store.alpha == pytest.approx(direct.alpha)
    assert via_store.degree == pytest.approx(direct.degree)
