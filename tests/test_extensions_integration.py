"""Cross-extension integration tests.

Each Section 8 extension is unit-tested in its own module; here they are
composed the way a deployment would: a multi-policy directory feeding
the sequence-value encoder, the PEB-tree built on a Hilbert grid, the
full query set (PRQ, PkNN, count, density, continuous monitor) answered
on top — always against the brute-force Definition 2/3 oracle.
"""

import random

import pytest

from repro.bench.oracle import brute_force_pknn, brute_force_prq
from repro.core.aggregate import pcount, pdensity_grid
from repro.core.continuous import ContinuousPRQ
from repro.core.encoders import make_encoder
from repro.core.peb_tree import PEBTree
from repro.core.pknn import pknn
from repro.core.prq import prq
from repro.core.sequencing import assign_sequence_values
from repro.motion.partitions import TimePartitioner
from repro.policy.lpp import LocationPrivacyPolicy
from repro.policy.multistore import MultiPolicyStore
from repro.policy.timeset import TimeInterval
from repro.spatial.curves import HILBERT
from repro.spatial.geometry import Rect
from repro.spatial.grid import Grid
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.workloads.queries import QueryGenerator
from repro.workloads.uniform import UniformMovement

SPACE = 1000.0
T = 1440.0


def multi_policy_world(n_users=140, seed=61, curve=None, buffer_policy="lru"):
    """A population whose users hold *several* policies per friend."""
    rng = random.Random(seed)
    movement = UniformMovement(SPACE, 3.0, random.Random(seed + 1))
    states = {obj.uid: obj for obj in movement.initial_objects(n_users, t=0.0)}
    store = MultiPolicyStore(time_domain=T)

    uids = sorted(states)
    for owner in uids:
        friends = rng.sample([u for u in uids if u != owner], 6)
        for friend in friends:
            # Two to three stacked policies per pair: different regions
            # and day segments, sometimes overlapping.
            for _ in range(rng.randint(2, 3)):
                cx, cy = rng.uniform(0, SPACE), rng.uniform(0, SPACE)
                half = rng.uniform(100, 400)
                start = rng.uniform(0, T - 1)
                end = min(T, start + rng.uniform(60, 720))
                store.add_policy(
                    LocationPrivacyPolicy(
                        owner=owner,
                        role="friend",
                        locr=Rect(
                            max(0.0, cx - half),
                            min(SPACE, cx + half),
                            max(0.0, cy - half),
                            min(SPACE, cy + half),
                        ),
                        tint=TimeInterval(start, end),
                    ),
                    [friend],
                )

    report = assign_sequence_values(uids, store, SPACE**2)
    store.set_sequence_values(report.sequence_values)

    grid = Grid(SPACE, 10) if curve is None else Grid(SPACE, 10, curve=curve)
    pool = BufferPool(
        SimulatedDisk(page_size=1024), capacity=512, policy=buffer_policy
    )
    tree = PEBTree(pool, grid, TimePartitioner(120.0, 2), store)
    for obj in states.values():
        tree.insert(obj)
    return states, store, tree


@pytest.fixture(scope="module")
def multi_world():
    return multi_policy_world()


def test_multi_policy_prq_matches_oracle(multi_world):
    states, store, tree = multi_world
    queries = QueryGenerator(SPACE, random.Random(70)).range_queries(
        sorted(states), 12, 300.0, 0.0
    )
    for query in queries:
        expected = brute_force_prq(
            states, store, query.q_uid, query.window, query.t_query
        )
        got = prq(tree, query.q_uid, query.window, query.t_query).uids
        assert got == expected


def test_multi_policy_pknn_matches_oracle(multi_world):
    states, store, tree = multi_world
    queries = QueryGenerator(SPACE, random.Random(71)).knn_queries(
        states, 12, 3, 0.0
    )
    for query in queries:
        expected = brute_force_pknn(
            states, store, query.q_uid, query.qx, query.qy, query.k, query.t_query
        )
        answer = pknn(
            tree, query.q_uid, query.qx, query.qy, query.k, query.t_query
        )
        assert [round(d, 9) for d, _ in answer.neighbors] == [
            round(d, 9) for d, _ in expected
        ]


def test_multi_policy_aggregates_consistent(multi_world):
    states, store, tree = multi_world
    window = Rect(200, 800, 200, 800)
    for q_uid in sorted(states)[:8]:
        expected = len(brute_force_prq(states, store, q_uid, window, 10.0))
        assert pcount(tree, q_uid, window, 10.0).count == expected
        density = pdensity_grid(tree, q_uid, window, 10.0, rows=3, columns=3)
        assert density.total == expected


def test_multi_policy_continuous_monitor(multi_world):
    states, store, tree = multi_world
    q_uid = sorted(states)[2]
    window = Rect(250, 750, 250, 750)
    monitor = ContinuousPRQ(tree, q_uid, window, t_start=0.0)
    for t in (0.0, 30.0, 75.0):
        expected = brute_force_prq(states, store, q_uid, window, t)
        assert monitor.result_at(t) == expected


def test_stacked_extensions_hilbert_clock_multi_policy():
    """Hilbert grid + CLOCK buffer + multi-policy store, all at once."""
    states, store, tree = multi_policy_world(
        n_users=100, seed=77, curve=HILBERT, buffer_policy="clock"
    )
    queries = QueryGenerator(SPACE, random.Random(78)).range_queries(
        sorted(states), 8, 300.0, 0.0
    )
    for query in queries:
        expected = brute_force_prq(
            states, store, query.q_uid, query.window, query.t_query
        )
        assert prq(tree, query.q_uid, query.window, query.t_query).uids == expected


@pytest.mark.parametrize("encoder_name", ["bfs", "spectral"])
def test_alternative_encoders_on_multi_policy_store(encoder_name):
    """Alternative encoders accept the multi-policy compatibility hook."""
    states, store, _ = multi_policy_world(n_users=80, seed=88)
    uids = sorted(states)
    report = make_encoder(encoder_name).encode(uids, store, SPACE**2)
    assert set(report.sequence_values) == set(uids)
    store.set_sequence_values(report.sequence_values)

    pool = BufferPool(SimulatedDisk(page_size=1024), capacity=512)
    tree = PEBTree(pool, Grid(SPACE, 10), TimePartitioner(120.0, 2), store)
    for obj in states.values():
        tree.insert(obj)
    queries = QueryGenerator(SPACE, random.Random(89)).range_queries(
        uids, 6, 300.0, 0.0
    )
    for query in queries:
        expected = brute_force_prq(
            states, store, query.q_uid, query.window, query.t_query
        )
        assert prq(tree, query.q_uid, query.window, query.t_query).uids == expected
