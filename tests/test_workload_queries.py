"""Tests for the query workload generator."""

import random

import pytest

from repro.motion.objects import MovingObject
from repro.workloads.queries import QueryGenerator


def make(seed=6):
    return QueryGenerator(1000.0, random.Random(seed))


def test_range_queries_respect_window_side():
    generator = make()
    queries = generator.range_queries(list(range(50)), 40, 200.0, 7.5)
    assert len(queries) == 40
    for query in queries:
        assert query.window.width == pytest.approx(200.0)
        assert query.window.height == pytest.approx(200.0)
        assert 0 <= query.window.x_lo and query.window.x_hi <= 1000
        assert 0 <= query.window.y_lo and query.window.y_hi <= 1000
        assert query.q_uid in range(50)
        assert query.t_query == 7.5


def test_full_space_window_allowed():
    generator = make()
    queries = generator.range_queries([1], 3, 1000.0, 0.0)
    for query in queries:
        assert query.window.x_lo == 0.0
        assert query.window.x_hi == 1000.0


def test_invalid_window_rejected():
    generator = make()
    with pytest.raises(ValueError):
        generator.range_queries([1], 1, 0.0, 0.0)
    with pytest.raises(ValueError):
        generator.range_queries([1], 1, 1500.0, 0.0)


def test_knn_queries_issued_from_user_location():
    generator = make()
    states = {
        uid: MovingObject(uid=uid, x=uid * 10.0, y=uid * 5.0, vx=1.0, vy=0.0, t_update=0.0)
        for uid in range(20)
    }
    queries = generator.knn_queries(states, 15, 5, 10.0)
    assert len(queries) == 15
    for query in queries:
        state = states[query.q_uid]
        expected = state.position_at(10.0)
        assert query.qx == pytest.approx(expected[0])
        assert query.qy == pytest.approx(expected[1])
        assert query.k == 5


def test_knn_invalid_k():
    generator = make()
    states = {1: MovingObject(uid=1, x=0, y=0, vx=0, vy=0, t_update=0)}
    with pytest.raises(ValueError):
        generator.knn_queries(states, 1, 0, 0.0)


def test_deterministic_under_seed():
    a = make(seed=42).range_queries(list(range(10)), 5, 100.0, 0.0)
    b = make(seed=42).range_queries(list(range(10)), 5, 100.0, 0.0)
    assert a == b
