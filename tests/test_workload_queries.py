"""Tests for the query workload generator."""

import random

import pytest

from repro.motion.objects import MovingObject
from repro.workloads.queries import QueryGenerator


def make(seed=6):
    return QueryGenerator(1000.0, random.Random(seed))


def test_range_queries_respect_window_side():
    generator = make()
    queries = generator.range_queries(list(range(50)), 40, 200.0, 7.5)
    assert len(queries) == 40
    for query in queries:
        assert query.window.width == pytest.approx(200.0)
        assert query.window.height == pytest.approx(200.0)
        assert 0 <= query.window.x_lo and query.window.x_hi <= 1000
        assert 0 <= query.window.y_lo and query.window.y_hi <= 1000
        assert query.q_uid in range(50)
        assert query.t_query == 7.5


def test_full_space_window_allowed():
    generator = make()
    queries = generator.range_queries([1], 3, 1000.0, 0.0)
    for query in queries:
        assert query.window.x_lo == 0.0
        assert query.window.x_hi == 1000.0


def test_invalid_window_rejected():
    generator = make()
    with pytest.raises(ValueError):
        generator.range_queries([1], 1, 0.0, 0.0)
    with pytest.raises(ValueError):
        generator.range_queries([1], 1, 1500.0, 0.0)


def test_knn_queries_issued_from_user_location():
    generator = make()
    states = {
        uid: MovingObject(uid=uid, x=uid * 10.0, y=uid * 5.0, vx=1.0, vy=0.0, t_update=0.0)
        for uid in range(20)
    }
    queries = generator.knn_queries(states, 15, 5, 10.0)
    assert len(queries) == 15
    for query in queries:
        state = states[query.q_uid]
        expected = state.position_at(10.0)
        assert query.qx == pytest.approx(expected[0])
        assert query.qy == pytest.approx(expected[1])
        assert query.k == 5


def test_knn_invalid_k():
    generator = make()
    states = {1: MovingObject(uid=1, x=0, y=0, vx=0, vy=0, t_update=0)}
    with pytest.raises(ValueError):
        generator.knn_queries(states, 1, 0, 0.0)


def test_deterministic_under_seed():
    a = make(seed=42).range_queries(list(range(10)), 5, 100.0, 0.0)
    b = make(seed=42).range_queries(list(range(10)), 5, 100.0, 0.0)
    assert a == b


def _states(count=60):
    return {
        uid: MovingObject(
            uid=uid, x=uid * 7.0 % 1000, y=uid * 13.0 % 1000, vx=0.5, vy=-0.5,
            t_update=0.0,
        )
        for uid in range(count)
    }


def test_hotspot_stream_shapes_and_bounds():
    generator = make()
    updates, queries = generator.hotspot_stream(
        _states(), 80, 25, 200.0, 3.0, 10.0, 50.0
    )
    assert len(updates) == 80
    assert len(queries) == 25
    times = [obj.t_update for obj in updates]
    assert times == sorted(times)
    assert all(10.0 <= t < 60.0 for t in times)
    for obj in updates:
        assert 0.0 <= obj.x <= 1000.0 and 0.0 <= obj.y <= 1000.0
        assert abs(obj.vx) <= 3.0 and abs(obj.vy) <= 3.0
    for query in queries:
        assert query.t_query == pytest.approx(60.0)
        assert query.window.width == pytest.approx(200.0)
        assert 0 <= query.window.x_lo and query.window.x_hi <= 1000.0


def test_hotspot_stream_concentrates_space_and_users():
    generator = make(seed=3)
    updates, queries = generator.hotspot_stream(
        _states(200), 400, 50, 150.0, 3.0, 0.0, 60.0, hotspot_fraction=0.2
    )
    # Spatial hotspot: every re-report falls inside one 200-side square.
    xs = [obj.x for obj in updates]
    ys = [obj.y for obj in updates]
    assert max(xs) - min(xs) <= 200.0 * 1.0001
    assert max(ys) - min(ys) <= 200.0 * 1.0001
    # Zipf skew: the head decile dominates the tail decile.
    head = sum(1 for obj in updates if obj.uid < 20)
    tail = sum(1 for obj in updates if obj.uid >= 180)
    assert head > 4 * max(tail, 1)
    issuer_head = sum(1 for query in queries if query.q_uid < 20)
    assert issuer_head > len(queries) // 4


def test_hotspot_stream_deterministic_and_validated():
    states = _states()
    a = make(seed=9).hotspot_stream(states, 30, 10, 100.0, 2.0, 0.0, 30.0)
    b = make(seed=9).hotspot_stream(states, 30, 10, 100.0, 2.0, 0.0, 30.0)
    assert a == b
    generator = make()
    with pytest.raises(ValueError):
        generator.hotspot_stream(states, -1, 5, 100.0, 2.0, 0.0, 30.0)
    with pytest.raises(ValueError):
        generator.hotspot_stream(states, 5, 5, 100.0, 0.0, 0.0, 30.0)
    with pytest.raises(ValueError):
        generator.hotspot_stream(states, 5, 5, 100.0, 2.0, 0.0, -1.0)
    with pytest.raises(ValueError):
        generator.hotspot_stream(states, 5, 5, 100.0, 2.0, 0.0, 30.0, skew=-0.1)
    with pytest.raises(ValueError):
        generator.hotspot_stream(
            states, 5, 5, 100.0, 2.0, 0.0, 30.0, hotspot_fraction=0.0
        )
    with pytest.raises(ValueError):
        generator.hotspot_stream(states, 5, 5, 2000.0, 2.0, 0.0, 30.0)
