"""Smoke tests for the per-figure experiment drivers and the reporting
tables, on a micro preset that runs in seconds."""

import pytest

from repro.bench import experiments
from repro.bench.experiments import HarnessCache, ScalePreset
from repro.bench.harness import ExperimentConfig
from repro.bench.reporting import SeriesTable

MICRO = ScalePreset(
    name="micro",
    base=ExperimentConfig(
        n_users=250,
        n_policies=6,
        n_queries=4,
        window_side=250.0,
        k=3,
        page_size=512,
        buffer_pages=8,
        build_buffer_pages=512,
        seed=21,
    ),
    user_sweep=(150, 250),
    policy_sweep=(4, 8),
    theta_sweep=(0.0, 1.0),
    window_sweep=(100.0, 500.0),
    k_sweep=(1, 4),
    speed_sweep=(1.0, 6.0),
    destination_sweep=(15,),
    update_rounds=2,
    encoding_user_sweep=(100, 200),
    encoding_policy_sweep=(4, 8),
)


@pytest.fixture(scope="module")
def cache():
    return HarnessCache()


def test_scale_preset_selection(monkeypatch):
    monkeypatch.delenv("REPRO_SCALE", raising=False)
    assert experiments.scale_preset().name == "reduced"
    monkeypatch.setenv("REPRO_SCALE", "paper")
    assert experiments.scale_preset().name == "paper"
    monkeypatch.setenv("REPRO_SCALE", "bogus")
    with pytest.raises(ValueError):
        experiments.scale_preset()


def test_fig11_encoding_rows():
    rows = experiments.fig11a_encoding_vs_users(MICRO)
    assert [row["n_users"] for row in rows] == [100, 200]
    assert all(row["seconds"] >= 0 for row in rows)
    rows = experiments.fig11b_encoding_vs_policies(MICRO)
    assert [row["n_policies"] for row in rows] == [4, 8]


def test_fig12_rows(cache):
    rows = experiments.fig12_vs_users(MICRO, cache)
    assert [row["n_users"] for row in rows] == [150, 250]
    for row in rows:
        assert row["prq_base"] > 0
        assert row["knn_base"] > 0
        assert row["peb_leaves"] > 0


def test_fig13_rows(cache):
    rows = experiments.fig13_vs_policies(MICRO, cache)
    assert [row["n_policies"] for row in rows] == [4, 8]


def test_fig14_rows(cache):
    rows = experiments.fig14_vs_grouping(MICRO, cache)
    assert [row["theta"] for row in rows] == [0.0, 1.0]


def test_fig15_rows(cache):
    window_rows = experiments.fig15a_vs_window(MICRO, cache)
    assert [row["window"] for row in window_rows] == [100.0, 500.0]
    k_rows = experiments.fig15b_vs_k(MICRO, cache)
    assert [row["k"] for row in k_rows] == [1, 4]


def test_fig16_rows(cache):
    rows = experiments.fig16_vs_destinations(MICRO, cache)
    assert [row["destinations"] for row in rows] == [15, 0]  # 0 = uniform


def test_fig17_rows(cache):
    rows = experiments.fig17_vs_speed(MICRO, cache)
    assert [row["max_speed"] for row in rows] == [1.0, 6.0]


def test_fig18_rows():
    rows = experiments.fig18_vs_updates(MICRO)
    assert [row["updated_pct"] for row in rows] == [0, 25, 50]


def test_fig19_cost_model(cache):
    result = experiments.fig19_cost_model(MICRO, cache)
    assert len(result["vs_users"]) == 2
    assert len(result["vs_policies"]) == 2
    assert len(result["vs_theta"]) == 2
    for row in result["vs_users"]:
        assert row["estimated"] >= 0
    # Calibration makes the model exact at the two calibration points.
    assert result["vs_users"][0]["estimated"] == pytest.approx(
        result["vs_users"][0]["measured"], abs=1e-6
    )
    assert result["vs_users"][-1]["estimated"] == pytest.approx(
        result["vs_users"][-1]["measured"], abs=1e-6
    )


def test_harness_cache_reuses(cache):
    first = cache.get(MICRO.base)
    second = cache.get(MICRO.base)
    assert first is second
    cache.clear()
    third = cache.get(MICRO.base)
    assert third is not first


def test_encode_only_runs():
    seconds = experiments.encode_only(100, 4, 0.7, MICRO.base)
    assert seconds >= 0


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------

def test_series_table_renders_aligned():
    table = SeriesTable("Figure X", ["param", "peb", "base"])
    table.add_row(100, 1.5, 20.0)
    table.add_row(1000, 2.25, 200.125)
    text = table.render()
    lines = text.splitlines()
    assert lines[0] == "Figure X"
    assert "param" in lines[1]
    assert "1.50" in text
    assert "200.12" in text
    widths = {len(line) for line in lines[1:]}
    assert len(widths) == 1  # all data lines aligned


def test_series_table_arity_checked():
    table = SeriesTable("t", ["a", "b"])
    with pytest.raises(ValueError):
        table.add_row(1)
