"""Tests for the PEB-key codec (Equation 5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.peb_key import PEBKeyCodec


def codec(**overrides):
    fields = dict(tid_count=3, sv_bits=16, zv_bits=8, sv_scale=128)
    fields.update(overrides)
    return PEBKeyCodec(**fields)


def test_bit_widths():
    c = codec()
    assert c.tid_bits == 2  # tids 0..2
    assert c.total_bits == 2 + 16 + 8
    assert c.key_bytes == 4
    assert PEBKeyCodec(tid_count=1, sv_bits=4, zv_bits=4).tid_bits == 1


def test_compose_decompose_round_trip():
    c = codec()
    key = c.compose(tid=2, sv=10.5, zv=200)
    tid, sv_q, zv = c.decompose(key)
    assert tid == 2
    assert sv_q == round(10.5 * 128)
    assert zv == 200


def test_field_priority_tid_over_sv_over_zv():
    """Section 5.2: TID dominates, then SV, then ZV."""
    c = codec()
    assert c.compose(1, 0.0, 0) > c.compose(0, 400.0, 255)
    assert c.compose(0, 2.0, 0) > c.compose(0, 1.9, 255)
    assert c.compose(0, 2.0, 10) > c.compose(0, 2.0, 9)


@settings(max_examples=60, deadline=None)
@given(
    tid=st.integers(min_value=0, max_value=2),
    sv_q=st.integers(min_value=0, max_value=(1 << 16) - 1),
    zv=st.integers(min_value=0, max_value=255),
)
def test_zv_of_agrees_with_decompose(tid, sv_q, zv):
    """The scan hot path's mask extraction equals the full unpack."""
    c = codec()
    key = c.compose_quantized(tid, sv_q, zv)
    assert c.zv_of(key) == zv
    assert c.zv_of(key) == c.decompose(key)[2]


def test_zv_of_on_zv_first_layout():
    """The ablation codec moves the ZV field; zv_of must follow it."""
    from repro.core.ablation import ZVFirstKeyCodec

    c = ZVFirstKeyCodec(tid_count=3, sv_bits=16, zv_bits=8, sv_scale=128)
    key = c.compose_quantized(2, 1234, 200)
    assert c.zv_of(key) == 200
    assert c.zv_of(key) == c.decompose(key)[2]


def test_quantization_preserves_order():
    c = codec()
    values = [2.0, 2.2, 2.4, 2.6, 2.8, 4.0, 4.6]
    quantized = [c.quantize_sv(v) for v in values]
    assert quantized == sorted(quantized)
    assert len(set(quantized)) == len(values)


def test_search_range_brackets_one_sv():
    c = codec()
    lo, hi = c.search_range(tid=1, sv=3.5, z_lo=10, z_hi=20)
    assert c.decompose(lo) == (1, c.quantize_sv(3.5), 10)
    assert c.decompose(hi) == (1, c.quantize_sv(3.5), 20)
    assert lo < hi


def test_validation():
    c = codec()
    with pytest.raises(ValueError):
        c.compose(3, 1.0, 0)  # tid out of range
    with pytest.raises(ValueError):
        c.compose(0, -1.0, 0)  # negative sv
    with pytest.raises(ValueError):
        c.compose(0, 1.0, 1 << 9)  # zv too wide
    with pytest.raises(ValueError):
        c.compose(0, 1 << 10, 0)  # sv overflows sv_bits at scale 128
    with pytest.raises(ValueError):
        PEBKeyCodec(tid_count=0, sv_bits=4, zv_bits=4)
    with pytest.raises(ValueError):
        PEBKeyCodec(tid_count=1, sv_bits=0, zv_bits=4)
    with pytest.raises(ValueError):
        PEBKeyCodec(tid_count=1, sv_bits=4, zv_bits=4, sv_scale=0)


@settings(max_examples=200, deadline=None)
@given(
    tid=st.integers(0, 2),
    sv=st.floats(min_value=0, max_value=500),
    zv=st.integers(0, 255),
)
def test_round_trip_property(tid, sv, zv):
    c = codec()
    tid2, sv_q, zv2 = c.decompose(c.compose(tid, sv, zv))
    assert (tid2, zv2) == (tid, zv)
    assert sv_q == c.quantize_sv(sv)


@settings(max_examples=200, deadline=None)
@given(
    tid=st.integers(0, 2),
    sv_a=st.floats(min_value=0, max_value=500),
    sv_b=st.floats(min_value=0, max_value=500),
    zv_a=st.integers(0, 255),
    zv_b=st.integers(0, 255),
)
def test_key_order_respects_lexicographic_fields(tid, sv_a, sv_b, zv_a, zv_b):
    c = codec()
    key_a = c.compose(tid, sv_a, zv_a)
    key_b = c.compose(tid, sv_b, zv_b)
    field_a = (c.quantize_sv(sv_a), zv_a)
    field_b = (c.quantize_sv(sv_b), zv_b)
    assert (key_a < key_b) == (field_a < field_b)
