"""Tests for the experiment harness: I/O accounting, update rounds, and
result equivalence at measurement time."""

import pytest

from repro.bench.harness import ExperimentConfig, ExperimentHarness


def small_config(**overrides):
    fields = dict(
        n_users=300,
        n_policies=8,
        n_queries=6,
        window_side=250.0,
        k=3,
        page_size=1024,
        buffer_pages=20,
        build_buffer_pages=512,
        seed=13,
    )
    fields.update(overrides)
    return ExperimentConfig(**fields)


@pytest.fixture(scope="module")
def harness():
    return ExperimentHarness(small_config())


def test_build_populates_both_indexes(harness):
    assert len(harness.peb_tree) == 300
    assert len(harness.bx_tree) == 300
    assert harness.peb_leaf_count > 1


def test_prq_batch_measures_and_verifies(harness):
    costs = harness.run_prq_batch(check_results=True)
    assert costs.n_queries == 6
    assert costs.peb_io >= 0
    assert costs.baseline_io > 0
    assert len(costs.peb_result_sizes) == 6


def test_pknn_batch_measures_and_verifies(harness):
    costs = harness.run_pknn_batch(check_results=True)
    assert costs.baseline_io > 0
    assert costs.speedup > 0


def test_window_override_changes_workload(harness):
    wide = harness.run_prq_batch(window_side=900.0)
    narrow = harness.run_prq_batch(window_side=50.0)
    assert wide.baseline_io > narrow.baseline_io


def test_k_override(harness):
    costs = harness.run_pknn_batch(check_results=True, k=1)
    assert costs.n_queries == 6


def test_measurement_resets_counters(harness):
    harness.run_prq_batch()
    first = harness.peb_pool.stats.physical_reads
    harness.run_prq_batch()
    # The second batch starts from zero — counters do not accumulate.
    assert harness.peb_pool.stats.physical_reads <= first * 2 + 10


def test_network_distribution_builds():
    config = small_config(distribution="network", n_destinations=20, n_users=150)
    harness = ExperimentHarness(config)
    costs = harness.run_prq_batch(check_results=True)
    assert costs.n_queries == 6


def test_unknown_distribution_rejected():
    with pytest.raises(ValueError):
        ExperimentHarness(small_config(distribution="clustered"))


def test_update_rounds_keep_results_correct():
    harness = ExperimentHarness(small_config(n_users=200))
    for _ in range(3):
        harness.apply_update_round(0.25)
        costs = harness.run_prq_batch(check_results=True)
        assert costs.n_queries == 6
    assert harness.now == pytest.approx(3 * 0.25 * 120.0)
    knn_costs = harness.run_pknn_batch(check_results=True)
    assert knn_costs.n_queries == 6


def test_update_round_validates_fraction():
    harness = ExperimentHarness(small_config(n_users=100))
    with pytest.raises(ValueError):
        harness.apply_update_round(0.0)
    with pytest.raises(ValueError):
        harness.apply_update_round(1.5)


def test_config_scaled_helper():
    config = small_config()
    bigger = config.scaled(n_users=500)
    assert bigger.n_users == 500
    assert bigger.n_policies == config.n_policies
    assert config.n_users == 300  # original untouched


def test_run_sharded_measures_and_verifies(harness):
    costs = harness.run_sharded(2, workload="uniform", n_updates=150, n_queries=5)
    assert costs.n_shards == 2
    assert costs.workload == "uniform"
    assert 0 < costs.ops_applied <= 150
    assert costs.n_queries == 5
    assert costs.balance_skew >= 1.0
    assert costs.single_ops_per_write > 0
    assert costs.sharded_ops_per_write > 0
    # The harness's own indexes stay untouched.
    assert harness.now == 0.0
    assert len(harness.peb_tree) == 300


def test_run_sharded_hotspot_workload(harness):
    costs = harness.run_sharded(2, workload="hotspot", n_updates=150, n_queries=5)
    assert costs.workload == "hotspot"
    assert costs.ops_applied > 0
    assert costs.sharded_query_reads >= 0


def test_run_sharded_same_seed_same_workload(harness):
    first = harness.run_sharded(1, workload="uniform", n_updates=80, n_queries=4)
    second = harness.run_sharded(2, workload="uniform", n_updates=80, n_queries=4)
    # Identical workload across shard counts: same ops and same
    # single-tree reference numbers row to row.
    assert first.ops_applied == second.ops_applied
    assert first.single_update_writes == second.single_update_writes
    assert first.single_query_reads == second.single_query_reads


def test_run_sharded_validates_inputs(harness):
    with pytest.raises(ValueError):
        harness.run_sharded(0)
    with pytest.raises(ValueError):
        harness.run_sharded(2, workload="frob")
