"""Tests for the unified query engine: planner, scanner, batch executor."""

import random

import pytest

from repro.bench.harness import ExperimentConfig, ExperimentHarness
from repro.bench.oracle import brute_force_pknn, brute_force_prq
from repro.core.pknn import pknn
from repro.core.prq import prq
from repro.engine import BandScanner, QueryEngine
from repro.spatial.geometry import Rect
from repro.workloads.queries import KnnQuerySpec, RangeQuerySpec

from tests.conftest import build_world


# ----------------------------------------------------------------------
# Planner
# ----------------------------------------------------------------------


def test_plan_range_orders_bands_partition_major(small_world):
    world = small_world
    engine = QueryEngine(world.peb)
    issuer = world.uids[5]
    window = Rect(100, 400, 100, 400)
    plan = engine.planner.plan_range(issuer, window, 5.0)

    friends = world.store.friend_list(issuer)
    assert plan.friends == friends
    assert len(plan.contexts) == len(world.partitioner.live_labels(5.0))
    # One band per (live partition with a span, friend), partition-major,
    # friends ascending by SV inside each partition.
    assert len(plan.bands) % len(friends) == 0
    per_partition = [
        plan.bands[i : i + len(friends)]
        for i in range(0, len(plan.bands), len(friends))
    ]
    for chunk in per_partition:
        assert [planned.friend_uid for planned in chunk] == [
            uid for _, uid in friends
        ]
        assert len({planned.band.tid for planned in chunk}) == 1
        svs = [planned.band.sv_lo_q for planned in chunk]
        assert svs == sorted(svs)


def test_plan_range_without_friends_is_empty(small_world):
    world = small_world
    engine = QueryEngine(world.peb)
    stranger = max(world.uids) + 1000
    plan = engine.planner.plan_range(stranger, Rect(0, 1000, 0, 1000), 5.0)
    assert plan.bands == []
    assert plan.friends == []


def test_plan_seed_covers_all_partitions(small_world):
    world = small_world
    engine = QueryEngine(world.peb)
    issuer = world.uids[0]
    plan = engine.planner.plan_seed(issuer)
    friends = world.store.friend_list(issuer)
    assert len(plan.bands) == world.partitioner.num_partitions * len(friends)
    for planned in plan.bands:
        assert planned.band.z_lo == 0
        assert planned.band.z_hi == world.grid.max_z


# ----------------------------------------------------------------------
# Band scanner
# ----------------------------------------------------------------------


def test_scanner_memoizes_identical_bands(small_world):
    world = small_world
    engine = QueryEngine(world.peb)
    issuer = world.uids[2]
    sv, _ = world.store.friend_list(issuer)[0]
    band = engine.planner.band(0, sv, 0, world.grid.max_z)

    scanner = BandScanner(world.peb)
    first = scanner.scan(band)
    second = scanner.scan(band)
    assert first == second
    assert scanner.physical_scans == 1
    assert scanner.memo_hits == 1
    assert scanner.requests == 2


def test_scanner_entries_match_direct_tree_scan(small_world):
    world = small_world
    engine = QueryEngine(world.peb)
    issuer = world.uids[7]
    scanner = BandScanner(world.peb)
    for sv, _ in world.store.friend_list(issuer)[:5]:
        band = engine.planner.band(1, sv, 0, world.grid.max_z)
        scanned = [obj.uid for _, obj in scanner.scan(band)]
        direct = [
            obj.uid
            for obj in world.peb.scan_sv_zrange(1, sv, 0, world.grid.max_z)
        ]
        assert scanned == direct


def test_prefetch_serves_contained_requests_without_new_scans(small_world):
    world = small_world
    engine = QueryEngine(world.peb)
    issuer = world.uids[4]
    window_a = Rect(100, 400, 100, 400)
    window_b = Rect(200, 500, 200, 500)  # overlaps window_a
    plan_a = engine.planner.plan_range(issuer, window_a, 5.0)
    plan_b = engine.planner.plan_range(issuer, window_b, 5.0)

    scanner = BandScanner(world.peb)
    scanner.prefetch(
        planned.band for plan in (plan_a, plan_b) for planned in plan.bands
    )
    after_prefetch = scanner.physical_scans
    assert after_prefetch > 0
    for plan in (plan_a, plan_b):
        for planned in plan.bands:
            scanner.scan(planned.band)
    assert scanner.physical_scans == after_prefetch
    assert scanner.store_hits > 0


def test_prefetch_store_returns_exact_band_contents(small_world):
    world = small_world
    engine = QueryEngine(world.peb)
    issuer = world.uids[9]
    window = Rect(50, 650, 50, 650)
    plan = engine.planner.plan_range(issuer, window, 5.0)

    prefetched = BandScanner(world.peb)
    prefetched.prefetch(planned.band for planned in plan.bands)
    fresh = BandScanner(world.peb)
    for planned in plan.bands:
        served = prefetched.scan(planned.band)
        scanned = fresh.scan(planned.band)
        assert [(zv, obj.uid) for zv, obj in served] == [
            (zv, obj.uid) for zv, obj in scanned
        ]


# ----------------------------------------------------------------------
# Single-query execution
# ----------------------------------------------------------------------


def test_execute_range_matches_brute_force(small_world):
    world = small_world
    engine = QueryEngine(world.peb)
    for query in world.query_generator().range_queries(world.uids, 15, 300.0, 5.0):
        found = []
        engine.execute_range(
            query.q_uid,
            query.window,
            query.t_query,
            lambda obj, x, y: found.append(obj.uid) or False,
        )
        expected = brute_force_prq(
            world.states, world.store, query.q_uid, query.window, query.t_query
        )
        assert set(found) == expected


def test_execute_range_stops_early_on_match_request(small_world):
    world = small_world
    engine = QueryEngine(world.peb)
    window = Rect(0, 1000, 0, 1000)
    issuer = next(
        uid
        for uid in world.uids
        if brute_force_prq(world.states, world.store, uid, window, 5.0)
    )
    execution = engine.execute_range(issuer, window, 5.0, lambda o, x, y: True)
    assert execution.stopped_early
    full = engine.execute_range(issuer, window, 5.0)
    assert not full.stopped_early
    assert execution.candidates_examined <= full.candidates_examined


def test_execution_stats_account_bands(small_world):
    world = small_world
    engine = QueryEngine(world.peb)
    issuer = world.uids[11]
    execution = engine.execute_range(issuer, Rect(0, 1000, 0, 1000), 5.0)
    stats = execution.stats
    # Requests are the planned bands minus those the skip rule dropped.
    assert 0 < stats.bands_requested <= len(
        engine.planner.plan_range(issuer, Rect(0, 1000, 0, 1000), 5.0).bands
    )
    # With a fresh scanner every request is either physical or deduped.
    assert stats.bands_scanned + stats.bands_deduped == stats.bands_requested
    assert stats.candidates_examined == execution.candidates_examined
    assert 0.0 <= stats.dedup_ratio <= 1.0


# ----------------------------------------------------------------------
# Batch execution
# ----------------------------------------------------------------------


def test_batch_results_identical_to_individual_runs(small_world):
    world = small_world
    specs = world.query_generator().range_queries(world.uids, 24, 250.0, 5.0)
    engine = QueryEngine(world.peb)
    report = engine.execute_batch(specs)
    assert len(report.results) == len(specs)
    for spec, batched in zip(specs, report.results):
        single = prq(world.peb, spec.q_uid, spec.window, spec.t_query)
        assert batched.uids == single.uids
        assert batched.candidates_examined == single.candidates_examined


def test_batch_mixed_specs_match_individual_runs(small_world):
    world = small_world
    generator = world.query_generator()
    specs = generator.mixed_queries(world.states, 16, 300.0, 3, 5.0)
    assert any(isinstance(spec, RangeQuerySpec) for spec in specs)
    assert any(isinstance(spec, KnnQuerySpec) for spec in specs)

    report = QueryEngine(world.peb).execute_batch(specs)
    for spec, batched in zip(specs, report.results):
        if isinstance(spec, RangeQuerySpec):
            single = prq(world.peb, spec.q_uid, spec.window, spec.t_query)
            assert batched.uids == single.uids
        else:
            single = pknn(
                world.peb, spec.q_uid, spec.qx, spec.qy, spec.k, spec.t_query
            )
            assert [round(d, 9) for d, _ in batched.neighbors] == [
                round(d, 9) for d, _ in single.neighbors
            ]


def test_batch_knn_matches_brute_force(small_world):
    world = small_world
    specs = world.query_generator().knn_queries(world.states, 8, 4, 5.0)
    report = QueryEngine(world.peb).execute_batch(specs)
    for spec, batched in zip(specs, report.results):
        expected = brute_force_pknn(
            world.states, world.store, spec.q_uid, spec.qx, spec.qy, spec.k,
            spec.t_query,
        )
        assert [round(d, 9) for d, _ in batched.neighbors] == [
            round(d, 9) for d, _ in expected
        ]


def test_batch_knn_first_round_joins_the_prefetch_set(small_world):
    """Batch-aware kNN: the Dk-estimate probe bands are prefetched, so
    kNN queries share the batch's physical scans instead of joining it
    only via the scanner memo — with identical results."""
    world = small_world
    specs = world.query_generator().knn_queries(world.states, 12, 4, 5.0)
    engine = QueryEngine(world.peb)
    plain = engine.execute_batch(specs, prefetch=False)
    prefetched = engine.execute_batch(specs, prefetch=True)
    for expected, got in zip(plain.results, prefetched.results):
        assert [round(d, 9) for d, _ in got.neighbors] == [
            round(d, 9) for d, _ in expected.neighbors
        ]
        assert got.candidates_examined == expected.candidates_examined
    # The probe turned first-round requests into store hits: fewer
    # post-prefetch physical scans than the memo tier alone needed.
    assert prefetched.stats.bands_scanned < plain.stats.bands_scanned
    assert prefetched.stats.bands_deduped > plain.stats.bands_deduped


def test_knn_probe_bands_match_first_round_requests(small_world):
    """The probe must name exactly the bands round one scans, or the
    prefetch store could never serve them."""
    world = small_world
    engine = QueryEngine(world.peb)
    spec = world.query_generator().knn_queries(world.states, 1, 3, 5.0)[0]
    probe = engine.planner.plan_knn_probe(
        spec.q_uid, spec.qx, spec.qy, spec.k, spec.t_query
    )
    friends = engine.planner.friends(spec.q_uid)
    contexts = engine.planner.contexts(spec.t_query)
    if friends:
        spans = sum(
            1
            for context in contexts
            if world.grid.z_span(
                context.enlarged(
                    Rect.from_center(
                        spec.qx, spec.qy, engine.planner.knn_step(spec.k)
                    )
                )
            )
            is not None
        )
        assert len(probe) == spans * len(friends)
    for band in probe:
        assert band.is_single_sv


def test_batch_rejects_unknown_spec_types(small_world):
    engine = QueryEngine(small_world.peb)
    with pytest.raises(TypeError):
        engine.execute_batch(["not a query spec"])


def test_batch_without_prefetch_still_deduplicates(small_world):
    world = small_world
    spec = world.query_generator().range_queries(world.uids, 1, 300.0, 5.0)[0]
    engine = QueryEngine(world.peb)
    report = engine.execute_batch([spec, spec, spec], prefetch=False)
    assert report.stats.bands_deduped > 0
    uids = {frozenset(result.uids) for result in report.results}
    assert len(uids) == 1


def test_batch_on_zv_first_tree_matches_individual_runs():
    """Prefetch must no-op on non-SV-major layouts: subdividing a
    ZV-first scan by ZV would return entries a direct scan excludes.
    Batch results (and candidate counts) must match sequential runs on
    the ablation codec too."""
    from repro.core.ablation import make_zv_first_tree
    from repro.storage.buffer import BufferPool
    from repro.storage.disk import SimulatedDisk

    world = build_world(n_users=200, n_policies=8, seed=47)
    pool = BufferPool(SimulatedDisk(page_size=1024), capacity=512)
    swapped = make_zv_first_tree(pool, world.grid, world.partitioner, world.store)
    for obj in world.states.values():
        swapped.insert(obj)

    specs = world.query_generator().range_queries(world.uids, 12, 300.0, 5.0)
    report = QueryEngine(swapped).execute_batch(specs)
    for spec, batched in zip(specs, report.results):
        single = prq(swapped, spec.q_uid, spec.window, spec.t_query)
        assert batched.uids == single.uids
        assert batched.candidates_examined == single.candidates_examined


def test_batch_of_32_reduces_physical_reads_per_query():
    """The acceptance headline: >= 32 concurrent PRQs batched perform
    measurably fewer physical reads per query than one-at-a-time, with
    identical result sets (checked inside run_batched_prq)."""
    harness = ExperimentHarness(
        ExperimentConfig(
            n_users=1500,
            n_policies=12,
            n_queries=32,
            page_size=1024,
            window_side=250.0,
            seed=13,
        )
    )
    costs = harness.run_batched_prq()
    assert costs.n_queries == 32
    assert costs.batched_io < costs.sequential_io
    # A real fraction of band requests were served from shared scans.
    assert costs.dedup_ratio > 0.1


# ----------------------------------------------------------------------
# Seeding (continuous registration) through the engine
# ----------------------------------------------------------------------


def test_collect_friend_states_tracks_exactly_the_indexed_friends(small_world):
    world = small_world
    engine = QueryEngine(world.peb)
    for issuer in world.uids[:10]:
        tracked = engine.collect_friend_states(issuer)
        friends = {uid for _, uid in world.store.friend_list(issuer)}
        indexed_friends = {uid for uid in friends if world.peb.contains(uid)}
        assert set(tracked) == indexed_friends
        for uid, obj in tracked.items():
            assert obj.uid == uid
