"""Tests for time intervals and interval unions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.policy.timeset import DEFAULT_TIME_DOMAIN, TimeInterval, TimeSet, fold

times = st.floats(min_value=0, max_value=1440, allow_nan=False)


def test_interval_basics():
    work = TimeInterval(480, 1020)  # 8am - 5pm in minutes
    assert work.duration == 540
    assert work.contains(480)
    assert work.contains(1019.9)
    assert not work.contains(1020)  # half-open
    assert not work.contains(100)


def test_inverted_interval_rejected():
    with pytest.raises(ValueError):
        TimeInterval(100, 50)


def test_empty_interval_contains_nothing():
    empty = TimeInterval(100, 100)
    assert empty.duration == 0
    assert not empty.contains(100)


def test_overlap():
    a = TimeInterval(0, 100)
    assert a.overlap(TimeInterval(50, 150)) == 50
    assert a.overlap(TimeInterval(100, 200)) == 0
    assert a.overlap(TimeInterval(20, 30)) == 10
    assert a.intersects(TimeInterval(99, 200))
    assert not a.intersects(TimeInterval(100, 200))


def test_timeset_normalizes():
    ts = TimeSet([TimeInterval(50, 80), TimeInterval(0, 60), TimeInterval(200, 300)])
    assert ts.intervals == [TimeInterval(0, 80), TimeInterval(200, 300)]
    assert ts.duration == 180


def test_timeset_drops_empty_pieces():
    ts = TimeSet([TimeInterval(5, 5), TimeInterval(1, 2)])
    assert ts.intervals == [TimeInterval(1, 2)]


def test_timeset_contains():
    ts = TimeSet([TimeInterval(0, 10), TimeInterval(20, 30)])
    assert ts.contains(5)
    assert not ts.contains(15)
    assert ts.contains(25)


def test_timeset_overlap_with_interval_and_set():
    ts = TimeSet([TimeInterval(0, 10), TimeInterval(20, 30)])
    assert ts.overlap(TimeInterval(5, 25)) == 10
    other = TimeSet([TimeInterval(8, 22)])
    assert ts.overlap(other) == 4
    assert ts.intersects(other)


def test_timeset_equality():
    a = TimeSet([TimeInterval(0, 10)])
    b = TimeSet([TimeInterval(0, 5), TimeInterval(5, 10)])
    assert a == b


def test_fold():
    assert fold(0) == 0
    assert fold(1440) == 0
    assert fold(1500) == 60
    assert fold(2 * 1440 + 7) == 7
    assert DEFAULT_TIME_DOMAIN == 1440.0


@settings(max_examples=100, deadline=None)
@given(s1=times, d1=st.floats(0, 500), s2=times, d2=st.floats(0, 500))
def test_overlap_symmetry_and_bounds(s1, d1, s2, d2):
    a = TimeInterval(s1, s1 + d1)
    b = TimeInterval(s2, s2 + d2)
    assert a.overlap(b) == pytest.approx(b.overlap(a))
    assert a.overlap(b) <= min(a.duration, b.duration) + 1e-9
    assert a.overlap(b) >= 0


@settings(max_examples=100, deadline=None)
@given(
    pieces=st.lists(
        st.tuples(times, st.floats(0, 200)), min_size=0, max_size=6
    )
)
def test_timeset_duration_never_exceeds_piece_sum(pieces):
    intervals = [TimeInterval(start, start + width) for start, width in pieces]
    ts = TimeSet(intervals)
    assert ts.duration <= sum(iv.duration for iv in intervals) + 1e-9
    # Normalized pieces are sorted and disjoint.
    for first, second in zip(ts.intervals, ts.intervals[1:]):
        assert first.end < second.start
