"""Unit tests for the I/O counter bundle."""

from repro.storage.stats import IOStats


def test_counters_start_at_zero():
    stats = IOStats()
    assert stats.physical_reads == 0
    assert stats.physical_writes == 0
    assert stats.logical_reads == 0
    assert stats.logical_writes == 0
    assert stats.total_io == 0


def test_total_io_sums_reads_and_writes():
    stats = IOStats(physical_reads=3, physical_writes=4)
    assert stats.total_io == 7


def test_hit_ratio_idle_is_one():
    assert IOStats().hit_ratio == 1.0


def test_hit_ratio_counts_misses():
    stats = IOStats(physical_reads=2, logical_reads=10)
    assert stats.hit_ratio == 0.8


def test_reset_zeroes_everything():
    stats = IOStats(physical_reads=1, physical_writes=2, logical_reads=3)
    stats.mark("x")
    stats.reset()
    assert stats.snapshot() == {
        "physical_reads": 0,
        "physical_writes": 0,
        "logical_reads": 0,
        "logical_writes": 0,
    }
    # Marks are cleared too; deltas restart from zero.
    assert stats.reads_since("x") == 0


def test_mark_and_deltas():
    stats = IOStats()
    stats.physical_reads = 5
    stats.physical_writes = 1
    stats.mark("batch")
    stats.physical_reads += 7
    stats.physical_writes += 2
    assert stats.reads_since("batch") == 7
    assert stats.writes_since("batch") == 2


def test_unknown_mark_measures_from_zero():
    stats = IOStats(physical_reads=4)
    assert stats.reads_since("never-marked") == 4


def test_snapshot_is_plain_dict():
    stats = IOStats(physical_reads=1, logical_writes=9)
    snap = stats.snapshot()
    snap["physical_reads"] = 999
    assert stats.physical_reads == 1
