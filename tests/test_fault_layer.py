"""Unit tests for the fault-tolerance building blocks.

Covers the pieces of :mod:`repro.fault` in isolation — retry policy
arithmetic, the circuit-breaker state machine, the shard supervisor's
retry/quarantine/accounting contract — plus the buffer pool's sweep
guard, the no-steal window that makes write sweeps retryable.
"""

import pytest

from repro.fault import (
    BreakerPolicy,
    CircuitBreaker,
    FaultStats,
    RetryPolicy,
    ShardSupervisor,
)
from repro.fault.breaker import CLOSED, HALF_OPEN, OPEN
from repro.fault.retry import RetryExhaustedError, call_with_retry
from repro.simio.clock import SimClock
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.storage.faults import DiskFaultError
from repro.storage.page import RawBytesSerializer


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_backoff_us=-1.0)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5)


def test_backoff_grows_exponentially_and_caps():
    policy = RetryPolicy(
        base_backoff_us=100.0, multiplier=2.0, max_backoff_us=350.0, jitter=0.0
    )
    assert policy.backoff_us(1) == 100.0
    assert policy.backoff_us(2) == 200.0
    assert policy.backoff_us(3) == 350.0  # capped, not 400
    assert policy.backoff_us(9) == 350.0


def test_backoff_jitter_is_deterministic_and_bounded():
    policy = RetryPolicy(base_backoff_us=100.0, jitter=0.25)
    a = policy.backoff_us(1, token=0)
    b = policy.backoff_us(1, token=1)
    assert a == policy.backoff_us(1, token=0)  # replayable
    assert a != b  # tokens desynchronize
    for token in range(8):
        value = policy.backoff_us(1, token=token)
        assert 100.0 <= value <= 125.0  # within the jitter headroom


def test_call_with_retry_masks_transients_and_prices_backoff():
    clock = SimClock()
    calls = {"n": 0}

    def flaky():
        calls["n"] += 1
        if calls["n"] < 3:
            raise DiskFaultError("flaky")
        return "ok"

    policy = RetryPolicy(max_attempts=4, base_backoff_us=100.0, jitter=0.0)
    assert call_with_retry(flaky, policy, clock=clock) == "ok"
    assert calls["n"] == 3
    assert clock.elapsed == pytest.approx(100.0 + 200.0)  # two backoffs


def test_call_with_retry_exhausts_with_chained_cause():
    def always():
        raise DiskFaultError("permanent")

    policy = RetryPolicy(max_attempts=3, base_backoff_us=0.0)
    with pytest.raises(RetryExhaustedError) as excinfo:
        call_with_retry(always, policy, token="shard7")
    assert excinfo.value.attempts == 3
    assert isinstance(excinfo.value.last_error, DiskFaultError)


def test_call_with_retry_propagates_non_retryable():
    def bug():
        raise KeyError("not a medium fault")

    with pytest.raises(KeyError):
        call_with_retry(bug, RetryPolicy())


# ----------------------------------------------------------------------
# CircuitBreaker
# ----------------------------------------------------------------------


def test_breaker_policy_validation():
    with pytest.raises(ValueError):
        BreakerPolicy(failure_threshold=0)
    with pytest.raises(ValueError):
        BreakerPolicy(cooldown_us=-1.0)
    with pytest.raises(ValueError):
        BreakerPolicy(cooldown_calls=0)


def test_breaker_opens_at_threshold_and_probes_after_cooldown():
    breaker = CircuitBreaker(BreakerPolicy(failure_threshold=2))
    assert breaker.state == CLOSED
    assert not breaker.record_failure(now=0.0)  # 1 of 2
    assert breaker.record_failure(now=10.0)  # opens
    assert breaker.state == OPEN and breaker.quarantined

    allowed, probing = breaker.allow(now=10.0, cooldown=100.0)
    assert (allowed, probing) == (False, False)  # still cooling down
    allowed, probing = breaker.allow(now=110.0, cooldown=100.0)
    assert (allowed, probing) == (True, True)  # the half-open probe
    assert breaker.state == HALF_OPEN


def test_probe_success_recovers_probe_failure_reopens():
    breaker = CircuitBreaker(BreakerPolicy(failure_threshold=1))
    breaker.record_failure(now=0.0)
    breaker.allow(now=100.0, cooldown=50.0)
    assert breaker.record_failure(now=100.0)  # probe failed: reopen counts
    assert breaker.state == OPEN

    breaker.allow(now=200.0, cooldown=50.0)
    assert breaker.record_success()  # probe passed: a recovery
    assert breaker.state == CLOSED and not breaker.quarantined


def test_breaker_reset_force_closes():
    breaker = CircuitBreaker(BreakerPolicy(failure_threshold=1))
    assert not breaker.reset()  # closed already: not a recovery
    breaker.record_failure(now=0.0)
    assert breaker.reset()
    assert breaker.state == CLOSED


# ----------------------------------------------------------------------
# ShardSupervisor
# ----------------------------------------------------------------------


def test_supervisor_retries_to_success_and_counts():
    supervisor = ShardSupervisor(
        2, retry=RetryPolicy(max_attempts=3, base_backoff_us=0.0)
    )
    calls = {"n": 0}

    def flaky():
        calls["n"] += 1
        if calls["n"] == 1:
            raise DiskFaultError("once")
        return 41 + 1

    ok, result = supervisor.run(0, flaky)
    assert (ok, result) == (True, 42)
    assert supervisor.stats.faults == 1
    assert supervisor.stats.retries == 1
    assert supervisor.stats.exhausted == 0
    assert supervisor.quarantined() == []


def test_supervisor_exhaustion_quarantines_and_degrades():
    supervisor = ShardSupervisor(
        3, retry=RetryPolicy(max_attempts=2, base_backoff_us=0.0)
    )

    def always():
        raise DiskFaultError("dead shard")

    ok, result = supervisor.run(1, always)
    assert (ok, result) == (False, None)
    assert supervisor.stats.exhausted == 1
    assert supervisor.stats.quarantines == 1
    assert supervisor.is_quarantined(1)
    assert supervisor.quarantined() == [1]
    assert not supervisor.admits(1)
    assert supervisor.admits(0) and supervisor.admits(2)


def test_supervisor_probe_recovers_after_cooldown_calls():
    supervisor = ShardSupervisor(
        1,
        retry=RetryPolicy(max_attempts=1),
        breaker=BreakerPolicy(failure_threshold=1, cooldown_calls=3),
    )
    supervisor.run(0, lambda: (_ for _ in ()).throw(DiskFaultError("x")))
    assert supervisor.is_quarantined(0)
    # Untimed: the cooldown is measured in admission calls.
    denied = 0
    while not supervisor.admits(0):
        denied += 1
        assert denied < 20
    assert supervisor.stats.probes == 1
    ok, _ = supervisor.run(0, lambda: "healthy")
    assert ok
    assert supervisor.stats.recoveries == 1
    assert not supervisor.is_quarantined(0)


def test_supervisor_backoff_charges_virtual_time():
    clock = SimClock()
    supervisor = ShardSupervisor(
        1,
        retry=RetryPolicy(max_attempts=2, base_backoff_us=500.0, jitter=0.0),
        clock=clock,
    )
    state = {"n": 0}

    def flaky():
        state["n"] += 1
        if state["n"] == 1:
            raise DiskFaultError("once")
        return None

    supervisor.run(0, flaky)
    assert clock.elapsed == pytest.approx(500.0)
    assert supervisor.stats.backoff_us == pytest.approx(500.0)


def test_supervisor_propagates_non_retryable_without_quarantine():
    supervisor = ShardSupervisor(1)

    def bug():
        raise AssertionError("caller bug, not a medium fault")

    with pytest.raises(AssertionError):
        supervisor.run(0, bug)
    assert supervisor.stats.faults == 0
    assert not supervisor.is_quarantined(0)


def test_supervisor_reset_counts_recovery():
    supervisor = ShardSupervisor(2, retry=RetryPolicy(max_attempts=1))
    supervisor.run(1, lambda: (_ for _ in ()).throw(DiskFaultError("x")))
    assert supervisor.is_quarantined(1)
    supervisor.reset(1)
    assert not supervisor.is_quarantined(1)
    assert supervisor.stats.recoveries == 1
    supervisor.reset(1)  # idempotent: closed stays closed, no recovery
    assert supervisor.stats.recoveries == 1


def test_fault_stats_delta_and_snapshot():
    stats = FaultStats(faults=3, retries=2, backoff_us=100.0, bands_dropped=1)
    before = stats.copy()
    stats.faults += 2
    stats.updates_deferred += 5
    delta = stats.delta_from(before)
    assert delta.faults == 2
    assert delta.retries == 0
    assert delta.updates_deferred == 5
    assert delta.any_degradation
    assert not FaultStats(faults=9, retries=9).any_degradation
    snapshot = delta.snapshot()
    assert snapshot["faults"] == 2 and snapshot["updates_deferred"] == 5


# ----------------------------------------------------------------------
# Sweep guard (the no-steal window write sweeps retry under)
# ----------------------------------------------------------------------


def make_pool(capacity=4):
    disk = SimulatedDisk(page_size=64)
    return BufferPool(disk, capacity=capacity, serializer=RawBytesSerializer())


def test_sweep_guard_requires_clean_pool_and_no_nesting():
    pool = make_pool()
    page = pool.disk.allocate()
    pool.put(page, b"dirty")
    with pytest.raises(RuntimeError, match="clean pool"):
        pool.begin_sweep_guard()
    pool.flush()
    pool.begin_sweep_guard()
    with pytest.raises(RuntimeError, match="already active"):
        pool.begin_sweep_guard()
    pool.commit_sweep_guard()
    with pytest.raises(RuntimeError, match="no sweep guard"):
        pool.commit_sweep_guard()
    with pytest.raises(RuntimeError, match="no sweep guard"):
        pool.rollback_sweep_guard()


def test_sweep_guard_rollback_restores_pre_sweep_state():
    pool = make_pool()
    disk = pool.disk
    page = disk.allocate()
    pool.put(page, b"before")
    pool.flush()

    pool.begin_sweep_guard()
    pool.put(page, b"after")  # dirty the pre-existing page
    split = disk.allocate()  # a guard-window allocation (a split)
    pool.put(split, b"new leaf")
    pool.rollback_sweep_guard()

    assert not pool.guard_active
    assert not pool.dirty_pages
    assert disk.read(page) == b"before"  # never stolen, never flushed
    assert not disk.contains(split)  # the split page was freed
    assert split not in pool


def test_sweep_guard_never_steals_dirty_frames():
    pool = make_pool(capacity=2)
    disk = pool.disk
    pages = [disk.allocate() for _ in range(4)]
    for page in pages[:2]:
        pool.put(page, b"seed")
    pool.flush()

    pool.begin_sweep_guard()
    for page in pages:
        pool.put(page, bytes([page]))  # all dirty: pool must over-fill
    assert len(pool) == 4  # capacity exceeded rather than dirty-evict
    for page in pages[:2]:
        assert disk.read(page) == b"seed"  # disk still pre-sweep
    pool.commit_sweep_guard()
    assert len(pool) <= pool.capacity  # commit re-trims to capacity
    for page in pages:
        assert disk.read(page) == bytes([page])


def test_sweep_guard_commit_survives_a_write_fault_and_resumes():
    """A commit-time write fault leaves the guard resumable: nothing is
    lost, and re-committing finishes the flush idempotently."""
    from repro.storage.faults import FaultyDisk

    disk = FaultyDisk(page_size=64)
    pool = BufferPool(disk, capacity=4, serializer=RawBytesSerializer())
    pages = [disk.allocate() for _ in range(3)]
    for page in pages:
        pool.put(page, b"seed")
    pool.flush()

    pool.begin_sweep_guard()
    for page in pages:
        pool.put(page, bytes([page]))
    disk.fail_write_pages.add(pages[1])
    with pytest.raises(DiskFaultError):
        pool.commit_sweep_guard()
    assert pool.guard_active  # fault left the window open ...
    assert pages[1] in pool.dirty_pages  # ... and the undo state intact

    disk.heal()
    pool.commit_sweep_guard()  # resume: re-flush, idempotent
    assert not pool.guard_active
    for page in pages:
        assert disk.read(page) == bytes([page])


def test_invalidate_abandons_frames_dirty_set_and_guard():
    pool = make_pool()
    page = pool.disk.allocate()
    pool.put(page, b"v")
    pool.flush()
    pool.begin_sweep_guard()
    pool.put(page, b"w")
    pool.invalidate()
    assert len(pool) == 0
    assert not pool.dirty_pages
    assert not pool.guard_active
    assert pool.disk.read(page) == b"v"  # nothing was written back
