"""Property tests pinning the sharded deployment to the single tree.

The sharding layer is a *deployment* change, never a different index:
over randomized populations and workloads, an N-shard
:class:`repro.shard.ShardedPEBTree` driven by the scatter/gather
:class:`repro.shard.ShardedQueryEngine` and the shared
:class:`repro.engine.UpdatePipeline` must be observationally identical
to one PEB-tree driven by the plain engine —

* per-query results *and* ``candidates_examined`` for mixed
  range/kNN batches, for shards ∈ {1, 2, 4};
* scans of bands that straddle shard boundaries (the multi-SV
  span-scan bands), entry for entry, in key order;
* post-update ``fetch_all`` state, live-key memos, speed maxima, and
  per-shard structural/consistency audits after identical update
  streams flow through identical pipelines.
"""

import pytest

from repro.engine import QueryEngine, UpdatePipeline
from repro.shard import ShardedPEBTree, ShardedQueryEngine
from repro.workloads.queries import RangeQuerySpec

from tests.conftest import build_world

SEEDS = (5, 31)
SHARD_COUNTS = (1, 2, 4)


def build_sharded(world, n_shards, policy="sv", buffer_pages=512, **kwargs):
    sharded = ShardedPEBTree.build(
        n_shards,
        world.grid,
        world.partitioner,
        world.store,
        uids=world.uids,
        policy=policy,
        page_size=1024,
        buffer_pages=buffer_pages,
        **kwargs,
    )
    for uid in world.uids:
        sharded.insert(world.states[uid])
    return sharded


def single_entries(world):
    return list(world.peb.btree.items())


@pytest.fixture(params=SEEDS)
def world(request):
    return build_world(n_users=260, n_policies=8, seed=request.param)


# ----------------------------------------------------------------------
# Read path
# ----------------------------------------------------------------------


@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_sharded_batch_identical_to_single_tree(world, n_shards):
    sharded = build_sharded(world, n_shards)
    assert sharded.check_consistency() == []
    assert len(sharded) == len(world.peb)
    specs = world.query_generator().mixed_queries(world.states, 30, 260.0, 4, 5.0)

    single = QueryEngine(world.peb).execute_batch(specs)
    parallel = n_shards > 1  # exercise the thread-pool fast path too
    shard = ShardedQueryEngine(sharded, parallel_prefetch=parallel).execute_batch(specs)

    assert len(shard.results) == len(specs)
    for spec, expected, got in zip(specs, single.results, shard.results):
        if isinstance(spec, RangeQuerySpec):
            assert got.uids == expected.uids, spec
        else:
            assert [round(d, 9) for d, _ in got.neighbors] == [
                round(d, 9) for d, _ in expected.neighbors
            ], spec
        assert got.candidates_examined == expected.candidates_examined, spec
    assert shard.stats.candidates_examined == single.stats.candidates_examined
    assert shard.stats.shard_stats is not None
    assert shard.stats.shard_stats.n_shards == n_shards
    assert shard.stats.shard_stats.total_entries == len(world.peb)
    # The breakdown covers exactly this batch: it sums to the delta
    # counter it rides with.
    assert shard.stats.shard_stats.total_reads == shard.stats.physical_reads


@pytest.mark.parametrize("n_shards", (2, 4))
def test_boundary_straddling_band_scans_identically(world, n_shards):
    """A multi-SV band crossing every shard boundary, entry for entry."""
    sharded = build_sharded(world, n_shards)
    codec = world.peb.codec
    sv_lo, sv_hi = 0, (1 << codec.sv_bits) - 1
    band_checked = 0
    for tid in range(world.partitioner.num_partitions):
        # The widest possible span band: straddles every SV boundary.
        single = [
            (zv, obj.uid)
            for zv, obj in world.peb.scan_band(tid, sv_lo, sv_hi, 0, world.grid.max_z)
        ]
        sharded_rows = [
            (zv, obj.uid)
            for zv, obj in sharded.scan_band(tid, sv_lo, sv_hi, 0, world.grid.max_z)
        ]
        assert sharded_rows == single
        band_checked += len(single)
    assert band_checked == len(world.peb)  # every entry seen exactly once

    # And through the engine: the Figure 7 span-scan ablation plans
    # multi-SV bands over the friend list's [SV_min, SV_max] range.
    single_engine = QueryEngine(world.peb)
    shard_engine = ShardedQueryEngine(sharded)
    for spec in world.query_generator().range_queries(world.uids, 10, 320.0, 5.0):
        expected = single_engine.execute_span_scan(spec.q_uid, spec.window, spec.t_query)
        got = shard_engine.execute_span_scan(spec.q_uid, spec.window, spec.t_query)
        assert got.candidates_examined == expected.candidates_examined, spec


# ----------------------------------------------------------------------
# Write path
# ----------------------------------------------------------------------


@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_sharded_updates_identical_to_single_tree(world, n_shards):
    """Same stream, same pipeline, byte-identical end state."""
    sharded = build_sharded(world, n_shards)
    generator = world.query_generator()
    # Duration crosses a partition rollover, exercising the pipeline's
    # rollover flush on both sides (and, with repeats, last-write-wins).
    stream = generator.update_stream(world.states, 500, 3.0, 0.0, 130.0)

    with UpdatePipeline(sharded, capacity=64) as sharded_pipeline:
        sharded_pipeline.extend(stream)
    with UpdatePipeline(world.peb, capacity=64) as single_pipeline:
        single_pipeline.extend(stream)

    assert sharded.live_keys() == world.peb._live_keys
    assert list(sharded.items()) == single_entries(world)
    assert sharded.fetch_all() == [
        world.peb.records.unpack(payload)[0] for _, _, payload in single_entries(world)
    ]
    assert sharded.max_speed_x == world.peb.max_speed_x
    assert sharded.max_speed_y == world.peb.max_speed_y
    assert sharded.check_consistency() == []
    sharded.check_invariants()

    single_stats = single_pipeline.stats
    sharded_stats = sharded_pipeline.stats
    assert sharded_stats.ops == single_stats.ops
    assert sharded_stats.in_place_hits == single_stats.in_place_hits
    assert sharded_stats.moved == single_stats.moved
    assert sharded_stats.inserted == single_stats.inserted
    assert sharded_stats.flushes == single_stats.flushes
    assert sharded_stats.shard_stats is not None
    assert sharded_stats.shard_stats.n_shards == n_shards
    # The breakdown covers the pipeline's own flushes (no other actor
    # touched the pools here), so it sums to the accumulated counters.
    assert sharded_stats.shard_stats.total_reads == sharded_stats.physical_reads
    assert sharded_stats.shard_stats.total_writes == sharded_stats.physical_writes
    assert single_stats.shard_stats is None

    # Queries after the churn still agree.
    specs = generator.range_queries(world.uids, 12, 240.0, 130.0)
    single_report = QueryEngine(world.peb).execute_batch(specs)
    shard_report = ShardedQueryEngine(sharded).execute_batch(specs)
    for spec, expected, got in zip(specs, single_report.results, shard_report.results):
        assert got.uids == expected.uids, spec
        assert got.candidates_examined == expected.candidates_examined, spec


def test_tid_policy_migrates_entries_between_shards(world):
    """Under TID sharding a rollover moves an entry to another shard."""
    sharded = build_sharded(world, 3, policy="tid")
    generator = world.query_generator()
    # A long stream: update times cross time-partition boundaries, so
    # re-reported entries key into new TIDs and change shards.
    stream = generator.update_stream(world.states, 400, 3.0, 0.0, 220.0)

    before = sharded.shard_stats().entries
    with UpdatePipeline(sharded, capacity=50) as sharded_pipeline:
        sharded_pipeline.extend(stream)
    with UpdatePipeline(world.peb, capacity=50) as single_pipeline:
        single_pipeline.extend(stream)

    after = sharded.shard_stats().entries
    assert before != after  # entries migrated across TID shards
    assert sum(after) == len(world.peb)
    assert sharded_pipeline.stats.moved == single_pipeline.stats.moved
    assert sharded.live_keys() == world.peb._live_keys
    assert list(sharded.items()) == single_entries(world)
    assert sharded.check_consistency() == []


@pytest.mark.parametrize("n_shards", (2, 4))
def test_parallel_io_timed_identical_to_sequential(world, n_shards):
    """--parallel-io is a schedule change, never a different index.

    A timed deployment with overlapped scheduling (virtual fork/join,
    real thread pool, pipelined verification) must produce the same
    query results, ``candidates_examined``, physical I/O counters, and
    post-update tree state as the plain sequential deployment and the
    single tree — only the virtual clock may differ.
    """
    # Small per-shard buffers so the workload does real physical I/O —
    # a fully resident tree would make virtual time trivially zero.
    sequential = build_sharded(world, n_shards, buffer_pages=8)
    overlapped = build_sharded(
        world, n_shards, buffer_pages=8, latency="ssd", parallel_io=True
    )
    generator = world.query_generator()
    stream = generator.update_stream(world.states, 450, 3.0, 0.0, 130.0)

    with UpdatePipeline(world.peb, capacity=64) as single_pipeline:
        single_pipeline.extend(stream)
    with UpdatePipeline(sequential, capacity=64) as sequential_pipeline:
        sequential_pipeline.extend(stream)
    with UpdatePipeline(overlapped, capacity=64) as overlapped_pipeline:
        overlapped_pipeline.extend(stream)

    # Post-update state: identical across all three deployments.
    assert overlapped.live_keys() == world.peb._live_keys
    assert list(overlapped.items()) == single_entries(world)
    assert list(overlapped.items()) == list(sequential.items())
    assert overlapped.max_speed_x == world.peb.max_speed_x
    assert overlapped.max_speed_y == world.peb.max_speed_y
    assert overlapped.check_consistency() == []
    overlapped.check_invariants()
    assert overlapped_pipeline.stats.ops == sequential_pipeline.stats.ops
    assert (
        overlapped_pipeline.stats.leaves_visited
        == sequential_pipeline.stats.leaves_visited
    )
    # Physical I/O is schedule-independent; only virtual time is new.
    assert (
        overlapped_pipeline.stats.physical_reads
        == sequential_pipeline.stats.physical_reads
    )
    assert (
        overlapped_pipeline.stats.physical_writes
        == sequential_pipeline.stats.physical_writes
    )
    # Virtual time moves exactly when devices were touched (at high
    # shard counts a shard can fit its buffer and do no physical I/O).
    pipeline_io = (
        overlapped_pipeline.stats.physical_reads
        + overlapped_pipeline.stats.physical_writes
    )
    assert (overlapped_pipeline.stats.virtual_time_us > 0) == (pipeline_io > 0)
    assert sequential_pipeline.stats.virtual_time_us == 0

    specs = generator.mixed_queries(world.states, 24, 260.0, 4, 130.0)
    single_report = QueryEngine(world.peb).execute_batch(specs)
    sequential_report = ShardedQueryEngine(
        sequential, parallel_prefetch=False
    ).execute_batch(specs)
    overlapped_report = ShardedQueryEngine(overlapped).execute_batch(specs)

    for spec, expected, seq, par in zip(
        specs,
        single_report.results,
        sequential_report.results,
        overlapped_report.results,
    ):
        if isinstance(spec, RangeQuerySpec):
            assert par.uids == expected.uids == seq.uids, spec
        else:
            assert [round(d, 9) for d, _ in par.neighbors] == [
                round(d, 9) for d, _ in expected.neighbors
            ], spec
        assert (
            par.candidates_examined
            == expected.candidates_examined
            == seq.candidates_examined
        ), spec
    assert (
        overlapped_report.stats.physical_reads
        == sequential_report.stats.physical_reads
    )
    assert (
        overlapped_report.stats.bands_scanned
        == sequential_report.stats.bands_scanned
    )
    assert overlapped_report.stats.virtual_time_us > 0
    assert overlapped.latency_stats is not None
    # Every counted access was priced, and only counted accesses were.
    assert overlapped.latency_stats.reads == overlapped.stats.physical_reads
    assert overlapped.latency_stats.writes == overlapped.stats.physical_writes
    assert sequential.latency_stats is None


def test_sharded_update_batch_matches_single_update_batch(world):
    """The facade's run splitting vs the single tree's two sweeps."""
    sharded = build_sharded(world, 4)
    generator = world.query_generator()
    stream = generator.update_stream(world.states, 300, 3.0, 0.0, 90.0)
    batch = [(obj, obj.uid % 3) for obj in stream]

    single_result = world.peb.update_batch(batch)
    sharded_result = sharded.update_batch(batch)

    assert sharded_result.ops == single_result.ops
    assert sharded_result.in_place == single_result.in_place
    assert sharded_result.moved == single_result.moved
    assert sharded_result.inserted == single_result.inserted
    assert sharded.live_keys() == world.peb._live_keys
    assert list(sharded.items()) == single_entries(world)
    assert sharded.max_speed_x == world.peb.max_speed_x
    assert sharded.max_speed_y == world.peb.max_speed_y
