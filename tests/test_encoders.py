"""Tests for the alternative sequence-value encoders.

Invariants for every encoder: total coverage (one SV per user),
determinism, respect for the initial-SV/δ contract, and — crucially —
*query-result neutrality*: the SV assignment changes only the physical
layout of the PEB-tree, never the answer of PRQ/PkNN.
"""

import random

import pytest

from repro.bench.oracle import brute_force_prq
from repro.core.encoders import (
    ENCODERS,
    BFSEncoder,
    Figure5Encoder,
    SpectralEncoder,
    make_encoder,
)
from repro.core.peb_tree import PEBTree
from repro.core.prq import prq
from repro.core.sequencing import assign_sequence_values
from repro.motion.partitions import TimePartitioner
from repro.policy.lpp import LocationPrivacyPolicy
from repro.policy.store import PolicyStore
from repro.policy.timeset import TimeInterval
from repro.spatial.geometry import Rect
from repro.spatial.grid import Grid
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.workloads.policies import PolicyGenerator
from repro.workloads.queries import QueryGenerator
from repro.workloads.uniform import UniformMovement

S = 1000.0 * 1000.0
T = 1440.0
EVERYWHERE = Rect(0, 1000, 0, 1000)
ALWAYS = TimeInterval(0, 1440)


def policy(owner, tint=ALWAYS, locr=EVERYWHERE):
    return LocationPrivacyPolicy(owner=owner, role="friend", locr=locr, tint=tint)


def chain_store(n=5):
    """u0 - u1 - ... - u(n-1): mutual always-everywhere policies."""
    store = PolicyStore(time_domain=T)
    for u in range(n - 1):
        store.add_policy(policy(u), [u + 1])
        store.add_policy(policy(u + 1), [u])
    return store


def random_store(n_users=120, n_policies=6, theta=0.7, seed=3):
    generator = PolicyGenerator(1000.0, T, random.Random(seed))
    return generator.generate(list(range(n_users)), n_policies, theta)


@pytest.fixture(params=sorted(ENCODERS))
def encoder(request):
    return make_encoder(request.param)


# ----------------------------------------------------------------------
# Shared invariants
# ----------------------------------------------------------------------


def test_registry_contains_three_encoders():
    assert set(ENCODERS) == {"figure5", "bfs", "spectral"}


def test_make_encoder_unknown_name():
    with pytest.raises(ValueError, match="unknown encoder"):
        make_encoder("zcurve")


def test_every_user_gets_a_value(encoder):
    users = list(range(40))
    store = random_store(n_users=40)
    report = encoder.encode(users, store, S)
    assert set(report.sequence_values) == set(users)


def test_assignment_deterministic(encoder):
    users = list(range(60))
    store = random_store(n_users=60)
    first = encoder.encode(users, store, S).sequence_values
    second = encoder.encode(users, store, S).sequence_values
    assert first == second


def test_values_start_at_initial_sv(encoder):
    users = list(range(30))
    store = random_store(n_users=30)
    report = encoder.encode(users, store, S)
    assert min(report.sequence_values.values()) == pytest.approx(2.0)


def test_unrelated_users_spaced_by_delta(encoder):
    """With no policies at all, users land δ apart in some order."""
    users = [7, 8, 9]
    store = PolicyStore(time_domain=T)
    report = encoder.encode(users, store, S)
    values = sorted(report.sequence_values.values())
    assert values == pytest.approx([2.0, 4.0, 6.0])
    assert report.group_count == 3


def test_related_users_closer_than_delta(encoder):
    """A strongly compatible pair must sit within 1 SV unit."""
    store = PolicyStore(time_domain=T)
    store.add_policy(policy(1), [2])
    store.add_policy(policy(2), [1])
    report = encoder.encode([1, 2, 3], store, S)
    values = report.sequence_values
    assert abs(values[1] - values[2]) <= 1.0
    assert abs(values[3] - values[1]) >= 1.0
    assert abs(values[3] - values[2]) >= 1.0


def test_report_counts(encoder):
    store = chain_store(4)  # 3 related pairs
    report = encoder.encode([0, 1, 2, 3], store, S)
    assert report.related_pair_count == 3
    # Group semantics differ: Figure 5 stars a leader's *direct*
    # neighbours (a 4-chain needs 2 leaders); the graph traversals cover
    # the whole connected component in one group.
    expected_groups = 2 if isinstance(encoder, Figure5Encoder) else 1
    assert report.group_count == expected_groups
    assert report.elapsed_seconds >= 0.0


# ----------------------------------------------------------------------
# Encoder-specific behaviour
# ----------------------------------------------------------------------


def test_figure5_wraps_paper_algorithm():
    users = list(range(50))
    store = random_store(n_users=50)
    wrapped = Figure5Encoder().encode(users, store, S).sequence_values
    direct = assign_sequence_values(users, store, S).sequence_values
    assert wrapped == direct


def test_bfs_keeps_chain_within_group():
    """Figure 5 stars a leader; BFS must walk the whole chain closely."""
    n = 6
    store = chain_store(n)
    report = BFSEncoder().encode(list(range(n)), store, S)
    values = report.sequence_values
    spread = max(values.values()) - min(values.values())
    # Each hop costs 1 - C = 1 - 1.0/2... chain C = (1 + alpha)/2 with
    # alpha = 1 (everywhere/always mutual), so C = 1 and hops are free.
    assert spread <= (n - 1) * 0.5
    assert report.group_count == 1


def test_bfs_rejects_bad_parameters():
    with pytest.raises(ValueError):
        BFSEncoder(initial_sv=0.5)
    with pytest.raises(ValueError):
        BFSEncoder(delta=1.0)


def test_spectral_orders_path_graph():
    """Fiedler seriation recovers a path's order (up to reversal)."""
    store = PolicyStore(time_domain=T)
    # Path with *varying* region sizes so edge weights differ but remain
    # strong along the path: u0-u1-u2-u3-u4.
    side = [900, 800, 700, 600]
    for u in range(4):
        region = Rect(0, side[u], 0, side[u])
        store.add_policy(policy(u, locr=region), [u + 1])
        store.add_policy(policy(u + 1, locr=region), [u])
    report = SpectralEncoder().encode(list(range(5)), store, S)
    values = report.sequence_values
    ordered = [uid for uid, _ in sorted(values.items(), key=lambda item: item[1])]
    assert ordered in ([0, 1, 2, 3, 4], [4, 3, 2, 1, 0])


def test_spectral_rejects_bad_parameters():
    with pytest.raises(ValueError):
        SpectralEncoder(initial_sv=1.0)
    with pytest.raises(ValueError):
        SpectralEncoder(delta=0.0)


def test_spectral_handles_singletons_and_pairs():
    store = PolicyStore(time_domain=T)
    store.add_policy(policy(1), [2])
    report = SpectralEncoder().encode([1, 2, 3], store, S)
    assert set(report.sequence_values) == {1, 2, 3}


def test_spectral_falls_back_to_bfs_on_huge_component(monkeypatch):
    import repro.core.encoders as encoders_module

    monkeypatch.setattr(encoders_module, "SPECTRAL_COMPONENT_LIMIT", 3)
    store = chain_store(6)
    report = SpectralEncoder().encode(list(range(6)), store, S)
    assert set(report.sequence_values) == set(range(6))


# ----------------------------------------------------------------------
# Query-result neutrality
# ----------------------------------------------------------------------


def build_peb(states, store, page_size=1024):
    grid = Grid(1000.0, 10)
    partitioner = TimePartitioner(120.0, 2)
    pool = BufferPool(SimulatedDisk(page_size=page_size), capacity=512)
    tree = PEBTree(pool, grid, partitioner, store)
    for obj in states.values():
        tree.insert(obj)
    return tree


@pytest.mark.parametrize("name", sorted(ENCODERS))
def test_prq_results_identical_across_encoders(name):
    """The encoder moves entries around; it must never change answers."""
    n_users = 150
    movement = UniformMovement(1000.0, 3.0, random.Random(5))
    states = {obj.uid: obj for obj in movement.initial_objects(n_users, t=0.0)}
    store = random_store(n_users=n_users, n_policies=8, seed=6)

    report = make_encoder(name).encode(sorted(states), store, S)
    store.set_sequence_values(report.sequence_values)
    tree = build_peb(states, store)

    queries = QueryGenerator(1000.0, random.Random(7)).range_queries(
        sorted(states), 12, 250.0, 0.0
    )
    for query in queries:
        expected = brute_force_prq(
            states, store, query.q_uid, query.window, query.t_query
        )
        answer = prq(tree, query.q_uid, query.window, query.t_query)
        assert answer.uids == expected
