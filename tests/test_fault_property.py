"""Property pins for the fault-tolerance layer.

Two contracts, stated in :mod:`repro.fault`'s package docstring:

* **Transient-identical** — under any finite fault schedule that
  eventually clears (strictly fewer failing indices than the retry
  policy has attempts, so exhaustion is impossible by construction),
  a supervised deployment's update results, query results, and final
  tree contents are *bit-identical* to the fault-free run.  Hypothesis
  generates the schedules.
* **Quarantine-subset** — with one shard permanently failing, queries
  return exactly the fault-free results minus entries routed to the
  quarantined shard, every loss is flagged (``degraded``) and counted
  (``bands_dropped``), updates bound for the shard are deferred — not
  lost, not half-applied — and the other shards end bit-identical to
  the fault-free run.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.engine import UpdatePipeline
from repro.fault import BreakerPolicy, RetryPolicy
from repro.shard import ShardedPEBTree, ShardedQueryEngine
from repro.storage.faults import FaultyDisk, TransientFaultSchedule

from tests.conftest import build_world

N_SHARDS = 3
PAGE_SIZE = 1024
#: max_attempts exceeds the largest possible failing-index count (6+3),
#: so a retried run can never exhaust: each failed attempt permanently
#: consumes at least one failing index of its kind.
RETRY = RetryPolicy(max_attempts=10, base_backoff_us=0.0)

WORLD = build_world(n_users=140, n_policies=6, seed=13)
STREAM = WORLD.query_generator().update_stream(WORLD.states, 120, 3.0, 0.0, 130.0)
BATCH = [(obj, obj.uid % 3) for obj in STREAM]
SPECS = WORLD.query_generator().range_queries(WORLD.uids, 10, 280.0, 130.0)


def deploy(supervised: bool):
    sharded = ShardedPEBTree.build(
        N_SHARDS,
        WORLD.grid,
        WORLD.partitioner,
        WORLD.store,
        uids=WORLD.uids,
        page_size=PAGE_SIZE,
        buffer_pages=8,  # small: queries and sweeps do physical reads
        disk_factory=lambda shard: FaultyDisk(page_size=PAGE_SIZE),
        fault_policy=RETRY if supervised else None,
        breaker_policy=BreakerPolicy() if supervised else None,
    )
    for uid in WORLD.uids:
        sharded.insert(WORLD.states[uid])
    for pool in sharded.pools:
        pool.clear()
    return sharded


def shard_disks(sharded) -> list[FaultyDisk]:
    disks = []
    for tree in sharded.trees:
        disk = tree.btree.pool.disk
        while hasattr(disk, "inner"):
            disk = disk.inner
        disks.append(disk)
    return disks


def run_reference():
    sharded = deploy(supervised=False)
    before_items = list(sharded.items())
    result = sharded.update_batch(list(BATCH))
    report = ShardedQueryEngine(sharded).execute_batch(SPECS)
    return {
        "before_items": before_items,
        "result": result,
        "uids": [r.uids for r in report.results],
        "items": list(sharded.items()),
        "live_keys": dict(sharded.live_keys()),
    }


REFERENCE = run_reference()


def run_fresh_reference():
    """Query results on a fresh (pre-update) fault-free deployment."""
    report = ShardedQueryEngine(deploy(supervised=False)).execute_batch(SPECS)
    return [r.uids for r in report.results]


FRESH_UIDS = run_fresh_reference()
#: Pre-update live keys (a user's routing key; fixed under SV sharding).
FRESH_KEYS = dict(WORLD.peb._live_keys)


# ----------------------------------------------------------------------
# Transient-identical
# ----------------------------------------------------------------------


@settings(max_examples=12, deadline=None)
@given(
    fail_reads=st.sets(st.integers(min_value=1, max_value=600), max_size=6),
    fail_writes=st.sets(st.integers(min_value=1, max_value=150), max_size=3),
)
def test_transient_schedule_runs_bit_identical(fail_reads, fail_writes):
    sharded = deploy(supervised=True)
    schedule = TransientFaultSchedule(
        fail_reads=fail_reads, fail_writes=fail_writes
    )
    for disk in shard_disks(sharded):
        disk.heal()  # counters restart at 0: the indices are live
        disk.schedule = schedule

    result = sharded.update_batch(list(BATCH))
    report = ShardedQueryEngine(sharded).execute_batch(SPECS)

    supervisor = sharded.supervisor
    assert supervisor.stats.exhausted == 0  # impossible by construction
    assert supervisor.quarantined() == []
    assert result.deferred == []
    assert result.ops == REFERENCE["result"].ops
    assert result.in_place == REFERENCE["result"].in_place
    assert result.moved == REFERENCE["result"].moved
    assert result.inserted == REFERENCE["result"].inserted
    assert [r.uids for r in report.results] == REFERENCE["uids"]
    assert report.degraded == [False] * len(SPECS)
    for disk in shard_disks(sharded):
        disk.heal()  # the end-state audit must read clean
    assert list(sharded.items()) == REFERENCE["items"]
    # Accounting coherence: every retry answered a fault, and whenever
    # the schedule fired at all, the counters saw it.
    assert supervisor.stats.retries == supervisor.stats.faults


def test_supervised_fault_free_run_is_identical_to_unsupervised():
    """The opt-in invariant: with a supervisor attached but no faults,
    nothing observable changes."""
    sharded = deploy(supervised=True)
    result = sharded.update_batch(list(BATCH))
    report = ShardedQueryEngine(sharded).execute_batch(SPECS)
    assert sharded.supervisor.stats.faults == 0
    assert result.ops == REFERENCE["result"].ops
    assert result.deferred == []
    assert [r.uids for r in report.results] == REFERENCE["uids"]
    assert list(sharded.items()) == REFERENCE["items"]


# ----------------------------------------------------------------------
# Quarantine-subset
# ----------------------------------------------------------------------


@pytest.mark.parametrize("dead", range(N_SHARDS))
def test_quarantined_shard_degrades_queries_to_exact_subset(dead):
    sharded = deploy(supervised=True)
    disks = shard_disks(sharded)
    disks[dead].heal()
    disks[dead].fail_every_nth_read = 1  # every read fails, forever

    engine = ShardedQueryEngine(sharded)
    report = engine.execute_batch(SPECS)
    supervisor = sharded.supervisor

    assert supervisor.is_quarantined(dead)
    assert supervisor.stats.quarantines >= 1
    assert supervisor.stats.bands_dropped > 0
    assert report.stats.fault_stats is not None
    assert report.stats.fault_stats.bands_dropped > 0
    assert len(report.degraded) == len(SPECS)

    # Queries ran before any update: compare against the pre-update
    # fault-free reference.
    router = sharded.router
    for spec, served, expected, flagged in zip(
        SPECS, report.results, FRESH_UIDS, report.degraded
    ):
        assert served.uids <= expected, spec  # never an invented result
        for uid in expected - served.uids:  # every loss routes to dead
            assert router.shard_of_key(FRESH_KEYS[uid]) == dead, (spec, uid)
        if not flagged:  # un-flagged queries are exact
            assert served.uids == expected, spec
    # The flags are honest both ways on at least one query: this
    # workload must actually touch the dead shard somewhere.
    assert any(report.degraded)


@pytest.mark.parametrize("dead", range(N_SHARDS))
def test_quarantined_shard_defers_updates_and_spares_the_rest(dead):
    sharded = deploy(supervised=True)
    disks = shard_disks(sharded)
    disks[dead].heal()
    disks[dead].fail_every_nth_read = 1

    result = sharded.update_batch(list(BATCH))
    supervisor = sharded.supervisor
    assert supervisor.is_quarantined(dead)

    router = sharded.router
    deferred_uids = set()
    for item in result.deferred:
        obj = item[0] if isinstance(item, tuple) else item
        deferred_uids.add(obj.uid)
        # SV sharding: a user's shard never changes, so the routed
        # shard of the deferred state is exactly the dead one.
        assert router.shard_of_key(FRESH_KEYS[obj.uid]) == dead
    assert deferred_uids  # this workload routes updates everywhere
    assert supervisor.stats.updates_deferred == len(result.deferred)
    # Counters exclude the deferred states but count everything else.
    assert result.ops == REFERENCE["result"].ops - len(result.deferred)

    disks[dead].heal()  # audit reads must be clean
    by_shard = lambda items, shard: [
        entry for entry in items if router.shard_of_key(entry[0]) == shard
    ]
    got_items = list(sharded.items())
    for shard in range(N_SHARDS):
        if shard == dead:
            # The dead shard holds its pre-batch state: deferred means
            # not applied, and the sweep guard means not half-applied.
            assert by_shard(got_items, shard) == by_shard(
                REFERENCE["before_items"], shard
            )
        else:
            assert by_shard(got_items, shard) == by_shard(
                REFERENCE["items"], shard
            )
    # The memo still maps every deferred uid to its *pre-batch* key, so
    # a later retry will re-route the update rather than double-insert.
    for uid in deferred_uids:
        assert sharded.live_keys()[uid] == FRESH_KEYS[uid]


def test_deferred_updates_rebuffer_through_the_pipeline():
    """Through :class:`UpdatePipeline`: a deferred state is restored to
    the buffer (still pending) and re-applies cleanly once the shard
    recovers."""
    sharded = deploy(supervised=True)
    disks = shard_disks(sharded)
    disks[1].heal()
    disks[1].fail_every_nth_read = 1

    pipeline = UpdatePipeline(sharded, capacity=256)
    pipeline.extend(list(BATCH))
    pipeline.flush()
    deferred = pipeline.stats.deferred
    assert deferred > 0
    # Every deferral was restored; the buffer holds the distinct users
    # still waiting (a user deferred across several flushes — the
    # rollover forces two here — counts once per flush but buffers once).
    assert 0 < pipeline.pending <= deferred
    assert pipeline.stats.fault_stats is not None
    assert pipeline.stats.fault_stats.updates_deferred == deferred

    disks[1].heal()
    sharded.supervisor.reset(1)
    pipeline.flush()
    assert pipeline.pending == 0
    assert list(sharded.items()) == REFERENCE["items"]
