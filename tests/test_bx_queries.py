"""Tests for Bx-tree range and kNN queries, including the Figure 2
scenario of objects moving into the query window by query time."""

import random

import pytest

from repro.bxtree.queries import (
    bx_knn,
    bx_range_query,
    enlargement_for_label,
    estimate_knn_distance,
)
from repro.bxtree.tree import BxTree
from repro.motion.objects import MovingObject
from repro.motion.partitions import TimePartitioner
from repro.spatial.geometry import Rect, euclidean
from repro.spatial.grid import Grid
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk


def make_bx():
    grid = Grid(1000.0, 10)
    partitioner = TimePartitioner(120.0, 2)
    pool = BufferPool(SimulatedDisk(page_size=1024), capacity=256)
    return BxTree(pool, grid, partitioner)


def test_enlargement_for_label():
    assert enlargement_for_label(60.0, 10.0, 3.0) == 150.0
    assert enlargement_for_label(10.0, 60.0, 2.0) == 100.0
    assert enlargement_for_label(50.0, 50.0, 3.0) == 0.0


def test_knn_distance_estimator():
    # Unit-space formula scaled by the side; grows with k, shrinks with N.
    d_small = estimate_knn_distance(1, 10_000, 1000.0)
    d_large = estimate_knn_distance(10, 10_000, 1000.0)
    assert 0 < d_small < d_large < 1000.0
    assert estimate_knn_distance(5, 5, 1000.0) > 0  # saturated ratio
    with pytest.raises(ValueError):
        estimate_knn_distance(0, 10, 1000.0)
    with pytest.raises(ValueError):
        estimate_knn_distance(1, 0, 1000.0)


def test_figure2_moving_objects_found_by_enlargement():
    """Objects outside the window as stored, but inside at query time,
    must be found; objects moving away must be excluded."""
    tree = make_bx()
    # Stored as of label 60; query at t=70 with window [400,600]^2.
    incoming = MovingObject(uid=1, x=390.0, y=500.0, vx=2.0, vy=0.0, t_update=0.0)
    # At t=70: x = 390 + 2*70 = 530 -> inside.
    outgoing = MovingObject(uid=2, x=595.0, y=500.0, vx=3.0, vy=0.0, t_update=0.0)
    # At t=70: x = 595 + 210 = 805 -> outside.
    parked = MovingObject(uid=3, x=500.0, y=500.0, vx=0.0, vy=0.0, t_update=0.0)
    for obj in (incoming, outgoing, parked):
        tree.insert(obj)
    found = {obj.uid for obj in bx_range_query(tree, Rect(400, 600, 400, 600), 70.0)}
    assert found == {1, 3}


def test_range_query_matches_brute_force_random():
    tree = make_bx()
    rng = random.Random(9)
    objects = []
    for uid in range(300):
        obj = MovingObject(
            uid=uid,
            x=rng.uniform(0, 1000),
            y=rng.uniform(0, 1000),
            vx=rng.uniform(-3, 3),
            vy=rng.uniform(-3, 3),
            t_update=rng.uniform(0, 50),
        )
        objects.append(obj)
        tree.insert(obj)
    for _ in range(25):
        t_query = rng.uniform(50, 100)
        x_lo = rng.uniform(0, 800)
        y_lo = rng.uniform(0, 800)
        window = Rect(x_lo, x_lo + 200, y_lo, y_lo + 200)
        expected = {
            obj.uid for obj in objects if window.contains(*obj.position_at(t_query))
        }
        found = {obj.uid for obj in bx_range_query(tree, window, t_query)}
        assert found == expected


def test_knn_matches_brute_force_random():
    tree = make_bx()
    rng = random.Random(10)
    objects = []
    for uid in range(250):
        obj = MovingObject(
            uid=uid,
            x=rng.uniform(0, 1000),
            y=rng.uniform(0, 1000),
            vx=rng.uniform(-3, 3),
            vy=rng.uniform(-3, 3),
            t_update=0.0,
        )
        objects.append(obj)
        tree.insert(obj)
    for _ in range(15):
        t_query = rng.uniform(0, 50)
        qx, qy = rng.uniform(0, 1000), rng.uniform(0, 1000)
        k = rng.randint(1, 8)
        expected = sorted(
            euclidean(qx, qy, *obj.position_at(t_query)) for obj in objects
        )[:k]
        found = bx_knn(tree, qx, qy, k, t_query)
        assert len(found) == k
        got = [distance for distance, _ in found]
        assert got == pytest.approx(expected)


def test_knn_on_empty_tree():
    tree = make_bx()
    assert bx_knn(tree, 500, 500, 5, 0.0) == []


def test_knn_with_k_exceeding_population():
    tree = make_bx()
    for uid in range(3):
        tree.insert(MovingObject(uid=uid, x=uid * 100.0, y=0, vx=0, vy=0, t_update=0))
    found = bx_knn(tree, 0, 0, 10, 0.0)
    assert len(found) == 3


def test_range_query_empty_window():
    tree = make_bx()
    tree.insert(MovingObject(uid=1, x=500, y=500, vx=0, vy=0, t_update=0))
    assert bx_range_query(tree, Rect(0, 10, 0, 10), 0.0) == []
