"""Tests for the network-based movement generator."""

import math
import random

import pytest

from repro.workloads.network import SPEED_CLASSES, NetworkMovement


def make(n_destinations=30, seed=4):
    return NetworkMovement(1000.0, n_destinations, random.Random(seed))


def point_to_segment(px, py, ax, ay, bx, by):
    """Distance from point to segment (for on-route checks)."""
    dx, dy = bx - ax, by - ay
    length_sq = dx * dx + dy * dy
    if length_sq == 0:
        return math.hypot(px - ax, py - ay)
    t = max(0.0, min(1.0, ((px - ax) * dx + (py - ay) * dy) / length_sq))
    return math.hypot(px - (ax + t * dx), py - (ay + t * dy))


def min_route_distance(movement, x, y):
    best = float("inf")
    for a, peers in enumerate(movement.neighbors):
        ax, ay = movement.destinations[a]
        for b in peers:
            bx, by = movement.destinations[b]
            best = min(best, point_to_segment(x, y, ax, ay, bx, by))
    return best


def test_routes_are_two_way_and_connected():
    movement = make()
    for a, peers in enumerate(movement.neighbors):
        assert peers, f"destination {a} has no routes"
        for b in peers:
            assert a in movement.neighbors[b]
    # Connectivity via BFS.
    seen = {0}
    frontier = [0]
    while frontier:
        node = frontier.pop()
        for peer in movement.neighbors[node]:
            if peer not in seen:
                seen.add(peer)
                frontier.append(peer)
    assert len(seen) == len(movement.destinations)


def test_objects_start_on_routes():
    movement = make()
    for obj in movement.initial_objects(200):
        assert min_route_distance(movement, obj.x, obj.y) < 1e-6


def test_objects_stay_on_routes_as_they_move():
    movement = make()
    objects = movement.initial_objects(100)
    for step in range(1, 4):
        objects = [movement.advance(obj, step * 50.0) for obj in objects]
        for obj in objects:
            assert min_route_distance(movement, obj.x, obj.y) < 1e-6


def test_speed_classes_respected():
    movement = make()
    objects = movement.initial_objects(300)
    for obj in objects:
        assert obj.speed <= max(SPEED_CLASSES) + 1e-9
    observed = {round(movement._states[obj.uid].vmax, 2) for obj in objects}
    assert observed == {0.75, 1.5, 3.0}


def test_movement_skew_grows_with_fewer_destinations():
    """Fewer hubs concentrate the population — the Figure 16 skew knob.

    Measured as occupancy of a coarse grid: fewer destinations must leave
    more cells empty."""

    def occupancy(n_destinations):
        movement = make(n_destinations=n_destinations, seed=9)
        objects = movement.initial_objects(2000)
        cells = {(int(obj.x // 100), int(obj.y // 100)) for obj in objects}
        return len(cells)

    assert occupancy(5) < occupancy(200)


def test_advance_cannot_rewind():
    movement = make()
    obj = movement.initial_objects(1)[0]
    moved = movement.advance(obj, 10.0)
    with pytest.raises(ValueError):
        movement.advance(moved, 5.0)


def test_requires_two_destinations():
    with pytest.raises(ValueError):
        NetworkMovement(1000.0, 1, random.Random(0))


def test_velocity_points_along_current_edge():
    movement = make()
    for obj in movement.initial_objects(50):
        if obj.speed == 0:
            continue
        state = movement._states[obj.uid]
        (ax, ay) = movement.destinations[state.origin]
        (bx, by) = movement.destinations[state.target]
        edge = (bx - ax, by - ay)
        norm = math.hypot(*edge)
        if norm == 0:
            continue
        cross = abs(edge[0] * obj.vy - edge[1] * obj.vx) / norm / max(obj.speed, 1e-9)
        assert cross < 1e-6
