"""Tests for label timestamps and time partitions (Figure 1, Equation 2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.motion.partitions import TimePartitioner


def test_paper_example():
    """Section 2.1: with n = 2, updates in (0, Δt_mu/2] are indexed as of
    t_lab = Δt_mu, which is partition 1 ('01' in binary)."""
    partitioner = TimePartitioner(max_update_interval=120.0, n=2)
    assert partitioner.phase == 60.0
    for t_update in (0.001, 30.0, 59.9, 60.0):
        assert partitioner.label_timestamp(t_update) == 120.0
        assert partitioner.partition(t_update) == 1


def test_label_at_exact_multiple():
    partitioner = TimePartitioner(120.0, 2)
    # An update exactly on a label is indexed one phase ahead.
    assert partitioner.label_timestamp(0.0) == 60.0
    assert partitioner.label_timestamp(120.0) == 180.0


def test_partition_cycles_through_n_plus_one():
    partitioner = TimePartitioner(120.0, 2)
    labels = [60.0 * i for i in range(1, 8)]
    partitions = [partitioner.partition_of_label(label) for label in labels]
    assert partitions == [0, 1, 2, 0, 1, 2, 0]
    assert partitioner.num_partitions == 3


def test_live_labels_at_time_zero():
    partitioner = TimePartitioner(120.0, 2)
    assert partitioner.live_labels(0.0) == [60.0]


def test_live_labels_mid_phase():
    partitioner = TimePartitioner(120.0, 2)
    labels = partitioner.live_labels(130.0)
    assert labels == [120.0, 180.0, 240.0]
    # Distinct partition ids -> no double scan of one partition.
    partitions = [partitioner.partition_of_label(label) for label in labels]
    assert len(set(partitions)) == len(partitions)


def test_live_labels_bounded_by_partition_count():
    partitioner = TimePartitioner(120.0, 4)
    for now in (0.0, 10.0, 59.0, 140.0, 1234.5):
        labels = partitioner.live_labels(now)
        assert 1 <= len(labels) <= partitioner.num_partitions


def test_invalid_parameters():
    with pytest.raises(ValueError):
        TimePartitioner(0.0, 2)
    with pytest.raises(ValueError):
        TimePartitioner(120.0, 0)


@settings(max_examples=200, deadline=None)
@given(
    t_update=st.floats(min_value=0, max_value=1e6),
    n=st.integers(min_value=1, max_value=6),
)
def test_label_is_a_future_phase_multiple(t_update, n):
    partitioner = TimePartitioner(120.0, n)
    label = partitioner.label_timestamp(t_update)
    phase = partitioner.phase
    assert label > t_update  # indexed strictly in the future
    assert label <= t_update + 2 * phase + 1e-6
    assert abs(label / phase - round(label / phase)) < 1e-6


@settings(max_examples=200, deadline=None)
@given(now=st.floats(min_value=0, max_value=1e5), n=st.integers(1, 5))
def test_update_labels_are_always_live(now, n):
    """An object updated at ``tu <= now`` within its deadline must land in
    one of the labels query processing scans."""
    partitioner = TimePartitioner(120.0, n)
    live = partitioner.live_labels(now)
    # Updates anywhere in the last Δt_mu (the freshness window).
    for back in (0.0, 1.0, 30.0, 60.0, 119.9):
        t_update = now - back
        if t_update < 0:
            continue
        label = partitioner.label_timestamp(t_update)
        assert label in live or t_update + partitioner.max_update_interval <= now
