"""Tests for the spatial-index + filter baseline (Section 4)."""

from repro.bench.oracle import brute_force_pknn, brute_force_prq
from repro.spatial.geometry import Rect


def test_range_query_filters_by_policy(small_world):
    world = small_world
    generator = world.query_generator()
    for query in generator.range_queries(world.uids, 10, 250.0, 5.0):
        expected = brute_force_prq(
            world.states, world.store, query.q_uid, query.window, query.t_query
        )
        found = {
            obj.uid
            for obj in world.baseline.range_query(
                query.q_uid, query.window, query.t_query
            )
        }
        assert found == expected


def test_knn_query_filters_by_policy(small_world):
    world = small_world
    generator = world.query_generator()
    for query in generator.knn_queries(world.states, 8, 4, 5.0):
        expected = brute_force_pknn(
            world.states,
            world.store,
            query.q_uid,
            query.qx,
            query.qy,
            query.k,
            query.t_query,
        )
        found = world.baseline.knn_query(
            query.q_uid, query.qx, query.qy, query.k, query.t_query
        )
        assert [round(d, 9) for d, _ in found] == [round(d, 9) for d, _ in expected]


def test_issuer_never_in_own_results(small_world):
    world = small_world
    issuer = world.uids[0]
    state = world.states[issuer]
    window = Rect.from_center(state.x, state.y, 100.0)
    found = world.baseline.range_query(issuer, window, 0.0)
    assert issuer not in {obj.uid for obj in found}
    neighbors = world.baseline.knn_query(issuer, state.x, state.y, 5, 0.0)
    assert issuer not in {obj.uid for _, obj in neighbors}


def test_running_example_shape(small_world):
    """Figure 4's point: the baseline retrieves spatial candidates that
    policy checking then discards — the intermediate result is a superset
    of the answer."""
    world = small_world
    generator = world.query_generator()
    total_candidates = 0
    total_answers = 0
    from repro.bxtree.queries import bx_range_query

    for query in generator.range_queries(world.uids, 10, 300.0, 5.0):
        candidates = bx_range_query(world.bx, query.window, query.t_query)
        answers = world.baseline.range_query(query.q_uid, query.window, query.t_query)
        assert {obj.uid for obj in answers} <= {obj.uid for obj in candidates}
        total_candidates += len(candidates)
        total_answers += len(answers)
    assert total_candidates > total_answers  # filtering discards a lot
