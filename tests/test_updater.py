"""Tests for the engine's batch update pipeline (write path).

Covers the buffer's last-write-wins semantics, the pipeline's two
flush triggers (capacity and time-partition rollover), its stats
accounting, the continuous-query monitor fan-out, and the harness
integration (``apply_update_round(pipeline=...)`` and
``run_batched_updates``).
"""

import pytest

from repro.bench.harness import ExperimentConfig, ExperimentHarness
from repro.core.continuous import ContinuousPRQ
from repro.engine import UpdateBuffer, UpdatePipeline
from repro.spatial.geometry import Rect
from repro.workloads.queries import QueryGenerator
from repro.core.peb_tree import PEBTree
from repro.motion.partitions import TimePartitioner
from repro.spatial.grid import Grid
from repro.storage.buffer import BufferPool
from repro.storage.faults import DiskFaultError, FaultyDisk
from tests.test_update_batch_property import _twin_trees
from tests.test_peb_tree import make_peb, make_store, mover


class RecordingMonitor:
    """A monitor that just logs every state it is shown, in order."""

    def __init__(self):
        self.seen = []

    def refresh(self, obj):
        self.seen.append(obj)
        return True


def test_buffer_last_write_wins():
    buffer = UpdateBuffer()
    buffer.add(mover(1, x=10.0), pntp=1)
    buffer.add(mover(2, x=20.0))
    buffer.add(mover(1, x=99.0), pntp=3)
    assert len(buffer) == 2
    assert 1 in buffer and 2 in buffer
    drained = buffer.drain()
    assert len(buffer) == 0
    by_uid = {obj.uid: (obj, pntp) for obj, pntp in drained}
    assert by_uid[1][0].x == 99.0
    assert by_uid[1][1] == 3


def test_buffer_drain_orders_by_last_arrival():
    """A re-added uid moves to the end: drain order is the arrival
    order of the states actually kept, not of superseded ones."""
    buffer = UpdateBuffer()
    buffer.add(mover(1, x=10.0))
    buffer.add(mover(2, x=20.0))
    buffer.add(mover(1, x=99.0))
    drained = buffer.drain()
    assert [obj.uid for obj, _ in drained] == [2, 1]
    assert drained[1][0].x == 99.0


def test_buffer_restore_reenters_at_head_without_clobbering_newer():
    buffer = UpdateBuffer()
    buffer.add(mover(1, x=1.0))
    buffer.add(mover(2, x=2.0))
    drained = buffer.drain()
    # A newer state for uid 2 arrives between the failed flush's drain
    # and the restore: it must win, and keep its later position.
    buffer.add(mover(2, x=22.0))
    buffer.restore(drained)
    redrained = buffer.drain()
    assert [obj.uid for obj, _ in redrained] == [1, 2]
    assert redrained[0][0].x == 1.0
    assert redrained[1][0].x == 22.0


def test_pipeline_flushes_at_capacity():
    tree = make_peb(range(10))
    pipeline = UpdatePipeline(tree, capacity=4, flush_on_rollover=False)
    for uid in range(3):
        pipeline.submit(mover(uid, x=uid * 100.0))
    assert pipeline.pending == 3
    assert pipeline.stats.flushes == 0
    pipeline.submit(mover(3, x=300.0))
    assert pipeline.pending == 0
    assert pipeline.stats.flushes == 1
    assert pipeline.stats.ops == 4
    assert len(tree) == 4


def test_pipeline_flushes_on_partition_rollover():
    tree = make_peb(range(10))  # phase = 60
    pipeline = UpdatePipeline(tree, capacity=100)
    pipeline.submit(mover(0, t=10.0))
    pipeline.submit(mover(1, t=20.0))
    assert pipeline.stats.flushes == 0
    # t=70 labels into the next partition: the buffered batch flushes
    # first, keeping every flushed run partition-pure.
    pipeline.submit(mover(2, t=70.0))
    assert pipeline.stats.flushes == 1
    assert pipeline.stats.ops == 2
    assert pipeline.pending == 1
    pipeline.flush()
    assert len(tree) == 3


def test_pipeline_rollover_trigger_can_be_disabled():
    tree = make_peb(range(10))
    pipeline = UpdatePipeline(tree, capacity=100, flush_on_rollover=False)
    pipeline.submit(mover(0, t=10.0))
    pipeline.submit(mover(1, t=70.0))
    assert pipeline.stats.flushes == 0
    assert pipeline.pending == 2


def test_pipeline_rejects_bad_capacity():
    tree = make_peb(range(4))
    with pytest.raises(ValueError):
        UpdatePipeline(tree, capacity=0)


def test_flush_of_empty_buffer_is_noop():
    tree = make_peb(range(4))
    pipeline = UpdatePipeline(tree)
    assert pipeline.flush() == 0
    assert pipeline.stats.flushes == 0


def test_context_manager_flushes_on_exit():
    tree = make_peb(range(10))
    with UpdatePipeline(tree, capacity=100) as pipeline:
        pipeline.submit(mover(5, x=42.0))
        assert len(tree) == 0
    assert len(tree) == 1
    assert pipeline.pending == 0


def test_pipeline_equals_sequential_on_update_stream():
    """The new workload generator through the pipeline, pinned to
    one-at-a-time application on a twin tree."""
    import random

    sequential, batched = _twin_trees()
    generator = QueryGenerator(1000.0, random.Random(3))
    states = {obj.uid: obj for obj in sequential.fetch_all()}
    # Duration > phase: the stream crosses a partition rollover.
    stream = generator.update_stream(states, 80, 3.0, t_start=0.0, duration=100.0)
    for obj in stream:
        sequential.update(obj)
    pipeline = UpdatePipeline(batched, capacity=16)
    pipeline.extend(stream)
    pipeline.flush()
    assert pipeline.stats.flushes >= 2
    assert sequential._live_keys == batched._live_keys
    assert list(sequential.btree.items()) == list(batched.btree.items())
    sequential.btree.check_invariants()
    batched.btree.check_invariants()
    stats = pipeline.stats
    assert stats.ops == stats.in_place_hits + stats.moved + stats.inserted
    assert stats.io_per_update >= 0.0
    assert 0.0 <= stats.in_place_ratio <= 1.0


def test_monitor_fanout_keeps_continuous_query_fresh(small_world):
    """ContinuousPRQ.attach_to: pipeline flushes re-register tracked
    motion functions without explicit refresh routing."""
    world = small_world
    issuer = world.uids[0]
    friends = [uid for _, uid in world.store.friend_list(issuer)]
    assert friends, "issuer needs at least one friend"
    target = friends[0]
    window = Rect(0.0, 1000.0, 0.0, 1000.0)

    pipeline = UpdatePipeline(world.peb, capacity=4)
    monitor = ContinuousPRQ(world.peb, issuer, window, t_start=0.0).attach_to(
        pipeline
    )
    before = monitor._tracked.get(target)

    moved = world.states[target].moved_to(500.0, 500.0, 0.0, 0.0, t=30.0)
    pipeline.submit(moved)
    assert monitor._tracked.get(target) is before  # not flushed yet
    pipeline.flush()
    assert monitor._tracked[target] == moved

    assert pipeline.detach_monitor(monitor) is True
    assert pipeline.detach_monitor(monitor) is False
    other = world.states[target].moved_to(1.0, 1.0, 0.0, 0.0, t=40.0)
    pipeline.submit(other)
    pipeline.flush()
    assert monitor._tracked[target] == moved  # detached: unchanged
    # Leave the session-scoped world as we found it.
    world.peb.update(world.states[target])


def test_monitor_ignores_non_friends(small_world):
    world = small_world
    issuer = world.uids[0]
    friends = {uid for _, uid in world.store.friend_list(issuer)}
    stranger = next(uid for uid in world.uids if uid not in friends and uid != issuer)
    pipeline = UpdatePipeline(world.peb, capacity=4)
    monitor = ContinuousPRQ(
        world.peb, issuer, Rect(0.0, 1000.0, 0.0, 1000.0), t_start=0.0
    ).attach_to(pipeline)
    moved = world.states[stranger].moved_to(500.0, 500.0, 0.0, 0.0, t=30.0)
    pipeline.submit(moved)
    pipeline.flush()
    assert stranger not in monitor._tracked
    world.peb.update(world.states[stranger])


# ----------------------------------------------------------------------
# Flush failure (fault injection)
# ----------------------------------------------------------------------


def make_faulty_peb(uids=range(10)):
    """A PEB-tree whose pool sits on a fault-injectable disk."""
    uids = list(uids)
    grid = Grid(1000.0, 10)
    partitioner = TimePartitioner(120.0, 2)
    store = make_store(uids)
    disk = FaultyDisk(page_size=1024)
    pool = BufferPool(disk, capacity=64)
    return PEBTree(pool, grid, partitioner, store), disk


def test_flush_failure_preserves_buffer_and_retry_applies_once():
    """A DiskFaultError mid-flush must lose nothing: the drained batch
    re-enters the buffer, no stats or monitors record the failure, and
    a retry after the fault clears applies every state exactly once."""
    uids = list(range(10))
    tree, disk = make_faulty_peb(uids)
    twin = make_peb(uids)
    for uid in uids:
        tree.insert(mover(uid, x=uid * 50.0))
        twin.insert(mover(uid, x=uid * 50.0))
    tree.btree.pool.flush()
    tree.btree.pool.clear()

    pipeline = UpdatePipeline(tree, capacity=64)
    monitor = RecordingMonitor()
    pipeline.attach_monitor(monitor)
    moved = [mover(uid, x=900.0 - uid * 30.0, y=500.0, t=10.0) for uid in uids]
    pipeline.extend(moved)
    assert pipeline.pending == len(uids)

    disk.fail_read_pages.update(range(disk.allocated_count))
    with pytest.raises(DiskFaultError):
        pipeline.flush()
    # Nothing lost, nothing recorded, nobody notified.
    assert pipeline.pending == len(uids)
    assert pipeline.stats.flushes == 0
    assert pipeline.stats.ops == 0
    assert monitor.seen == []

    disk.heal()
    assert pipeline.flush() == len(uids)
    assert pipeline.pending == 0
    assert pipeline.stats.flushes == 1
    assert pipeline.stats.ops == len(uids)
    # Exactly once: each state fanned out once, and the tree matches a
    # twin that applied the round sequentially with no fault.
    assert [obj.uid for obj in monitor.seen] == [obj.uid for obj in moved]
    for obj in moved:
        twin.update(obj)
    assert list(tree.btree.items()) == list(twin.btree.items())
    tree.btree.check_invariants()


def test_flush_failure_during_capacity_trigger_surfaces_and_retries():
    """submit()'s capacity-triggered flush propagates the fault but
    keeps the whole batch (including the tripping state) buffered."""
    uids = list(range(8))
    tree, disk = make_faulty_peb(uids)
    for uid in uids:
        tree.insert(mover(uid))
    tree.btree.pool.flush()
    tree.btree.pool.clear()
    disk.fail_read_pages.update(range(disk.allocated_count))

    pipeline = UpdatePipeline(tree, capacity=4, flush_on_rollover=False)
    for uid in range(3):
        pipeline.submit(mover(uid, x=700.0, t=5.0))
    with pytest.raises(DiskFaultError):
        pipeline.submit(mover(3, x=700.0, t=5.0))
    assert pipeline.pending == 4

    disk.heal()
    # The next submission trips the capacity trigger again; this time
    # the batch (old states plus the new one) lands.
    pipeline.submit(mover(4, x=700.0, t=5.0))
    assert pipeline.pending == 0
    assert pipeline.stats.ops == 5
    tree.btree.check_invariants()


# ----------------------------------------------------------------------
# extend() pntp plumbing and fan-out ordering
# ----------------------------------------------------------------------


def _pntp_by_uid(tree):
    return {
        obj.uid: pntp
        for obj, pntp in (
            tree.records.unpack(payload) for _, _, payload in tree.btree.items()
        )
    }


def test_extend_accepts_pairs_and_parallel_pntps():
    tree = make_peb(range(10))
    pipeline = UpdatePipeline(tree, capacity=100, flush_on_rollover=False)
    pipeline.extend([(mover(0), 3), mover(1), (mover(2), 5)])
    pipeline.extend([mover(3), mover(4)], pntps=[7, 0])
    pipeline.flush()
    assert _pntp_by_uid(tree) == {0: 3, 1: 0, 2: 5, 3: 7, 4: 0}


def test_extend_rejects_mismatched_pntps():
    tree = make_peb(range(4))
    pipeline = UpdatePipeline(tree, capacity=100, flush_on_rollover=False)
    with pytest.raises(ValueError):
        pipeline.extend([mover(0), mover(1)], pntps=[1])


def test_monitor_fanout_follows_last_arrival_order():
    """A superseded state's slot moves to the end of the batch: the
    fan-out order monitors see is the order states actually arrived."""
    tree = make_peb(range(10))
    pipeline = UpdatePipeline(tree, capacity=100, flush_on_rollover=False)
    monitor = RecordingMonitor()
    pipeline.attach_monitor(monitor)
    pipeline.submit(mover(1, x=10.0))
    pipeline.submit(mover(2, x=20.0))
    pipeline.submit(mover(1, x=99.0))
    pipeline.flush()
    assert [obj.uid for obj in monitor.seen] == [2, 1]
    assert monitor.seen[1].x == 99.0


# ----------------------------------------------------------------------
# Harness integration
# ----------------------------------------------------------------------

TINY = ExperimentConfig(
    n_users=400, n_policies=6, n_queries=4, page_size=1024, seed=13
)


def test_apply_update_round_via_pipeline_matches_plain():
    plain = ExperimentHarness(TINY)
    piped = ExperimentHarness(TINY)
    pipeline = UpdatePipeline(piped.peb_tree, capacity=64)
    for _ in range(2):
        plain.apply_update_round(0.25)
        piped.apply_update_round(0.25, pipeline=pipeline)
    assert plain.peb_tree._live_keys == piped.peb_tree._live_keys
    assert list(plain.peb_tree.btree.items()) == list(piped.peb_tree.btree.items())
    piped.peb_tree.btree.check_invariants()


def test_apply_update_round_rejects_foreign_pipeline():
    harness = ExperimentHarness(TINY)
    other = ExperimentHarness(TINY)
    pipeline = UpdatePipeline(other.peb_tree)
    with pytest.raises(ValueError):
        harness.apply_update_round(0.25, pipeline=pipeline)


def test_run_batched_updates_reports_and_preserves_contents():
    harness = ExperimentHarness(TINY)
    costs = harness.run_batched_updates(batch_size=32)
    assert costs.n_updates == 100  # 25% of 400
    assert costs.batch_size == 32
    assert costs.sequential_io >= 0.0
    assert costs.batched_io >= 0.0
    assert costs.io_reduction > 0.0
    assert costs.descents_saved >= 0
    # The measured round really advanced the harness.
    second = harness.run_batched_updates(batch_size=64)
    assert second.n_updates == 100
    harness.peb_tree.btree.check_invariants()


def test_run_batched_updates_rejects_bad_batch_size():
    harness = ExperimentHarness(TINY)
    with pytest.raises(ValueError):
        harness.run_batched_updates(batch_size=0)
