"""Tests for PEB-tree maintenance and key composition."""

import pytest

from repro.core.peb_tree import PEBTree
from repro.core.sequencing import assign_sequence_values
from repro.motion.objects import MovingObject
from repro.motion.partitions import TimePartitioner
from repro.policy.lpp import LocationPrivacyPolicy
from repro.policy.store import PolicyStore
from repro.policy.timeset import TimeInterval
from repro.spatial.geometry import Rect
from repro.spatial.grid import Grid
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk


def make_store(uids):
    store = PolicyStore()
    everywhere = Rect(0, 1000, 0, 1000)
    always = TimeInterval(0, 1440)
    for index, uid in enumerate(uids):
        target = uids[(index + 1) % len(uids)]
        store.add_policy(
            LocationPrivacyPolicy(owner=uid, role="f", locr=everywhere, tint=always),
            members=[target],
        )
    report = assign_sequence_values(list(uids), store, 1000.0 * 1000.0)
    store.set_sequence_values(report.sequence_values)
    return store


def make_peb(uids=range(10)):
    uids = list(uids)
    grid = Grid(1000.0, 10)
    partitioner = TimePartitioner(120.0, 2)
    store = make_store(uids)
    pool = BufferPool(SimulatedDisk(page_size=1024), capacity=64)
    return PEBTree(pool, grid, partitioner, store)


def mover(uid, x=100.0, y=100.0, vx=1.0, vy=0.0, t=0.0):
    return MovingObject(uid=uid, x=x, y=y, vx=vx, vy=vy, t_update=t)


def test_key_embeds_all_three_components():
    tree = make_peb()
    obj = mover(0, x=100.0, y=200.0, vx=2.0, vy=0.0, t=0.0)
    tid, sv_q, zv = tree.codec.decompose(tree.key_for(obj))
    assert tid == tree.partitioner.partition(0.0)
    assert sv_q == tree.codec.quantize_sv(tree.store.sequence_value(0))
    assert zv == tree.grid.z_value(220.0, 200.0)  # position as of label 60


def test_same_sv_users_cluster_in_key_space():
    """Users with compatible policies (adjacent SVs) have closer keys
    than spatially identical users with distant SVs."""
    tree = make_peb(range(6))
    svs = sorted(
        (tree.store.sequence_value(uid), uid) for uid in range(6)
    )
    near_a, near_b = svs[0][1], svs[1][1]
    far = svs[-1][1]
    at_origin = dict(x=10.0, y=10.0, vx=0.0, vy=0.0, t=0.0)
    key_a = tree.key_for(mover(near_a, **at_origin))
    key_b = tree.key_for(mover(near_b, **at_origin))
    key_far = tree.key_for(mover(far, **at_origin))
    assert abs(key_a - key_b) < abs(key_a - key_far)


def test_insert_delete_update_cycle():
    tree = make_peb()
    tree.insert(mover(0))
    assert tree.contains(0)
    tree.update(mover(0, x=900.0, t=30.0))
    assert len(tree) == 1
    assert tree.fetch_all()[0].x == 900.0
    assert tree.delete(0) is True
    assert tree.delete(0) is False
    assert len(tree) == 0


def test_double_insert_rejected():
    tree = make_peb()
    tree.insert(mover(1))
    with pytest.raises(KeyError):
        tree.insert(mover(1))


def test_missing_sequence_value_fails_loudly():
    tree = make_peb(range(5))
    with pytest.raises(KeyError):
        tree.insert(mover(99))  # uid 99 has no SV


def test_scan_sv_zrange_returns_matching_entries():
    tree = make_peb(range(8))
    for uid in range(8):
        tree.insert(mover(uid, x=uid * 100.0, y=uid * 100.0, vx=0.0, vy=0.0))
    target = 3
    sv = tree.store.sequence_value(target)
    tid = tree.partitioner.partition(0.0)
    found = list(tree.scan_sv_zrange(tid, sv, 0, tree.grid.max_z))
    assert target in {obj.uid for obj in found}
    # Every entry in this scan has the same quantized SV.
    sv_q = tree.codec.quantize_sv(sv)
    for obj in found:
        entry_sv = tree.codec.quantize_sv(tree.store.sequence_value(obj.uid))
        assert entry_sv == sv_q


def test_update_with_unchanged_key_rewrites_in_place():
    """A same-key update must not structurally delete and reinsert."""
    tree = make_peb()
    for uid in range(10):
        tree.insert(mover(uid, x=uid * 90.0, y=uid * 90.0, vx=0.0, vy=0.0))
    target = mover(3, x=270.0, y=270.0, vx=0.0, vy=0.0, t=0.0)
    assert tree.key_for(target) == tree._live_keys[3]

    leaves_before = tree.btree.leaf_count
    tree.update(target, pntp=7)
    assert tree.btree.leaf_count == leaves_before
    assert len(tree) == 10
    tree.btree.check_invariants()
    # The payload really was rewritten.
    _, pntp = tree.records.unpack(tree.btree.search(tree._live_keys[3], 3))
    assert pntp == 7


def test_update_in_place_saves_io_versus_delete_insert():
    """The in-place path must cost strictly less I/O than delete+insert."""

    def build():
        tree = make_peb()
        for uid in range(10):
            tree.insert(mover(uid, x=uid * 90.0, y=uid * 90.0, vx=0.0, vy=0.0))
        return tree

    same_state = dict(x=270.0, y=270.0, vx=0.0, vy=0.0, t=0.0)

    in_place = build()
    in_place.stats.reset()
    in_place.update(mover(3, **same_state), pntp=1)
    in_place_io = (
        in_place.stats.logical_reads + in_place.stats.logical_writes
    )

    churned = build()
    churned.stats.reset()
    churned.delete(3)
    churned.insert(mover(3, **same_state), pntp=1)
    churn_io = churned.stats.logical_reads + churned.stats.logical_writes

    assert in_place_io < churn_io
    # Both paths leave identical visible state behind.
    assert in_place.fetch_all()[3].x == churned.fetch_all()[3].x
    assert in_place._live_keys == churned._live_keys


def test_update_with_changed_key_still_moves_entry():
    tree = make_peb()
    tree.insert(mover(0, x=100.0, y=100.0, vx=0.0, vy=0.0))
    old_key = tree._live_keys[0]
    tree.update(mover(0, x=900.0, y=900.0, vx=0.0, vy=0.0, t=0.0))
    assert tree._live_keys[0] != old_key
    assert tree.btree.search(old_key, 0) is None
    assert tree.fetch_all()[0].x == 900.0
    tree.btree.check_invariants()


def test_update_of_unindexed_user_inserts():
    tree = make_peb()
    tree.update(mover(2))
    assert tree.contains(2)
    assert len(tree) == 1


def test_structure_sound_under_update_churn():
    tree = make_peb(range(50))
    for uid in range(50):
        tree.insert(mover(uid, x=uid * 17.0 % 1000, y=uid * 31.0 % 1000))
    for round_index in range(1, 5):
        t = round_index * 25.0
        for uid in range(0, 50, 3):
            tree.update(mover(uid, x=(uid * 7 + t) % 1000, y=(uid * 3 + t) % 1000, t=t))
        tree.btree.check_invariants()
    assert len(tree) == 50
