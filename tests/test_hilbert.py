"""Tests for the Hilbert curve (key-layout ablation substrate)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial.hilbert import hilbert_decode, hilbert_encode


def test_bijective_on_16x16():
    cells = [hilbert_decode(d, 4) for d in range(256)]
    assert len(set(cells)) == 256
    for d, cell in enumerate(cells):
        assert hilbert_encode(*cell, 4) == d


def test_consecutive_distances_are_adjacent():
    """The Hilbert property: successive curve points are grid neighbours."""
    previous = hilbert_decode(0, 5)
    for d in range(1, 1024):
        current = hilbert_decode(d, 5)
        manhattan = abs(current[0] - previous[0]) + abs(current[1] - previous[1])
        assert manhattan == 1, f"jump at d={d}"
        previous = current


def test_first_order_curve():
    assert hilbert_decode(0, 1) == (0, 0)
    assert hilbert_decode(3, 1) == (1, 0)


def test_bounds_checked():
    with pytest.raises(ValueError):
        hilbert_encode(4, 0, 2)
    with pytest.raises(ValueError):
        hilbert_decode(16, 2)
    with pytest.raises(ValueError):
        hilbert_encode(0, 0, 0)
    with pytest.raises(ValueError):
        hilbert_decode(-1, 4)


@settings(max_examples=150, deadline=None)
@given(
    bits=st.integers(min_value=1, max_value=12),
    data=st.data(),
)
def test_round_trip_property(bits, data):
    side = 1 << bits
    x = data.draw(st.integers(min_value=0, max_value=side - 1))
    y = data.draw(st.integers(min_value=0, max_value=side - 1))
    assert hilbert_decode(hilbert_encode(x, y, bits), bits) == (x, y)
