"""Property tests pinning batch update application to sequential.

Two layers, two models:

* :meth:`BPlusTree.apply_sorted_batch` against a plain dict — random
  sorted insert/delete/replace batches must leave exactly the model's
  contents, with structural invariants intact, across cold restarts.
* :meth:`PEBTree.update_batch` against one-at-a-time
  :meth:`PEBTree.update` on an identical twin tree — randomized mixed
  workloads (first-time inserts, moves, same-key in-place re-reports,
  duplicate re-reports of one user, update times crossing a time-
  partition rollover mid-batch) must produce identical final entries,
  an identical update memo, identical speed maxima, and a structurally
  valid tree.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.peb_tree import PEBTree
from repro.core.sequencing import assign_sequence_values
from repro.motion.objects import MovingObject
from repro.motion.partitions import TimePartitioner
from repro.policy.lpp import LocationPrivacyPolicy
from repro.policy.store import PolicyStore
from repro.policy.timeset import TimeInterval
from repro.spatial.geometry import Rect
from repro.spatial.grid import Grid
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk
from tests.conftest import make_tree

# ----------------------------------------------------------------------
# B+-tree layer
# ----------------------------------------------------------------------

batch_op = st.tuples(
    st.sampled_from(["insert", "delete", "replace"]),
    st.integers(min_value=0, max_value=150),
    st.integers(min_value=0, max_value=3),
)


@settings(max_examples=30, deadline=None)
@given(
    seed_keys=st.sets(
        st.tuples(
            st.integers(min_value=0, max_value=150),
            st.integers(min_value=0, max_value=3),
        ),
        max_size=120,
    ),
    batches=st.lists(st.lists(batch_op, max_size=80), min_size=1, max_size=4),
    flush_between=st.booleans(),
)
def test_apply_sorted_batch_matches_dict_model(seed_keys, batches, flush_between):
    tree = make_tree(page_size=512, buffer_pages=12)
    model: dict[tuple[int, int], bytes] = {}
    for key, uid in sorted(seed_keys):
        value = bytes([key % 256, uid]) * 8
        tree.insert(key, uid, value)
        model[(key, uid)] = value

    for batch in batches:
        # Make the drawn ops valid: at most one op per entry identity,
        # inserts of absent entries, deletes/replaces of present ones.
        ops = []
        claimed = set()
        for kind, key, uid in batch:
            ck = (key, uid)
            if ck in claimed:
                continue
            present = ck in model
            if kind == "insert" and present:
                kind = "replace"
            if kind != "insert" and not present:
                kind = "insert"
            value = None if kind == "delete" else bytes([kind == "insert", uid]) * 8
            ops.append((kind, key, uid, value))
            claimed.add(ck)
        ops.sort(key=lambda op: (op[1], op[2]))

        tree.apply_sorted_batch(ops)
        for kind, key, uid, value in ops:
            if kind == "delete":
                del model[(key, uid)]
            else:
                model[(key, uid)] = value
        if flush_between:
            tree.pool.clear()  # cold restart between batches

        tree.check_invariants()
        assert [(k, u) for k, u, _ in tree.items()] == sorted(model)
        for (key, uid), value in model.items():
            assert tree.search(key, uid) == value


def test_apply_sorted_batch_rejects_bad_input():
    tree = make_tree()
    tree.insert(5, 0, b"v" * 16)
    try:
        tree.apply_sorted_batch([("frob", 1, 0, b"x" * 16)])
        raise AssertionError("unknown kind accepted")
    except ValueError:
        pass
    try:
        tree.apply_sorted_batch(
            [("insert", 9, 0, b"x" * 16), ("insert", 7, 0, b"x" * 16)]
        )
        raise AssertionError("unsorted batch accepted")
    except ValueError:
        pass
    try:
        tree.apply_sorted_batch([("insert", 5, 0, b"x" * 16)])
        raise AssertionError("duplicate insert accepted")
    except KeyError:
        pass
    try:
        tree.apply_sorted_batch([("delete", 99, 0, None)])
        raise AssertionError("missing delete accepted")
    except KeyError:
        pass
    tree.check_invariants()
    assert tree.search(5, 0) == b"v" * 16


def test_apply_sorted_batch_mass_delete_then_mass_insert():
    """Cascading merges down to an empty root, then cascading splits."""
    tree = make_tree(page_size=512, buffer_pages=12)
    for key in range(400):
        tree.insert(key, 0, b"v" * 16)
    stats = tree.apply_sorted_batch([("delete", k, 0, None) for k in range(400)])
    tree.check_invariants()
    assert len(tree) == 0
    assert stats.deletes == 400
    stats = tree.apply_sorted_batch(
        [("insert", k, 0, b"w" * 16) for k in range(800)]
    )
    tree.check_invariants()
    assert len(tree) == 800
    assert stats.inserts == 800
    assert stats.leaves_visited < 800  # the whole point


# ----------------------------------------------------------------------
# PEB-tree layer
# ----------------------------------------------------------------------

N_USERS = 24
SPACE = 1000.0
PHASE = 60.0  # TimePartitioner(120, 2)


def _make_store(uids):
    store = PolicyStore()
    everywhere = Rect(0, SPACE, 0, SPACE)
    always = TimeInterval(0, 1440)
    for index, uid in enumerate(uids):
        store.add_policy(
            LocationPrivacyPolicy(owner=uid, role="f", locr=everywhere, tint=always),
            members=[uids[(index + 1) % len(uids)]],
        )
    report = assign_sequence_values(list(uids), store, SPACE * SPACE)
    store.set_sequence_values(report.sequence_values)
    return store


#: One immutable policy store shared by every drawn example — the trees
#: are rebuilt per example, the encoding is not worth re-running.
_STORE = _make_store(list(range(N_USERS)))


def _twin_trees():
    """Two observationally identical PEB-trees over the same store."""
    uids = list(range(N_USERS))
    store = _STORE
    trees = []
    for _ in range(2):
        pool = BufferPool(SimulatedDisk(page_size=512), capacity=64)
        tree = PEBTree(pool, Grid(SPACE, 10), TimePartitioner(120.0, 2), store)
        # Index the first half; the rest arrive via updates.
        for uid in uids[: N_USERS // 2]:
            tree.insert(
                MovingObject(
                    uid=uid,
                    x=(uid * 37.0) % SPACE,
                    y=(uid * 53.0) % SPACE,
                    vx=1.0,
                    vy=-0.5,
                    t_update=0.0,
                )
            )
        trees.append(tree)
    return trees


update_draw = st.tuples(
    st.integers(min_value=0, max_value=N_USERS - 1),
    st.sampled_from(["move", "inplace", "move", "move"]),
    st.floats(min_value=0.0, max_value=SPACE - 1.0),
    st.floats(min_value=0.0, max_value=SPACE - 1.0),
    st.floats(min_value=-3.0, max_value=3.0),
    # Offsets spanning more than one phase cross a partition rollover
    # inside a single batch.
    st.floats(min_value=0.0, max_value=1.9 * PHASE),
    st.integers(min_value=0, max_value=7),
)


@settings(max_examples=20, deadline=None)
@given(
    rounds=st.lists(
        st.lists(update_draw, min_size=1, max_size=30), min_size=1, max_size=3
    )
)
def test_update_batch_observationally_equals_sequential(rounds):
    sequential, batched = _twin_trees()
    now = 0.0
    states: dict[int, MovingObject] = {
        obj.uid: obj for obj in sequential.fetch_all()
    }
    for round_draws in rounds:
        batch: list[tuple[MovingObject, int]] = []
        for uid, kind, x, y, v, dt, pntp in round_draws:
            current = states.get(uid)
            if kind == "inplace" and current is not None:
                # Same state, same label partition: only pntp changes,
                # so the PEB-key is untouched and the replace fast path
                # must carry the batch op.
                obj = current
            else:
                obj = MovingObject(
                    uid=uid, x=x, y=y, vx=v, vy=-v, t_update=now + dt
                )
            batch.append((obj, pntp))
            states[uid] = obj
        for obj, pntp in batch:
            sequential.update(obj, pntp)
        result = batched.update_batch(batch)
        now += PHASE / 2

        sequential.btree.check_invariants()
        batched.btree.check_invariants()
        assert sequential._live_keys == batched._live_keys
        assert list(sequential.btree.items()) == list(batched.btree.items())
        assert sequential.max_speed_x == batched.max_speed_x
        assert sequential.max_speed_y == batched.max_speed_y
        assert batched.check_consistency() == []
        distinct = len({obj.uid for obj, _ in batch})
        assert result.ops == distinct
        assert result.in_place + result.moved + result.inserted == distinct


def test_update_batch_crossing_rollover_lands_in_both_partitions():
    """Updates straddling a label boundary key into different TIDs."""
    _, tree = _twin_trees()
    uid_a, uid_b = 0, 1
    batch = [
        MovingObject(uid=uid_a, x=10.0, y=10.0, vx=0.0, vy=0.0, t_update=10.0),
        MovingObject(uid=uid_b, x=10.0, y=10.0, vx=0.0, vy=0.0, t_update=70.0),
    ]
    tree.update_batch(batch)
    tid_a = tree.codec.decompose(tree._live_keys[uid_a])[0]
    tid_b = tree.codec.decompose(tree._live_keys[uid_b])[0]
    assert tid_a != tid_b
    assert tree.partitioner.partition(10.0) == tid_a
    assert tree.partitioner.partition(70.0) == tid_b


def test_update_batch_duplicate_uid_last_wins():
    sequential, batched = _twin_trees()
    older = MovingObject(uid=2, x=100.0, y=100.0, vx=0.0, vy=0.0, t_update=5.0)
    newer = MovingObject(uid=2, x=900.0, y=900.0, vx=1.0, vy=1.0, t_update=20.0)
    sequential.update(older)
    sequential.update(newer)
    result = batched.update_batch([older, newer])
    assert result.ops == 1
    assert list(sequential.btree.items()) == list(batched.btree.items())
    assert batched.fetch_all()[0] is not None
    moved = [obj for obj in batched.fetch_all() if obj.uid == 2]
    assert moved[0].x == 900.0


def test_update_batch_empty_is_a_noop():
    _, tree = _twin_trees()
    before = list(tree.btree.items())
    result = tree.update_batch([])
    assert result.ops == 0
    assert list(tree.btree.items()) == before
