"""Tests for moving objects and the leaf-record codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.motion.objects import MovingObject, ObjectRecordCodec

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


def mover(**overrides):
    fields = dict(uid=7, x=10.0, y=20.0, vx=1.0, vy=-2.0, t_update=5.0)
    fields.update(overrides)
    return MovingObject(**fields)


def test_position_extrapolation():
    obj = mover()
    assert obj.position_at(5.0) == (10.0, 20.0)
    assert obj.position_at(8.0) == (13.0, 14.0)
    assert obj.position_at(3.0) == (8.0, 24.0)  # backwards in time works too


def test_speed():
    assert mover(vx=3.0, vy=4.0).speed == 5.0
    assert mover(vx=0.0, vy=0.0).speed == 0.0


def test_moved_to_preserves_identity():
    obj = mover()
    moved = obj.moved_to(1.0, 2.0, 3.0, 4.0, 9.0)
    assert moved.uid == obj.uid
    assert (moved.x, moved.y, moved.vx, moved.vy, moved.t_update) == (1, 2, 3, 4, 9)
    # The original is frozen and unchanged.
    assert obj.x == 10.0


def test_record_codec_round_trip():
    codec = ObjectRecordCodec()
    obj = mover(x=123.456789, vy=-0.000123)
    payload = codec.pack(obj, pntp=99)
    assert len(payload) == ObjectRecordCodec.SIZE
    restored, pntp = codec.unpack(payload)
    assert restored == obj
    assert pntp == 99


def test_record_size_is_48_bytes():
    # uid u32 + five f64 + pntp u32.
    assert ObjectRecordCodec.SIZE == 48


def test_full_double_precision_preserved():
    codec = ObjectRecordCodec()
    obj = mover(x=1.0 / 3.0, y=2.0 / 7.0, vx=1e-15)
    restored, _ = codec.unpack(codec.pack(obj))
    assert restored.x == obj.x
    assert restored.y == obj.y
    assert restored.vx == obj.vx


@settings(max_examples=100, deadline=None)
@given(
    uid=st.integers(min_value=0, max_value=(1 << 32) - 1),
    x=finite,
    y=finite,
    vx=finite,
    vy=finite,
    t=finite,
    pntp=st.integers(min_value=0, max_value=(1 << 32) - 1),
)
def test_codec_round_trip_property(uid, x, y, vx, vy, t, pntp):
    codec = ObjectRecordCodec()
    obj = MovingObject(uid=uid, x=x, y=y, vx=vx, vy=vy, t_update=t)
    restored, restored_pntp = codec.unpack(codec.pack(obj, pntp))
    assert restored == obj
    assert restored_pntp == pntp


@settings(max_examples=100, deadline=None)
@given(x=finite, y=finite, vx=finite, vy=finite, dt=st.floats(0, 1e3))
def test_linear_motion_is_additive(x, y, vx, vy, dt):
    """pos(t0 + a + b) reached directly equals re-basing at t0 + a."""
    obj = MovingObject(uid=1, x=x, y=y, vx=vx, vy=vy, t_update=0.0)
    half = obj.position_at(dt / 2)
    rebased = obj.moved_to(half[0], half[1], vx, vy, dt / 2)
    direct = obj.position_at(dt)
    via = rebased.position_at(dt)
    assert direct[0] == pytest.approx(via[0], rel=1e-9, abs=1e-6)
    assert direct[1] == pytest.approx(via[1], rel=1e-9, abs=1e-6)
