"""Tests for rectangle -> Z-interval decomposition."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial.decompose import (
    decompose_rect,
    merge_intervals,
    subtract_interval,
)
from repro.spatial.zcurve import z_encode


def brute_cells(x0, x1, y0, y1):
    return {z_encode(x, y) for x in range(x0, x1 + 1) for y in range(y0, y1 + 1)}


def covered(intervals):
    cells = set()
    for lo, hi in intervals:
        cells.update(range(lo, hi + 1))
    return cells


def test_full_grid_is_one_interval():
    assert decompose_rect(0, 7, 0, 7, 3) == [(0, 63)]


def test_single_cell():
    assert decompose_rect(5, 5, 3, 3, 3) == [(z_encode(5, 3), z_encode(5, 3))]


def test_paper_example_rows():
    """The Section 5.3 worked example: R = ([2,2],[4,6]) in an 8x8 space.

    The paper's own Z numbering ([13;16] and [25;28]) interleaves with the
    opposite bit orientation; what is invariant across orientations — and
    what this asserts — is that the decomposition covers exactly the
    rectangle's cells.
    """
    intervals = decompose_rect(2, 2, 4, 6, 3)
    assert covered(intervals) == brute_cells(2, 2, 4, 6)


def test_exactness_small_cases():
    for box in [(0, 3, 0, 0), (1, 6, 2, 5), (7, 7, 0, 7), (3, 4, 3, 4)]:
        intervals = decompose_rect(*box, 3)
        assert covered(intervals) == brute_cells(*box)


def test_output_sorted_disjoint_non_adjacent():
    intervals = decompose_rect(1, 6, 2, 5, 3)
    for (lo1, hi1), (lo2, hi2) in zip(intervals, intervals[1:]):
        assert hi1 + 1 < lo2


def test_clipping_to_grid():
    assert decompose_rect(-5, 100, -5, 100, 3) == [(0, 63)]
    assert decompose_rect(9, 12, 0, 3, 3) == []


def test_empty_box():
    assert decompose_rect(5, 4, 0, 3, 3) == []


def test_invalid_bits():
    with pytest.raises(ValueError):
        decompose_rect(0, 1, 0, 1, 0)
    with pytest.raises(ValueError):
        decompose_rect(0, 1, 0, 1, 33)


def test_coarsening_covers_superset_with_fewer_intervals():
    exact = decompose_rect(3, 60, 5, 58, 6)
    coarse = decompose_rect(3, 60, 5, 58, 6, min_quad_side=8)
    assert len(coarse) <= len(exact)
    assert covered(exact) <= covered(coarse)


def test_coarsening_validation():
    with pytest.raises(ValueError):
        decompose_rect(0, 1, 0, 1, 3, min_quad_side=0)


@settings(max_examples=120, deadline=None)
@given(
    bits=st.integers(min_value=2, max_value=6),
    data=st.data(),
)
def test_exact_decomposition_property(bits, data):
    side = 1 << bits
    x0 = data.draw(st.integers(0, side - 1))
    x1 = data.draw(st.integers(x0, side - 1))
    y0 = data.draw(st.integers(0, side - 1))
    y1 = data.draw(st.integers(y0, side - 1))
    intervals = decompose_rect(x0, x1, y0, y1, bits)
    assert covered(intervals) == brute_cells(x0, x1, y0, y1)
    for (lo1, hi1), (lo2, hi2) in zip(intervals, intervals[1:]):
        assert hi1 + 1 < lo2


@settings(max_examples=120, deadline=None)
@given(
    bits=st.integers(min_value=3, max_value=6),
    quad_exp=st.integers(min_value=0, max_value=3),
    data=st.data(),
)
def test_coarse_decomposition_is_superset(bits, quad_exp, data):
    side = 1 << bits
    x0 = data.draw(st.integers(0, side - 1))
    x1 = data.draw(st.integers(x0, side - 1))
    y0 = data.draw(st.integers(0, side - 1))
    y1 = data.draw(st.integers(y0, side - 1))
    coarse = decompose_rect(x0, x1, y0, y1, bits, min_quad_side=1 << quad_exp)
    assert brute_cells(x0, x1, y0, y1) <= covered(coarse)


# ----------------------------------------------------------------------
# Interval helpers
# ----------------------------------------------------------------------

def test_merge_intervals_fuses_adjacent():
    assert merge_intervals([(0, 3), (4, 6), (9, 10)]) == [(0, 6), (9, 10)]


def test_merge_intervals_fuses_overlap():
    assert merge_intervals([(0, 5), (2, 8)]) == [(0, 8)]


def test_merge_intervals_empty():
    assert merge_intervals([]) == []


def test_subtract_disjoint():
    assert subtract_interval((0, 5), (10, 20)) == [(0, 5)]


def test_subtract_covering():
    assert subtract_interval((3, 7), (0, 100)) == []


def test_subtract_middle():
    assert subtract_interval((0, 10), (4, 6)) == [(0, 3), (7, 10)]


def test_subtract_left_overlap():
    assert subtract_interval((0, 10), (0, 4)) == [(5, 10)]


def test_subtract_right_overlap():
    assert subtract_interval((0, 10), (8, 12)) == [(0, 7)]
