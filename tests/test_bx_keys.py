"""Tests for the Bx-value codec (Equations 1-3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bxtree.keys import BxKeyCodec


def test_widths():
    codec = BxKeyCodec(tid_count=3, zv_bits=20)
    assert codec.tid_bits == 2
    assert codec.total_bits == 22
    assert codec.key_bytes == 3


def test_compose_decompose():
    codec = BxKeyCodec(tid_count=3, zv_bits=20)
    key = codec.compose(2, 12345)
    assert codec.decompose(key) == (2, 12345)


def test_partition_dominates_location():
    codec = BxKeyCodec(tid_count=3, zv_bits=20)
    assert codec.compose(1, 0) > codec.compose(0, (1 << 20) - 1)


def test_search_range():
    codec = BxKeyCodec(tid_count=3, zv_bits=8)
    lo, hi = codec.search_range(1, 10, 20)
    assert codec.decompose(lo) == (1, 10)
    assert codec.decompose(hi) == (1, 20)


def test_validation():
    codec = BxKeyCodec(tid_count=2, zv_bits=8)
    with pytest.raises(ValueError):
        codec.compose(2, 0)
    with pytest.raises(ValueError):
        codec.compose(0, 1 << 9)
    with pytest.raises(ValueError):
        BxKeyCodec(tid_count=0, zv_bits=8)
    with pytest.raises(ValueError):
        BxKeyCodec(tid_count=2, zv_bits=0)


@settings(max_examples=200, deadline=None)
@given(tid=st.integers(0, 4), zv=st.integers(0, (1 << 16) - 1))
def test_round_trip_property(tid, zv):
    codec = BxKeyCodec(tid_count=5, zv_bits=16)
    assert codec.decompose(codec.compose(tid, zv)) == (tid, zv)
