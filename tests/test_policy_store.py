"""Tests for the server-side policy directory."""

import pytest

from repro.policy.lpp import LocationPrivacyPolicy
from repro.policy.store import PolicyStore
from repro.policy.timeset import TimeInterval
from repro.spatial.geometry import Rect

EVERYWHERE = Rect(0, 1000, 0, 1000)
ALWAYS = TimeInterval(0, 1440)


def policy(owner, role="friend", locr=EVERYWHERE, tint=ALWAYS):
    return LocationPrivacyPolicy(owner=owner, role=role, locr=locr, tint=tint)


def test_add_and_lookup():
    store = PolicyStore()
    store.add_policy(policy(1), members=[2, 3])
    assert store.policy_for(1, 2) is not None
    assert store.policy_for(1, 3) is not None
    assert store.policy_for(1, 4) is None
    assert store.policy_for(2, 1) is None  # direction matters
    assert store.policy_count() == 2


def test_role_membership_registered():
    store = PolicyStore()
    store.add_policy(policy(1, role="colleague"), members=[2])
    assert store.roles.is_in_role(1, "colleague", 2)


def test_duplicate_pair_rejected():
    store = PolicyStore()
    store.add_policy(policy(1), members=[2])
    with pytest.raises(ValueError):
        store.add_policy(policy(1, role="family"), members=[2])


def test_self_policy_rejected():
    store = PolicyStore()
    with pytest.raises(ValueError):
        store.add_policy(policy(1), members=[1])


def test_evaluate_applies_definition_2():
    store = PolicyStore()
    store.add_policy(
        policy(1, locr=Rect(0, 100, 0, 100), tint=TimeInterval(0, 720)),
        members=[2],
    )
    assert store.evaluate(owner=1, viewer=2, x=50, y=50, t=100)
    assert not store.evaluate(owner=1, viewer=2, x=500, y=50, t=100)  # region
    assert not store.evaluate(owner=1, viewer=2, x=50, y=50, t=800)  # time
    assert not store.evaluate(owner=1, viewer=3, x=50, y=50, t=100)  # role
    assert not store.evaluate(owner=2, viewer=1, x=50, y=50, t=100)  # direction


def test_evaluate_folds_time():
    store = PolicyStore(time_domain=100.0)
    store.add_policy(policy(1, tint=TimeInterval(0, 50)), members=[2])
    assert store.evaluate(1, 2, 1, 1, t=520)  # 520 mod 100 = 20
    assert not store.evaluate(1, 2, 1, 1, t=575)


def test_semantic_location_translated_on_entry():
    store = PolicyStore()
    store.locations.register("campus", Rect(10, 20, 10, 20))
    semantic = LocationPrivacyPolicy(
        owner=1, role="friend", locr="campus", tint=ALWAYS
    )
    store.add_policy(semantic, members=[2])
    stored = store.policy_for(1, 2)
    assert stored.locr == Rect(10, 20, 10, 20)


def test_friend_list_sorted_by_sv():
    store = PolicyStore()
    for owner in (10, 11, 12):
        store.add_policy(policy(owner), members=[1])
    store.set_sequence_values({10: 5.0, 11: 2.0, 12: 9.0})
    assert store.friend_list(1) == [(2.0, 11), (5.0, 10), (9.0, 12)]
    assert store.friend_list(99) == []


def test_owners_and_viewers():
    store = PolicyStore()
    store.add_policy(policy(1), members=[2, 3])
    store.add_policy(policy(2), members=[1])
    assert store.owners_granting(1) == frozenset({2})
    assert store.owners_granting(2) == frozenset({1})
    assert store.viewers_of(1) == frozenset({2, 3})
    assert store.all_users() == frozenset({1, 2, 3})


def test_related_pairs_unordered_unique():
    store = PolicyStore()
    store.add_policy(policy(1), members=[2])
    store.add_policy(policy(2), members=[1])  # mutual pair -> one entry
    store.add_policy(policy(3), members=[1])
    pairs = sorted(store.related_pairs())
    assert pairs == [(1, 2), (1, 3)]


def test_sequence_value_lookup():
    store = PolicyStore()
    store.set_sequence_values({7: 3.25})
    assert store.sequence_value(7) == 3.25
    with pytest.raises(KeyError):
        store.sequence_value(8)
