"""Round-trip and layout tests for B+-tree page images."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.btree.node import NO_PAGE, InternalNode, LeafNode
from repro.btree.serialization import BTreeNodeSerializer


def test_empty_leaf_round_trip():
    codec = BTreeNodeSerializer(key_bytes=8, value_bytes=4)
    node = LeafNode()
    parsed = codec.parse(codec.pack(node))
    assert parsed.keys == []
    assert parsed.values == []
    assert parsed.next_leaf == NO_PAGE


def test_leaf_round_trip_with_entries():
    codec = BTreeNodeSerializer(key_bytes=4, value_bytes=3)
    node = LeafNode(
        keys=[(1, 10), (1, 11), (7, 0)],
        values=[b"aaa", b"bbb", b"ccc"],
        next_leaf=42,
    )
    parsed = codec.parse(codec.pack(node))
    assert parsed.keys == node.keys
    assert parsed.values == node.values
    assert parsed.next_leaf == 42


def test_internal_round_trip():
    codec = BTreeNodeSerializer(key_bytes=6, value_bytes=0)
    node = InternalNode(separators=[(5, 1), (9, 2)], children=[10, 11, 12])
    parsed = codec.parse(codec.pack(node))
    assert parsed.separators == node.separators
    assert parsed.children == node.children
    assert not parsed.is_leaf


def test_wrong_value_width_rejected():
    codec = BTreeNodeSerializer(key_bytes=4, value_bytes=2)
    node = LeafNode(keys=[(1, 1)], values=[b"toolong"])
    with pytest.raises(ValueError):
        codec.pack(node)


def test_mismatched_children_rejected():
    codec = BTreeNodeSerializer(key_bytes=4, value_bytes=0)
    node = InternalNode(separators=[(1, 1)], children=[1, 2, 3])
    with pytest.raises(ValueError):
        codec.pack(node)


def test_unknown_node_type_rejected():
    codec = BTreeNodeSerializer(key_bytes=4, value_bytes=0)
    with pytest.raises(ValueError):
        codec.parse(b"\x07\x00\x00")


def test_invalid_widths_rejected():
    with pytest.raises(ValueError):
        BTreeNodeSerializer(key_bytes=0, value_bytes=4)
    with pytest.raises(ValueError):
        BTreeNodeSerializer(key_bytes=4, value_bytes=-1)


def test_big_keys_use_full_width():
    codec = BTreeNodeSerializer(key_bytes=12, value_bytes=0)
    big = (1 << 95) - 7
    node = LeafNode(keys=[(big, 0)], values=[b""])
    parsed = codec.parse(codec.pack(node))
    assert parsed.keys == [(big, 0)]


@settings(max_examples=60, deadline=None)
@given(
    entries=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=(1 << 64) - 1),
            st.integers(min_value=0, max_value=(1 << 32) - 1),
            st.binary(min_size=5, max_size=5),
        ),
        max_size=30,
    ),
    next_leaf=st.one_of(st.just(NO_PAGE), st.integers(min_value=0, max_value=1 << 40)),
)
def test_leaf_round_trip_property(entries, next_leaf):
    codec = BTreeNodeSerializer(key_bytes=8, value_bytes=5)
    node = LeafNode(
        keys=[(k, u) for k, u, _ in entries],
        values=[v for _, _, v in entries],
        next_leaf=next_leaf,
    )
    parsed = codec.parse(codec.pack(node))
    assert parsed.keys == node.keys
    assert parsed.values == node.values
    assert parsed.next_leaf == node.next_leaf


@settings(max_examples=60, deadline=None)
@given(
    separators=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=(1 << 48) - 1),
            st.integers(min_value=0, max_value=(1 << 32) - 1),
        ),
        max_size=20,
    ),
)
def test_internal_round_trip_property(separators):
    codec = BTreeNodeSerializer(key_bytes=6, value_bytes=0)
    children = list(range(len(separators) + 1))
    node = InternalNode(separators=separators, children=children)
    parsed = codec.parse(codec.pack(node))
    assert parsed.separators == separators
    assert parsed.children == children
