"""Tests for grouped policy generation (grouping factor θ, Section 6)."""

import random

import pytest

from repro.workloads.policies import PolicyGenerator


def make(seed=5):
    return PolicyGenerator(1000.0, 1440.0, random.Random(seed))


def test_every_user_owns_requested_policy_count():
    generator = make()
    uids = list(range(200))
    store = generator.generate(uids, n_policies=10, grouping_factor=0.7)
    for uid in uids:
        assert len(store.viewers_of(uid)) == 10
    assert store.policy_count() == 200 * 10


def test_grouping_factor_one_keeps_policies_in_group():
    generator = make()
    uids = list(range(300))
    store = generator.generate(uids, n_policies=10, grouping_factor=1.0, group_size=30)
    # Reconstruct groups from observed edges: with θ=1 the policy graph
    # never crosses group boundaries, so connected components have at
    # most group_size members.
    from collections import defaultdict

    adjacency = defaultdict(set)
    for owner in uids:
        for viewer in store.viewers_of(owner):
            adjacency[owner].add(viewer)
            adjacency[viewer].add(owner)
    seen = set()
    for start in uids:
        if start in seen:
            continue
        component = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for peer in adjacency[node]:
                if peer not in component:
                    component.add(peer)
                    frontier.append(peer)
        seen |= component
        assert len(component) <= 30


def test_grouping_factor_zero_spreads_widely():
    generator = make()
    uids = list(range(400))
    store = generator.generate(uids, n_policies=8, grouping_factor=0.0)
    # The policy graph should form one giant component far exceeding any
    # group size.
    from collections import defaultdict

    adjacency = defaultdict(set)
    for owner in uids:
        for viewer in store.viewers_of(owner):
            adjacency[owner].add(viewer)
            adjacency[viewer].add(owner)
    component = {0}
    frontier = [0]
    while frontier:
        node = frontier.pop()
        for peer in adjacency[node]:
            if peer not in component:
                component.add(peer)
                frontier.append(peer)
    assert len(component) > 350


def test_intermediate_theta_matches_quota():
    """θ = Ngr / Np: the in-group share must track θ."""
    generator = make(seed=7)
    uids = list(range(400))
    group_size = 40
    theta = 0.7
    n_policies = 10
    store = generator.generate(uids, n_policies, theta, group_size=group_size)
    # Rebuild group membership from generation order: groups were chunks
    # of the shuffled uid list; instead of peeking, measure the fraction
    # of mutualish in-group edges statistically: count, per user, how
    # many of their targets share >= 1 other policy path back.  Simpler
    # and robust: regenerate with the same seed and verify determinism.
    store2 = PolicyGenerator(1000.0, 1440.0, random.Random(7)).generate(
        uids, n_policies, theta, group_size=group_size
    )
    for uid in uids[:50]:
        assert store.viewers_of(uid) == store2.viewers_of(uid)


def test_policies_have_sane_geometry():
    generator = make()
    uids = list(range(100))
    store = generator.generate(uids, 5, 0.7)
    for uid in uids:
        for viewer in store.viewers_of(uid):
            policy = store.policy_for(uid, viewer)
            assert 0 <= policy.locr.x_lo <= policy.locr.x_hi <= 1000
            assert 0 <= policy.locr.y_lo <= policy.locr.y_hi <= 1000
            assert policy.region_area > 0
            assert 0 < policy.time_duration <= 1440


def test_roles_are_used():
    generator = make()
    store = generator.generate(list(range(50)), 6, 0.5)
    roles_seen = set()
    for uid in range(50):
        roles_seen.update(store.roles.roles_of(uid))
    assert roles_seen == {"family", "friend", "colleague"}


def test_validation():
    generator = make()
    with pytest.raises(ValueError):
        generator.generate(list(range(10)), 5, grouping_factor=1.5)
    with pytest.raises(ValueError):
        generator.generate(list(range(10)), -1, grouping_factor=0.5)
    with pytest.raises(ValueError):
        generator.generate(list(range(5)), 5, grouping_factor=0.5)


def test_random_region_and_interval_in_domain():
    from repro.policy.timeset import TimeInterval, TimeSet

    generator = make()
    for _ in range(100):
        region = generator.random_region()
        assert 0 <= region.x_lo <= region.x_hi <= 1000
        interval = generator.random_interval()
        if isinstance(interval, TimeInterval):
            assert 0 <= interval.start <= interval.end <= 1440
        else:
            assert isinstance(interval, TimeSet)
            for piece in interval.intervals:
                assert 0 <= piece.start <= piece.end <= 1440


def test_time_coverage_uniform_across_the_day():
    """Wrapping windows: every instant of the day is covered by roughly
    the same share of policies (no midnight dead zone)."""
    generator = make(seed=12)
    intervals = [generator.random_interval() for _ in range(600)]
    at_midnight = sum(1 for tint in intervals if tint.contains(1.0))
    at_noon = sum(1 for tint in intervals if tint.contains(720.0))
    assert at_midnight > 0.7 * at_noon
    assert at_noon > 0.7 * at_midnight


# ----------------------------------------------------------------------
# MultiPolicyGenerator (Section 8 extension workload)
# ----------------------------------------------------------------------


def make_multi(seed=5, max_per_pair=3):
    from repro.workloads.policies import MultiPolicyGenerator

    return MultiPolicyGenerator(
        1000.0, 1440.0, random.Random(seed), max_policies_per_pair=max_per_pair
    )


def test_multi_generator_produces_multistore():
    from repro.policy.multistore import MultiPolicyStore

    store = make_multi().generate(list(range(60)), 5, 0.7)
    assert isinstance(store, MultiPolicyStore)


def test_multi_generator_stacks_policies():
    store = make_multi().generate(list(range(80)), 6, 0.7)
    assert store.pair_count() == 80 * 6
    assert store.policy_count() > store.pair_count()  # some pairs stacked
    assert store.policy_count() <= 3 * store.pair_count()


def test_multi_generator_respects_max_per_pair():
    store = make_multi(max_per_pair=1).generate(list(range(50)), 4, 0.7)
    assert store.policy_count() == store.pair_count() == 50 * 4


def test_multi_generator_rejects_bad_max():
    import pytest

    with pytest.raises(ValueError):
        make_multi(max_per_pair=0)


def test_multi_generator_feeds_encoder():
    from repro.core.sequencing import assign_sequence_values

    uids = list(range(40))
    store = make_multi(seed=6).generate(uids, 4, 0.7)
    report = assign_sequence_values(uids, store, 1000.0**2)
    assert set(report.sequence_values) == set(uids)
    assert report.related_pair_count > 0
