"""Regression tests: checkpoint restore vs the speed-maxima invariant.

``PEBTree.attach`` adopts the checkpoint's ``max_speed_x/y`` verbatim.
Those maxima feed the Figure 2 window enlargements, so values stale
relative to the indexed entries (a hand-edited checkpoint, a partial
restore, metadata from an older snapshot of the same disk) silently
shrink query windows and drop results.  These tests pin the guard
rails: ``check_consistency`` detects the divergence, ``repair=True``
and ``attach(recompute_speeds=True)`` / ``load_peb_tree(...,
recompute_speeds=True)`` heal it, and a faithful round-trip through
:mod:`repro.core.checkpoint` is clean.
"""

import gzip
import json
import os

import pytest

from repro.core.checkpoint import (
    META_FILE,
    VERSION,
    CheckpointError,
    clone_peb_tree,
    load_peb_tree,
    restore_peb_tree_state,
    save_peb_tree,
)
from repro.core.prq import prq
from repro.spatial.geometry import Rect
from tests.test_peb_tree import make_peb, mover


def populated_tree(n=12, speed=2.5):
    tree = make_peb(range(n))
    for uid in range(n):
        tree.insert(
            mover(
                uid,
                x=(uid * 83.0) % 1000,
                y=(uid * 47.0) % 1000,
                vx=speed if uid == 3 else 0.5,
                vy=-speed if uid == 7 else 0.25,
            )
        )
    return tree


def test_faithful_round_trip_is_consistent(tmp_path):
    tree = populated_tree()
    save_peb_tree(tree, str(tmp_path))
    restored = load_peb_tree(str(tmp_path), buffer_pages=50)
    assert restored.check_consistency() == []
    assert restored.max_speed_x == tree.max_speed_x
    assert restored.max_speed_y == tree.max_speed_y
    assert list(restored.btree.items()) == list(tree.btree.items())


def test_stale_speed_checkpoint_is_detected_and_recomputable(tmp_path):
    tree = populated_tree(speed=2.5)
    save_peb_tree(tree, str(tmp_path))

    # Corrupt the checkpoint the realistic way: metadata from before
    # the fast users were indexed, pages from after.
    meta_path = os.path.join(str(tmp_path), META_FILE)
    with open(meta_path, "rb") as handle:
        meta = json.loads(gzip.decompress(handle.read()))
    meta["max_speed"] = {"x": 0.1, "y": 0.1}
    with open(meta_path, "wb") as handle:
        handle.write(gzip.compress(json.dumps(meta).encode("utf-8")))

    stale = load_peb_tree(str(tmp_path), buffer_pages=50)
    problems = stale.check_consistency()
    assert any("max_speed_x" in problem for problem in problems)
    assert any("max_speed_y" in problem for problem in problems)

    # repair=True raises the maxima to cover the indexed velocities.
    stale.check_consistency(repair=True)
    assert stale.check_consistency() == []
    assert stale.max_speed_x == pytest.approx(2.5)
    assert stale.max_speed_y == pytest.approx(2.5)

    # The recompute option heals at load time instead.
    healed = load_peb_tree(str(tmp_path), buffer_pages=50, recompute_speeds=True)
    assert healed.check_consistency() == []
    assert healed.max_speed_x == pytest.approx(2.5)


def test_stale_speeds_change_query_results_and_recompute_restores_them(tmp_path):
    """The enlargement hazard made concrete: a fast mover near the
    window edge is found by the healthy tree, missed by the stale one,
    and found again after recompute."""
    tree = make_peb(range(8))
    # uid 3 races left at speed 8: at t=60 (the label) it sits near
    # x=519, at query time t=90 near x=279 — inside the window only if
    # the enlargement accounts for the speed.
    for uid in range(8):
        fast = uid == 3
        tree.insert(
            mover(
                uid,
                x=999.0 if fast else (uid * 29.0) % 250 + 700,
                y=100.0,
                vx=-8.0 if fast else 0.0,
                vy=0.0,
            )
        )
    window = Rect(0.0, 400.0, 0.0, 400.0)
    issuer = 4  # make_store chains uid -> uid+1, so uid 3's policy names 4
    healthy = {obj.uid for obj in prq(tree, issuer, window, 90.0).users}

    save_peb_tree(tree, str(tmp_path))
    meta_path = os.path.join(str(tmp_path), META_FILE)
    with open(meta_path, "rb") as handle:
        meta = json.loads(gzip.decompress(handle.read()))
    meta["max_speed"] = {"x": 0.0, "y": 0.0}
    with open(meta_path, "wb") as handle:
        handle.write(gzip.compress(json.dumps(meta).encode("utf-8")))

    stale = load_peb_tree(str(tmp_path), buffer_pages=50)
    stale_found = {obj.uid for obj in prq(stale, issuer, window, 90.0).users}
    healed = load_peb_tree(str(tmp_path), buffer_pages=50, recompute_speeds=True)
    healed_found = {obj.uid for obj in prq(healed, issuer, window, 90.0).users}

    assert 3 in healthy
    assert 3 not in stale_found  # the silent loss the check guards against
    assert healed_found == healthy


def test_check_consistency_flags_memo_divergence():
    tree = populated_tree(n=8)
    # Remove an entry behind the memo's back (index/metadata mismatch).
    victim = 5
    key = tree._live_keys[victim]
    tree.btree.delete(key, victim)
    problems = tree.check_consistency()
    assert any(f"memoized user {victim}" in problem for problem in problems)
    # Memo divergence is never auto-repaired.
    assert tree.check_consistency(repair=True)


def test_clone_is_independent_and_identical():
    tree = populated_tree()
    twin = clone_peb_tree(tree, buffer_pages=50)
    assert list(twin.btree.items()) == list(tree.btree.items())
    assert twin._live_keys == tree._live_keys
    assert twin.check_consistency() == []
    # Divergence after cloning stays local to each copy.
    twin.update(mover(0, x=999.0, y=999.0, vx=0.0, vy=0.0, t=30.0))
    assert tree.fetch_all() != twin.fetch_all()
    tree.btree.check_invariants()
    twin.btree.check_invariants()


# ----------------------------------------------------------------------
# Failure paths: a bad checkpoint is a CheckpointError, never a
# partial tree (the loader validates metadata before building anything)
# ----------------------------------------------------------------------


def _rewrite_meta(directory, mutate):
    path = os.path.join(directory, META_FILE)
    with open(path, "rb") as handle:
        meta = json.loads(gzip.decompress(handle.read()))
    mutate(meta)
    with open(path, "wb") as handle:
        handle.write(gzip.compress(json.dumps(meta).encode("utf-8")))


def test_load_missing_metadata_is_a_checkpoint_error(tmp_path):
    with pytest.raises(CheckpointError, match="no checkpoint metadata"):
        load_peb_tree(str(tmp_path))


def test_load_rejects_a_foreign_format_marker(tmp_path):
    save_peb_tree(populated_tree(), str(tmp_path))
    _rewrite_meta(str(tmp_path), lambda meta: meta.update(format="some-other-tool"))
    with pytest.raises(CheckpointError, match="not a PEB checkpoint"):
        load_peb_tree(str(tmp_path))


def test_load_rejects_a_future_version(tmp_path):
    save_peb_tree(populated_tree(), str(tmp_path))
    _rewrite_meta(str(tmp_path), lambda meta: meta.update(version=VERSION + 1))
    with pytest.raises(CheckpointError, match=f"this build reads {VERSION}"):
        load_peb_tree(str(tmp_path))


def test_load_rejects_truncated_metadata(tmp_path):
    save_peb_tree(populated_tree(), str(tmp_path))
    path = os.path.join(str(tmp_path), META_FILE)
    blob = open(path, "rb").read()
    with open(path, "wb") as handle:
        handle.write(blob[: len(blob) // 2])  # torn mid-write
    with pytest.raises(CheckpointError, match="unreadable checkpoint metadata"):
        load_peb_tree(str(tmp_path))


def test_load_rejects_corrupted_metadata(tmp_path):
    save_peb_tree(populated_tree(), str(tmp_path))
    path = os.path.join(str(tmp_path), META_FILE)
    with open(path, "wb") as handle:
        handle.write(gzip.compress(b"{not json at all"))
    with pytest.raises(CheckpointError, match="unreadable checkpoint metadata"):
        load_peb_tree(str(tmp_path))
    with open(path, "wb") as handle:
        handle.write(gzip.compress(b"[1, 2, 3]"))  # valid JSON, wrong shape
    with pytest.raises(CheckpointError, match="malformed checkpoint metadata"):
        load_peb_tree(str(tmp_path))


def test_restore_rejects_mismatched_codec_geometry(tmp_path):
    tree = populated_tree(n=12)
    save_peb_tree(tree, str(tmp_path))
    # A checkpoint from a deployment with different key geometry.
    _rewrite_meta(
        str(tmp_path),
        lambda meta: meta["codec"].update(zv_bits=meta["codec"]["zv_bits"] + 2),
    )
    before = list(tree.btree.items())
    with pytest.raises(CheckpointError, match="codec geometry"):
        restore_peb_tree_state(str(tmp_path), tree)
    # The mismatch is detected before anything is rewritten.
    assert list(tree.btree.items()) == before
