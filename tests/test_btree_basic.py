"""Functional tests for B+-tree insert / search / delete / scans."""

import pytest

from repro.btree import BTreeConfig
from repro.storage.disk import PAGE_SIZE

from tests.conftest import make_tree


def test_config_fanout_matches_page_geometry():
    config = BTreeConfig(key_bytes=10, value_bytes=48, page_size=PAGE_SIZE)
    # leaf entry: 10 + 4 + 48 = 62 bytes, header 11 -> (4096-11)//62 = 65
    assert config.leaf_capacity == 65
    # internal entry: 10 + 4 + 8 = 22, header 3 + trailing child 8
    assert config.internal_capacity == (4096 - 3 - 8) // 22


def test_config_rejects_tiny_pages():
    with pytest.raises(ValueError):
        BTreeConfig(key_bytes=100, value_bytes=500, page_size=64).leaf_capacity


def test_empty_tree():
    tree = make_tree()
    assert len(tree) == 0
    assert tree.search(1, 1) is None
    assert list(tree.scan_range(0, 100)) == []
    assert tree.delete(1, 1) is False
    tree.check_invariants()


def test_single_insert_and_search():
    tree = make_tree()
    tree.insert(5, 7, b"v" * 16)
    assert tree.search(5, 7) == b"v" * 16
    assert tree.search(5, 8) is None
    assert tree.search(4, 7) is None
    assert len(tree) == 1


def test_duplicate_composite_key_rejected():
    tree = make_tree()
    tree.insert(5, 7, b"a" * 16)
    with pytest.raises(KeyError):
        tree.insert(5, 7, b"b" * 16)


def test_same_key_different_uids_coexist():
    tree = make_tree()
    tree.insert(5, 1, b"a" * 16)
    tree.insert(5, 2, b"b" * 16)
    assert tree.search(5, 1) == b"a" * 16
    assert tree.search(5, 2) == b"b" * 16
    found = [(k, u) for k, u, _ in tree.scan_range(5, 5)]
    assert found == [(5, 1), (5, 2)]


def test_negative_key_rejected():
    tree = make_tree()
    with pytest.raises(ValueError):
        tree.insert(-1, 0, b"x" * 16)


def test_oversized_key_rejected():
    tree = make_tree(key_bytes=2)
    with pytest.raises(ValueError):
        tree.insert(1 << 17, 0, b"x" * 16)


def test_ordered_iteration():
    tree = make_tree()
    keys = [(3, 0), (1, 5), (2, 2), (1, 1), (3, 1)]
    for key, uid in keys:
        tree.insert(key, uid, bytes([key, uid]) * 8)
    assert [(k, u) for k, u, _ in tree.items()] == sorted(keys)


def test_scan_range_bounds_inclusive():
    tree = make_tree()
    for key in range(10):
        tree.insert(key, 0, b"x" * 16)
    found = [k for k, _, _ in tree.scan_range(3, 6)]
    assert found == [3, 4, 5, 6]


def test_scan_empty_interval():
    tree = make_tree()
    tree.insert(5, 0, b"x" * 16)
    assert list(tree.scan_range(6, 4)) == []
    assert list(tree.scan_range(100, 200)) == []


def test_insert_split_grows_height():
    tree = make_tree()
    capacity = tree.config.leaf_capacity
    for key in range(capacity + 1):
        tree.insert(key, 0, b"x" * 16)
    assert tree.height == 2
    assert tree.leaf_count == 2
    tree.check_invariants()


def test_delete_returns_presence():
    tree = make_tree()
    tree.insert(9, 9, b"x" * 16)
    assert tree.delete(9, 9) is True
    assert tree.delete(9, 9) is False
    assert len(tree) == 0


def test_values_survive_cold_restart_of_buffer():
    tree = make_tree(buffer_pages=8)
    for key in range(200):
        tree.insert(key, key % 3, key.to_bytes(16, "big"))
    tree.pool.clear()  # flush + drop every frame
    for key in range(200):
        assert tree.search(key, key % 3) == key.to_bytes(16, "big")


def test_sequential_and_reverse_insert_shapes_agree():
    forward = make_tree()
    backward = make_tree()
    for key in range(300):
        forward.insert(key, 0, b"x" * 16)
    for key in reversed(range(300)):
        backward.insert(key, 0, b"x" * 16)
    forward.check_invariants()
    backward.check_invariants()
    assert [k for k, _, _ in forward.items()] == [k for k, _, _ in backward.items()]
