"""Tests for the analytical cost model (Section 6, Equations 6-7)."""

import pytest

from repro.core.cost_model import (
    BandScanCostModel,
    CostModel,
    CostSample,
    base_cost,
)


def test_base_cost_at_theta_one_is_minimum():
    """θ = 1: perfectly grouped users cost the single-leaf minimum."""
    assert base_cost(n_policies=50, theta=1.0, n_leaves=1000) == pytest.approx(1.0)


def test_base_cost_at_theta_zero_is_worst_case():
    """θ = 0: Np**0 = 1, each related user may cost its own leaf."""
    assert base_cost(50, 0.0, 1000) == pytest.approx(1.0 + 50 - 1)


def test_base_cost_clamps_to_leaf_count():
    """More policies than leaves: the index size bounds the cost."""
    assert base_cost(n_policies=5000, theta=0.5, n_leaves=100) == pytest.approx(
        1.0 + 100 - 5000**0.5
    )


def test_base_cost_monotone_in_theta():
    costs = [base_cost(50, theta / 10, 1000) for theta in range(11)]
    assert costs == sorted(costs, reverse=True)


def test_validation():
    with pytest.raises(ValueError):
        base_cost(-1, 0.5, 10)
    with pytest.raises(ValueError):
        base_cost(10, 1.5, 10)
    with pytest.raises(ValueError):
        base_cost(10, 0.5, 0)


def sample(n_users, measured, n_policies=50, theta=0.7, n_leaves=1000):
    return CostSample(
        n_users=n_users,
        n_policies=n_policies,
        theta=theta,
        n_leaves=n_leaves,
        measured_io=measured,
    )


def test_calibration_recovers_known_coefficients():
    truth = CostModel(a1=10.0, a2=0.3, space_side=1000.0)
    first = sample(20_000, truth.estimate(20_000, 50, 0.7, 1000))
    second = sample(80_000, truth.estimate(80_000, 50, 0.7, 1000))
    fitted = CostModel.calibrate(first, second, 1000.0)
    assert fitted.a1 == pytest.approx(10.0)
    assert fitted.a2 == pytest.approx(0.3)


def test_calibrated_model_interpolates():
    truth = CostModel(a1=7.0, a2=0.5, space_side=1000.0)
    fitted = CostModel.calibrate(
        sample(10_000, truth.estimate(10_000, 50, 0.7, 1000)),
        sample(100_000, truth.estimate(100_000, 50, 0.7, 1000)),
        1000.0,
    )
    for n_users in (30_000, 50_000, 70_000):
        assert fitted.estimate(n_users, 50, 0.7, 1000) == pytest.approx(
            truth.estimate(n_users, 50, 0.7, 1000)
        )


def test_calibration_rejects_equal_densities():
    with pytest.raises(ValueError):
        CostModel.calibrate(sample(10_000, 5.0), sample(10_000, 6.0), 1000.0)


def test_calibration_rejects_theta_one_samples():
    with pytest.raises(ValueError):
        CostModel.calibrate(
            sample(10_000, 5.0, theta=1.0), sample(20_000, 6.0), 1000.0
        )


def test_estimate_grows_linearly_with_users():
    model = CostModel(a1=10.0, a2=0.3, space_side=1000.0)
    deltas = []
    previous = None
    for n_users in range(10_000, 100_001, 10_000):
        cost = model.estimate(n_users, 50, 0.7, 1000)
        if previous is not None:
            deltas.append(cost - previous)
        previous = cost
    assert all(delta == pytest.approx(deltas[0]) for delta in deltas)


def test_estimate_decreases_with_grouping():
    model = CostModel(a1=10.0, a2=0.3, space_side=1000.0)
    costs = [model.estimate(60_000, 50, theta / 10, 1000) for theta in range(11)]
    assert costs == sorted(costs, reverse=True)
    assert costs[-1] == pytest.approx(1.0)  # θ = 1 -> single-leaf minimum


# ----------------------------------------------------------------------
# BandScanCostModel: the per-scan merge-vs-exact pricing
# ----------------------------------------------------------------------


def test_band_scan_cost_basics():
    model = BandScanCostModel(seek_us=60.0, read_us=10.0, entries_per_page=16.0)
    assert model.scan_cost_us(0) == 0.0
    assert model.scan_cost_us(100, runs=0) == 0.0
    # One run, one page minimum: seek + one transfer.
    assert model.scan_cost_us(1) == pytest.approx(70.0)
    # 160 entries = 10 pages.
    assert model.scan_cost_us(160) == pytest.approx(60.0 + 100.0)
    # Fractional runs price an *expected* scan count.
    assert model.scan_cost_us(160, runs=0.5) == pytest.approx(30.0 + 100.0)
    with pytest.raises(ValueError):
        model.scan_cost_us(10, runs=-1.0)


def test_band_scan_validation():
    with pytest.raises(ValueError):
        BandScanCostModel(seek_us=-1.0)
    with pytest.raises(ValueError):
        BandScanCostModel(read_us=0.0)
    with pytest.raises(ValueError):
        BandScanCostModel(entries_per_page=0.0)


def test_from_device_copies_the_profile_pricing():
    from repro.simio import PROFILES

    for name, profile in PROFILES.items():
        model = BandScanCostModel.from_device(profile, entries_per_page=32.0)
        assert model.seek_us == profile.seek_us
        assert model.read_us == profile.read_us
        assert model.entries_per_page == 32.0


def test_prefer_merge_crossover_in_dead_fraction():
    """Fixed demand (10 bands over 320 requested entries), growing
    merged coverage: merging wins while dead pages stay cheaper than
    the 9 seeks it saves, then flips exact past the crossover."""
    model = BandScanCostModel(seek_us=60.0, read_us=10.0, entries_per_page=16.0)
    exact_entries, exact_scans = 320.0, 10.0
    verdicts = [
        model.prefer_merge(merged_entries, 1.0, exact_entries, exact_scans)
        for merged_entries in (320.0, 640.0, 1280.0, 2560.0, 5120.0)
    ]
    assert verdicts[0] is True  # no dead entries: strictly cheaper
    assert verdicts[-1] is False  # 15x over-scan: seeks were cheaper
    # Single crossover: True...True False...False.
    assert verdicts == sorted(verdicts, reverse=True)


def test_seek_heavy_devices_tolerate_more_over_scan():
    """The same workload flips merge->exact at a larger dead fraction
    on hdd (seeks expensive) than on nvme (seeks nearly free)."""
    from repro.simio import PROFILES

    def max_merged_still_preferred(model):
        merged = 320.0
        while model.prefer_merge(merged, 1.0, 320.0, 10.0):
            merged *= 1.25
            if merged > 1e9:
                break
        return merged

    hdd = BandScanCostModel.from_device(PROFILES["hdd"])
    nvme = BandScanCostModel.from_device(PROFILES["nvme"])
    assert max_merged_still_preferred(hdd) > max_merged_still_preferred(nvme)
    assert hdd.gap_entry_budget() > nvme.gap_entry_budget()


def test_gap_entry_budget_breaks_even():
    """Coalescing across exactly the budget gap costs the same as the
    seek it saves: two runs vs one fused run with the gap read through."""
    model = BandScanCostModel(seek_us=60.0, read_us=10.0, entries_per_page=16.0)
    budget = model.gap_entry_budget()
    assert budget == pytest.approx(96.0)
    live = 320.0  # entries in the two runs themselves
    split = model.scan_cost_us(live, runs=2.0)
    fused = model.scan_cost_us(live + budget, runs=1.0)
    assert fused == pytest.approx(split)
