"""Tests for the analytical cost model (Section 6, Equations 6-7)."""

import pytest

from repro.core.cost_model import CostModel, CostSample, base_cost


def test_base_cost_at_theta_one_is_minimum():
    """θ = 1: perfectly grouped users cost the single-leaf minimum."""
    assert base_cost(n_policies=50, theta=1.0, n_leaves=1000) == pytest.approx(1.0)


def test_base_cost_at_theta_zero_is_worst_case():
    """θ = 0: Np**0 = 1, each related user may cost its own leaf."""
    assert base_cost(50, 0.0, 1000) == pytest.approx(1.0 + 50 - 1)


def test_base_cost_clamps_to_leaf_count():
    """More policies than leaves: the index size bounds the cost."""
    assert base_cost(n_policies=5000, theta=0.5, n_leaves=100) == pytest.approx(
        1.0 + 100 - 5000**0.5
    )


def test_base_cost_monotone_in_theta():
    costs = [base_cost(50, theta / 10, 1000) for theta in range(11)]
    assert costs == sorted(costs, reverse=True)


def test_validation():
    with pytest.raises(ValueError):
        base_cost(-1, 0.5, 10)
    with pytest.raises(ValueError):
        base_cost(10, 1.5, 10)
    with pytest.raises(ValueError):
        base_cost(10, 0.5, 0)


def sample(n_users, measured, n_policies=50, theta=0.7, n_leaves=1000):
    return CostSample(
        n_users=n_users,
        n_policies=n_policies,
        theta=theta,
        n_leaves=n_leaves,
        measured_io=measured,
    )


def test_calibration_recovers_known_coefficients():
    truth = CostModel(a1=10.0, a2=0.3, space_side=1000.0)
    first = sample(20_000, truth.estimate(20_000, 50, 0.7, 1000))
    second = sample(80_000, truth.estimate(80_000, 50, 0.7, 1000))
    fitted = CostModel.calibrate(first, second, 1000.0)
    assert fitted.a1 == pytest.approx(10.0)
    assert fitted.a2 == pytest.approx(0.3)


def test_calibrated_model_interpolates():
    truth = CostModel(a1=7.0, a2=0.5, space_side=1000.0)
    fitted = CostModel.calibrate(
        sample(10_000, truth.estimate(10_000, 50, 0.7, 1000)),
        sample(100_000, truth.estimate(100_000, 50, 0.7, 1000)),
        1000.0,
    )
    for n_users in (30_000, 50_000, 70_000):
        assert fitted.estimate(n_users, 50, 0.7, 1000) == pytest.approx(
            truth.estimate(n_users, 50, 0.7, 1000)
        )


def test_calibration_rejects_equal_densities():
    with pytest.raises(ValueError):
        CostModel.calibrate(sample(10_000, 5.0), sample(10_000, 6.0), 1000.0)


def test_calibration_rejects_theta_one_samples():
    with pytest.raises(ValueError):
        CostModel.calibrate(
            sample(10_000, 5.0, theta=1.0), sample(20_000, 6.0), 1000.0
        )


def test_estimate_grows_linearly_with_users():
    model = CostModel(a1=10.0, a2=0.3, space_side=1000.0)
    deltas = []
    previous = None
    for n_users in range(10_000, 100_001, 10_000):
        cost = model.estimate(n_users, 50, 0.7, 1000)
        if previous is not None:
            deltas.append(cost - previous)
        previous = cost
    assert all(delta == pytest.approx(deltas[0]) for delta in deltas)


def test_estimate_decreases_with_grouping():
    model = CostModel(a1=10.0, a2=0.3, space_side=1000.0)
    costs = [model.estimate(60_000, 50, theta / 10, 1000) for theta in range(11)]
    assert costs == sorted(costs, reverse=True)
    assert costs[-1] == pytest.approx(1.0)  # θ = 1 -> single-leaf minimum
