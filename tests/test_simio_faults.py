"""TimedDisk composed with the fault-injection stack, under sharding.

The simulated-latency wrapper must be *transparent to dishonesty*: a
:class:`repro.storage.faults.FaultyDisk` injecting read failures or a
:class:`repro.storage.faults.ChecksummedDisk` detecting corruption
underneath a :class:`repro.simio.disk.TimedDisk` must surface its
error unchanged through the whole sharded stack — per-shard buffer
pools, the scatter/gather scanner, and the I/O scheduler's fork/join
(thread pool included).  And because the paper's cost discipline only
counts completed transfers, a failed access charges no virtual time.
"""

import pytest

from repro.engine import QueryEngine
from repro.shard import ShardedPEBTree, ShardedQueryEngine
from repro.storage.faults import (
    ChecksummedDisk,
    CorruptPageError,
    DiskFaultError,
    FaultyDisk,
)

from tests.conftest import build_world

N_SHARDS = 2


@pytest.fixture(scope="module")
def world():
    return build_world(n_users=220, n_policies=8, seed=17)


def build_timed_sharded(world, disk_factory, buffer_pages=64):
    sharded = ShardedPEBTree.build(
        N_SHARDS,
        world.grid,
        world.partitioner,
        world.store,
        uids=world.uids,
        page_size=1024,
        buffer_pages=512,
        latency="ssd",
        parallel_io=True,
        disk_factory=disk_factory,
    )
    for uid in world.uids:
        sharded.insert(world.states[uid])
    for pool in sharded.pools:
        # Cold pools: the next scan must physically read, so injected
        # faults and corrupted pages are actually hit.
        pool.clear()
        pool.resize(buffer_pages)
    return sharded


def batch_specs(world):
    return world.query_generator().range_queries(world.uids, 12, 260.0, 4.0)


def test_injected_fault_surfaces_through_the_timed_parallel_stack(world):
    faulty: list[FaultyDisk] = []

    def factory(shard):
        disk = FaultyDisk(page_size=1024)
        faulty.append(disk)
        return disk

    sharded = build_timed_sharded(world, factory)
    assert all(isinstance(disk, FaultyDisk) for disk in faulty)
    specs = batch_specs(world)
    for disk in faulty:
        disk.fail_every_nth_read = 1  # the first physical read fails

    clock = sharded.sim_clock
    elapsed_before = clock.elapsed
    accesses_before = sharded.latency_stats.accesses
    reads_before = sharded.stats.physical_reads
    engine = ShardedQueryEngine(sharded, parallel_prefetch=True)
    with pytest.raises(DiskFaultError):
        engine.execute_batch(specs)
    assert sum(disk.injected_faults for disk in faulty) > 0
    # Failed accesses charge neither counters nor virtual time.
    assert clock.elapsed == elapsed_before
    assert sharded.latency_stats.accesses == accesses_before
    assert sharded.stats.physical_reads == reads_before

    # Once the medium heals, the same deployment answers correctly —
    # no partial state was kept anywhere in the stack.
    for disk in faulty:
        disk.heal()
    report = ShardedQueryEngine(sharded, parallel_prefetch=True).execute_batch(specs)
    expected = QueryEngine(world.peb).execute_batch(specs)
    for spec, single, shard in zip(specs, expected.results, report.results):
        assert single.uids == shard.uids, spec
        assert single.candidates_examined == shard.candidates_examined, spec
    assert sharded.stats.physical_reads > 0
    assert sharded.latency_stats.busy_us > 0
    assert report.stats.virtual_time_us > 0


def test_corruption_surfaces_through_the_timed_parallel_stack(world):
    checksummed: list[ChecksummedDisk] = []

    def factory(shard):
        disk = ChecksummedDisk(page_size=1024)
        checksummed.append(disk)
        return disk

    sharded = build_timed_sharded(world, factory)
    latency_before = sharded.latency_stats.accesses
    # Flip one bit in every shard's root page image: the first descent
    # anywhere must detect it.
    for tree in sharded.trees:
        timed = tree.btree.pool.disk
        timed.inner.corrupt(tree.btree.root_id, bit=3)

    with pytest.raises(CorruptPageError):
        ShardedQueryEngine(sharded, parallel_prefetch=True).execute_batch(
            batch_specs(world)
        )
    # The corrupted transfer was detected after the inner read, before
    # the timed layer charged it: no virtual time for a failed access.
    assert sharded.latency_stats.accesses == latency_before


def test_fault_free_timed_fault_stack_matches_the_single_tree(world):
    """The full composition (Timed over Faulty), healthy, is a no-op."""
    sharded = build_timed_sharded(world, lambda shard: FaultyDisk(page_size=1024))
    specs = batch_specs(world)
    report = ShardedQueryEngine(sharded, parallel_prefetch=True).execute_batch(specs)
    expected = QueryEngine(world.peb).execute_batch(specs)
    for spec, single, shard in zip(specs, expected.results, report.results):
        assert single.uids == shard.uids, spec
        assert single.candidates_examined == shard.candidates_examined, spec
    # Counters and latency agree: every counted read was priced.
    assert sharded.latency_stats.reads == sharded.stats.physical_reads
