"""Tests for the Z-order (Morton) encoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial.zcurve import z_decode, z_encode

coordinate = st.integers(min_value=0, max_value=(1 << 32) - 1)


def test_origin_is_zero():
    assert z_encode(0, 0) == 0


def test_first_quadrant_order():
    """x occupies the even bits: (1,0) -> 1, (0,1) -> 2, (1,1) -> 3."""
    assert z_encode(1, 0) == 1
    assert z_encode(0, 1) == 2
    assert z_encode(1, 1) == 3


def test_known_value():
    # x=0b101 spreads to 0b010001; y=0b011 spreads to 0b000101 shifted -> 0b001010
    assert z_encode(5, 3) == 0b011011


def test_decode_inverts_encode_examples():
    for x, y in [(0, 0), (1, 2), (123, 456), (2**20 - 1, 3)]:
        assert z_decode(z_encode(x, y)) == (x, y)


def test_monotone_in_each_axis():
    """Fixing one axis, the code grows with the other — the property the
    O(1) z_span corner trick relies on."""
    for y in (0, 7, 100):
        codes = [z_encode(x, y) for x in range(64)]
        assert codes == sorted(codes)
    for x in (0, 7, 100):
        codes = [z_encode(x, y) for y in range(64)]
        assert codes == sorted(codes)


def test_bijective_on_small_grid():
    seen = {z_encode(x, y) for x in range(32) for y in range(32)}
    assert seen == set(range(32 * 32))


def test_negative_rejected():
    with pytest.raises(ValueError):
        z_encode(-1, 0)
    with pytest.raises(ValueError):
        z_encode(0, -1)
    with pytest.raises(ValueError):
        z_decode(-5)


def test_oversized_rejected():
    with pytest.raises(ValueError):
        z_encode(1 << 33, 0)


@settings(max_examples=200, deadline=None)
@given(x=coordinate, y=coordinate)
def test_round_trip_property(x, y):
    assert z_decode(z_encode(x, y)) == (x, y)


@settings(max_examples=100, deadline=None)
@given(x=coordinate, y=coordinate)
def test_interleaving_is_bitwise(x, y):
    """Each output bit is exactly one input bit."""
    z = z_encode(x, y)
    for bit in range(32):
        assert (z >> (2 * bit)) & 1 == (x >> bit) & 1
        assert (z >> (2 * bit + 1)) & 1 == (y >> bit) & 1
