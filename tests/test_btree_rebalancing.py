"""Structural tests for splits, borrows, merges, and root collapse."""

import random

from tests.conftest import make_tree


def fill(tree, count, value=b"x" * 16):
    for key in range(count):
        tree.insert(key, 0, value)


def test_drain_to_empty_collapses_to_single_leaf():
    tree = make_tree()
    fill(tree, 500)
    assert tree.height > 1
    for key in range(500):
        assert tree.delete(key, 0)
    assert len(tree) == 0
    assert tree.height == 1
    assert tree.leaf_count == 1
    tree.check_invariants()


def test_reverse_drain():
    tree = make_tree()
    fill(tree, 500)
    for key in reversed(range(500)):
        assert tree.delete(key, 0)
    assert len(tree) == 0
    tree.check_invariants()


def test_middle_out_drain_keeps_invariants():
    tree = make_tree()
    fill(tree, 400)
    order = sorted(range(400), key=lambda k: abs(k - 200))
    for index, key in enumerate(order):
        assert tree.delete(key, 0)
        if index % 50 == 0:
            tree.check_invariants()
    tree.check_invariants()


def test_leaf_chain_consistent_after_heavy_churn():
    tree = make_tree()
    rng = random.Random(5)
    live = set()
    for _ in range(4000):
        key = rng.randrange(600)
        if key in live:
            assert tree.delete(key, 0)
            live.remove(key)
        else:
            tree.insert(key, 0, b"x" * 16)
            live.add(key)
    tree.check_invariants()
    assert [k for k, _, _ in tree.items()] == sorted(live)


def test_interleaved_duplicate_key_churn():
    """Entries sharing the index key but with distinct uids."""
    tree = make_tree()
    rng = random.Random(6)
    live = set()
    for _ in range(3000):
        key = rng.randrange(20)  # few keys -> heavy duplication
        uid = rng.randrange(200)
        if (key, uid) in live:
            assert tree.delete(key, uid)
            live.remove((key, uid))
        else:
            tree.insert(key, uid, b"y" * 16)
            live.add((key, uid))
    tree.check_invariants()
    assert [(k, u) for k, u, _ in tree.items()] == sorted(live)


def test_freed_pages_are_released_on_disk():
    tree = make_tree()
    fill(tree, 1000)
    tree.pool.flush()
    pages_full = tree.pool.disk.page_count
    for key in range(1000):
        tree.delete(key, 0)
    tree.pool.flush()
    assert tree.pool.disk.page_count < pages_full


def test_scan_correct_under_partial_deletion():
    tree = make_tree()
    fill(tree, 300)
    for key in range(0, 300, 3):
        tree.delete(key, 0)
    expected = [k for k in range(300) if k % 3 != 0]
    assert [k for k, _, _ in tree.items()] == expected
    window = [k for k, _, _ in tree.scan_range(50, 100)]
    assert window == [k for k in expected if 50 <= k <= 100]
