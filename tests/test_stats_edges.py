"""Edge cases of the stats primitives the reports are built on.

``percentile`` / ``SojournSummary.of`` feed every latency table, and
``IOStats`` marks feed every before/after I/O delta — both have
boundary behaviors (empty samples, fractions at 0/1, unknown labels)
that the happy-path integration tests never touch.
"""

import pytest

from repro.service.stats import SojournSummary, percentile
from repro.storage.stats import IOStats, StatsView, merge_stats


# ----------------------------------------------------------------------
# percentile
# ----------------------------------------------------------------------


def test_percentile_empty_sample_is_zero():
    assert percentile([], 0.5) == 0.0
    assert percentile([], 0.0) == 0.0
    assert percentile([], 1.0) == 0.0


def test_percentile_single_element_every_fraction():
    for fraction in (0.0, 0.25, 0.5, 0.99, 1.0):
        assert percentile([42.0], fraction) == 42.0


def test_percentile_fraction_bounds():
    values = [5.0, 1.0, 3.0, 2.0, 4.0]
    # fraction 0 clamps the nearest rank to 1: the minimum.
    assert percentile(values, 0.0) == 1.0
    assert percentile(values, 1.0) == 5.0
    assert percentile(values, 0.5) == 3.0


def test_percentile_does_not_mutate_input():
    values = [3.0, 1.0, 2.0]
    percentile(values, 0.5)
    assert values == [3.0, 1.0, 2.0]


def test_percentile_out_of_range_fraction_raises():
    with pytest.raises(ValueError):
        percentile([1.0], -0.01)
    with pytest.raises(ValueError):
        percentile([1.0], 1.01)


def test_percentile_nearest_rank_matches_definition():
    values = list(range(1, 101))  # 1..100
    assert percentile(values, 0.95) == 95
    assert percentile(values, 0.99) == 99
    assert percentile(values, 0.501) == 51


# ----------------------------------------------------------------------
# SojournSummary.of
# ----------------------------------------------------------------------


def test_sojourn_summary_empty_is_all_zero():
    summary = SojournSummary.of([])
    assert summary.count == 0
    assert summary.mean_us == 0.0
    assert summary.p50_us == summary.p95_us == summary.p99_us == 0.0
    assert summary.max_us == 0.0


def test_sojourn_summary_single_element_collapses():
    summary = SojournSummary.of([7.5])
    assert summary.count == 1
    assert summary.mean_us == 7.5
    assert summary.p50_us == summary.p95_us == summary.p99_us == 7.5
    assert summary.max_us == 7.5


def test_sojourn_summary_percentiles_are_ordered():
    summary = SojournSummary.of([float(v) for v in range(1, 201)])
    assert summary.count == 200
    assert summary.p50_us <= summary.p95_us <= summary.p99_us <= summary.max_us
    assert summary.max_us == 200.0
    snapshot = summary.snapshot()
    assert snapshot["count"] == 200
    assert snapshot["p99_us"] == summary.p99_us


# ----------------------------------------------------------------------
# IOStats marks
# ----------------------------------------------------------------------


def test_iostats_default_and_named_marks_are_independent():
    stats = IOStats()
    stats.physical_reads = 10
    stats.mark()  # default label
    stats.physical_reads = 16
    stats.physical_writes = 3
    stats.mark("phase2")
    stats.physical_reads = 21
    stats.physical_writes = 8
    assert stats.reads_since() == 11
    assert stats.reads_since("phase2") == 5
    assert stats.writes_since() == 8
    assert stats.writes_since("phase2") == 5


def test_iostats_unknown_label_counts_from_zero():
    stats = IOStats(physical_reads=4, physical_writes=2)
    assert stats.reads_since("never-marked") == 4
    assert stats.writes_since("never-marked") == 2


def test_iostats_remarking_overwrites():
    stats = IOStats()
    stats.physical_reads = 5
    stats.mark("x")
    stats.physical_reads = 9
    stats.mark("x")
    assert stats.reads_since("x") == 0


def test_iostats_reset_clears_counters_and_marks():
    stats = IOStats(physical_reads=7, logical_reads=9)
    stats.mark("before")
    stats.reset()
    assert stats.physical_reads == 0
    assert stats.logical_reads == 0
    # The mark is gone: deltas restart from zero, not negative.
    stats.physical_reads = 2
    assert stats.reads_since("before") == 2


def test_iostats_hit_ratio_idle_and_busy():
    assert IOStats().hit_ratio == 1.0
    stats = IOStats(physical_reads=2, logical_reads=8)
    assert stats.hit_ratio == 0.75
    assert stats.total_io == 2


# ----------------------------------------------------------------------
# merge_stats / StatsView
# ----------------------------------------------------------------------


def test_merge_stats_view_is_live_and_snapshot_round_trips():
    first = IOStats(physical_reads=1, physical_writes=2, logical_reads=3)
    second = IOStats(physical_reads=10, logical_writes=4)
    view = merge_stats([first, second])
    assert view.physical_reads == 11
    assert view.snapshot() == {
        "physical_reads": 11,
        "physical_writes": 2,
        "logical_reads": 3,
        "logical_writes": 4,
    }
    # Live: later mutation of a member shows through the view.
    first.physical_reads += 5
    assert view.physical_reads == 16
    assert view.snapshot()["physical_reads"] == 16
    # Per-member snapshots are unaffected by aggregation.
    assert first.snapshot()["physical_reads"] == 6
    assert second.snapshot()["physical_reads"] == 10


def test_stats_view_reset_fans_out():
    parts = [IOStats(physical_reads=3), IOStats(physical_reads=4)]
    view = StatsView(parts)
    view.reset()
    assert view.physical_reads == 0
    assert all(part.physical_reads == 0 for part in parts)


def test_stats_view_rejects_empty_parts():
    with pytest.raises(ValueError):
        StatsView([])


def test_stats_view_latency_rides_along():
    from repro.simio.stats import LatencyStats, LatencyView

    device = LatencyStats()
    device.record("read", 120.0, sequential=False)
    device.record("write", 80.0, sequential=True)
    view = merge_stats([IOStats(physical_reads=2)], latency=LatencyView([device]))
    snapshot = view.snapshot()
    assert snapshot["latency"]["busy_us"] == 200.0
    assert snapshot["latency"]["sequential_ratio"] == 0.5
    view.reset()
    assert device.busy_us == 0.0
