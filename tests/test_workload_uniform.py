"""Tests for the uniform movement generator."""

import math
import random

import pytest

from repro.workloads.uniform import UniformMovement


def make(seed=3, max_speed=3.0):
    return UniformMovement(1000.0, max_speed, random.Random(seed))


def test_initial_population_shape():
    movement = make()
    objects = movement.initial_objects(500)
    assert len(objects) == 500
    assert [obj.uid for obj in objects] == list(range(500))
    for obj in objects:
        assert 0 <= obj.x <= 1000
        assert 0 <= obj.y <= 1000
        assert obj.speed <= 3.0 + 1e-9
        assert obj.t_update == 0.0


def test_speeds_span_the_range():
    movement = make()
    speeds = [obj.speed for obj in movement.initial_objects(2000)]
    assert min(speeds) < 0.3
    assert max(speeds) > 2.7


def test_positions_roughly_uniform():
    movement = make()
    objects = movement.initial_objects(4000)
    left = sum(1 for obj in objects if obj.x < 500)
    assert 0.45 < left / 4000 < 0.55
    low = sum(1 for obj in objects if obj.y < 500)
    assert 0.45 < low / 4000 < 0.55


def test_advance_moves_along_velocity_then_redraws():
    movement = make()
    obj = movement.initial_objects(1)[0]
    advanced = movement.advance(obj, 10.0)
    expected = obj.position_at(10.0)
    # Position continues the linear track (unless it bounced).
    if 0 <= expected[0] <= 1000 and 0 <= expected[1] <= 1000:
        assert advanced.x == pytest.approx(expected[0])
        assert advanced.y == pytest.approx(expected[1])
    assert advanced.t_update == 10.0
    assert advanced.speed <= 3.0 + 1e-9


def test_advance_bounces_back_into_space():
    movement = make()
    objects = movement.initial_objects(300)
    current = objects
    for step in range(1, 6):
        current = [movement.advance(obj, step * 100.0) for obj in current]
        for obj in current:
            assert 0 <= obj.x <= 1000, obj
            assert 0 <= obj.y <= 1000, obj


def test_deterministic_under_seed():
    a = make(seed=42).initial_objects(50)
    b = make(seed=42).initial_objects(50)
    assert a == b


def test_negative_speed_rejected():
    with pytest.raises(ValueError):
        UniformMovement(1000.0, -1.0, random.Random(0))
