"""Tests for rectangles and distances."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial.geometry import Rect, euclidean

coords = st.floats(min_value=-1000, max_value=1000, allow_nan=False)


def rect(x_lo=0, x_hi=10, y_lo=0, y_hi=10):
    return Rect(x_lo, x_hi, y_lo, y_hi)


def test_degenerate_bounds_rejected():
    with pytest.raises(ValueError):
        Rect(5, 4, 0, 1)
    with pytest.raises(ValueError):
        Rect(0, 1, 5, 4)


def test_zero_area_rect_is_valid():
    point = Rect(3, 3, 4, 4)
    assert point.area == 0
    assert point.contains(3, 4)


def test_from_center():
    square = Rect.from_center(5, 5, 2)
    assert (square.x_lo, square.x_hi, square.y_lo, square.y_hi) == (3, 7, 3, 7)
    with pytest.raises(ValueError):
        Rect.from_center(0, 0, -1)


def test_dimensions():
    r = rect(0, 4, 1, 7)
    assert r.width == 4
    assert r.height == 6
    assert r.area == 24
    assert r.center == (2, 4)


def test_contains_boundary_is_closed():
    r = rect()
    assert r.contains(0, 0)
    assert r.contains(10, 10)
    assert not r.contains(10.001, 5)


def test_contains_rect():
    outer = rect(0, 10, 0, 10)
    assert outer.contains_rect(rect(2, 8, 2, 8))
    assert outer.contains_rect(outer)
    assert not outer.contains_rect(rect(2, 11, 2, 8))


def test_intersection_cases():
    a = rect(0, 10, 0, 10)
    assert a.intersection(rect(5, 15, 5, 15)) == rect(5, 10, 5, 10)
    assert a.intersection(rect(20, 30, 0, 10)) is None
    # Touching edges intersect with zero area (closed rectangles).
    touching = a.intersection(rect(10, 20, 0, 10))
    assert touching is not None
    assert touching.area == 0


def test_overlap_area():
    a = rect(0, 10, 0, 10)
    assert a.overlap_area(rect(5, 15, 5, 15)) == 25
    assert a.overlap_area(rect(50, 60, 50, 60)) == 0.0


def test_expanded():
    r = rect(2, 4, 6, 8).expanded(1, 2)
    assert (r.x_lo, r.x_hi, r.y_lo, r.y_hi) == (1, 5, 4, 10)


def test_min_distance():
    r = rect(0, 10, 0, 10)
    assert r.min_distance(5, 5) == 0
    assert r.min_distance(13, 5) == 3
    assert r.min_distance(13, 14) == pytest.approx(5.0)


def test_euclidean():
    assert euclidean(0, 0, 3, 4) == 5.0
    assert euclidean(1, 1, 1, 1) == 0.0


@settings(max_examples=100, deadline=None)
@given(ax=coords, ay=coords, w=st.floats(0, 100), h=st.floats(0, 100))
def test_intersection_commutes(ax, ay, w, h):
    a = Rect(ax, ax + w, ay, ay + h)
    b = Rect(0, 50, 0, 50)
    assert a.overlap_area(b) == pytest.approx(b.overlap_area(a))
    assert a.intersects(b) == b.intersects(a)


@settings(max_examples=100, deadline=None)
@given(ax=coords, ay=coords, w=st.floats(0, 100), h=st.floats(0, 100))
def test_overlap_bounded_by_areas(ax, ay, w, h):
    a = Rect(ax, ax + w, ay, ay + h)
    b = Rect(-20, 30, -20, 30)
    overlap = a.overlap_area(b)
    assert overlap <= a.area + 1e-9
    assert overlap <= b.area + 1e-9
    assert overlap >= 0
