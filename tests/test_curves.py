"""Tests for the space-filling-curve abstraction (``repro.spatial.curves``).

Core invariants: encode/decode bijectivity, agreement with the dedicated
Z/Hilbert modules, exactness of the generic decomposition on both
curves, span covering, and full PEB-tree query equivalence on a
Hilbert-backed grid.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.oracle import brute_force_pknn, brute_force_prq
from repro.core.peb_tree import PEBTree
from repro.core.pknn import pknn
from repro.core.prq import prq
from repro.core.sequencing import assign_sequence_values
from repro.motion.partitions import TimePartitioner
from repro.spatial.curves import (
    CURVES,
    HILBERT,
    ZCURVE,
    curve_decompose,
    curve_span,
    make_curve,
)
from repro.spatial.decompose import decompose_rect
from repro.spatial.geometry import Rect
from repro.spatial.grid import Grid
from repro.spatial.hilbert import hilbert_encode
from repro.spatial.zcurve import z_encode
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.workloads.policies import PolicyGenerator
from repro.workloads.queries import QueryGenerator
from repro.workloads.uniform import UniformMovement

BITS = 6
SIDE = 1 << BITS


def test_registry_and_lookup():
    assert set(CURVES) == {"z", "hilbert"}
    assert make_curve("z") is ZCURVE
    assert make_curve("hilbert") is HILBERT
    with pytest.raises(ValueError, match="unknown curve"):
        make_curve("peano")


@pytest.mark.parametrize("curve", [ZCURVE, HILBERT], ids=lambda c: c.name)
def test_encode_decode_roundtrip_exhaustive(curve):
    bits = 4
    seen = set()
    for ix in range(1 << bits):
        for iy in range(1 << bits):
            value = curve.encode(ix, iy, bits)
            assert 0 <= value < 1 << (2 * bits)
            assert curve.decode(value, bits) == (ix, iy)
            seen.add(value)
    assert len(seen) == 1 << (2 * bits)  # bijective


def test_zcurve_agrees_with_zcurve_module():
    for ix, iy in [(0, 0), (3, 5), (63, 1), (31, 31)]:
        assert ZCURVE.encode(ix, iy, BITS) == z_encode(ix, iy)


def test_hilbert_agrees_with_hilbert_module():
    for ix, iy in [(0, 0), (3, 5), (63, 1), (31, 31)]:
        assert HILBERT.encode(ix, iy, BITS) == hilbert_encode(ix, iy, BITS)


@pytest.mark.parametrize("curve", [ZCURVE, HILBERT], ids=lambda c: c.name)
def test_encode_rejects_out_of_grid(curve):
    with pytest.raises(ValueError):
        curve.encode(1 << BITS, 0, BITS)
    with pytest.raises(ValueError):
        curve.decode(1 << (2 * BITS), BITS)


@pytest.mark.parametrize("curve", [ZCURVE, HILBERT], ids=lambda c: c.name)
def test_unit_steps_adjacent_on_hilbert_only(curve):
    """Hilbert consecutive values are always 4-neighbours; Z are not."""
    jumps = 0
    prev = curve.decode(0, BITS)
    for value in range(1, 1 << (2 * BITS)):
        x, y = curve.decode(value, BITS)
        if abs(x - prev[0]) + abs(y - prev[1]) != 1:
            jumps += 1
        prev = (x, y)
    if curve is HILBERT:
        assert jumps == 0
    else:
        assert jumps > 0


# ----------------------------------------------------------------------
# Generic decomposition
# ----------------------------------------------------------------------


def cells_of_intervals(curve, intervals, bits):
    cells = set()
    for lo, hi in intervals:
        for value in range(lo, hi + 1):
            cells.add(curve.decode(value, bits))
    return cells


def box_strategy():
    coord = st.integers(min_value=0, max_value=SIDE - 1)
    return st.tuples(coord, coord, coord, coord).map(
        lambda v: (min(v[0], v[1]), max(v[0], v[1]), min(v[2], v[3]), max(v[2], v[3]))
    )


@settings(max_examples=60)
@given(box_strategy())
def test_curve_decompose_exact_on_hilbert(box):
    ix_lo, ix_hi, iy_lo, iy_hi = box
    intervals = curve_decompose(HILBERT, ix_lo, ix_hi, iy_lo, iy_hi, BITS)
    expected = {
        (ix, iy)
        for ix in range(ix_lo, ix_hi + 1)
        for iy in range(iy_lo, iy_hi + 1)
    }
    assert cells_of_intervals(HILBERT, intervals, BITS) == expected
    # Sorted, disjoint, non-adjacent.
    for (lo1, hi1), (lo2, hi2) in zip(intervals, intervals[1:]):
        assert hi1 + 1 < lo2


@settings(max_examples=60)
@given(box_strategy())
def test_curve_decompose_matches_z_module(box):
    ix_lo, ix_hi, iy_lo, iy_hi = box
    generic = curve_decompose(ZCURVE, ix_lo, ix_hi, iy_lo, iy_hi, BITS)
    dedicated = decompose_rect(ix_lo, ix_hi, iy_lo, iy_hi, BITS)
    assert generic == dedicated


@settings(max_examples=40)
@given(box_strategy())
def test_coarsened_decompose_over_covers(box):
    ix_lo, ix_hi, iy_lo, iy_hi = box
    exact = curve_decompose(HILBERT, ix_lo, ix_hi, iy_lo, iy_hi, BITS)
    coarse = curve_decompose(HILBERT, ix_lo, ix_hi, iy_lo, iy_hi, BITS, 4)
    exact_cells = cells_of_intervals(HILBERT, exact, BITS)
    coarse_cells = cells_of_intervals(HILBERT, coarse, BITS)
    assert exact_cells <= coarse_cells
    assert len(coarse) <= len(exact) or len(exact) <= 1


def test_curve_decompose_full_grid_single_interval():
    intervals = curve_decompose(HILBERT, 0, SIDE - 1, 0, SIDE - 1, BITS)
    assert intervals == [(0, SIDE * SIDE - 1)]


def test_curve_decompose_clips_and_rejects():
    assert curve_decompose(HILBERT, -5, -1, 0, 3, BITS) == []
    assert curve_decompose(HILBERT, SIDE, SIDE + 3, 0, 3, BITS) == []
    with pytest.raises(ValueError):
        curve_decompose(HILBERT, 0, 1, 0, 1, 0)
    with pytest.raises(ValueError):
        curve_decompose(HILBERT, 0, 1, 0, 1, BITS, 0)


@settings(max_examples=60)
@given(box_strategy())
def test_curve_span_covers_box(box):
    """Every cell's curve value must fall inside the span — both curves."""
    ix_lo, ix_hi, iy_lo, iy_hi = box
    for curve in (ZCURVE, HILBERT):
        span = curve_span(curve, ix_lo, ix_hi, iy_lo, iy_hi, BITS)
        assert span is not None
        lo, hi = span
        for ix in range(ix_lo, min(ix_hi + 1, ix_lo + 8)):
            for iy in range(iy_lo, min(iy_hi + 1, iy_lo + 8)):
                assert lo <= curve.encode(ix, iy, BITS) <= hi


def test_curve_span_empty_box():
    assert curve_span(HILBERT, 5, 4, 0, 3, BITS) is None


# ----------------------------------------------------------------------
# Hilbert-backed Grid and full query equivalence
# ----------------------------------------------------------------------


def test_grid_accepts_hilbert_curve():
    grid = Grid(1000.0, 8, curve=HILBERT)
    assert grid.z_value(0.0, 0.0) == 0
    rect = Rect(100, 300, 100, 300)
    span = grid.z_span(rect)
    assert span is not None
    intervals = grid.decompose(rect)
    assert intervals
    assert span[0] <= intervals[0][0]
    assert span[1] >= intervals[-1][1]


def build_world_on_curve(curve, n_users=150, seed=9):
    space = 1000.0
    movement = UniformMovement(space, 3.0, random.Random(seed))
    states = {obj.uid: obj for obj in movement.initial_objects(n_users, t=0.0)}
    store = PolicyGenerator(space, 1440.0, random.Random(seed + 1)).generate(
        sorted(states), 8, 0.7
    )
    report = assign_sequence_values(sorted(states), store, space**2)
    store.set_sequence_values(report.sequence_values)
    grid = Grid(space, 10, curve=curve)
    pool = BufferPool(SimulatedDisk(page_size=1024), capacity=512)
    tree = PEBTree(pool, grid, TimePartitioner(120.0, 2), store)
    for obj in states.values():
        tree.insert(obj)
    return states, store, tree


@pytest.mark.parametrize("curve", [ZCURVE, HILBERT], ids=lambda c: c.name)
def test_prq_equivalence_on_curve(curve):
    states, store, tree = build_world_on_curve(curve)
    queries = QueryGenerator(1000.0, random.Random(13)).range_queries(
        sorted(states), 10, 250.0, 0.0
    )
    for query in queries:
        expected = brute_force_prq(
            states, store, query.q_uid, query.window, query.t_query
        )
        assert prq(tree, query.q_uid, query.window, query.t_query).uids == expected


@pytest.mark.parametrize("curve", [ZCURVE, HILBERT], ids=lambda c: c.name)
def test_pknn_equivalence_on_curve(curve):
    states, store, tree = build_world_on_curve(curve)
    queries = QueryGenerator(1000.0, random.Random(14)).knn_queries(
        states, 10, 3, 0.0
    )
    for query in queries:
        expected = brute_force_pknn(
            states, store, query.q_uid, query.qx, query.qy, query.k, query.t_query
        )
        answer = pknn(tree, query.q_uid, query.qx, query.qy, query.k, query.t_query)
        got = [round(d, 9) for d, _ in answer.neighbors]
        assert got == [round(d, 9) for d, _ in expected]
