"""Tests for the ``python -m repro`` command-line interface."""

import pytest

import repro.bench.experiments as experiments_module
from repro.bench.experiments import REDUCED
from repro.cli import EXPERIMENTS, build_parser, main


def tiny_preset():
    """A preset small enough for CLI tests to run in seconds."""
    return experiments_module.ScalePreset(
        name="tiny",
        base=REDUCED.base.scaled(n_users=300, n_policies=5, n_queries=4),
        user_sweep=(200, 300),
        policy_sweep=(4, 6),
        theta_sweep=(0.5, 1.0),
        window_sweep=(100.0, 300.0),
        k_sweep=(1, 3),
        speed_sweep=(1.0, 3.0),
        destination_sweep=(25,),
        update_rounds=2,
        encoding_user_sweep=(100, 200),
        encoding_policy_sweep=(3, 5),
    )


def test_parser_rejects_missing_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["frobnicate"])


def test_parser_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["experiment", "fig99"])


def test_experiment_names_cover_every_figure():
    # Figures 11-18 all runnable individually (19 comes via `report`),
    # plus the write-path variant of 18.
    assert {
        "fig11a", "fig11b", "fig12", "fig15a", "fig15b", "fig18", "fig18u"
    } <= set(EXPERIMENTS)


def test_demo_runs_and_verifies(capsys):
    code = main(
        [
            "demo",
            "--users", "400",
            "--policies", "8",
            "--queries", "4",
            "--k", "2",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "PEB-tree" in out
    assert "speedup" in out
    assert "verified against brute force" in out


def test_demo_accepts_hilbert_and_policies(capsys):
    code = main(
        [
            "demo",
            "--users", "300",
            "--policies", "6",
            "--queries", "3",
            "--curve", "hilbert",
            "--buffer-policy", "clock",
        ]
    )
    assert code == 0
    assert "curve=hilbert" in capsys.readouterr().out


@pytest.mark.parametrize("encoder", ["figure5", "bfs", "spectral"])
def test_encode_all_encoders(encoder, capsys):
    code = main(
        [
            "encode",
            "--users", "200",
            "--policies", "5",
            "--encoder", encoder,
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert encoder in out
    assert "SV range" in out


def test_encode_deterministic(capsys):
    def stable_lines(text):
        # Wall-clock timing legitimately differs between runs.
        return [line for line in text.splitlines() if "elapsed" not in line]

    main(["encode", "--users", "150", "--policies", "4", "--seed", "3"])
    first = capsys.readouterr().out
    main(["encode", "--users", "150", "--policies", "4", "--seed", "3"])
    second = capsys.readouterr().out
    assert stable_lines(first) == stable_lines(second)


def test_experiment_fig11a(monkeypatch, capsys):
    monkeypatch.setattr(experiments_module, "scale_preset", tiny_preset)
    code = main(["experiment", "fig11a"])
    out = capsys.readouterr().out
    assert code == 0
    assert "fig11a" in out
    assert "n_users" in out


def test_experiment_fig15a(monkeypatch, capsys):
    monkeypatch.setattr(experiments_module, "scale_preset", tiny_preset)
    code = main(["experiment", "fig15a"])
    out = capsys.readouterr().out
    assert code == 0
    assert "prq_peb" in out
    assert "prq_base" in out


def test_report_subcommand_wiring(monkeypatch, tmp_path, capsys):
    """`report` resolves the preset and passes the output path through."""
    import repro.bench.report as report_module

    calls = {}

    def fake_generate(path, preset):
        calls["path"] = path
        calls["preset"] = preset.name
        return "stub"

    monkeypatch.setattr(report_module, "generate", fake_generate)
    output = str(tmp_path / "EXP.md")
    code = main(["report", "--scale", "reduced", "--output", output])
    assert code == 0
    assert calls == {"path": output, "preset": "reduced"}
    assert f"Wrote {output}" in capsys.readouterr().out


def test_cost_model_defaults(capsys):
    code = main(["cost-model"])
    out = capsys.readouterr().out
    assert code == 0
    assert "estimated PRQ I/O" in out


def test_cost_model_custom_inputs(capsys):
    code = main(
        [
            "cost-model",
            "--users", "10000",
            "--policies", "10",
            "--theta", "1.0",
            "--leaves", "500",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    # theta = 1: Np - Np**theta = 0, so the estimate is the floor of 1.
    assert "1.00" in out


def test_experiment_fig18u(monkeypatch, capsys):
    monkeypatch.setattr(experiments_module, "scale_preset", tiny_preset)
    code = main(["experiment", "fig18u"])
    out = capsys.readouterr().out
    assert code == 0
    assert "seq_io" in out
    assert "batched_io" in out
    assert "io_reduction" in out


def test_batch_update_runs_and_verifies(capsys):
    code = main(
        [
            "batch-update",
            "--users", "400",
            "--policies", "6",
            "--batch-sizes", "16,64",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "Batch update pipeline" in out
    assert "I/O reduction" in out
    assert "verified identical to sequential" in out


def test_batch_query_runs_and_verifies(capsys):
    code = main(
        [
            "batch-query",
            "--users", "400",
            "--policies", "8",
            "--queries", "12",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "band-scan batching" in out
    assert "dedup ratio" in out
    assert "verified identical to sequential" in out


def test_batch_query_with_shards(capsys):
    code = main(
        [
            "batch-query",
            "--users", "400",
            "--policies", "8",
            "--queries", "8",
            "--shards", "2",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "Sharded scatter/gather (2 shards" in out
    assert "balance skew" in out
    assert "verified identical to the single tree" in out


def test_batch_update_with_shards(capsys):
    code = main(
        [
            "batch-update",
            "--users", "400",
            "--policies", "6",
            "--batch-sizes", "16,64",
            "--shards", "2",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "Sharded update routing (2 shards" in out
    assert "updates applied / physical write" in out
    assert "verified identical to the single tree" in out


def test_batch_query_with_latency(capsys):
    code = main(
        [
            "batch-query",
            "--users", "400",
            "--policies", "8",
            "--queries", "8",
            "--latency", "ssd",
            "--parallel-io",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "Simulated latency, ssd profile" in out
    assert "virtual elapsed (ms)" in out
    assert "overlap factor" in out
    assert "4 shards overlapped" in out  # --shards unset defaults to 4
    assert "verified identical to untimed single-tree execution" in out


def test_batch_update_with_latency_and_shards(capsys):
    code = main(
        [
            "batch-update",
            "--users", "400",
            "--policies", "6",
            "--batch-sizes", "32",
            "--shards", "2",
            "--latency", "hdd",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "Simulated latency, hdd profile" in out
    assert "2 shards overlapped" in out  # --shards carries over
    assert "virtual elapsed (ms)" in out
    assert "physical writes" in out


def test_parser_rejects_unknown_latency_profile():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["batch-query", "--latency", "tape"])


def test_serve_sim_sweeps_rates_and_pins(capsys):
    code = main(
        [
            "serve-sim",
            "--users", "300",
            "--policies", "6",
            "--requests", "24",
            "--rates", "1000,4000",
            "--max-batch", "8",
            "--shards", "2",
            "--latency", "ssd",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "Open-loop service (poisson arrivals" in out
    assert "p99 (ms)" in out
    assert "reads/req" in out
    assert out.count("\n        1000") + out.count(" 1000 ") >= 1
    assert "verified identical to direct" in out


def test_serve_sim_burst_without_pin(capsys):
    code = main(
        [
            "serve-sim",
            "--users", "300",
            "--policies", "6",
            "--requests", "16",
            "--rates", "2000",
            "--arrival", "burst",
            "--max-batch", "4",
            "--no-pin",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "burst arrivals" in out
    assert "verified identical" not in out


def test_parser_rejects_unknown_arrival_process():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["serve-sim", "--arrival", "uniform"])
