"""Unit tests for the simulated page disk."""

import pytest

from repro.storage.disk import PAGE_SIZE, PageOverflowError, SimulatedDisk


def test_default_page_size_matches_paper():
    assert PAGE_SIZE == 4096
    assert SimulatedDisk().page_size == 4096


def test_allocate_is_sequential_and_free_of_charge():
    disk = SimulatedDisk()
    assert disk.allocate() == 0
    assert disk.allocate() == 1
    assert disk.allocate() == 2
    assert disk.stats.total_io == 0
    assert disk.allocated_count == 3
    assert disk.page_count == 0  # nothing written yet


def test_write_then_read_round_trips():
    disk = SimulatedDisk(page_size=64)
    page = disk.allocate()
    disk.write(page, b"hello")
    assert disk.read(page) == b"hello"


def test_reads_and_writes_are_counted():
    disk = SimulatedDisk(page_size=64)
    page = disk.allocate()
    disk.write(page, b"a")
    disk.write(page, b"b")
    disk.read(page)
    disk.read(page)
    disk.read(page)
    assert disk.stats.physical_writes == 2
    assert disk.stats.physical_reads == 3


def test_oversized_page_rejected():
    disk = SimulatedDisk(page_size=8)
    page = disk.allocate()
    with pytest.raises(PageOverflowError):
        disk.write(page, b"123456789")


def test_write_to_unallocated_page_rejected():
    disk = SimulatedDisk()
    with pytest.raises(KeyError):
        disk.write(5, b"x")


def test_read_of_unwritten_page_rejected():
    disk = SimulatedDisk()
    page = disk.allocate()
    with pytest.raises(KeyError):
        disk.read(page)


def test_free_drops_the_image():
    disk = SimulatedDisk(page_size=64)
    page = disk.allocate()
    disk.write(page, b"x")
    assert disk.contains(page)
    disk.free(page)
    assert not disk.contains(page)
    with pytest.raises(KeyError):
        disk.read(page)


def test_free_of_unwritten_page_is_noop():
    disk = SimulatedDisk()
    disk.free(123)  # must not raise


def test_invalid_page_size_rejected():
    with pytest.raises(ValueError):
        SimulatedDisk(page_size=0)
