"""The service under faults: load shedding and degraded operation.

The queue's ``shed_after_us`` deadline is the last rung of graceful
degradation — answer some requests not-at-all rather than all of them
arbitrarily late — and the worker is the integration point where the
fault layer's counters surface as :class:`ServiceStats` availability.
These tests cover the shedding mechanics at the queue level and the
end-to-end service runs the fault-recovery benchmark gates on: a
transient schedule retried to 100% availability, and a quarantined
shard degrading queries and deferring updates without killing the run.
"""

import pytest

from repro.bench.harness import ExperimentConfig, ExperimentHarness
from repro.fault import BreakerPolicy, RetryPolicy
from repro.service import BatchPolicy, RequestQueue, update_request
from repro.storage.faults import FaultyDisk, TransientFaultSchedule

from tests.test_peb_tree import mover


def upd(seq, arrival_us, uid=0):
    return update_request(seq, arrival_us, mover(uid))


# ----------------------------------------------------------------------
# Queue-level shedding
# ----------------------------------------------------------------------


def test_shed_policy_validation():
    with pytest.raises(ValueError):
        BatchPolicy(shed_after_us=0.0)
    with pytest.raises(ValueError):
        BatchPolicy(shed_after_us=-5.0)
    assert BatchPolicy().shed_after_us is None  # default: never shed


def test_shed_drops_the_stale_head_prefix_and_serves_the_rest():
    requests = [upd(0, 0.0), upd(1, 10.0, 1), upd(2, 950.0, 2), upd(3, 960.0, 3)]
    queue = RequestQueue(
        requests, BatchPolicy(max_batch=8, max_wait_us=50.0, shed_after_us=100.0)
    )
    # The worker frees late: the first two waited > 100us, the last two
    # are fresh.  Pending is in arrival order, so the shed set is
    # exactly the head prefix.
    batch = queue.next_batch(free_at=1000.0)
    assert [r.seq for r in batch.shed] == [0, 1]
    assert [r.seq for r in batch.requests] == [2, 3]
    assert batch.dispatch_us == 1000.0
    assert queue.next_batch(free_at=batch.dispatch_us) is None


def test_shed_can_empty_a_batch_and_conserves_every_request():
    stamps = [0.0, 5.0, 10.0, 15.0, 2000.0, 2005.0]
    requests = [upd(seq, stamp, uid=seq) for seq, stamp in enumerate(stamps)]
    queue = RequestQueue(
        requests, BatchPolicy(max_batch=2, max_wait_us=20.0, shed_after_us=50.0)
    )
    served, shed = [], []
    free_at = 500.0  # the worker only frees long after the first wave
    while (batch := queue.next_batch(free_at)) is not None:
        served.extend(r.seq for r in batch.requests)
        shed.extend(r.seq for r in batch.shed)
        free_at = batch.dispatch_us
    # The whole first wave sheds — including requests past the batch
    # cap, which the shed loop keeps absorbing — and a batch may come
    # out empty.  Nothing is lost and nothing is served twice.
    assert shed == [0, 1, 2, 3]
    assert served == [4, 5]
    assert queue.exhausted


def test_shed_disabled_never_drops():
    requests = [upd(seq, float(seq)) for seq in range(4)]
    queue = RequestQueue(requests, BatchPolicy(max_batch=2, max_wait_us=10.0))
    free_at, total = 1e6, 0
    while (batch := queue.next_batch(free_at)) is not None:
        assert batch.shed == []
        total += len(batch)
        free_at = batch.dispatch_us
    assert total == 4


# ----------------------------------------------------------------------
# End-to-end service runs under faults
# ----------------------------------------------------------------------

CONFIG = ExperimentConfig(
    n_users=300,
    n_policies=6,
    n_queries=4,
    page_size=1024,
    build_buffer_pages=1024,
    seed=29,
)


def shard_disks(deployment) -> list[FaultyDisk]:
    disks = []
    for tree in deployment.trees:
        disk = tree.btree.pool.disk
        while hasattr(disk, "inner"):
            disk = disk.inner
        disks.append(disk)
    return disks


def run(harness, *, pin, arm=None, fault_policy=None, breaker_policy=None,
        shed_after_us=None, rate=3000.0):
    return harness.run_service(
        rate,
        n_requests=48,
        max_batch=8,
        max_wait_us=1000.0,
        n_shards=2,
        latency="ssd",
        update_fraction=0.5,
        knn_fraction=0.0,
        shard_buffer_pages=12,  # small: reads go physical, faults fire
        pin=pin,
        disk_factory=lambda shard: FaultyDisk(page_size=CONFIG.page_size),
        fault_policy=fault_policy,
        breaker_policy=breaker_policy,
        shed_after_us=shed_after_us,
        arm_faults=arm,
    )


def test_timed_service_sheds_under_overload():
    harness = ExperimentHarness(CONFIG)
    # The whole stream arrives in ~1ms of virtual time while each ssd
    # batch takes longer than the 200us deadline to serve: the queue
    # must shed rather than stretch the served tail without bound.
    costs = run(harness, pin=False, shed_after_us=200.0, rate=50000.0)
    stats = costs.stats
    assert stats.n_shed > 0
    assert stats.n_requests == 48 - stats.n_shed  # served + shed = stream
    assert stats.availability < 1.0
    snapshot = costs.snapshot()
    assert snapshot["stats"]["n_shed"] == stats.n_shed
    assert snapshot["stats"]["availability"] == stats.availability


def test_service_retries_through_transient_faults_and_still_pins():
    harness = ExperimentHarness(CONFIG)
    schedule = TransientFaultSchedule(fail_reads=(3, 50), fail_writes=(2,))

    def arm(deployment):
        disks = shard_disks(deployment)
        for disk in disks:
            disk.heal()  # counters restart at 0: the indices are live
            disk.schedule = schedule

        def disarm():
            for disk in disks:
                disk.heal()

        return disarm

    # 3 failing indices < 4 attempts: exhaustion impossible, and the
    # pin (pin=True) checks the retried run is bit-identical to an
    # untimed fault-free replay.
    costs = run(
        harness,
        pin=True,
        arm=arm,
        fault_policy=RetryPolicy(max_attempts=4),
        breaker_policy=BreakerPolicy(),
    )
    stats = costs.stats
    faults = stats.fault_stats
    assert costs.pinned
    assert faults is not None and faults.faults > 0
    assert faults.exhausted == 0 and faults.quarantines == 0
    assert stats.availability == 1.0
    assert stats.n_shed == 0 and stats.degraded_queries == 0
    assert stats.unapplied_updates == 0


def test_service_survives_a_quarantined_shard_degraded():
    harness = ExperimentHarness(CONFIG)

    def arm(deployment):
        disks = shard_disks(deployment)
        disks[0].heal()
        disks[0].fail_every_nth_read = 1  # every read fails, forever

        def disarm():
            disks[0].heal()

        return disarm

    costs = run(
        harness,
        pin=False,  # results legitimately diverge from the clean twin
        arm=arm,
        fault_policy=RetryPolicy(),
        breaker_policy=BreakerPolicy(),
    )
    stats = costs.stats
    faults = stats.fault_stats
    # The worker survived the dead shard and answered everything it
    # could: all requests dispatched, none shed.
    assert stats.n_requests == 48
    assert stats.n_shed == 0
    assert faults is not None
    assert faults.quarantines >= 1
    assert faults.bands_dropped > 0
    assert stats.degraded_queries > 0
    # Updates routed to the dead shard were deferred, not lost: they
    # sit in the buffer (unapplied) and availability prices them in.
    assert stats.unapplied_updates > 0
    assert 0.5 <= stats.availability < 1.0  # the (N-1)/N floor, N=2
    snapshot = costs.snapshot()
    assert snapshot["stats"]["fault_stats"]["quarantines"] == faults.quarantines
    assert snapshot["stats"]["degraded_queries"] == stats.degraded_queries
