"""Tests for Bx-tree maintenance (insert / delete / update / key_for)."""

import pytest

from repro.bxtree.tree import BxTree
from repro.motion.objects import MovingObject
from repro.motion.partitions import TimePartitioner
from repro.spatial.grid import Grid
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk


def make_bx(page_size=1024):
    grid = Grid(1000.0, 10)
    partitioner = TimePartitioner(120.0, 2)
    pool = BufferPool(SimulatedDisk(page_size=page_size), capacity=64)
    return BxTree(pool, grid, partitioner)


def mover(uid=1, x=100.0, y=200.0, vx=1.0, vy=-1.0, t=0.0):
    return MovingObject(uid=uid, x=x, y=y, vx=vx, vy=vy, t_update=t)


def test_key_for_uses_label_timestamp_position():
    tree = make_bx()
    obj = mover(x=100.0, y=200.0, vx=2.0, vy=0.0, t=0.0)
    # label(0.0) = 60 -> position as of 60 is (220, 200), partition 0.
    key = tree.key_for(obj)
    tid, zv = tree.codec.decompose(key)
    assert tid == 0
    assert zv == tree.grid.z_value(220.0, 200.0)


def test_key_partition_follows_update_time():
    tree = make_bx()
    assert tree.codec.decompose(tree.key_for(mover(t=10.0)))[0] == 1
    assert tree.codec.decompose(tree.key_for(mover(t=70.0)))[0] == 2
    assert tree.codec.decompose(tree.key_for(mover(t=130.0)))[0] == 0


def test_insert_and_contains():
    tree = make_bx()
    tree.insert(mover(uid=5))
    assert tree.contains(5)
    assert len(tree) == 1
    assert not tree.contains(6)


def test_double_insert_rejected():
    tree = make_bx()
    tree.insert(mover(uid=5))
    with pytest.raises(KeyError):
        tree.insert(mover(uid=5))


def test_delete_unknown_is_false():
    tree = make_bx()
    assert tree.delete(42) is False


def test_update_replaces_entry():
    tree = make_bx()
    tree.insert(mover(uid=5, x=100, y=100, t=0.0))
    tree.update(mover(uid=5, x=700, y=700, t=30.0))
    assert len(tree) == 1
    states = tree.fetch_all()
    assert len(states) == 1
    assert states[0].x == 700


def test_max_speed_tracking():
    tree = make_bx()
    tree.insert(mover(uid=1, vx=2.0, vy=-3.0))
    tree.insert(mover(uid=2, vx=-5.0, vy=1.0))
    assert tree.max_speed_x == 5.0
    assert tree.max_speed_y == 3.0


def test_many_updates_keep_structure_sound():
    tree = make_bx()
    for uid in range(200):
        tree.insert(mover(uid=uid, x=uid * 4.0, y=uid * 3.0, t=0.0))
    for round_index in range(1, 4):
        t = round_index * 30.0
        for uid in range(0, 200, 2):
            tree.update(mover(uid=uid, x=(uid * 7) % 1000, y=(uid * 13) % 1000, t=t))
        tree.btree.check_invariants()
    assert len(tree) == 200
    assert len(tree.fetch_all()) == 200
