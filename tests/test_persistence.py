"""Tests for disk snapshots, policy-store serialization, and the
full PEB-tree checkpoint/restore path."""

import json
import random

import pytest

from repro.core.checkpoint import load_peb_tree, save_peb_tree
from repro.core.peb_tree import PEBTree
from repro.core.pknn import pknn
from repro.core.prq import prq
from repro.core.sequencing import assign_sequence_values
from repro.motion.partitions import TimePartitioner
from repro.policy.lpp import LocationPrivacyPolicy
from repro.policy.multistore import MultiPolicyStore
from repro.policy.serialization import store_from_dict, store_to_dict
from repro.policy.store import PolicyStore
from repro.policy.timeset import TimeInterval, TimeSet
from repro.spatial.geometry import Rect
from repro.spatial.grid import Grid
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.storage.persistence import SnapshotError, load_disk, save_disk, save_pool
from repro.workloads.policies import MultiPolicyGenerator, PolicyGenerator
from repro.workloads.queries import QueryGenerator
from repro.workloads.uniform import UniformMovement


# ----------------------------------------------------------------------
# Disk snapshots
# ----------------------------------------------------------------------


def test_disk_roundtrip(tmp_path):
    disk = SimulatedDisk(page_size=128)
    pages = [disk.allocate() for _ in range(5)]
    for index, page in enumerate(pages[:4]):  # leave one allocated-unwritten
        disk.write(page, bytes([index]) * (index + 1))
    path = str(tmp_path / "disk.bin")
    written = save_disk(disk, path)
    assert written > 0

    restored = load_disk(path)
    assert restored.page_size == 128
    assert restored.allocated_count == 5
    assert restored.page_count == 4
    for index, page in enumerate(pages[:4]):
        assert restored.read(page) == bytes([index]) * (index + 1)
    # The unwritten page stays unwritten.
    with pytest.raises(KeyError):
        restored.read(pages[4])
    # Allocation continues after the snapshot's high-water mark.
    assert restored.allocate() == 5


def test_disk_roundtrip_empty(tmp_path):
    path = str(tmp_path / "empty.bin")
    save_disk(SimulatedDisk(page_size=64), path)
    restored = load_disk(path)
    assert restored.page_count == 0
    assert restored.allocated_count == 0


def test_load_rejects_bad_magic(tmp_path):
    path = tmp_path / "junk.bin"
    path.write_bytes(b"NOTADISK" + b"\x00" * 32)
    with pytest.raises(SnapshotError, match="magic"):
        load_disk(str(path))


def test_load_rejects_truncation(tmp_path):
    disk = SimulatedDisk(page_size=64)
    page = disk.allocate()
    disk.write(page, b"x" * 40)
    path = tmp_path / "disk.bin"
    save_disk(disk, str(path))
    blob = path.read_bytes()
    path.write_bytes(blob[:-10])
    with pytest.raises(SnapshotError, match="truncated"):
        load_disk(str(path))


def test_load_rejects_trailing_garbage(tmp_path):
    disk = SimulatedDisk(page_size=64)
    path = tmp_path / "disk.bin"
    save_disk(disk, str(path))
    path.write_bytes(path.read_bytes() + b"zz")
    with pytest.raises(SnapshotError, match="trailing"):
        load_disk(str(path))


def test_save_pool_flushes_dirty_pages(tmp_path):
    from repro.storage.page import RawBytesSerializer

    disk = SimulatedDisk(page_size=64)
    pool = BufferPool(disk, capacity=8, serializer=RawBytesSerializer())
    page = disk.allocate()
    pool.put(page, b"dirty-bytes")  # resident + dirty, not yet on disk
    path = str(tmp_path / "disk.bin")
    save_pool(pool, path)
    assert load_disk(path).read(page) == b"dirty-bytes"


# ----------------------------------------------------------------------
# Policy-store serialization
# ----------------------------------------------------------------------


def test_single_store_roundtrip_json():
    store = PolicyGenerator(1000.0, 1440.0, random.Random(3)).generate(
        list(range(40)), 5, 0.7
    )
    report = assign_sequence_values(list(range(40)), store, 1000.0**2)
    store.set_sequence_values(report.sequence_values)

    payload = json.loads(json.dumps(store_to_dict(store)))
    restored = store_from_dict(payload)

    assert type(restored) is PolicyStore
    assert restored.time_domain == store.time_domain
    assert restored.policy_count() == store.policy_count()
    for uid in range(40):
        assert restored.friend_list(uid) == store.friend_list(uid)
    # Spot-check evaluation equivalence on a grid of probes.
    rng = random.Random(4)
    for _ in range(200):
        owner, viewer = rng.sample(range(40), 2)
        x, y, t = rng.uniform(0, 1000), rng.uniform(0, 1000), rng.uniform(0, 2880)
        assert restored.evaluate(owner, viewer, x, y, t) == store.evaluate(
            owner, viewer, x, y, t
        )


def test_multi_store_roundtrip():
    generator = MultiPolicyGenerator(1000.0, 1440.0, random.Random(5))
    store = generator.generate(list(range(30)), 4, 0.7)
    report = assign_sequence_values(list(range(30)), store, 1000.0**2)
    store.set_sequence_values(report.sequence_values)

    restored = store_from_dict(store_to_dict(store))
    assert isinstance(restored, MultiPolicyStore)
    assert restored.policy_count() == store.policy_count()
    assert restored.pair_count() == store.pair_count()
    rng = random.Random(6)
    for _ in range(150):
        owner, viewer = rng.sample(range(30), 2)
        x, y, t = rng.uniform(0, 1000), rng.uniform(0, 1000), rng.uniform(0, 1440)
        assert restored.evaluate(owner, viewer, x, y, t) == store.evaluate(
            owner, viewer, x, y, t
        )


def test_timeset_policy_survives_roundtrip():
    store = PolicyStore(time_domain=1440.0)
    tint = TimeSet([TimeInterval(0, 60), TimeInterval(600, 720)])
    store.add_policy(
        LocationPrivacyPolicy(
            owner=1, role="friend", locr=Rect(0, 100, 0, 100), tint=tint
        ),
        [2],
    )
    restored = store_from_dict(store_to_dict(store))
    policy = restored.policy_for(1, 2)
    assert isinstance(policy.tint, TimeSet)
    assert policy.tint.duration == pytest.approx(180.0)


def test_store_payload_rejects_bad_format():
    with pytest.raises(ValueError, match="not a policy-store"):
        store_from_dict({"format": "something-else"})
    with pytest.raises(ValueError, match="version"):
        store_from_dict({"format": "repro-policy-store", "version": 99})


# ----------------------------------------------------------------------
# Full PEB-tree checkpoint
# ----------------------------------------------------------------------


def build_world(n_users=200, seed=9, page_size=1024):
    movement = UniformMovement(1000.0, 3.0, random.Random(seed))
    states = {obj.uid: obj for obj in movement.initial_objects(n_users, t=0.0)}
    store = PolicyGenerator(1000.0, 1440.0, random.Random(seed + 1)).generate(
        sorted(states), 8, 0.7
    )
    report = assign_sequence_values(sorted(states), store, 1000.0**2)
    store.set_sequence_values(report.sequence_values)
    pool = BufferPool(SimulatedDisk(page_size=page_size), capacity=512)
    tree = PEBTree(pool, Grid(1000.0, 10), TimePartitioner(120.0, 2), store)
    for obj in states.values():
        tree.insert(obj)
    return states, store, tree


def test_checkpoint_roundtrip_queries_identical(tmp_path):
    states, store, tree = build_world()
    directory = str(tmp_path / "ckpt")
    save_peb_tree(tree, directory)
    restored = load_peb_tree(directory, buffer_pages=512)

    assert len(restored) == len(tree)
    assert restored.btree.leaf_count == tree.btree.leaf_count
    assert restored.btree.entry_count == tree.btree.entry_count

    queries = QueryGenerator(1000.0, random.Random(11)).range_queries(
        sorted(states), 10, 300.0, 0.0
    )
    for query in queries:
        original = prq(tree, query.q_uid, query.window, query.t_query).uids
        revived = prq(restored, query.q_uid, query.window, query.t_query).uids
        assert revived == original

    knn_queries = QueryGenerator(1000.0, random.Random(12)).knn_queries(
        states, 6, 3, 0.0
    )
    for query in knn_queries:
        original = pknn(tree, query.q_uid, query.qx, query.qy, query.k, query.t_query)
        revived = pknn(
            restored, query.q_uid, query.qx, query.qy, query.k, query.t_query
        )
        assert [
            (round(d, 9), obj.uid) for d, obj in revived.neighbors
        ] == [(round(d, 9), obj.uid) for d, obj in original.neighbors]


def test_restored_tree_accepts_updates(tmp_path):
    states, _, tree = build_world(n_users=120)
    directory = str(tmp_path / "ckpt")
    save_peb_tree(tree, directory)
    restored = load_peb_tree(directory, buffer_pages=256)

    # Update half the users on the restored tree; queries stay exact.
    rng = random.Random(13)
    for uid in rng.sample(sorted(states), 60):
        obj = states[uid]
        x, y = obj.position_at(30.0)
        moved = obj.moved_to(x % 1000, y % 1000, -obj.vx, -obj.vy, 30.0)
        restored.update(moved)
        states[uid] = moved
    window = Rect(250, 750, 250, 750)
    expected = {
        uid
        for uid, obj in states.items()
        if window.contains(*obj.position_at(30.0))
        and restored.store.evaluate(
            uid, sorted(states)[0], *obj.position_at(30.0), 30.0
        )
    }
    answer = prq(restored, sorted(states)[0], window, 30.0).uids
    assert answer == expected


def test_restored_tree_starts_cold(tmp_path):
    _, _, tree = build_world(n_users=150)
    directory = str(tmp_path / "ckpt")
    save_peb_tree(tree, directory)
    restored = load_peb_tree(directory, buffer_pages=64)
    assert len(restored.btree.pool) == 0  # no resident pages
    assert restored.stats.physical_reads == 0
    restored.fetch_all()
    assert restored.stats.physical_reads > 0


def test_checkpoint_rejects_foreign_meta(tmp_path):
    import gzip

    _, _, tree = build_world(n_users=50)
    directory = tmp_path / "ckpt"
    save_peb_tree(tree, str(directory))
    meta_path = directory / "meta.json.gz"
    with gzip.open(meta_path, "rt") as handle:
        meta = json.load(handle)
    meta["format"] = "other"
    with gzip.open(meta_path, "wt") as handle:
        json.dump(meta, handle)
    with pytest.raises(ValueError, match="not a PEB checkpoint"):
        load_peb_tree(str(directory))


def test_checkpoint_preserves_hilbert_curve(tmp_path):
    from repro.spatial.curves import HILBERT

    movement = UniformMovement(1000.0, 3.0, random.Random(17))
    states = {obj.uid: obj for obj in movement.initial_objects(80, t=0.0)}
    store = PolicyGenerator(1000.0, 1440.0, random.Random(18)).generate(
        sorted(states), 5, 0.7
    )
    report = assign_sequence_values(sorted(states), store, 1000.0**2)
    store.set_sequence_values(report.sequence_values)
    pool = BufferPool(SimulatedDisk(page_size=1024), capacity=256)
    tree = PEBTree(
        pool, Grid(1000.0, 10, curve=HILBERT), TimePartitioner(120.0, 2), store
    )
    for obj in states.values():
        tree.insert(obj)

    directory = str(tmp_path / "ckpt")
    save_peb_tree(tree, directory)
    restored = load_peb_tree(directory)
    assert restored.grid.curve.name == "hilbert"
    window = Rect(300, 700, 300, 700)
    q_uid = sorted(states)[0]
    assert prq(restored, q_uid, window, 0.0).uids == prq(
        tree, q_uid, window, 0.0
    ).uids