"""Tests for the ablation variants: all of them must stay *correct*;
their I/O differences are measured in benchmarks/bench_ablations.py."""

import pytest

from repro.bench.oracle import brute_force_pknn, brute_force_prq
from repro.core.ablation import ZVFirstKeyCodec, make_zv_first_tree, prq_span_scan
from repro.core.pknn import pknn
from repro.core.prq import prq
from repro.storage import BufferPool, SimulatedDisk

from tests.conftest import build_world


def test_zv_first_codec_round_trip():
    codec = ZVFirstKeyCodec(tid_count=3, sv_bits=16, zv_bits=8, sv_scale=128)
    key = codec.compose(tid=2, sv=10.5, zv=200)
    assert codec.decompose(key) == (2, codec.quantize_sv(10.5), 200)


def test_zv_first_codec_prioritizes_location():
    codec = ZVFirstKeyCodec(tid_count=3, sv_bits=16, zv_bits=8, sv_scale=128)
    # A one-cell location difference outweighs any SV difference.
    assert codec.compose(0, 500.0, 10) < codec.compose(0, 0.0, 11)


def test_zv_first_codec_validation():
    codec = ZVFirstKeyCodec(tid_count=2, sv_bits=8, zv_bits=8, sv_scale=1)
    with pytest.raises(ValueError):
        codec.compose_quantized(2, 0, 0)
    with pytest.raises(ValueError):
        codec.compose_quantized(0, 1 << 9, 0)
    with pytest.raises(ValueError):
        codec.compose_quantized(0, 0, 1 << 9)


def test_zv_first_tree_answers_prq_correctly():
    world = build_world(n_users=200, n_policies=8, seed=31)
    pool = BufferPool(SimulatedDisk(page_size=1024), capacity=512)
    swapped = make_zv_first_tree(
        pool, world.grid, world.partitioner, world.store
    )
    for obj in world.states.values():
        swapped.insert(obj)
    for query in world.query_generator().range_queries(world.uids, 8, 250.0, 5.0):
        expected = brute_force_prq(
            world.states, world.store, query.q_uid, query.window, query.t_query
        )
        assert prq(swapped, query.q_uid, query.window, query.t_query).uids == expected


def test_zv_first_tree_answers_pknn_correctly():
    world = build_world(n_users=200, n_policies=8, seed=32)
    pool = BufferPool(SimulatedDisk(page_size=1024), capacity=512)
    swapped = make_zv_first_tree(pool, world.grid, world.partitioner, world.store)
    for obj in world.states.values():
        swapped.insert(obj)
    for query in world.query_generator().knn_queries(world.states, 5, 4, 5.0):
        expected = [
            round(d, 9)
            for d, _ in brute_force_pknn(
                world.states,
                world.store,
                query.q_uid,
                query.qx,
                query.qy,
                query.k,
                query.t_query,
            )
        ]
        result = pknn(swapped, query.q_uid, query.qx, query.qy, query.k, query.t_query)
        assert [round(d, 9) for d, _ in result.neighbors] == expected


def test_span_scan_prq_equivalent_to_per_sv(small_world):
    world = small_world
    for query in world.query_generator().range_queries(world.uids, 10, 250.0, 5.0):
        per_sv = prq(world.peb, query.q_uid, query.window, query.t_query)
        span = prq_span_scan(world.peb, query.q_uid, query.window, query.t_query)
        assert span.uids == per_sv.uids


def test_span_scan_examines_more_candidates(small_world):
    """The whole point of per-SV ranges: the coarse band scan pulls in
    unrelated users between the issuer's friends."""
    world = small_world
    total_per_sv = 0
    total_span = 0
    for query in world.query_generator().range_queries(world.uids, 10, 300.0, 5.0):
        total_per_sv += prq(
            world.peb, query.q_uid, query.window, query.t_query
        ).candidates_examined
        total_span += prq_span_scan(
            world.peb, query.q_uid, query.window, query.t_query
        ).candidates_examined
    assert total_span > total_per_sv


def test_column_order_pknn_equivalent(small_world):
    world = small_world
    for query in world.query_generator().knn_queries(world.states, 8, 5, 5.0):
        triangular = pknn(
            world.peb, query.q_uid, query.qx, query.qy, query.k, query.t_query
        )
        column = pknn(
            world.peb,
            query.q_uid,
            query.qx,
            query.qy,
            query.k,
            query.t_query,
            order="column",
        )
        assert [round(d, 9) for d, _ in column.neighbors] == [
            round(d, 9) for d, _ in triangular.neighbors
        ]


def test_unknown_order_rejected(small_world):
    world = small_world
    with pytest.raises(ValueError):
        pknn(world.peb, world.uids[0], 500.0, 500.0, 3, 5.0, order="spiral")
