"""Failure-injection tests: disk faults and page corruption.

The index must (a) surface injected storage errors unchanged — no
swallowed exceptions, no partial results — and (b) answer correctly
again once the fault clears, proving no internal state was corrupted by
the failed operation.
"""

import pytest

from repro.btree.tree import BPlusTree, BTreeConfig
from repro.simio.clock import SimClock
from repro.storage.buffer import BufferPool
from repro.storage.faults import (
    ChecksummedDisk,
    CorruptPageError,
    DiskFaultError,
    FaultWindowSchedule,
    FaultyDisk,
    TransientFaultSchedule,
)
from repro.storage.page import RawBytesSerializer


# ----------------------------------------------------------------------
# FaultyDisk semantics
# ----------------------------------------------------------------------


def test_faulty_disk_explicit_read_fault():
    disk = FaultyDisk(page_size=64)
    page = disk.allocate()
    disk.write(page, b"ok")
    disk.fail_read_pages.add(page)
    with pytest.raises(DiskFaultError):
        disk.read(page)
    assert disk.injected_faults == 1


def test_faulty_disk_failed_read_charges_no_io():
    disk = FaultyDisk(page_size=64)
    page = disk.allocate()
    disk.write(page, b"ok")
    writes_before = disk.stats.physical_writes
    disk.fail_read_pages.add(page)
    with pytest.raises(DiskFaultError):
        disk.read(page)
    assert disk.stats.physical_reads == 0
    assert disk.stats.physical_writes == writes_before


def test_faulty_disk_write_fault_preserves_old_image():
    disk = FaultyDisk(page_size=64)
    page = disk.allocate()
    disk.write(page, b"original")
    disk.fail_write_pages.add(page)
    with pytest.raises(DiskFaultError):
        disk.write(page, b"replacement")
    disk.heal()
    assert disk.read(page) == b"original"


def test_faulty_disk_every_nth_read():
    disk = FaultyDisk(page_size=64, fail_every_nth_read=3)
    page = disk.allocate()
    disk.write(page, b"v")
    assert disk.read(page) == b"v"  # attempt 1
    assert disk.read(page) == b"v"  # attempt 2
    with pytest.raises(DiskFaultError):
        disk.read(page)  # attempt 3 fails
    assert disk.read(page) == b"v"  # attempt 4


def test_faulty_disk_rejects_bad_nth():
    with pytest.raises(ValueError):
        FaultyDisk(fail_every_nth_read=0)


def test_heal_clears_all_faults():
    disk = FaultyDisk(page_size=64, fail_every_nth_read=1)
    page = disk.allocate()
    with pytest.raises(DiskFaultError):
        disk.read(page)
    disk.heal()
    disk.write(page, b"v")
    assert disk.read(page) == b"v"


def test_heal_resets_attempt_counters_and_schedule():
    disk = FaultyDisk(page_size=64, fail_every_nth_read=2)
    page = disk.allocate()
    disk.write(page, b"v")
    assert disk.read(page) == b"v"  # attempt 1
    disk.heal()
    # Re-arming after heal restarts from attempt 1, not wherever the
    # pre-fault counter happened to be — schedules replay identically.
    disk.fail_every_nth_read = 2
    assert disk.read(page) == b"v"  # attempt 1 again
    with pytest.raises(DiskFaultError):
        disk.read(page)  # attempt 2

    disk.schedule = TransientFaultSchedule(fail_reads=(1,))
    disk.heal()
    assert disk.schedule is None
    assert disk.read(page) == b"v"  # attempt 1, no schedule left to fire


# ----------------------------------------------------------------------
# Deterministic fault schedules
# ----------------------------------------------------------------------


def test_transient_schedule_validation_and_bounds():
    with pytest.raises(ValueError):
        TransientFaultSchedule(fail_reads=(0,))
    with pytest.raises(ValueError):
        TransientFaultSchedule(fail_writes=(-1,))
    assert TransientFaultSchedule().max_failing_attempt == 0
    schedule = TransientFaultSchedule(fail_reads=(2, 9), fail_writes=(4,))
    assert schedule.max_failing_attempt == 9
    assert schedule.should_fail("read", 123, 2)
    assert not schedule.should_fail("write", 123, 2)  # per-kind sets
    assert schedule.should_fail("write", 123, 4)
    assert not schedule.should_fail("read", 123, 10)  # past the last index
    assert "fail_reads=[2, 9]" in repr(schedule)


def test_transient_schedule_on_disk_clears_after_last_index():
    disk = FaultyDisk(
        page_size=64,
        schedule=TransientFaultSchedule(fail_reads=(1, 3), fail_writes=(2,)),
    )
    page = disk.allocate()
    disk.write(page, b"v")  # write attempt 1 succeeds
    with pytest.raises(DiskFaultError):
        disk.write(page, b"w")  # write attempt 2 fails, image kept
    disk.write(page, b"w")  # write attempt 3 succeeds
    with pytest.raises(DiskFaultError):
        disk.read(page)  # read attempt 1
    assert disk.read(page) == b"w"  # read attempt 2
    with pytest.raises(DiskFaultError):
        disk.read(page)  # read attempt 3
    for _ in range(5):
        assert disk.read(page) == b"w"  # cleared forever: the set is finite


def test_schedule_composes_with_explicit_page_sets():
    disk = FaultyDisk(
        page_size=64, schedule=TransientFaultSchedule(fail_reads=(2,))
    )
    first, second = disk.allocate(), disk.allocate()
    disk.write(first, b"a")
    disk.write(second, b"b")
    disk.fail_read_pages.add(first)
    with pytest.raises(DiskFaultError):
        disk.read(first)  # the explicit page set fires (attempt 1)
    with pytest.raises(DiskFaultError):
        disk.read(second)  # the schedule fires (attempt 2)
    assert disk.read(second) == b"b"


def test_fault_window_validation_and_membership():
    clock = SimClock()
    with pytest.raises(ValueError):
        FaultWindowSchedule(clock, 10.0, 5.0)
    window = FaultWindowSchedule(clock, 100.0, 200.0, kinds=("read",))
    clock.set_cursor(50.0)
    assert not window.should_fail("read", 0, 1)
    clock.set_cursor(100.0)
    assert window.should_fail("read", 0, 1)  # start is inclusive
    assert not window.should_fail("write", 0, 1)  # kinds filter
    clock.set_cursor(199.0)
    assert window.should_fail("read", 0, 1)
    clock.set_cursor(200.0)
    assert not window.should_fail("read", 0, 1)  # end is exclusive


def test_fault_window_cleared_by_advancing_the_clock():
    """Backoff priced on the same clock is what moves a caller past the
    window — advancing the cursor is all it takes to clear the fault."""
    clock = SimClock()
    disk = FaultyDisk(
        page_size=64, schedule=FaultWindowSchedule(clock, 0.0, 500.0)
    )
    page = disk.allocate()
    with pytest.raises(DiskFaultError):
        disk.write(page, b"v")
    clock.advance(500.0)
    disk.write(page, b"v")
    assert disk.read(page) == b"v"


# ----------------------------------------------------------------------
# ChecksummedDisk semantics
# ----------------------------------------------------------------------


def test_checksummed_roundtrip_clean():
    disk = ChecksummedDisk(page_size=64)
    page = disk.allocate()
    disk.write(page, b"payload")
    assert disk.read(page) == b"payload"


def test_checksummed_detects_bit_flip():
    disk = ChecksummedDisk(page_size=64)
    page = disk.allocate()
    disk.write(page, b"payload")
    disk.corrupt(page, bit=5)
    with pytest.raises(CorruptPageError, match="checksum mismatch"):
        disk.read(page)


def test_checksummed_rewrite_updates_checksum():
    disk = ChecksummedDisk(page_size=64)
    page = disk.allocate()
    disk.write(page, b"one")
    disk.write(page, b"two")
    assert disk.read(page) == b"two"


def test_checksummed_corrupt_out_of_range():
    disk = ChecksummedDisk(page_size=64)
    page = disk.allocate()
    disk.write(page, b"ab")
    with pytest.raises(ValueError):
        disk.corrupt(page, bit=10_000)


def test_checksummed_free_forgets_checksum():
    disk = ChecksummedDisk(page_size=64)
    page = disk.allocate()
    disk.write(page, b"x")
    disk.free(page)
    disk.write(page, b"y")
    assert disk.read(page) == b"y"


# ----------------------------------------------------------------------
# Faults through the B+-tree
# ----------------------------------------------------------------------


def build_tree(disk, page_size=256):
    pool = BufferPool(disk, capacity=4)
    config = BTreeConfig(key_bytes=8, value_bytes=16, page_size=page_size)
    return BPlusTree(pool, config)


def test_btree_surfaces_read_fault_and_recovers():
    disk = FaultyDisk(page_size=256)
    tree = build_tree(disk)
    for key in range(200):
        tree.insert(key, key, key.to_bytes(16, "big"))
    tree.pool.flush()
    tree.pool.clear()

    # Make every page unreadable, then heal: the tree must first raise,
    # then return exactly the right answers — nothing cached half-read.
    disk.fail_read_pages.update(range(disk.allocated_count))
    with pytest.raises(DiskFaultError):
        list(tree.scan_range(0, 199))
    disk.heal()
    found = [(key, value) for key, _, value in tree.scan_range(0, 199)]
    assert [key for key, _ in found] == list(range(200))
    assert all(value == key.to_bytes(16, "big") for key, value in found)


def test_btree_surfaces_corruption():
    disk = ChecksummedDisk(page_size=256)
    tree = build_tree(disk)
    for key in range(200):
        tree.insert(key, key, key.to_bytes(16, "big"))
    tree.pool.flush()
    tree.pool.clear()

    # Damage one written page; some lookup must trip over it.
    victim = next(pid for pid in range(disk.allocated_count) if disk.contains(pid))
    disk.corrupt(victim, bit=3)
    with pytest.raises(CorruptPageError):
        list(tree.scan_range(0, 199))


def test_btree_intermittent_faults_never_corrupt_results():
    """Reads that fail are retried by the caller; answers stay exact."""
    disk = FaultyDisk(page_size=256, fail_every_nth_read=7)
    tree = build_tree(disk)
    for key in range(150):
        tree.insert(key, key, key.to_bytes(16, "big"))
    tree.pool.flush()

    expected = list(range(150))
    for _ in range(10):
        tree.pool.clear()
        try:
            got = [key for key, _, _ in tree.scan_range(0, 149)]
        except DiskFaultError:
            continue  # retry, as a real execution layer would
        assert got == expected


def test_buffer_cache_hit_masks_later_on_disk_corruption():
    """Checksum verification is a property of the *physical* read path:
    a page corrupted on disk after it was cached stays invisible until
    the frame is dropped and re-read (the invariant the faults module
    docstring states — recovery paths must invalidate before trusting
    a re-read)."""
    disk = ChecksummedDisk(page_size=64)
    pool = BufferPool(disk, capacity=4, serializer=RawBytesSerializer())
    page = disk.allocate()
    pool.put(page, b"payload")
    pool.flush()
    assert pool.get(page) == b"payload"

    disk.corrupt(page, bit=1)
    # Pool hit: no disk access, so the damage goes undetected.
    assert pool.get(page) == b"payload"
    # Dropping the frame forces a physical read, which detects it.
    pool.discard(page)
    with pytest.raises(CorruptPageError):
        pool.get(page)