"""The central correctness invariant (DESIGN.md):

For every workload, PRQ/PkNN on the PEB-tree, the spatial-filter
baseline, and the brute-force oracle return identical results.

Hypothesis drives whole-system randomization: movement seeds, policy
shapes, grouping factors, query times, and query parameters.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench.oracle import brute_force_pknn, brute_force_prq
from repro.core.pknn import pknn
from repro.core.prq import prq

from tests.conftest import build_world


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    theta=st.sampled_from([0.0, 0.4, 0.8, 1.0]),
    t_query=st.floats(min_value=0.0, max_value=100.0),
)
def test_prq_equivalence_randomized(seed, theta, t_query):
    world = build_world(n_users=150, n_policies=6, theta=theta, seed=seed)
    generator = world.query_generator()
    for query in generator.range_queries(world.uids, 4, 300.0, t_query):
        expected = brute_force_prq(
            world.states, world.store, query.q_uid, query.window, query.t_query
        )
        peb_found = prq(world.peb, query.q_uid, query.window, query.t_query).uids
        base_found = {
            obj.uid
            for obj in world.baseline.range_query(
                query.q_uid, query.window, query.t_query
            )
        }
        assert peb_found == expected
        assert base_found == expected


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    k=st.integers(min_value=1, max_value=7),
    t_query=st.floats(min_value=0.0, max_value=100.0),
)
def test_pknn_equivalence_randomized(seed, k, t_query):
    world = build_world(n_users=150, n_policies=6, seed=seed)
    generator = world.query_generator()
    for query in generator.knn_queries(world.states, 3, k, t_query):
        expected = [
            round(d, 9)
            for d, _ in brute_force_pknn(
                world.states,
                world.store,
                query.q_uid,
                query.qx,
                query.qy,
                query.k,
                query.t_query,
            )
        ]
        peb_result = pknn(
            world.peb, query.q_uid, query.qx, query.qy, query.k, query.t_query
        )
        base_result = world.baseline.knn_query(
            query.q_uid, query.qx, query.qy, query.k, query.t_query
        )
        assert [round(d, 9) for d, _ in peb_result.neighbors] == expected
        assert [round(d, 9) for d, _ in base_result] == expected


def test_equivalence_through_full_update_cycle():
    """Both indexes stay equivalent to brute force while the whole
    population is updated twice over (the Figure 18 regime)."""
    world = build_world(n_users=200, n_policies=8, seed=99)
    rng = random.Random(1234)
    generator = world.query_generator()
    now = 0.0
    for round_index in range(8):
        now += 30.0
        uids = sorted(world.states)
        batch = [uid for uid in uids if uid % 4 == round_index % 4]
        for uid in batch:
            old = world.states[uid]
            x, y = old.position_at(now)
            moved = old.moved_to(
                min(max(x, 0.0), 1000.0),
                min(max(y, 0.0), 1000.0),
                rng.uniform(-3, 3),
                rng.uniform(-3, 3),
                now,
            )
            world.states[uid] = moved
            world.peb.update(moved)
            world.bx.update(moved)
        for query in generator.range_queries(world.uids, 3, 250.0, now):
            expected = brute_force_prq(
                world.states, world.store, query.q_uid, query.window, query.t_query
            )
            assert prq(world.peb, query.q_uid, query.window, query.t_query).uids == expected
        for query in generator.knn_queries(world.states, 2, 4, now):
            expected = [
                round(d, 9)
                for d, _ in brute_force_pknn(
                    world.states,
                    world.store,
                    query.q_uid,
                    query.qx,
                    query.qy,
                    query.k,
                    query.t_query,
                )
            ]
            result = pknn(
                world.peb, query.q_uid, query.qx, query.qy, query.k, query.t_query
            )
            assert [round(d, 9) for d, _ in result.neighbors] == expected


def test_io_advantage_shows_at_scale():
    """The headline claim at test scale: the PEB-tree answers
    privacy-aware queries with less I/O than the spatial-filter
    baseline."""
    from repro.bench.harness import ExperimentConfig, ExperimentHarness

    harness = ExperimentHarness(
        ExperimentConfig(
            n_users=1500,
            n_policies=15,
            n_queries=12,
            page_size=1024,
            buffer_pages=50,
            build_buffer_pages=4096,
            seed=17,
        )
    )
    prq_costs = harness.run_prq_batch()
    knn_costs = harness.run_pknn_batch()
    assert prq_costs.peb_io < prq_costs.baseline_io
    assert knn_costs.peb_io < knn_costs.baseline_io
