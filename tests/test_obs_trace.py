"""The observability layer: recorder, export, metrics, report, inertness.

The tentpole contract is **observational inertness**: a run with the
:class:`repro.obs.TraceRecorder` attached must be bit-identical — same
results, same candidates, same physical counters, same virtual time —
to the same run without it.  Tracing only *reads* the clock and the
stats; Hypothesis sweeps seeds/rates/policies to pin that.

The rest of the file covers the pieces: span/instant/flow arithmetic
against the recorder origin, exemplar sampling, the Chrome trace-event
export (track metadata, flow balance, deterministic ordering), the
metrics registry, the dual-axis stopwatches, and the ``trace-report``
summary cross-check against ``ServiceStats.busy_us``.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.bench.harness import ExperimentConfig, ExperimentHarness
from repro.obs import (
    MetricsRegistry,
    NULL_RECORDER,
    TraceRecorder,
    attach_recorder,
    chrome_trace,
    load_trace,
    record_exemplars,
    render_trace_report,
    timer,
    virtual_timer,
    write_trace,
)
from repro.obs.report import summarize_trace
from repro.simio.clock import SimClock


# ----------------------------------------------------------------------
# TraceRecorder primitives
# ----------------------------------------------------------------------


def test_recorder_span_subtracts_origin_and_clamps_duration():
    recorder = TraceRecorder()
    recorder.set_origin(1000.0)
    recorder.span("worker", "batch.serve", 1250.0, 1750.0)
    recorder.span("worker", "inverted", 1500.0, 1400.0)  # clamped, not negative
    spans = recorder.spans()
    assert spans[0].start_us == 250.0 and spans[0].dur_us == 500.0
    assert spans[1].dur_us == 0.0


def test_recorder_instant_flow_and_queries():
    recorder = TraceRecorder()
    recorder.instant("faults", "retry", 42.0, args={"shard": 1})
    recorder.flow("s", 7, "requests", 10.0)
    recorder.flow("t", 7, "worker", 20.0)
    recorder.flow("f", 7, "worker", 30.0)
    assert [event.name for event in recorder.instants()] == ["retry"]
    assert [event.phase for event in recorder.flows()] == ["s", "t", "f"]
    with pytest.raises(ValueError):
        recorder.flow("x", 7, "worker", 40.0)


def test_recorder_track_groups_inferred_and_explicit():
    recorder = TraceRecorder()
    recorder.span("shard3", "scan.shard", 0.0, 1.0)
    recorder.span("engine/scan", "scan.prefetch", 0.0, 1.0)
    recorder.span("queue", "queue.wait", 0.0, 1.0)
    recorder.instant("faults", "fault", 0.5)
    recorder.register_track("custom", group="devices")
    assert recorder.tracks["shard3"] == "devices"
    assert recorder.tracks["engine/scan"] == "engine"
    assert recorder.tracks["queue"] == "service"
    assert recorder.tracks["faults"] == "faults"
    assert recorder.tracks["custom"] == "devices"


def test_null_recorder_is_disabled_and_callable():
    assert NULL_RECORDER.enabled is False
    NULL_RECORDER.set_origin(5.0)
    NULL_RECORDER.span("worker", "x", 0.0, 1.0)
    NULL_RECORDER.instant("worker", "x", 0.0)
    NULL_RECORDER.flow("s", 1, "worker", 0.0)
    NULL_RECORDER.metadata("k", "v")  # all no-ops, nothing raises


class _Req:
    def __init__(self, seq, arrival_us):
        self.seq = seq
        self.kind = "range"
        self.arrival_us = arrival_us


def test_record_exemplars_tags_quantile_tracks():
    recorder = TraceRecorder()
    # sojourn = 5 + seq, strictly increasing with seq.
    records = [
        (_Req(seq, 10.0 * seq), 10.0 * seq + 5.0, 10.0 * seq + 5.0 + seq)
        for seq in range(1, 11)
    ]
    record_exemplars(recorder, records)
    tracks = {event.track for event in recorder.spans()}
    assert "exemplar p50" in tracks
    assert "exemplar p99" in tracks
    # p100 picks the same request as p99 over 10 records: deduped.
    assert "exemplar p100" not in tracks
    p99 = [event for event in recorder.spans() if event.track == "exemplar p99"]
    assert [event.name for event in p99] == ["wait", "service"]
    assert all(event.args["seq"] == 10 for event in p99)
    assert all(event.args["sojourn_us"] == 15.0 for event in p99)


def test_record_exemplars_empty_records_is_noop():
    recorder = TraceRecorder()
    record_exemplars(recorder, [])
    assert recorder.events == []


# ----------------------------------------------------------------------
# Chrome trace-event export
# ----------------------------------------------------------------------


def _small_recorder() -> TraceRecorder:
    recorder = TraceRecorder()
    recorder.span("worker", "batch.serve", 0.0, 100.0)
    recorder.span("queue", "queue.wait", 0.0, 40.0)
    recorder.span("shard0", "scan.shard", 10.0, 60.0)
    recorder.span("shard1", "scan.shard", 10.0, 80.0)
    recorder.instant("faults", "retry", 50.0, args={"shard": 0})
    recorder.flow("s", 3, "requests", 0.0)
    recorder.flow("f", 3, "worker", 100.0)
    recorder.metadata("service_stats", {"busy_us": 100.0})
    return recorder


def test_chrome_trace_structure_and_metadata():
    trace = chrome_trace(_small_recorder())
    events = trace["traceEvents"]
    assert trace["displayTimeUnit"] == "ms"
    assert trace["otherData"]["service_stats"]["busy_us"] == 100.0

    names = {
        event["args"]["name"]
        for event in events
        if event.get("ph") == "M" and event["name"] == "thread_name"
    }
    assert {"worker", "queue", "requests", "shard0", "shard1", "faults"} <= names
    groups = {
        event["args"]["name"]
        for event in events
        if event.get("ph") == "M" and event["name"] == "process_name"
    }
    assert {"service", "devices", "faults"} <= groups

    # Shard tracks live in the devices process, one tid each.
    pid_of = {
        event["args"]["name"]: event["pid"]
        for event in events
        if event.get("ph") == "M" and event["name"] == "process_name"
    }
    shard_tids = {
        (event["pid"], event["tid"])
        for event in events
        if event.get("ph") == "M"
        and event["name"] == "thread_name"
        and event["args"]["name"].startswith("shard")
    }
    assert len(shard_tids) == 2
    assert all(pid == pid_of["devices"] for pid, _ in shard_tids)

    instant = next(event for event in events if event.get("ph") == "i")
    assert instant["s"] == "t"
    flow_finish = next(event for event in events if event.get("ph") == "f")
    assert flow_finish["bp"] == "e"


def test_chrome_trace_is_deterministic_under_append_order():
    first = _small_recorder()
    second = TraceRecorder()
    # Same events, reversed append order (as a thread pool might).
    for event in reversed(first.events):
        second.events.append(event)
        second.register_track(event.track, first.tracks[event.track])
    second.metadata("service_stats", {"busy_us": 100.0})
    assert json.dumps(chrome_trace(first)) == json.dumps(chrome_trace(second))


def test_write_and_load_trace_round_trip(tmp_path):
    path = tmp_path / "out.json"
    written = write_trace(_small_recorder(), str(path))
    loaded = load_trace(str(path))
    assert loaded == written


# ----------------------------------------------------------------------
# MetricsRegistry
# ----------------------------------------------------------------------


def test_registry_counters_accumulate_per_label_set():
    registry = MetricsRegistry()
    registry.counter("service.requests", 3)
    registry.counter("service.requests", 2)
    registry.counter("shard.physical_reads", 5, shard=0)
    registry.counter("shard.physical_reads", 7, shard=1)
    assert registry.counter_value("service.requests") == 5
    assert registry.counter_value("shard.physical_reads", shard=0) == 5
    assert registry.counter_value("shard.physical_reads", shard=1) == 7
    with pytest.raises(ValueError):
        registry.counter("service.requests", -1)


def test_registry_gauges_overwrite_and_histograms_summarize():
    registry = MetricsRegistry()
    registry.gauge("service.utilization", 0.5)
    registry.gauge("service.utilization", 0.9)
    assert registry.gauge_value("service.utilization") == 0.9
    for value in [1.0, 2.0, 3.0, 4.0]:
        registry.observe("sojourn_us", value, kind="range")
    snapshot = registry.snapshot()
    histogram = snapshot["histograms"]["sojourn_us"]["kind=range"]
    assert histogram["count"] == 4
    assert histogram["sum"] == 10.0
    assert histogram["min"] == 1.0 and histogram["max"] == 4.0
    assert histogram["p50"] == 2.0
    assert registry.observations("sojourn_us", kind="range") == [
        1.0,
        2.0,
        3.0,
        4.0,
    ]


def test_registry_label_order_is_canonical():
    registry = MetricsRegistry()
    registry.counter("x", 1, a=1, b=2)
    registry.counter("x", 1, b=2, a=1)
    assert registry.counter_value("x", a=1, b=2) == 2
    assert list(registry.snapshot()["counters"]["x"]) == ["a=1,b=2"]


def test_stats_publish_lands_in_registry():
    from repro.service.stats import ServiceStats
    from repro.fault.stats import FaultStats
    from repro.shard.stats import ShardStats

    registry = MetricsRegistry()
    ServiceStats(n_requests=8, n_batches=2, busy_us=100.0).publish(registry)
    FaultStats(faults=3, retries=2).publish(registry)
    ShardStats(
        entries=(4, 6), physical_reads=(1, 2), physical_writes=(0, 1)
    ).publish(registry)
    assert registry.counter_value("service.requests") == 8
    assert registry.gauge_value("service.busy_us") == 100.0
    assert registry.counter_value("fault.faults") == 3
    assert registry.gauge_value("shard.entries", shard=1) == 6
    assert registry.gauge_value("shard.balance_skew") == pytest.approx(1.2)


# ----------------------------------------------------------------------
# Stopwatches: the two time axes stay distinguishable
# ----------------------------------------------------------------------


def test_wall_stopwatch_reports_axis_and_freezes():
    watch = timer()
    assert watch.axis == "wall" and watch.unit == "seconds"
    first = watch.stop()
    assert first >= 0.0
    assert watch.elapsed_seconds == watch.stop() == first


def test_virtual_stopwatch_tracks_clock_horizon():
    clock = SimClock()
    watch = virtual_timer(clock)
    assert watch.axis == "virtual" and watch.unit == "microseconds"
    clock.advance(250.0)
    assert watch.elapsed_us == 250.0
    watch.stop()
    clock.advance(100.0)
    assert watch.elapsed_us == 250.0


# ----------------------------------------------------------------------
# Traced service runs: structure, report, and the inertness pin
# ----------------------------------------------------------------------

TINY = ExperimentConfig(
    n_users=300,
    n_policies=6,
    n_queries=4,
    page_size=1024,
    build_buffer_pages=1024,
    seed=29,
)


def _run(harness=None, recorder=None, **overrides):
    harness = harness or ExperimentHarness(TINY)
    kwargs = dict(
        rate_per_sec=2500.0,
        n_requests=32,
        max_batch=8,
        max_wait_us=2000.0,
        n_shards=2,
        latency="ssd",
        pin=False,
    )
    kwargs.update(overrides)
    return harness.run_service(trace_recorder=recorder, **kwargs)


def test_traced_service_run_produces_linked_trace(tmp_path):
    recorder = TraceRecorder()
    costs = _run(recorder=recorder)
    trace = write_trace(recorder, str(tmp_path / "trace.json"))
    events = trace["traceEvents"]

    thread_names = {
        event["args"]["name"]
        for event in events
        if event.get("ph") == "M" and event["name"] == "thread_name"
    }
    assert {"queue", "worker", "requests", "shard0", "shard1"} <= thread_names
    assert any(name.startswith("exemplar p") for name in thread_names)

    # Flow ids: every request that got served has s (arrival), t
    # (dispatch) and f (finish) markers.
    starts = {event["id"] for event in events if event.get("ph") == "s"}
    finishes = {event["id"] for event in events if event.get("ph") == "f"}
    assert starts and starts == finishes
    assert len(starts) == costs.stats.n_requests - costs.stats.n_shed

    assert all(
        event["dur"] >= 0 for event in events if event.get("ph") == "X"
    )
    assert trace["otherData"]["service_stats"]["busy_us"] == pytest.approx(
        costs.stats.busy_us
    )
    assert "metrics" in trace["otherData"]
    assert trace["otherData"]["run_config"]["n_shards"] == 2


def test_trace_report_matches_service_stats(tmp_path):
    recorder = TraceRecorder()
    costs = _run(recorder=recorder)
    trace = chrome_trace(recorder)

    summary = summarize_trace(trace)
    assert summary["busy_check"] is not None
    assert summary["busy_check"]["matches"]
    assert summary["worker_busy_us"] == pytest.approx(costs.stats.busy_us)
    assert summary["phases"]["batch.serve"]["count"] == costs.stats.n_batches
    assert {"shard0", "shard1"} <= set(summary["devices"])

    text = render_trace_report(trace)
    assert "batch.serve" in text
    assert "-> OK" in text


def test_trace_report_renders_loaded_file(tmp_path):
    recorder = TraceRecorder()
    _run(recorder=recorder)
    path = tmp_path / "trace.json"
    write_trace(recorder, str(path))
    assert "-> OK" in render_trace_report(load_trace(str(path)))


def test_attach_recorder_reaches_tree_and_supervisor():
    harness = ExperimentHarness(TINY)
    recorder = TraceRecorder()
    _run(harness=harness, recorder=recorder)
    # The harness detaches after the run: tracing one sweep point must
    # not leak into the next.
    assert any(event.track == "worker" for event in recorder.spans())


def test_batched_prq_traced_identical_and_counter_spans():
    plain = ExperimentHarness(TINY).run_batched_prq()
    recorder = TraceRecorder()
    traced = ExperimentHarness(TINY).run_batched_prq(trace_recorder=recorder)
    # Wall-clock seconds jitter; every deterministic field must match.
    assert traced.sequential_io == plain.sequential_io
    assert traced.batched_io == plain.batched_io
    assert traced.n_queries == plain.n_queries
    assert traced.dedup_ratio == plain.dedup_ratio
    names = {event.name for event in recorder.spans()}
    assert "scan.prefetch" in names
    assert "scan.shard" not in names  # single tree: no device tracks


@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    rate=st.sampled_from([900.0, 2500.0, 7000.0]),
    max_batch=st.sampled_from([1, 8]),
    arrival=st.sampled_from(["poisson", "burst"]),
)
def test_traced_run_bit_identical_to_untraced(seed, rate, max_batch, arrival):
    """The tentpole pin: tracing is observationally inert.

    Same seed, same knobs, recorder on vs off — the full snapshot
    (results pin, sojourns, batch shapes, physical counters, virtual
    time) must match bit for bit.
    """
    kwargs = dict(
        rate_per_sec=rate,
        n_requests=24,
        max_batch=max_batch,
        max_wait_us=1500.0,
        arrival=arrival,
        n_shards=2,
        latency="ssd",
        workload_seed=seed,
        pin=False,
    )
    plain = ExperimentHarness(TINY).run_service(**kwargs)
    recorder = TraceRecorder()
    traced = ExperimentHarness(TINY).run_service(
        trace_recorder=recorder, **kwargs
    )
    assert traced.snapshot() == plain.snapshot()
    assert recorder.spans()  # the recorder did observe the run
