"""Tests for role membership, semantic translation, and LPP evaluation."""

import pytest

from repro.policy.lpp import LocationPrivacyPolicy
from repro.policy.roles import RoleRegistry
from repro.policy.timeset import TimeInterval, TimeSet
from repro.policy.translation import SemanticLocationRegistry, UnknownLocationError
from repro.spatial.geometry import Rect


# ----------------------------------------------------------------------
# RoleRegistry
# ----------------------------------------------------------------------

def test_role_assignment_and_check():
    roles = RoleRegistry()
    roles.assign(owner=1, role="colleague", member=2)
    assert roles.is_in_role(1, "colleague", 2)
    assert not roles.is_in_role(1, "colleague", 3)
    assert not roles.is_in_role(2, "colleague", 1)  # roles are per-owner


def test_role_membership_listing():
    roles = RoleRegistry()
    roles.assign(1, "friend", 5)
    roles.assign(1, "friend", 6)
    assert roles.members(1, "friend") == frozenset({5, 6})
    assert roles.members(1, "family") == frozenset()


def test_revoke():
    roles = RoleRegistry()
    roles.assign(1, "friend", 5)
    roles.revoke(1, "friend", 5)
    assert not roles.is_in_role(1, "friend", 5)
    roles.revoke(1, "friend", 99)  # absent member: no-op
    roles.revoke(9, "ghost", 1)  # undefined role: no-op


def test_roles_of_owner():
    roles = RoleRegistry()
    roles.assign(3, "family", 1)
    roles.assign(3, "colleague", 2)
    roles.assign(4, "friend", 1)
    assert roles.roles_of(3) == ["colleague", "family"]


# ----------------------------------------------------------------------
# SemanticLocationRegistry
# ----------------------------------------------------------------------

def test_translation_of_named_place():
    registry = SemanticLocationRegistry()
    chicago = Rect(100, 300, 100, 280)
    registry.register("Chicago", chicago)
    assert registry.resolve("Chicago") == chicago
    assert "Chicago" in registry
    assert registry.known_names() == ["Chicago"]
    assert len(registry) == 1


def test_euclidean_region_passes_through():
    registry = SemanticLocationRegistry()
    region = Rect(0, 1, 0, 1)
    assert registry.resolve(region) is region


def test_unknown_place_raises():
    registry = SemanticLocationRegistry()
    with pytest.raises(UnknownLocationError):
        registry.resolve("Atlantis")


def test_empty_name_rejected():
    registry = SemanticLocationRegistry()
    with pytest.raises(ValueError):
        registry.register("", Rect(0, 1, 0, 1))


# ----------------------------------------------------------------------
# LocationPrivacyPolicy
# ----------------------------------------------------------------------

def bob_policy():
    """The paper's example: Bob lets colleagues see him in town during
    work hours (8 a.m. to 5 p.m.)."""
    return LocationPrivacyPolicy(
        owner=1,
        role="colleague",
        locr=Rect(100, 300, 100, 280),
        tint=TimeInterval(480, 1020),
    )


def test_admits_inside_region_and_hours():
    assert bob_policy().admits(x=200, y=200, t=600)


def test_denies_outside_region():
    assert not bob_policy().admits(x=500, y=200, t=600)


def test_denies_outside_hours():
    assert not bob_policy().admits(x=200, y=200, t=100)


def test_time_folding_across_days():
    # Day 3, 10:00 -> folds to 600 which is within work hours.
    assert bob_policy().admits(x=200, y=200, t=3 * 1440 + 600)
    assert not bob_policy().admits(x=200, y=200, t=3 * 1440 + 100)


def test_timeset_tint():
    split = LocationPrivacyPolicy(
        owner=1,
        role="friend",
        locr=Rect(0, 1000, 0, 1000),
        tint=TimeSet([TimeInterval(0, 60), TimeInterval(1380, 1440)]),
    )
    assert split.admits(5, 5, t=30)
    assert split.admits(5, 5, t=1400)
    assert not split.admits(5, 5, t=700)
    assert split.time_duration == 120


def test_region_area_and_duration_accessors():
    policy = bob_policy()
    assert policy.region_area == 200 * 180
    assert policy.time_duration == 540
