"""Unit tests for the LRU buffer pool."""

import pytest

from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.storage.page import RawBytesSerializer


def make_pool(capacity=3, page_size=64):
    disk = SimulatedDisk(page_size=page_size)
    return disk, BufferPool(disk, capacity=capacity, serializer=RawBytesSerializer())


def test_put_then_get_hits_without_disk_read():
    disk, pool = make_pool()
    page = disk.allocate()
    pool.put(page, b"payload")
    assert pool.get(page) == b"payload"
    assert disk.stats.physical_reads == 0


def test_miss_reads_from_disk():
    disk, pool = make_pool()
    page = disk.allocate()
    disk.write(page, b"cold")
    disk.stats.reset()
    assert pool.get(page) == b"cold"
    assert disk.stats.physical_reads == 1
    # Second access is a hit.
    assert pool.get(page) == b"cold"
    assert disk.stats.physical_reads == 1


def test_lru_eviction_order():
    disk, pool = make_pool(capacity=2)
    pages = [disk.allocate() for _ in range(3)]
    pool.put(pages[0], b"0")
    pool.put(pages[1], b"1")
    pool.get(pages[0])  # page 0 becomes most recent
    pool.put(pages[2], b"2")  # evicts page 1 (the LRU)
    assert pages[1] not in pool
    assert pages[0] in pool and pages[2] in pool


def test_dirty_eviction_writes_back():
    disk, pool = make_pool(capacity=1)
    first = disk.allocate()
    second = disk.allocate()
    pool.put(first, b"dirty")
    pool.put(second, b"next")  # evicts first
    assert disk.read(first) == b"dirty"


def test_clean_eviction_skips_write():
    disk, pool = make_pool(capacity=1)
    first = disk.allocate()
    disk.write(first, b"ondisk")
    disk.stats.reset()
    pool.get(first)  # resident, clean
    second = disk.allocate()
    pool.put(second, b"x")  # evicts clean page: no write-back
    assert disk.stats.physical_writes == 0


def test_mutated_object_must_be_re_put_or_marked():
    """The discipline the B+-tree follows: put after every mutation."""
    disk, pool = make_pool(capacity=1)
    page = disk.allocate()
    pool.put(page, bytearray(b"aaaa"))
    obj = pool.get(page)
    obj[0:1] = b"z"
    pool.put(page, obj)  # re-put marks dirty
    other = disk.allocate()
    pool.put(other, b"evictor")
    assert disk.read(page) == b"zaaa"


def test_flush_writes_all_dirty_pages():
    disk, pool = make_pool(capacity=4)
    pages = [disk.allocate() for _ in range(3)]
    for index, page in enumerate(pages):
        pool.put(page, bytes([index]))
    pool.flush()
    for index, page in enumerate(pages):
        assert disk.read(page) == bytes([index])
    assert not pool.dirty_pages


def test_clear_flushes_then_empties():
    disk, pool = make_pool(capacity=4)
    page = disk.allocate()
    pool.put(page, b"v")
    pool.clear()
    assert len(pool) == 0
    assert disk.read(page) == b"v"


def test_resize_shrink_evicts_lru():
    disk, pool = make_pool(capacity=4)
    pages = [disk.allocate() for _ in range(4)]
    for page in pages:
        pool.put(page, b"x")
    pool.resize(2)
    assert len(pool) == 2
    assert pool.resident_pages == pages[2:]


def test_logical_counters():
    disk, pool = make_pool()
    page = disk.allocate()
    pool.put(page, b"a")  # one logical write (dirty mark)
    pool.get(page)
    pool.get(page)
    assert disk.stats.logical_reads == 2
    assert disk.stats.logical_writes == 1


def test_mark_dirty_requires_residency():
    _, pool = make_pool()
    with pytest.raises(KeyError):
        pool.mark_dirty(42)


def test_get_without_serializer_fails():
    disk = SimulatedDisk(page_size=64)
    pool = BufferPool(disk, capacity=2)  # no serializer
    page = disk.allocate()
    disk.write(page, b"x")
    with pytest.raises(RuntimeError):
        pool.get(page)


def test_discard_forgets_without_writeback():
    disk, pool = make_pool()
    page = disk.allocate()
    disk.write(page, b"old")
    pool.put(page, b"new")
    pool.discard(page)
    assert disk.read(page) == b"old"


def test_invalid_capacity_rejected():
    disk = SimulatedDisk()
    with pytest.raises(ValueError):
        BufferPool(disk, capacity=0)
    _, pool = make_pool()
    with pytest.raises(ValueError):
        pool.resize(-1)
