"""Device profiles and overlapped I/O: the same workload, priced in time.

Run with::

    python examples/latency_profiles.py

Physical read/write *counts* are device-blind: the same batch costs the
same pages whether they live on a spinning disk or an NVMe drive, and
whether the shards are driven one after another or concurrently.  This
example prices one hotspot workload (an update stream followed by a
range-query batch) through the simulated-latency subsystem
(:mod:`repro.simio`) on all three built-in device profiles, each at
1 shard (serial schedule) and 4 shards (overlapped schedule: per-shard
prefetch scans and update sweeps fork/join on one virtual clock,
verification pipelined against still-running scans).

Two things to watch in the output:

* the **speedup** of 4 overlapped shards grows with the device's
  seek/transfer ratio — overlap pays most where positioning dominates
  (hdd), least where transfers are nearly free (nvme);
* the **overlap factor** (device busy time / elapsed time) shows the
  scheduler genuinely keeping several devices busy at once — it is
  1.0 by construction on the serial baseline;
* the **seeks** and **seq ratio** columns count, per device, how many
  accesses paid the positioning cost versus rode a sequential run —
  the signal the adaptive prefetch policy feeds on: merged band scans
  and leaf-ordered sweeps keep the ratio high, and the device profile
  decides how much each avoided seek is worth.

Every timed run's query results and final index contents are pinned
identical to untimed single-tree execution inside ``run_overlap`` —
latency simulation is timing-only, never an approximation.
"""

from repro import ExperimentConfig, ExperimentHarness
from repro.simio import PROFILES


def main():
    harness = ExperimentHarness(
        ExperimentConfig(n_users=1200, n_policies=10, page_size=1024, seed=7)
    )
    print(f"built a {harness.config.n_users}-user world\n")

    header = (
        f"{'profile':<8} {'seek us':>8} {'xfer us':>8} "
        f"{'1-shard ms':>11} {'4-shard ms':>11} {'speedup':>8} {'overlap':>8} "
        f"{'seeks':>7} {'seq ratio':>9}"
    )
    print(header)
    print("-" * len(header))
    for name in ("hdd", "ssd", "nvme"):
        profile = PROFILES[name]
        costs = harness.run_overlap(
            4,
            latency=name,
            workload="hotspot",
            n_updates=800,
            n_queries=32,
            parallel_io=False,  # virtual overlap alone; threads change nothing
        )
        print(
            f"{name:<8} {profile.seek_us:>8.0f} {profile.read_us:>8.0f} "
            f"{costs.baseline_elapsed_us / 1000:>11.1f} "
            f"{costs.sharded_elapsed_us / 1000:>11.1f} "
            f"{costs.speedup:>7.2f}x {costs.overlap_factor:>8.2f} "
            f"{costs.sharded_seeks:>7} {costs.sharded_sequential_ratio:>9.3f}"
        )

    print(
        "\nSame pages, same counts — only the schedule and the device"
        " change.\nOverlap pays most where seeks dominate; every result was"
        " verified identical\nto sequential single-tree execution."
    )


if __name__ == "__main__":
    main()
