"""Batch execution: many concurrent queries, one set of band scans.

Run with::

    python examples/batch_queries.py

A location server rarely sees one query at a time — it drains a queue.
This example builds a small world, draws a mixed queue of privacy-aware
range and kNN queries, and executes it through the unified query
engine's batch executor: the planner turns every range query into band
requests up front, overlapping requests from different issuers are
merged and physically scanned once, and each query is then answered
from the shared in-memory band store.  The per-query results are
bit-identical to running the queries individually — the example checks
a few against ``prq``/``pknn`` — while the ``ExecutionStats`` show how
much scan work the batch shared.
"""

import random

from repro import (
    ExperimentConfig,
    ExperimentHarness,
    QueryEngine,
    QueryGenerator,
    pknn,
    prq,
)
from repro.core.pknn import PKNNResult
from repro.core.prq import PRQResult
from repro.workloads.queries import KnnQuerySpec, RangeQuerySpec


def main():
    harness = ExperimentHarness(
        ExperimentConfig(
            n_users=1500, n_policies=12, page_size=1024, window_side=250.0, seed=7
        )
    )
    print(f"built a {harness.config.n_users}-user world")

    # --- a mixed query queue, as a server would see it ----------------
    generator = QueryGenerator(harness.config.space_side, random.Random(42))
    specs = generator.mixed_queries(
        harness.states, count=48, window_side=250.0, k=4, t_query=0.0
    )
    n_range = sum(isinstance(spec, RangeQuerySpec) for spec in specs)
    print(f"queue: {n_range} range queries, {len(specs) - n_range} kNN queries")

    # --- one batch, shared band scans ---------------------------------
    engine = QueryEngine(harness.peb_tree)
    report = engine.execute_batch(specs)
    stats = report.stats
    print(
        f"bands: {stats.bands_requested} requested, "
        f"{stats.bands_scanned} physically scanned, "
        f"{stats.bands_deduped} shared ({stats.dedup_ratio:.0%} dedup)"
    )
    print(
        f"candidates examined: {stats.candidates_examined}, "
        f"physical page reads: {stats.physical_reads}"
    )

    # --- spot-check against the one-at-a-time adapters ----------------
    for spec, batched in list(zip(specs, report.results))[:8]:
        if isinstance(spec, RangeQuerySpec):
            single = prq(harness.peb_tree, spec.q_uid, spec.window, spec.t_query)
            assert isinstance(batched, PRQResult) and single.uids == batched.uids
        else:
            assert isinstance(spec, KnnQuerySpec)
            single = pknn(
                harness.peb_tree, spec.q_uid, spec.qx, spec.qy, spec.k, spec.t_query
            )
            assert isinstance(batched, PKNNResult)
            assert single.uids == batched.uids
    print("spot-checked 8 batched results against individual runs: identical")


if __name__ == "__main__":
    main()
