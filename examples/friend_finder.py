"""Friend finder: the paper's running example as an application.

A social location app where every user grants visibility only to chosen
peers under spatio-temporal conditions.  One user asks "where are my
nearest visible friends right now?" — the PkNN query of Definition 3.

The script builds the PEB-tree and the spatial-index + filter baseline
over the same population and contrasts their I/O on the same queries,
reproducing the effect of Figures 4 and 6: the baseline crawls outward
through *all* nearby users (most of whom hide from the issuer), while
the PEB-tree jumps straight to index regions where friends can be.

Run with::

    python examples/friend_finder.py
"""

import random

from repro import (
    BufferPool,
    BxTree,
    Grid,
    PEBTree,
    PolicyGenerator,
    SimulatedDisk,
    SpatialFilterBaseline,
    TimePartitioner,
    UniformMovement,
    assign_sequence_values,
    pknn,
)

SPACE_SIDE = 1000.0
N_USERS = 3000
POLICIES_PER_USER = 25
QUERY_BUFFER_PAGES = 50  # the paper's LRU buffer


def build_population(seed=3):
    rng = random.Random(seed)
    movement = UniformMovement(SPACE_SIDE, max_speed=3.0, rng=rng)
    users = movement.initial_objects(N_USERS, t=0.0)
    states = {user.uid: user for user in users}

    policy_gen = PolicyGenerator(SPACE_SIDE, 1440.0, random.Random(seed + 1))
    store = policy_gen.generate(sorted(states), POLICIES_PER_USER, grouping_factor=0.7)
    report = assign_sequence_values(sorted(states), store, SPACE_SIDE**2)
    store.set_sequence_values(report.sequence_values)
    return users, states, store


def main():
    users, states, store = build_population()
    grid = Grid(SPACE_SIDE, bits=10)
    partitioner = TimePartitioner(120.0, 2)

    peb_pool = BufferPool(SimulatedDisk(), capacity=4096)
    peb = PEBTree(peb_pool, grid, partitioner, store)
    bx_pool = BufferPool(SimulatedDisk(), capacity=4096)
    bx = BxTree(bx_pool, grid, partitioner)
    baseline = SpatialFilterBaseline(bx, store)
    for user in users:
        peb.insert(user)
        bx.insert(user)
    print(f"indexed {N_USERS} users in both structures")

    # Measure a batch of friend-finder queries under the paper's buffer.
    rng = random.Random(42)
    issuers = rng.sample(sorted(states), 15)
    t_query = 5.0
    k = 3

    for pool in (peb_pool, bx_pool):
        pool.flush()
        pool.resize(QUERY_BUFFER_PAGES)
        pool.stats.reset()

    print(f"\nfinding each user's {k} nearest visible friends at t={t_query}:\n")
    header = f"{'user':>6} {'friends found':>14} {'nearest':>22}"
    print(header)
    print("-" * len(header))
    for issuer in issuers:
        qx, qy = states[issuer].position_at(t_query)
        answer = pknn(peb, issuer, qx, qy, k, t_query)
        base_answer = baseline.knn_query(issuer, qx, qy, k, t_query)
        assert [uid for _, uid in [(d, o.uid) for d, o in answer.neighbors]] == [
            obj.uid for _, obj in base_answer
        ] or [round(d, 6) for d, _ in answer.neighbors] == [
            round(d, 6) for d, _ in base_answer
        ], "the two approaches must agree"
        nearest = (
            f"user {answer.neighbors[0][1].uid} @ {answer.neighbors[0][0]:.1f}"
            if answer.neighbors
            else "(nobody visible)"
        )
        print(f"{issuer:>6} {len(answer.neighbors):>14} {nearest:>22}")

    peb_io = peb_pool.stats.physical_reads / len(issuers)
    base_io = bx_pool.stats.physical_reads / len(issuers)
    print(
        f"\naverage I/O per query: PEB-tree {peb_io:.1f} pages, "
        f"spatial index + filter {base_io:.1f} pages "
        f"({base_io / max(peb_io, 0.01):.1f}x)"
    )
    print(
        "the baseline examines every nearby user regardless of policies —\n"
        "exactly the inefficiency the PEB-tree removes (Sections 4 and 5)"
    )


if __name__ == "__main__":
    main()
