"""Cost-model calibration: predict PRQ I/O before building an index.

Section 6 of the paper derives an analytical I/O cost function for
privacy-aware range queries on the PEB-tree (Equations 6-7) whose two
density coefficients are fitted from just two measured sample points.
A capacity planner can calibrate once on small deployments and then
predict query cost across population sizes and policy mixes.

This script measures two small configurations, calibrates the model,
predicts a sweep of intermediate configurations, and compares the
predictions against fresh measurements — a miniature Figure 19.

Run with::

    python examples/cost_model_tuning.py
"""

from repro import CostModel, ExperimentConfig, ExperimentHarness
from repro.core.cost_model import CostSample

BASE = ExperimentConfig(
    n_users=1000,
    n_policies=15,
    grouping_factor=0.7,
    n_queries=20,
    page_size=1024,
    buffer_pages=50,
    build_buffer_pages=4096,
    seed=23,
)


def measure(n_users: int) -> CostSample:
    harness = ExperimentHarness(BASE.scaled(n_users=n_users))
    costs = harness.run_prq_batch()
    return CostSample(
        n_users=n_users,
        n_policies=BASE.n_policies,
        theta=BASE.grouping_factor,
        n_leaves=harness.peb_leaf_count,
        measured_io=costs.peb_io,
    )


def main():
    print("measuring two calibration points (small deployments)...")
    low = measure(800)
    high = measure(2400)
    print(
        f"  {low.n_users} users -> {low.measured_io:.2f} I/O per query\n"
        f"  {high.n_users} users -> {high.measured_io:.2f} I/O per query"
    )

    model = CostModel.calibrate(low, high, BASE.space_side)
    print(f"calibrated Equation 7: a1={model.a1:.4g}, a2={model.a2:.4g}\n")

    print(f"{'users':>8} {'predicted':>10} {'measured':>10} {'error':>8}")
    print("-" * 40)
    for n_users in (1200, 1600, 2000):
        sample = measure(n_users)
        predicted = model.estimate(
            n_users, BASE.n_policies, BASE.grouping_factor, sample.n_leaves
        )
        error = abs(predicted - sample.measured_io) / max(sample.measured_io, 1e-9)
        print(
            f"{n_users:>8} {predicted:>10.2f} {sample.measured_io:>10.2f} "
            f"{error:>7.0%}"
        )

    print(
        "\nthe model folds every non-density effect into two constants "
        "(Section 6); Figure 19's conclusion is that this already tracks "
        "the measured cost quite well"
    )


if __name__ == "__main__":
    main()
