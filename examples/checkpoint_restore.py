"""Checkpoint and restore: surviving a server restart.

Building a large PEB-tree — generating policies, encoding sequence
values, inserting every user — dominates startup time.  A checkpoint
captures the whole deployment (page images, policy directory with its
sequence values, index metadata) in two files; a restart reloads it in
milliseconds and answers queries identically, starting from a cold
buffer exactly like a rebooted machine.

Run with::

    python examples/checkpoint_restore.py
"""

import os
import random
import tempfile
import time

from repro import (
    BufferPool,
    Grid,
    PEBTree,
    PolicyGenerator,
    SimulatedDisk,
    TimePartitioner,
    UniformMovement,
    assign_sequence_values,
    prq,
)
from repro.core.checkpoint import load_peb_tree, save_peb_tree
from repro.spatial.geometry import Rect

SPACE_SIDE = 1000.0
N_USERS = 20_000
POLICIES_PER_USER = 10


def build_world(seed=31):
    rng = random.Random(seed)
    movement = UniformMovement(SPACE_SIDE, max_speed=3.0, rng=rng)
    users = movement.initial_objects(N_USERS, t=0.0)
    states = {user.uid: user for user in users}

    policy_gen = PolicyGenerator(SPACE_SIDE, 1440.0, random.Random(seed + 1))
    store = policy_gen.generate(
        sorted(states), POLICIES_PER_USER, grouping_factor=0.7
    )
    report = assign_sequence_values(sorted(states), store, SPACE_SIDE**2)
    store.set_sequence_values(report.sequence_values)

    pool = BufferPool(SimulatedDisk(page_size=4096), capacity=1024)
    tree = PEBTree(pool, Grid(SPACE_SIDE, 10), TimePartitioner(120.0, 2), store)
    for user in users:
        tree.insert(user)
    return states, tree


def main():
    started = time.perf_counter()
    states, tree = build_world()
    build_seconds = time.perf_counter() - started
    print(
        f"Built the deployment from scratch in {build_seconds:.1f}s "
        f"({N_USERS} users, {POLICIES_PER_USER} policies each)."
    )

    issuer = sorted(states)[0]
    window = Rect(300, 700, 300, 700)
    before = prq(tree, issuer, window, 15.0).uids

    with tempfile.TemporaryDirectory() as directory:
        started = time.perf_counter()
        save_peb_tree(tree, directory)
        save_seconds = time.perf_counter() - started
        disk_bytes = os.path.getsize(os.path.join(directory, "disk.bin"))
        meta_bytes = os.path.getsize(os.path.join(directory, "meta.json.gz"))
        print(
            f"Checkpoint written in {save_seconds:.2f}s "
            f"(disk.bin {disk_bytes / 1024:.0f} KiB, "
            f"meta.json.gz {meta_bytes / 1024:.0f} KiB)."
        )

        started = time.perf_counter()
        restored = load_peb_tree(directory, buffer_pages=50)
        load_seconds = time.perf_counter() - started
        print(
            f"Restored in {load_seconds:.2f}s — "
            f"{build_seconds / max(load_seconds, 1e-9):.0f}x faster than "
            "rebuilding."
        )

    after = prq(restored, issuer, window, 15.0)
    print(
        f"\nPRQ for u{issuer} before restart: {len(before)} users; "
        f"after: {len(after.uids)} users "
        f"({restored.stats.physical_reads} cold-buffer reads)."
    )
    assert after.uids == before
    print("Identical answers across the restart. ✓")


if __name__ == "__main__":
    main()
