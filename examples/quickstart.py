"""Quickstart: build a PEB-tree by hand and run both query types.

Run with::

    python examples/quickstart.py

Walks the paper's three-step approach end to end on a small population:
encode policies into sequence values, build the policy-embedded index,
and answer privacy-aware range and kNN queries — checking the answers
against a brute-force evaluation.
"""

import random

from repro import (
    BufferPool,
    Grid,
    PEBTree,
    PolicyGenerator,
    Rect,
    SimulatedDisk,
    TimePartitioner,
    UniformMovement,
    assign_sequence_values,
    brute_force_pknn,
    brute_force_prq,
    pknn,
    prq,
)

SPACE_SIDE = 1000.0
TIME_DOMAIN = 1440.0  # one day, in minutes
N_USERS = 1000
POLICIES_PER_USER = 15


def main():
    rng = random.Random(7)

    # --- 1. A population of moving users -----------------------------
    movement = UniformMovement(SPACE_SIDE, max_speed=3.0, rng=rng)
    users = movement.initial_objects(N_USERS, t=0.0)
    states = {user.uid: user for user in users}
    print(f"generated {N_USERS} moving users")

    # --- 2. Policies and their encoding ------------------------------
    policy_gen = PolicyGenerator(SPACE_SIDE, TIME_DOMAIN, random.Random(8))
    store = policy_gen.generate(
        sorted(states), POLICIES_PER_USER, grouping_factor=0.7
    )
    report = assign_sequence_values(sorted(states), store, SPACE_SIDE**2)
    store.set_sequence_values(report.sequence_values)
    print(
        f"encoded {store.policy_count()} policies into sequence values "
        f"in {report.elapsed_seconds * 1000:.1f} ms "
        f"({report.group_count} groups)"
    )

    # --- 3. The PEB-tree ----------------------------------------------
    grid = Grid(SPACE_SIDE, bits=10)
    partitioner = TimePartitioner(max_update_interval=120.0, n=2)
    pool = BufferPool(SimulatedDisk(), capacity=256)
    tree = PEBTree(pool, grid, partitioner, store)
    for user in users:
        tree.insert(user)
    print(
        f"built PEB-tree: {len(tree)} entries, height {tree.btree.height}, "
        f"{tree.btree.leaf_count} leaves"
    )
    # Query under a small LRU buffer so the I/O counters mean something.
    pool.flush()
    pool.resize(8)

    # --- 4. A privacy-aware range query -------------------------------
    issuer = 42
    window = Rect(300.0, 550.0, 300.0, 550.0)
    t_query = 10.0
    pool.stats.reset()
    answer = prq(tree, issuer, window, t_query)
    expected = brute_force_prq(states, store, issuer, window, t_query)
    assert answer.uids == expected, "PRQ disagrees with brute force!"
    print(
        f"\nPRQ for user {issuer} over {window}:"
        f"\n  visible users: {sorted(answer.uids) or 'none'}"
        f"\n  candidates examined: {answer.candidates_examined}"
        f"\n  physical page reads: {pool.stats.physical_reads}"
    )

    # --- 5. A privacy-aware kNN query ---------------------------------
    qx, qy = states[issuer].position_at(t_query)
    pool.stats.reset()
    knn_answer = pknn(tree, issuer, qx, qy, k=3, t_query=t_query)
    expected_knn = brute_force_pknn(states, store, issuer, qx, qy, 3, t_query)
    assert [round(d, 9) for d, _ in knn_answer.neighbors] == [
        round(d, 9) for d, _ in expected_knn
    ], "PkNN disagrees with brute force!"
    print(f"\nPkNN (k=3) for user {issuer} at ({qx:.0f}, {qy:.0f}):")
    for distance, neighbor in knn_answer.neighbors:
        print(f"  user {neighbor.uid:4d} at distance {distance:7.2f}")
    if not knn_answer.neighbors:
        print("  nobody currently discloses their location to this user")
    print(f"  physical page reads: {pool.stats.physical_reads}")

    print("\nquickstart OK — all answers verified against brute force")


if __name__ == "__main__":
    main()
