"""Continuous friend monitoring: a standing privacy-aware range query.

A dispatcher pins a region of town — "alert me while any of my visible
friends is inside the old harbour" — and the server keeps the answer
fresh as people move and policies flip on and off with the time of day.

Snapshot indexes answer this by re-running a range query every tick.
The PEB-tree can do better: all of the issuer's friends live in a few
SV bands, so a single registration scan (I/O proportional to the friend
count, not the population) captures every friend's *motion function*;
afterwards the monitor maintains the result analytically and can even
predict, to the second, when each friend will enter or leave —
including re-entries when a "work-hours only" policy re-arms the next
morning.

This exercises the :class:`repro.core.continuous.ContinuousPRQ`
extension (Section 8 of the paper asks for exactly such query types).

Run with::

    python examples/continuous_monitoring.py
"""

import random

from repro import (
    BufferPool,
    Grid,
    PEBTree,
    PolicyGenerator,
    Rect,
    SimulatedDisk,
    TimePartitioner,
    UniformMovement,
    assign_sequence_values,
)
from repro.core.continuous import ContinuousPRQ

SPACE_SIDE = 1000.0
N_USERS = 2000
POLICIES_PER_USER = 30
HARBOUR = Rect(350.0, 650.0, 350.0, 650.0)
HORIZON_MINUTES = 240.0


def build_world(seed=11):
    rng = random.Random(seed)
    movement = UniformMovement(SPACE_SIDE, max_speed=3.0, rng=rng)
    users = movement.initial_objects(N_USERS, t=0.0)
    states = {user.uid: user for user in users}

    policy_gen = PolicyGenerator(SPACE_SIDE, 1440.0, random.Random(seed + 1))
    store = policy_gen.generate(
        sorted(states), POLICIES_PER_USER, grouping_factor=0.7
    )
    report = assign_sequence_values(sorted(states), store, SPACE_SIDE**2)
    store.set_sequence_values(report.sequence_values)

    grid = Grid(SPACE_SIDE, 10)
    partitioner = TimePartitioner(120.0, 2)
    pool = BufferPool(SimulatedDisk(page_size=4096), capacity=256)
    tree = PEBTree(pool, grid, partitioner, store)
    for user in users:
        tree.insert(user)
    return movement, states, store, tree


def pick_busy_issuer(store, states):
    """An issuer with a healthy number of friends makes a lively demo."""
    return max(sorted(states), key=lambda uid: len(store.friend_list(uid)))


def main():
    movement, states, store, tree = build_world()
    issuer = pick_busy_issuer(store, states)
    friends = len(store.friend_list(issuer))
    print(f"Issuer u{issuer} has {friends} friends among {N_USERS} users.")
    print(f"Monitoring {HARBOUR} for the next {HORIZON_MINUTES:.0f} minutes.\n")

    # Register: one index scan bounded by the friend count.
    tree.btree.pool.flush()
    tree.btree.pool.clear()
    monitor = ContinuousPRQ(tree, issuer, HARBOUR, t_start=0.0)
    print(
        f"Registration tracked {monitor.tracked_count} friends "
        f"for {monitor.seed_io} physical reads."
    )

    inside_now = sorted(monitor.result_at(0.0))
    print(f"Inside at t=0: {[f'u{uid}' for uid in inside_now] or 'nobody'}\n")

    # Predict the exact membership timeline — zero further index I/O.
    events = monitor.events_between(0.0, HORIZON_MINUTES)
    print(f"Predicted timeline ({len(events)} events):")
    for event in events[:15]:
        action = "enters" if event.enters else "leaves"
        print(f"  t={event.time:7.1f}  u{event.uid:<6} {action}")
    if len(events) > 15:
        print(f"  ... {len(events) - 15} more")

    # A friend phones in an update mid-flight; the timeline adapts.
    if events:
        mover_uid = events[0].uid
        t_now = events[0].time / 2.0
        state = states[mover_uid]
        x, y = state.position_at(t_now)
        # The friend makes a U-turn: velocity reversed.
        updated = state.moved_to(x, y, -state.vx, -state.vy, t_now)
        states[mover_uid] = updated
        tree.update(updated)
        monitor.refresh(updated)
        print(f"\nu{mover_uid} makes a U-turn at t={t_now:.1f}; new timeline:")
        for event in monitor.events_between(t_now, HORIZON_MINUTES)[:8]:
            action = "enters" if event.enters else "leaves"
            print(f"  t={event.time:7.1f}  u{event.uid:<6} {action}")

    # Sanity: the monitor agrees with a fresh snapshot query at t=90.
    from repro import prq

    snapshot = prq(tree, issuer, HARBOUR, 90.0)
    monitored = monitor.result_at(90.0)
    assert snapshot.uids == monitored, (snapshot.uids, monitored)
    print(f"\nAt t=90 the monitor and a snapshot PRQ agree: "
          f"{len(monitored)} friend(s) inside. ✓")


if __name__ == "__main__":
    main()
