"""Campus geofence: privacy-aware range monitoring on a road network.

A campus safety app: staff members move along a campus road network;
each has a location-privacy policy like the paper's Bob — "colleagues
may see me while I am on campus during work hours" — written against a
*semantic* location name that the server translates to a region
(Section 5.1's policy-translation step).  A dispatcher periodically runs
a privacy-aware range query (Definition 2) over a geofence to list the
staff who are visible to them right now.

Demonstrates: semantic locations, roles, network movement, the update
protocol (deviation threshold + maximum update interval), and PRQ on a
live, continuously updated PEB-tree.

Run with::

    python examples/campus_geofence.py
"""

import random

from repro import (
    BufferPool,
    Grid,
    LocationPrivacyPolicy,
    NetworkMovement,
    PEBTree,
    Rect,
    SimulatedDisk,
    TimeInterval,
    TimePartitioner,
    UpdatePolicy,
    assign_sequence_values,
    brute_force_prq,
    prq,
)
from repro.policy.store import PolicyStore

SPACE_SIDE = 1000.0
N_STAFF = 600
DISPATCHER = 0  # uid of the querying dispatcher
WORK_HOURS = TimeInterval(480.0, 1020.0)  # 8am - 5pm in minutes
SHIFT_START = 480.0  # simulation clock starts at 8am


def build_policies(uids):
    """Staff let the 'dispatch' role see them in named places in work hours."""
    store = PolicyStore(time_domain=1440.0)
    store.locations.register("campus", Rect(150.0, 850.0, 150.0, 850.0))
    store.locations.register("depot", Rect(0.0, 150.0, 0.0, 150.0))
    rng = random.Random(5)
    for uid in uids:
        if uid == DISPATCHER:
            continue
        # Most staff are visible on campus; some only at the depot, and
        # some have opted out entirely (no policy covering dispatch).
        roll = rng.random()
        if roll < 0.70:
            place = "campus"
        elif roll < 0.85:
            place = "depot"
        else:
            continue
        policy = LocationPrivacyPolicy(
            owner=uid, role="dispatch", locr=place, tint=WORK_HOURS
        )
        store.add_policy(policy, members=[DISPATCHER])
    return store


def main():
    rng = random.Random(11)
    movement = NetworkMovement(SPACE_SIDE, n_destinations=40, rng=rng)
    staff = movement.initial_objects(N_STAFF, t=SHIFT_START)
    true_states = {member.uid: member for member in staff}
    served_states = dict(true_states)  # what the server currently holds

    store = build_policies(sorted(true_states))
    report = assign_sequence_values(sorted(true_states), store, SPACE_SIDE**2)
    store.set_sequence_values(report.sequence_values)
    print(
        f"{store.policy_count()} policies registered "
        f"({len(store.friend_list(DISPATCHER))} staff visible to dispatch "
        "under some condition)"
    )

    grid = Grid(SPACE_SIDE, bits=10)
    partitioner = TimePartitioner(max_update_interval=120.0, n=2)
    pool = BufferPool(SimulatedDisk(), capacity=1024)
    tree = PEBTree(pool, grid, partitioner, store)
    for member in staff:
        tree.insert(member)

    geofence = Rect(400.0, 700.0, 400.0, 700.0)
    update_rule = UpdatePolicy(deviation_threshold=5.0, max_update_interval=120.0)

    clock = SHIFT_START
    print(f"\nmonitoring geofence {geofence} every 10 minutes:\n")
    for _ in range(6):
        clock += 10.0
        # Section 2.1 update protocol: each member reports when its
        # linear prediction drifts past the threshold (or on deadline).
        updates = 0
        for uid in sorted(true_states):
            truth = movement.advance(true_states[uid], clock)
            true_states[uid] = truth
            if update_rule.must_update(served_states[uid], truth.x, truth.y, clock):
                served_states[uid] = truth
                tree.update(truth)
                updates += 1
        result = prq(tree, DISPATCHER, geofence, clock)
        expected = brute_force_prq(served_states, store, DISPATCHER, geofence, clock)
        assert result.uids == expected, "index must agree with brute force"
        hour, minute = int(clock // 60), int(clock % 60)
        print(
            f"  {hour:02d}:{minute:02d}  visible in fence: {len(result.users):3d}  "
            f"(position reports this tick: {updates:3d}, "
            f"candidates examined: {result.candidates_examined})"
        )

    print(
        "\nall geofence answers verified against brute force; "
        "policies with semantic locations ('campus', 'depot') were "
        "translated and enforced per Definition 2"
    )


if __name__ == "__main__":
    main()
