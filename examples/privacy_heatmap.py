"""Privacy-respecting heat map: aggregate queries over the PEB-tree.

An event organizer wants to know *where* their visible contacts
concentrate across the fairgrounds — without learning any individual's
exact position.  The privacy-aware density query buckets qualifying
friends into a coarse grid: each count is computed from verified
positions, but only cell totals leave the server.

Also shown: the existential query ("is at least one friend nearby?"),
which terminates the index scan the moment one qualifying user is
confirmed — cheaper than a full count, as the printed I/O shows.

This exercises the :mod:`repro.core.aggregate` extension (Section 8 of
the paper asks for more privacy-aware query types).

Run with::

    python examples/privacy_heatmap.py
"""

import random

from repro import (
    BufferPool,
    Grid,
    PEBTree,
    PolicyGenerator,
    Rect,
    SimulatedDisk,
    TimePartitioner,
    UniformMovement,
    assign_sequence_values,
)
from repro.core.aggregate import pcount, pdensity_grid

SPACE_SIDE = 1000.0
N_USERS = 3000
POLICIES_PER_USER = 40
FAIRGROUNDS = Rect(200.0, 800.0, 200.0, 800.0)
ROWS = COLUMNS = 6


def build_world(seed=23):
    rng = random.Random(seed)
    movement = UniformMovement(SPACE_SIDE, max_speed=3.0, rng=rng)
    users = movement.initial_objects(N_USERS, t=0.0)
    states = {user.uid: user for user in users}

    policy_gen = PolicyGenerator(SPACE_SIDE, 1440.0, random.Random(seed + 1))
    store = policy_gen.generate(
        sorted(states), POLICIES_PER_USER, grouping_factor=0.7
    )
    report = assign_sequence_values(sorted(states), store, SPACE_SIDE**2)
    store.set_sequence_values(report.sequence_values)

    pool = BufferPool(SimulatedDisk(page_size=4096), capacity=256)
    tree = PEBTree(pool, Grid(SPACE_SIDE, 10), TimePartitioner(120.0, 2), store)
    for user in users:
        tree.insert(user)
    return states, store, tree


def render(density):
    """ASCII heat map, densest cell normalized to '#'."""
    peak = max(density.cells.values(), default=0)
    shades = " .:-=+*#"
    lines = []
    for row in range(density.rows - 1, -1, -1):  # top row = largest y
        cells = []
        for column in range(density.columns):
            count = density.count_at(row, column)
            shade = shades[min(
                len(shades) - 1,
                round(count / peak * (len(shades) - 1)) if peak else 0,
            )]
            cells.append(f"{shade}{shade}")
        lines.append("|" + "".join(cells) + "|")
    return "\n".join(lines)


def main():
    states, store, tree = build_world()
    issuer = max(sorted(states), key=lambda uid: len(store.friend_list(uid)))
    print(
        f"Issuer u{issuer} ({len(store.friend_list(issuer))} friends among "
        f"{N_USERS} users) asks for a {ROWS}x{COLUMNS} density grid over "
        f"{FAIRGROUNDS}.\n"
    )

    def cold():
        tree.btree.pool.flush()
        tree.btree.pool.clear()
        tree.stats.reset()

    cold()
    density = pdensity_grid(
        tree, issuer, FAIRGROUNDS, t_query=30.0, rows=ROWS, columns=COLUMNS
    )
    density_io = tree.stats.physical_reads
    print(render(density))
    print(
        f"\n{density.total} visible friend(s) in "
        f"{len(density.cells)} occupied cell(s); "
        f"{density.candidates_examined} candidates verified; "
        f"{density_io} physical reads."
    )

    cold()
    full = pcount(tree, issuer, FAIRGROUNDS, t_query=30.0)
    full_io = tree.stats.physical_reads

    cold()
    existential = pcount(tree, issuer, FAIRGROUNDS, t_query=30.0, at_least=1)
    existential_io = tree.stats.physical_reads

    print(f"\nFull count:        {full.count:3d} friends, {full_io} reads")
    print(
        f"Existential query: >={existential.count} friend(s) "
        f"(stopped early: {existential.terminated_early}), "
        f"{existential_io} reads"
    )
    assert full.count == density.total
    assert existential_io <= full_io
    print("\nDensity total matches the count query. ✓")


if __name__ == "__main__":
    main()
