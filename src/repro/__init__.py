"""repro — a reproduction of the PEB-tree (Lin et al., PVLDB 5(1), 2011).

"A Moving-Object Index for Efficient Query Processing with Peer-Wise
Location Privacy": a B+-tree-based moving-object index whose key
interleaves a time-partition id, a privacy-policy *sequence value*, and a
Z-curve location value, plus privacy-aware range (PRQ) and k-nearest-
neighbour (PkNN) query algorithms and the spatial-index + filter
baseline it is evaluated against.

Quick start::

    from repro import ExperimentConfig, ExperimentHarness

    harness = ExperimentHarness(ExperimentConfig(
        n_users=2000, n_policies=20, n_queries=20, page_size=1024))
    costs = harness.run_prq_batch()
    print(f"PEB-tree {costs.peb_io:.1f} I/Os vs baseline {costs.baseline_io:.1f}")

or assemble the pieces by hand — see ``examples/quickstart.py``.
"""

from repro.bench.harness import (
    ExperimentConfig,
    ExperimentHarness,
    OverlapCosts,
    QueryCosts,
)
from repro.bench.oracle import brute_force_pknn, brute_force_prq
from repro.btree import BPlusTree, BTreeConfig
from repro.bxtree import BxTree, SpatialFilterBaseline, bx_knn, bx_range_query
from repro.core import (
    CostModel,
    PEBKeyCodec,
    PEBTree,
    assign_sequence_values,
    compatibility,
    pknn,
    prq,
)
from repro.core.multipolicy import set_compatibility
from repro.engine import BatchReport, ExecutionStats, QueryEngine
from repro.motion import MovingObject, TimePartitioner, UpdatePolicy
from repro.policy import (
    LocationPrivacyPolicy,
    MultiPolicyStore,
    PolicyStore,
    RoleRegistry,
    SemanticLocationRegistry,
    TimeInterval,
    TimeSet,
)
from repro.simio import IOScheduler, LatencyModel, SimClock, TimedDisk
from repro.spatial import Grid, Rect
from repro.storage import BufferPool, IOStats, SimulatedDisk
from repro.tprtree import TPBR, TPRFilterBaseline, TPRTree
from repro.workloads import (
    NetworkMovement,
    PolicyGenerator,
    QueryGenerator,
    UniformMovement,
)

__version__ = "1.0.0"

__all__ = [
    "BPlusTree",
    "BTreeConfig",
    "BatchReport",
    "BufferPool",
    "BxTree",
    "CostModel",
    "ExecutionStats",
    "QueryEngine",
    "ExperimentConfig",
    "ExperimentHarness",
    "Grid",
    "IOScheduler",
    "IOStats",
    "LatencyModel",
    "LocationPrivacyPolicy",
    "MovingObject",
    "MultiPolicyStore",
    "NetworkMovement",
    "OverlapCosts",
    "PEBKeyCodec",
    "PEBTree",
    "PolicyGenerator",
    "PolicyStore",
    "QueryCosts",
    "QueryGenerator",
    "Rect",
    "RoleRegistry",
    "SemanticLocationRegistry",
    "SimClock",
    "SimulatedDisk",
    "SpatialFilterBaseline",
    "TPBR",
    "TPRFilterBaseline",
    "TPRTree",
    "TimeInterval",
    "TimePartitioner",
    "TimeSet",
    "TimedDisk",
    "UniformMovement",
    "UpdatePolicy",
    "assign_sequence_values",
    "brute_force_pknn",
    "brute_force_prq",
    "bx_knn",
    "bx_range_query",
    "compatibility",
    "pknn",
    "prq",
    "set_compatibility",
]
