"""Key-space partitioning for the sharded multi-tree (pure routing).

The PEB-key packs ``[TID]2 ⊕ [SV]2 ⊕ [ZV]2`` (Equation 5).  A
:class:`ShardRouter` partitions that key space across N shards by one
of two policies:

* ``"sv"`` (default) — shards own contiguous *sequence-value* ranges.
  Because SV sits above ZV, every single-SV band of the Section 5.3
  pipeline is key-contiguous inside exactly one shard, and a user's
  shard never changes (location updates move the ZV and TID fields,
  never the SV) — velocity/sequence partitioning in the spirit of
  "Boosting Moving Object Indexing through Velocity Partitioning".
  Boundaries are chosen at population quantiles of the store's
  assigned sequence values, so shards start balanced.
* ``"tid"`` — shards own contiguous *time-partition* ranges; every
  band has a single TID so bands never straddle shards, but an entry
  migrates between shards when its time partition rolls over.

The router is pure policy: it maps keys/bands/op-runs to shard
indexes and never touches a tree.  Splitting is exact — the sub-bands
of :meth:`split_band` cover the original band's key range with no
overlap and no gap, in ascending key order, so concatenating per-shard
scans reproduces a single tree's scan byte for byte.  Splitting a
key-sorted op run (:meth:`split_sorted_run`) is a single stable pass,
so each shard receives a still-sorted run ready for
:meth:`repro.btree.BPlusTree.apply_sorted_batch` — no re-sorting.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.engine.plan import BandRequest

if TYPE_CHECKING:
    from repro.core.peb_key import PEBKeyCodec
    from repro.policy.store import PolicyStore

#: Supported partitioning policies.
POLICIES = ("sv", "tid")


class ShardRouter:
    """Maps PEB-key space onto shard indexes.

    Args:
        codec: the deployment's shared key codec (field geometry).
        boundaries: ascending field values; ``boundaries[i]`` is the
            first SV (or TID) owned by shard ``i + 1``.  ``n_shards ==
            len(boundaries) + 1``.  Duplicate boundaries are legal and
            leave the squeezed-out shard empty.
        policy: ``"sv"`` or ``"tid"``.
    """

    def __init__(
        self,
        codec: "PEBKeyCodec",
        boundaries: Sequence[int],
        policy: str = "sv",
    ):
        if policy not in POLICIES:
            raise ValueError(f"unknown shard policy {policy!r}; expected {POLICIES}")
        bounds = tuple(boundaries)
        if any(b < 0 for b in bounds):
            raise ValueError("shard boundaries must be non-negative")
        if any(b > a for b, a in zip(bounds, bounds[1:])):
            raise ValueError(f"shard boundaries must ascend, got {bounds}")
        self.codec = codec
        self.boundaries = bounds
        self.policy = policy
        self._max_z = (1 << codec.zv_bits) - 1

    @property
    def n_shards(self) -> int:
        return len(self.boundaries) + 1

    @classmethod
    def for_store(
        cls,
        n_shards: int,
        codec: "PEBKeyCodec",
        store: "PolicyStore",
        uids: Iterable[int],
        policy: str = "sv",
    ) -> "ShardRouter":
        """Boundaries balanced for one population.

        ``"sv"`` cuts the uid population at SV quantiles (every user
        weighs one entry, so equal slices of the sorted quantized SVs
        start the shards equal); ``"tid"`` spreads the codec's
        partition ids evenly.  Ties at a cut point are legal — the
        squeezed shard simply starts empty and the skew statistic
        reports it.
        """
        if n_shards < 1:
            raise ValueError(f"n_shards must be positive, got {n_shards}")
        if policy not in POLICIES:
            raise ValueError(f"unknown shard policy {policy!r}; expected {POLICIES}")
        if policy == "tid":
            bounds = [
                (index * codec.tid_count) // n_shards for index in range(1, n_shards)
            ]
            return cls(codec, bounds, policy)
        svs = sorted(codec.quantize_sv(store.sequence_value(uid)) for uid in uids)
        if not svs:
            raise ValueError("cannot place SV boundaries for an empty population")
        bounds = [svs[(index * len(svs)) // n_shards] for index in range(1, n_shards)]
        return cls(codec, bounds, policy="sv")

    # ------------------------------------------------------------------
    # Point routing
    # ------------------------------------------------------------------

    def shard_of(self, tid: int, sv_q: int) -> int:
        """The shard owning keys with this partition id and quantized SV."""
        field = sv_q if self.policy == "sv" else tid
        return bisect_right(self.boundaries, field)

    def shard_of_key(self, key: int) -> int:
        """The shard owning one composed PEB-key."""
        tid, sv_q, _ = self.codec.decompose(key)
        return self.shard_of(tid, sv_q)

    def shard_field_range(self, shard: int) -> tuple[int, int]:
        """Inclusive ``[lo, hi]`` of the shard's owned field values.

        ``hi < lo`` for a shard squeezed empty by duplicate boundaries.
        """
        if not 0 <= shard < self.n_shards:
            raise ValueError(f"shard {shard} outside [0, {self.n_shards})")
        lo = self.boundaries[shard - 1] if shard > 0 else 0
        if shard < len(self.boundaries):
            hi = self.boundaries[shard] - 1
        elif self.policy == "sv":
            hi = (1 << self.codec.sv_bits) - 1
        else:
            hi = self.codec.tid_count - 1
        return lo, hi

    # ------------------------------------------------------------------
    # Band and run splitting
    # ------------------------------------------------------------------

    def split_band(self, band: BandRequest) -> list[tuple[int, BandRequest]]:
        """Scatter one band request to its owning shards.

        Returns ``(shard, sub_band)`` pairs in ascending shard — and
        therefore ascending key — order.  Single-SV bands (and every
        band under the TID policy, bands having one TID) route whole;
        a multi-SV span band straddling an SV boundary is cut *at the
        boundary key*: the low fragment keeps the original ``z_lo`` and
        runs to the end of its SV range, interior fragments span their
        SVs fully, and the high fragment ends at the original ``z_hi``
        — exactly the key interval arithmetic of one contiguous scan.
        """
        if self.policy == "tid" or band.is_single_sv:
            return [(self.shard_of(band.tid, band.sv_lo_q), band)]
        first = self.shard_of(band.tid, band.sv_lo_q)
        last = self.shard_of(band.tid, band.sv_hi_q)
        if first == last:
            return [(first, band)]
        parts: list[tuple[int, BandRequest]] = []
        for shard in range(first, last + 1):
            range_lo, range_hi = self.shard_field_range(shard)
            sv_lo = max(band.sv_lo_q, range_lo)
            sv_hi = min(band.sv_hi_q, range_hi)
            if sv_lo > sv_hi:
                continue  # shard squeezed empty by duplicate boundaries
            parts.append(
                (
                    shard,
                    BandRequest(
                        tid=band.tid,
                        sv_lo_q=sv_lo,
                        sv_hi_q=sv_hi,
                        z_lo=band.z_lo if sv_lo == band.sv_lo_q else 0,
                        z_hi=band.z_hi if sv_hi == band.sv_hi_q else self._max_z,
                    ),
                )
            )
        return parts

    def split_sorted_run(self, ops: Sequence[tuple]) -> list[tuple[int, list[tuple]]]:
        """Cut one key-sorted batch-op run at shard-key boundaries.

        One stable pass: each op ``(kind, key, uid, payload)`` joins its
        key's shard, preserving relative order, so every returned run is
        itself key-sorted and feeds
        :meth:`repro.btree.BPlusTree.apply_sorted_batch` directly — the
        whole point of letting the update pipeline sort once globally.
        Returns ``(shard, run)`` pairs in ascending shard order,
        non-empty runs only.
        """
        runs: dict[int, list[tuple]] = {}
        for op in ops:
            runs.setdefault(self.shard_of_key(op[1]), []).append(op)
        return sorted(runs.items())


__all__ = ["POLICIES", "ShardRouter"]
