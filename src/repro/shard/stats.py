"""Per-shard accounting for the sharded multi-tree deployment.

A sharded deployment spreads one logical PEB-tree index across several
physical trees, each with its own buffer pool and disk.  The merged I/O
counters (:class:`repro.storage.stats.StatsView`) answer "what did the
deployment cost"; :class:`ShardStats` answers "how evenly" — the entry
and I/O distribution across shards, and the balance skew that tells an
operator when a partitioning policy has collapsed onto a hot shard.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ShardStats:
    """A point-in-time per-shard breakdown of one sharded deployment.

    All tuples are indexed by shard, in router order.

    ``entries`` is always point-in-time.  The I/O tuples are cumulative
    pool counters when taken via
    :meth:`repro.shard.tree.ShardedPEBTree.shard_stats`, or the I/O of
    one measured span when produced by :meth:`delta_from` — which is
    how the engine and update pipeline attach them to
    ``ExecutionStats`` / ``UpdateStats``, so the breakdown sums to the
    sibling delta counters it rides with.

    Attributes:
        entries: indexed user entries per shard.
        physical_reads: physical page reads per shard's pool.
        physical_writes: physical page writes per shard's pool.
    """

    entries: tuple[int, ...]
    physical_reads: tuple[int, ...]
    physical_writes: tuple[int, ...]

    def __post_init__(self):
        if not self.entries:
            raise ValueError("ShardStats needs at least one shard")
        if not (
            len(self.entries) == len(self.physical_reads) == len(self.physical_writes)
        ):
            raise ValueError("per-shard tuples must have equal length")

    @property
    def n_shards(self) -> int:
        return len(self.entries)

    @property
    def total_entries(self) -> int:
        return sum(self.entries)

    @property
    def total_reads(self) -> int:
        return sum(self.physical_reads)

    @property
    def total_writes(self) -> int:
        return sum(self.physical_writes)

    @property
    def balance_skew(self) -> float:
        """Largest shard's entry count over the even-split ideal.

        1.0 is a perfectly balanced deployment; N is everything on one
        of N shards.  An empty deployment reports 1.0 — no data, no
        imbalance.
        """
        total = self.total_entries
        if total == 0:
            return 1.0
        return max(self.entries) / (total / self.n_shards)

    def delta_from(self, before: "ShardStats") -> "ShardStats":
        """The I/O accrued since ``before``; entries stay point-in-time."""
        if before.n_shards != self.n_shards:
            raise ValueError(
                f"cannot delta {self.n_shards}-shard stats from "
                f"{before.n_shards}-shard stats"
            )
        return ShardStats(
            entries=self.entries,
            physical_reads=tuple(
                now - then
                for now, then in zip(self.physical_reads, before.physical_reads)
            ),
            physical_writes=tuple(
                now - then
                for now, then in zip(self.physical_writes, before.physical_writes)
            ),
        )

    def publish(self, registry, **labels) -> None:
        """Publish into a ``MetricsRegistry`` as ``shard.<field>``;
        the per-shard tuples become series labelled ``shard=<i>``."""
        for shard in range(self.n_shards):
            registry.gauge(
                "shard.entries", self.entries[shard], shard=shard, **labels
            )
            registry.counter(
                "shard.physical_reads",
                self.physical_reads[shard],
                shard=shard,
                **labels,
            )
            registry.counter(
                "shard.physical_writes",
                self.physical_writes[shard],
                shard=shard,
                **labels,
            )
        registry.gauge("shard.balance_skew", self.balance_skew, **labels)

    def snapshot(self) -> dict:
        """JSON-ready form for benchmark reports."""
        return {
            "n_shards": self.n_shards,
            "entries": list(self.entries),
            "physical_reads": list(self.physical_reads),
            "physical_writes": list(self.physical_writes),
            "balance_skew": self.balance_skew,
        }


__all__ = ["ShardStats"]
