"""Checkpoint-based recovery for quarantined shards.

Retry handles *transient* faults; quarantine handles faults that
outlast the retry budget.  This module closes the loop for the third
class — faults that outlast the quarantine too, because the shard's
on-disk state is actually damaged (a corrupted page keeps failing its
checksum however often it is re-read).  The recovery primitive is the
checkpoint the repository already has: each shard tree is checkpointed
to its own directory (:func:`repro.core.checkpoint.save_peb_tree`),
updates applied after the checkpoint are kept in a per-shard replay
log, and :meth:`ShardCheckpointer.recover` rebuilds a shard *in place*
— page images rewritten through the live wrapper stack
(:func:`repro.core.checkpoint.restore_peb_tree_state`), the log
replayed through the shard tree's own batch path, the breaker reset.

The replay log is cleared only at the next :meth:`checkpoint`, never
by :meth:`recover`: replay is idempotent *from the checkpoint* (it
restores first, then re-applies), so a second recovery after a second
fault replays the same tail correctly.  States a flush deferred while
the shard was quarantined are *not* in the log — they never applied —
and re-arrive through the update buffer they were restored to.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Iterable

from repro.core.checkpoint import restore_peb_tree_state, save_peb_tree

if TYPE_CHECKING:
    from repro.core.peb_tree import UpdateItem
    from repro.shard.tree import ShardedPEBTree


class ShardCheckpointer:
    """Per-shard checkpoints plus replay logs for one deployment.

    Constructing one attaches it to the deployment
    (``sharded.checkpointer = self``), which turns on replay logging in
    the supervised ``update_batch`` path: every shard-local run that
    applies is appended to that shard's log.

    Args:
        sharded: the deployment to protect.
        directory: root folder; shard ``i`` checkpoints into
            ``<directory>/shard<i>``.

    Call :meth:`checkpoint` after bulk load (states inserted outside
    ``update_batch`` are invisible to the log) and periodically after —
    each checkpoint truncates the logs, bounding both replay time and
    log memory.
    """

    def __init__(self, sharded: "ShardedPEBTree", directory: str):
        self.tree = sharded
        self.directory = directory
        self._logs: dict[int, list] = {
            shard: [] for shard in range(len(sharded.trees))
        }
        sharded.checkpointer = self

    def shard_dir(self, shard: int) -> str:
        return os.path.join(self.directory, f"shard{shard}")

    def checkpoint(self, shard: int | None = None) -> None:
        """Checkpoint one shard (or all) and truncate its replay log."""
        shards = range(len(self.tree.trees)) if shard is None else (shard,)
        for s in shards:
            save_peb_tree(self.tree.trees[s], self.shard_dir(s))
            self._logs[s].clear()

    def log_applied(self, shard: int, items: "Iterable[UpdateItem]") -> None:
        """Record updates a flush applied to ``shard`` (facade callback)."""
        self._logs[shard].extend(items)

    def log_length(self, shard: int) -> int:
        return len(self._logs[shard])

    def recover(self, shard: int) -> int:
        """Rebuild one shard from its checkpoint; returns replayed ops.

        Restores the checkpointed page images and metadata in place,
        replays the shard's post-checkpoint log through the shard
        tree's own batch path, and closes the shard's breaker.  The
        shard's disk must be healthy enough to serve the restore writes
        and the replay — faults here propagate (heal or clear the
        injected schedule first).
        """
        tree = self.tree.trees[shard]
        restore_peb_tree_state(self.shard_dir(shard), tree)
        replay = list(self._logs[shard])
        if replay:
            tree.update_batch(replay)
            tree.btree.pool.flush()
        if self.tree.supervisor is not None:
            self.tree.supervisor.reset(shard)
        return len(replay)


__all__ = ["ShardCheckpointer"]
