"""Sharded multi-tree deployments of the PEB-tree index.

The single PEB-tree caps throughput at one buffer pool and one descent
path no matter how many concurrent issuers the engine batches.  This
package partitions the ``TID ⊕ SV ⊕ ZV`` key space across N independent
:class:`repro.core.peb_tree.PEBTree` instances — each with its own
buffer pool and disk — and keeps every observable output identical to
the single tree:

* :class:`~repro.shard.router.ShardRouter` — pure key-space policy:
  SV-range partitioning (default; a user's shard never changes) or
  TID-range, band splitting at boundary keys, order-preserving
  sorted-run splitting.
* :class:`~repro.shard.tree.ShardedPEBTree` — the deployment facade:
  duck-types the single tree for the engine and update pipeline,
  scatter-scans bands, cuts the updater's globally sorted sweeps into
  per-shard ready-to-apply runs, merges I/O counters into one live
  :class:`repro.storage.stats.StatsView`.
* :class:`~repro.shard.engine.ShardedQueryEngine` — scatter/gather
  batch execution with per-shard prefetching (sequential or
  thread-pooled) through the inherited executor and verifier, plus
  verification pipelined against still-running shard scans when the
  deployment runs on simulated-latency devices (:mod:`repro.simio`).
* :class:`~repro.shard.stats.ShardStats` — per-shard entry/I/O
  breakdown and balance skew, surfaced on ``ExecutionStats`` /
  ``UpdateStats``.
* :class:`~repro.shard.recovery.ShardCheckpointer` — per-shard
  checkpoints with replay logs; rebuilds a quarantined shard in place
  and closes its breaker (the durable half of :mod:`repro.fault`).
"""

from repro.shard.engine import ShardScatterScanner, ShardedQueryEngine
from repro.shard.recovery import ShardCheckpointer
from repro.shard.router import ShardRouter
from repro.shard.stats import ShardStats
from repro.shard.tree import ShardedPEBTree

__all__ = [
    "ShardCheckpointer",
    "ShardRouter",
    "ShardScatterScanner",
    "ShardStats",
    "ShardedPEBTree",
    "ShardedQueryEngine",
]
