"""The sharded multi-tree deployment: N PEB-trees behind one facade.

:class:`ShardedPEBTree` spreads one logical index across several
:class:`repro.core.peb_tree.PEBTree` instances, each with its own
buffer pool and simulated disk, partitioned by a
:class:`repro.shard.router.ShardRouter`.  The facade duck-types the
single tree everywhere the engine touches one — ``scan_band``,
``update_batch``, ``insert``, ``stats``, the planner's shared geometry
(``grid`` / ``partitioner`` / ``store`` / ``codec`` / speed maxima) —
so :class:`repro.engine.QueryEngine`, the batch executor, and
:class:`repro.engine.UpdatePipeline` run unchanged on a sharded
deployment, observationally identical to a single tree.

Read path: a band request is split at shard boundaries and the owning
shards' scans concatenated in key order.  Write path: the facade plans
a batch exactly as :meth:`PEBTree.update_batch` does — dedup, classify
against the live-key memos, sort the two sweeps globally — then cuts
each sorted run at shard-key boundaries (one stable pass, order
preserved) and hands every shard a ready-to-apply sorted run for
:meth:`repro.btree.BPlusTree.apply_sorted_batch`.  No re-sorting, and
each shard's sweep touches only its own pool, so per-shard application
is embarrassingly parallel (the read side already exploits this; see
:class:`repro.shard.engine.ShardedQueryEngine`).
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.core.peb_key import DEFAULT_SV_BITS, DEFAULT_SV_SCALE, PEBKeyCodec
from repro.core.peb_tree import (
    BatchUpdateResult,
    PEBTree,
    UpdateItem,
    plan_update_batch,
)
from repro.engine.plan import BandRequest
from repro.fault.breaker import BreakerPolicy
from repro.fault.retry import RetryPolicy
from repro.fault.supervisor import ShardSupervisor
from repro.motion.objects import MovingObject
from repro.motion.rows import BandRows
from repro.shard.router import ShardRouter
from repro.shard.stats import ShardStats
from repro.simio.clock import SimClock
from repro.simio.disk import TimedDisk
from repro.simio.model import LatencyModel, make_latency_model
from repro.simio.scheduler import IOScheduler
from repro.simio.stats import LatencyView
from repro.storage.buffer import DEFAULT_BUFFER_PAGES, BufferPool
from repro.storage.disk import SimulatedDisk
from repro.storage.stats import StatsView, merge_stats

if TYPE_CHECKING:
    from repro.motion.partitions import TimePartitioner
    from repro.policy.store import PolicyStore
    from repro.spatial.grid import Grid


class ShardedPEBTree:
    """One logical PEB-tree index over N physical shard trees.

    Args:
        trees: the shard trees, in router order.  All must share the
            same policy store, grid, partitioner, and codec geometry —
            a key composed by one shard must mean the same thing in
            every other.
        router: the key-space partitioning.
        parallel_io: run independent per-shard work (scatter prefetch,
            update sweeps) on a real thread pool; shards share no
            mutable state, so results and counters are identical to
            sequential execution.
        max_workers: thread-pool size cap (defaults to one per
            involved shard).

    When the shard disks are :class:`repro.simio.disk.TimedDisk`
    instances (see :meth:`build`'s ``latency``), the deployment also
    surfaces the shared virtual clock (:attr:`sim_clock`), the pricing
    model (:attr:`latency_model`), and a merged
    :class:`repro.simio.stats.LatencyView` riding on :attr:`stats` —
    and the same per-shard work *overlaps in virtual time* whether or
    not real threads are in play.
    """

    def __init__(
        self,
        trees: Sequence[PEBTree],
        router: ShardRouter,
        parallel_io: bool = False,
        max_workers: int | None = None,
        fault_policy: RetryPolicy | None = None,
        breaker_policy: BreakerPolicy | None = None,
    ):
        if len(trees) != router.n_shards:
            raise ValueError(
                f"router expects {router.n_shards} shards, got {len(trees)} trees"
            )
        first = trees[0]
        for tree in trees[1:]:
            if (
                tree.store is not first.store
                or tree.grid is not first.grid
                or tree.partitioner is not first.partitioner
                or tree.codec != first.codec
            ):
                raise ValueError(
                    "shard trees must share store, grid, partitioner, and codec"
                )
        if first.codec != router.codec:
            raise ValueError("router codec differs from the shard trees' codec")
        self.trees = tuple(trees)
        self.router = router
        disks = [tree.btree.pool.disk for tree in self.trees]
        timed = [disk for disk in disks if isinstance(disk, TimedDisk)]
        self.sim_clock: SimClock | None = timed[0].clock if timed else None
        self.latency_model: LatencyModel | None = timed[0].model if timed else None
        self.io = IOScheduler(
            self.sim_clock, use_threads=parallel_io, max_workers=max_workers
        )
        self._stats = merge_stats(
            (tree.btree.pool.stats for tree in self.trees),
            latency=LatencyView([disk.latency for disk in timed]) if timed else None,
        )
        # Fault tolerance is opt-in: without a supervisor every path —
        # including physical I/O patterns — is byte-identical to the
        # pre-fault-layer deployment.
        self.supervisor: ShardSupervisor | None = None
        if fault_policy is not None or breaker_policy is not None:
            self.supervisor = ShardSupervisor(
                router.n_shards,
                retry=fault_policy,
                breaker=breaker_policy,
                clock=self.sim_clock,
            )
        #: Attached by :class:`repro.shard.recovery.ShardCheckpointer`.
        self.checkpointer = None
        #: Attached via :func:`repro.obs.trace.attach_recorder`; layers
        #: discover it with ``getattr(tree, "trace_recorder", None)``.
        self.trace_recorder = None

    @classmethod
    def build(
        cls,
        n_shards: int,
        grid: "Grid",
        partitioner: "TimePartitioner",
        store: "PolicyStore",
        uids: Iterable[int],
        policy: str = "sv",
        page_size: int = 4096,
        buffer_pages: int = DEFAULT_BUFFER_PAGES,
        buffer_policy: str = "lru",
        sv_bits: int = DEFAULT_SV_BITS,
        sv_scale: int = DEFAULT_SV_SCALE,
        latency: "LatencyModel | str | None" = None,
        parallel_io: bool = False,
        max_workers: int | None = None,
        disk_factory=None,
        fault_policy: RetryPolicy | None = None,
        breaker_policy: BreakerPolicy | None = None,
        clock: SimClock | None = None,
    ) -> "ShardedPEBTree":
        """An empty deployment: N fresh trees, each on its own disk.

        ``uids`` seeds the router's balance-aware boundaries (SV
        quantiles of the population under the ``"sv"`` policy); it does
        *not* insert anything.

        ``latency`` (a profile name — ``"hdd"`` / ``"ssd"`` /
        ``"nvme"`` — or a :class:`repro.simio.model.LatencyModel`)
        wraps every shard's disk in a
        :class:`repro.simio.disk.TimedDisk` on one shared
        :class:`repro.simio.clock.SimClock`, so per-shard work overlaps
        in virtual time.  ``disk_factory(shard) -> disk`` overrides the
        inner disk (fault-injection tests compose ``TimedDisk`` over a
        ``FaultyDisk`` this way); the timed wrapper still applies.

        ``fault_policy`` / ``breaker_policy`` attach a
        :class:`repro.fault.supervisor.ShardSupervisor` — retry with
        virtual-time backoff at every per-shard job boundary plus a
        circuit breaker per shard; without them (the default) fault
        handling is absent and behavior is byte-identical to earlier
        builds.  ``clock`` shares an existing
        :class:`repro.simio.clock.SimClock` (so a
        :class:`repro.storage.faults.FaultWindowSchedule` can watch the
        same timeline a ``disk_factory`` disk faults on); a fresh clock
        is created otherwise.
        """
        codec = PEBKeyCodec(
            tid_count=partitioner.num_partitions,
            sv_bits=sv_bits,
            zv_bits=grid.zv_bits,
            sv_scale=sv_scale,
        )
        router = ShardRouter.for_store(n_shards, codec, store, uids, policy)
        model = make_latency_model(latency) if latency is not None else None
        if model is not None and clock is None:
            clock = SimClock()

        def make_disk(shard: int):
            disk = (
                disk_factory(shard)
                if disk_factory is not None
                else SimulatedDisk(page_size=page_size)
            )
            if model is not None:
                disk = TimedDisk(disk, clock, model, name=f"shard{shard}")
            return disk

        trees = [
            PEBTree(
                BufferPool(
                    make_disk(shard),
                    capacity=buffer_pages,
                    policy=buffer_policy,
                ),
                grid,
                partitioner,
                store,
                sv_bits=sv_bits,
                sv_scale=sv_scale,
            )
            for shard in range(n_shards)
        ]
        return cls(
            trees,
            router,
            parallel_io=parallel_io,
            max_workers=max_workers,
            fault_policy=fault_policy,
            breaker_policy=breaker_policy,
        )

    # ------------------------------------------------------------------
    # Shared geometry (the planner's and scanner's view of "the tree")
    # ------------------------------------------------------------------

    @property
    def grid(self):
        return self.trees[0].grid

    @property
    def partitioner(self):
        return self.trees[0].partitioner

    @property
    def store(self):
        return self.trees[0].store

    @property
    def codec(self):
        return self.trees[0].codec

    @property
    def records(self):
        return self.trees[0].records

    @property
    def max_speed_x(self) -> float:
        """Greatest |vx| the deployment has seen (Figure 2 input)."""
        return max(tree.max_speed_x for tree in self.trees)

    @property
    def max_speed_y(self) -> float:
        return max(tree.max_speed_y for tree in self.trees)

    @property
    def pools(self) -> tuple[BufferPool, ...]:
        """Every shard's buffer pool, in router order."""
        return tuple(tree.btree.pool for tree in self.trees)

    @property
    def stats(self) -> StatsView:
        """One live merged I/O counter view over every shard's pool."""
        return self._stats

    @property
    def latency_stats(self) -> LatencyView | None:
        """Merged virtual-time counters, when the shard disks are timed."""
        return self._stats.latency

    def shard_stats(self) -> ShardStats:
        """Point-in-time per-shard entry and I/O breakdown."""
        return ShardStats(
            entries=tuple(len(tree) for tree in self.trees),
            physical_reads=tuple(tree.stats.physical_reads for tree in self.trees),
            physical_writes=tuple(tree.stats.physical_writes for tree in self.trees),
        )

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def _locate(self, uid: int) -> tuple[int, int] | tuple[None, None]:
        """``(shard, live_key)`` of an indexed user, or ``(None, None)``."""
        for shard, tree in enumerate(self.trees):
            key = tree._live_keys.get(uid)
            if key is not None:
                return shard, key
        return None, None

    def _lookup_key(self, uid: int) -> int | None:
        """The user's current key wherever it lives (the merged memo)."""
        for tree in self.trees:
            key = tree._live_keys.get(uid)
            if key is not None:
                return key
        return None

    def contains(self, uid: int) -> bool:
        return any(uid in tree._live_keys for tree in self.trees)

    def __len__(self) -> int:
        return sum(len(tree) for tree in self.trees)

    def live_keys(self) -> dict[int, int]:
        """The merged update memo (uid -> current key) across shards."""
        merged: dict[int, int] = {}
        for tree in self.trees:
            merged.update(tree._live_keys)
        return merged

    def key_for(self, obj: MovingObject) -> int:
        """The PEB-key for the object's current state (Equation 5)."""
        return self.trees[0].key_for(obj)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def insert(self, obj: MovingObject, pntp: int = 0) -> None:
        """Index a user's state in its key's owning shard."""
        if self.contains(obj.uid):
            raise KeyError(f"user {obj.uid} is already indexed; use update()")
        shard = self.router.shard_of_key(self.key_for(obj))
        self.trees[shard].insert(obj, pntp)

    def delete(self, uid: int) -> bool:
        """Remove a user's entry; True if the user was indexed."""
        shard, _ = self._locate(uid)
        if shard is None:
            return False
        return self.trees[shard].delete(uid)

    def update(self, obj: MovingObject, pntp: int = 0) -> None:
        """Replace a user's entry (single-state batch; same semantics)."""
        self.update_batch([(obj, pntp)])

    def update_batch(self, updates: Iterable[UpdateItem]) -> BatchUpdateResult:
        """Apply a buffer of updates as per-shard leaf-ordered sweeps.

        The classification and the two-sweep schedule come from the
        same :func:`repro.core.peb_tree.plan_update_batch` the single
        tree uses — only the live-key lookup spans shards.  The final
        hop differs: each globally sorted run is cut at shard-key
        boundaries (:meth:`ShardRouter.split_sorted_run`, order
        preserved, no re-sort) and applied per shard, one job per
        involved shard through the deployment's
        :class:`repro.simio.scheduler.IOScheduler` — a shard's
        old-key sweep runs before its new-key sweep (the ordering the
        single tree's two global sweeps guarantee within any one
        shard's key range), and different shards' jobs touch disjoint
        trees and pools, so they overlap in virtual time and may run
        on the thread pool without changing any observable state.
        Under the SV policy a user's shard never changes, so every
        move stays shard-local; under the TID policy a rollover
        migrates the entry — the delete lands in the old key's shard,
        the insert in the new key's, and the memos move accordingly.
        The merged result and the final ``fetch_all`` state are
        observationally identical to a single tree applying the same
        buffer.

        With a :attr:`supervisor` attached, each shard's sweep becomes
        an independently retryable job: the sweep runs inside the
        pool's sweep guard (all-or-nothing at the shard granularity),
        retryable faults back off in virtual time and re-run, and a
        shard that exhausts its retries is quarantined — its updates
        come back in :attr:`BatchUpdateResult.deferred` (for
        re-buffering) while every other shard's sweep lands normally.
        Shard-granular deferral requires shard-*local* routing; a batch
        containing a cross-shard migration (TID-policy rollover) falls
        back to the all-or-nothing path, where any fault propagates and
        the caller re-buffers the whole batch.
        """
        updates = list(updates)
        plan = plan_update_batch(
            updates,
            self._lookup_key,
            self.key_for,
            self.records.pack,
            self.max_speed_x,
            self.max_speed_y,
        )
        result = plan.result
        old_runs = dict(self.router.split_sorted_run(plan.sweep_old))
        new_runs = dict(self.router.split_sorted_run(plan.sweep_new))

        if self.supervisor is None or self._has_cross_shard_move(plan):
            self._apply_runs(result, old_runs, new_runs)
            dead: set[int] = set()
        else:
            dead = self._apply_runs_supervised(updates, plan, result, old_runs, new_runs)

        for uid, new_key in plan.new_keys.items():
            if self.router.shard_of_key(new_key) in dead:
                continue  # deferred; the memo keeps the pre-batch state
            old_key = plan.old_keys[uid]
            if old_key == new_key:
                continue  # in-place rewrite; the memo is already right
            if old_key is not None:
                del self.trees[self.router.shard_of_key(old_key)]._live_keys[uid]
            self.trees[self.router.shard_of_key(new_key)]._live_keys[uid] = new_key
        for tree in self.trees:
            # Raised to the deployment-wide bound so each shard stays
            # individually consistent (larger maxima are always safe).
            tree.max_speed_x = max(tree.max_speed_x, plan.max_vx)
            tree.max_speed_y = max(tree.max_speed_y, plan.max_vy)
        return result

    def _has_cross_shard_move(self, plan) -> bool:
        for uid, new_key in plan.new_keys.items():
            old_key = plan.old_keys[uid]
            if (
                old_key is not None
                and old_key != new_key
                and self.router.shard_of_key(old_key)
                != self.router.shard_of_key(new_key)
            ):
                return True
        return False

    def _apply_runs(self, result, old_runs, new_runs) -> None:
        """The all-or-nothing application path (no fault handling)."""

        def sweep(shard: int) -> int:
            visited = 0
            for run in (old_runs.get(shard), new_runs.get(shard)):
                if run:
                    batch_stats = self.trees[shard].btree.apply_sorted_batch(run)
                    visited += batch_stats.leaves_visited
            return visited

        shards = sorted(set(old_runs) | set(new_runs))
        jobs = [(lambda shard=shard: sweep(shard)) for shard in shards]
        visits, _ = self.io.run_timed(
            jobs,
            recorder=self.trace_recorder,
            span_name="update.sweep",
            labels=[f"shard{shard}" for shard in shards],
            category="device",
        )
        for visited in visits:
            result.leaves_visited += visited

    def _apply_runs_supervised(
        self, updates, plan, result, old_runs, new_runs
    ) -> set[int]:
        """Per-shard guarded, retried sweeps; returns the dead shards.

        A dead shard (quarantined before the batch, or newly
        quarantined by retry exhaustion inside it) contributes nothing:
        the sweep guard rolled its pool and B+-tree back to the
        pre-batch state, and its updates land in ``result.deferred``
        with the result counters decremented to match what was applied.
        """
        supervisor = self.supervisor
        sweep_states: dict[int, dict] = {}

        def make_job(shard: int):
            tree = self.trees[shard].btree
            pool = tree.pool
            state = sweep_states.setdefault(shard, {"visited": None})

            def job() -> int:
                if state["visited"] is not None:
                    # This batch's sweep already applied on an earlier
                    # attempt; only the commit write-back faulted.
                    pool.commit_sweep_guard()
                    return state["visited"]
                if pool.guard_active:
                    # A *previous* batch's commit faulted past its retry
                    # budget; its frames hold that batch fully applied.
                    # Complete the outstanding write-back first.
                    pool.commit_sweep_guard()
                pool.flush()
                pool.begin_sweep_guard()
                meta = (
                    tree.root_id,
                    tree.first_leaf_id,
                    tree.height,
                    tree.entry_count,
                    tree.leaf_count,
                )
                try:
                    visited = 0
                    for run in (old_runs.get(shard), new_runs.get(shard)):
                        if run:
                            visited += tree.apply_sorted_batch(run).leaves_visited
                except BaseException:
                    pool.rollback_sweep_guard()
                    (
                        tree.root_id,
                        tree.first_leaf_id,
                        tree.height,
                        tree.entry_count,
                        tree.leaf_count,
                    ) = meta
                    raise
                state["visited"] = visited
                pool.commit_sweep_guard()
                return visited

            return job

        shards = sorted(set(old_runs) | set(new_runs))
        denied = {shard for shard in shards if not supervisor.admits(shard)}
        active = [shard for shard in shards if shard not in denied]
        jobs = [
            (lambda shard=shard, job=make_job(shard): (shard, *supervisor.run(shard, job)))
            for shard in active
        ]
        dead = set(denied)
        outcomes, _ = self.io.run_timed(
            jobs,
            recorder=self.trace_recorder,
            span_name="update.sweep",
            labels=[f"shard{shard}" for shard in active],
            category="device",
        )
        for shard, ok, visited in outcomes:
            if ok:
                result.leaves_visited += visited
            elif sweep_states[shard]["visited"] is not None:
                # The sweep landed in the pool; only the durable commit
                # write-back is outstanding (the guard stays active and a
                # later job on this shard resumes it).  Logically the
                # batch applied — count it and keep the memo updates.
                result.leaves_visited += sweep_states[shard]["visited"]
            else:
                dead.add(shard)

        if dead:
            last_item: dict[int, UpdateItem] = {}
            for item in updates:
                obj = item[0] if isinstance(item, tuple) else item
                last_item[obj.uid] = item
            for uid, new_key in plan.new_keys.items():
                if self.router.shard_of_key(new_key) not in dead:
                    continue
                result.deferred.append(last_item[uid])
                result.ops -= 1
                old_key = plan.old_keys[uid]
                if old_key is None:
                    result.inserted -= 1
                elif old_key == new_key:
                    result.in_place -= 1
                else:
                    result.moved -= 1
            supervisor.note_deferred_updates(len(result.deferred))
        if self.checkpointer is not None:
            for shard in shards:
                if shard in dead:
                    continue
                run_uids = {
                    uid
                    for uid, new_key in plan.new_keys.items()
                    if self.router.shard_of_key(new_key) == shard
                }
                if run_uids:
                    self.checkpointer.log_applied(
                        shard,
                        [
                            item
                            for item in updates
                            if (
                                item[0].uid if isinstance(item, tuple) else item.uid
                            )
                            in run_uids
                        ],
                    )
        return dead

    # ------------------------------------------------------------------
    # Scan primitives (the engine's view)
    # ------------------------------------------------------------------

    def scan_band(self, tid: int, sv_lo_q: int, sv_hi_q: int, z_lo: int, z_hi: int):
        """Yield ``(zv, object)`` for one band, scattered across shards.

        Sub-scans run in ascending shard order, which inside one TID is
        ascending key order — concatenation reproduces a single tree's
        scan exactly, boundary-straddling bands included.
        """
        band = BandRequest(tid, sv_lo_q, sv_hi_q, z_lo, z_hi)
        for shard, sub in self.router.split_band(band):
            yield from self.trees[shard].scan_band(
                sub.tid, sub.sv_lo_q, sub.sv_hi_q, sub.z_lo, sub.z_hi
            )

    def scan_band_rows(
        self, tid: int, sv_lo_q: int, sv_hi_q: int, z_lo: int, z_hi: int
    ) -> BandRows:
        """One band as packed columns, gathered across shards.

        Sub-scans run per shard through each tree's batched fast path
        and concatenate in ascending shard order — inside one TID that
        is ascending key order, so the result is row-identical to a
        single tree's :meth:`repro.core.peb_tree.PEBTree.scan_band_rows`.
        """
        band = BandRequest(tid, sv_lo_q, sv_hi_q, z_lo, z_hi)
        parts = [
            self.trees[shard].scan_band_rows(
                sub.tid, sub.sv_lo_q, sub.sv_hi_q, sub.z_lo, sub.z_hi
            )
            for shard, sub in self.router.split_band(band)
        ]
        return BandRows.concat(parts) if parts else BandRows.empty()

    def scan_sv_zrange(self, tid: int, sv: float, z_lo: int, z_hi: int):
        """Single-SV convenience scan, mirroring the single tree's."""
        sv_q = self.codec.quantize_sv(sv)
        yield from self.scan_band_rows(tid, sv_q, sv_q, z_lo, z_hi).objects()

    def items(self):
        """Every ``(key, uid, payload)`` entry merged in global key order."""
        return heapq.merge(
            *(tree.btree.items() for tree in self.trees),
            key=lambda entry: (entry[0], entry[1]),
        )

    def fetch_all(self) -> list[MovingObject]:
        """Every indexed object state, in global key order.

        Each shard decodes its leaves in batched ``iter_unpack`` runs;
        the per-shard streams merge by composite key, so no entry pays
        a per-payload unpack or a discarded ``(obj, pntp)`` tuple.
        """

        def shard_entries(tree):
            unpack_many = tree.records.unpack_many
            for keys, run in tree.btree.leaf_runs():
                yield from zip(keys, (obj for obj, _ in unpack_many(run)))

        merged = heapq.merge(
            *(shard_entries(tree) for tree in self.trees),
            key=lambda entry: entry[0],
        )
        return [obj for _, obj in merged]

    # ------------------------------------------------------------------
    # Audits
    # ------------------------------------------------------------------

    def check_consistency(self, repair: bool = False) -> list[str]:
        """Per-shard audits plus cross-shard ownership checks."""
        problems: list[str] = []
        for shard, tree in enumerate(self.trees):
            problems.extend(
                f"shard {shard}: {problem}"
                for problem in tree.check_consistency(repair=repair)
            )
        seen: dict[int, int] = {}
        for shard, tree in enumerate(self.trees):
            for uid, key in tree._live_keys.items():
                if uid in seen:
                    problems.append(
                        f"user {uid} owned by shards {seen[uid]} and {shard}"
                    )
                elif self.router.shard_of_key(key) != shard:
                    problems.append(
                        f"user {uid} lives in shard {shard} but key {key} "
                        f"routes to shard {self.router.shard_of_key(key)}"
                    )
                seen[uid] = shard
        return problems

    def check_invariants(self) -> None:
        """Structural B+-tree invariants, every shard."""
        for tree in self.trees:
            tree.btree.check_invariants()


__all__ = ["ShardedPEBTree"]
