"""Scatter/gather query execution over a sharded deployment.

:class:`ShardedQueryEngine` is :class:`repro.engine.QueryEngine` with
one substitution: the batch scanner.  Planning, replay order, skip
rules, and verification are inherited unchanged — which is precisely
what keeps sharded results (and ``candidates_examined``) pinned to the
single-tree engine.  The substituted
:class:`ShardScatterScanner` keeps one
:class:`repro.engine.scanner.BandScanner` per shard and:

* **scatters** every band request to its owning shards
  (:meth:`repro.shard.router.ShardRouter.split_band`, cutting
  boundary-straddling bands at the boundary key),
* runs each shard's **prefetch** against that shard's own tree and
  pool as one job of a :class:`repro.simio.scheduler.IOScheduler` —
  shards share no mutable state (separate trees, pools, disks, and
  counter bundles; the shared store/grid/codec are read-only during
  queries), so the jobs may run on a real thread pool, and on timed
  devices they *overlap in virtual time* either way,
* **gathers** sub-scans back in ascending shard order, which inside a
  time partition is ascending key order, so a replayed band is
  byte-identical to a single tree's scan.

On a timed deployment the engine additionally **pipelines
verification with scanning**: the scheduler reports each shard's
prefetch finish instant, and a query's candidates are verified on a
CPU timeline starting the moment the *last shard its bands needed*
lands — while slower shards are still scanning — instead of after the
global prefetch barrier.  Timing only: results, iteration order, and
every I/O counter are identical to the sequential schedule.

Every query then flows through the inherited executor and the
existing verifier; per-shard breakdowns land on
:attr:`repro.engine.executor.ExecutionStats.shard_stats`.
"""

from __future__ import annotations

from typing import Iterable

from repro.engine.executor import BatchReport, QueryEngine
from repro.engine.plan import BandRequest
from repro.engine.scanner import BandScanner
from repro.motion.rows import BandRows
from repro.shard.tree import ShardedPEBTree
from repro.simio.scheduler import IOScheduler


class ShardScatterScanner:
    """Routes band requests to per-shard scanners; duck-types one scanner.

    One instance defines one deduplication scope, exactly like a
    :class:`BandScanner`: the single-query paths create one per query,
    the batch executor shares one across the whole batch.

    Attributes:
        requests: band requests received via :meth:`scan` (the
            scatter-level count the executor reports).
        scheduler: runs the per-shard prefetch jobs (fork/join virtual
            time when the deployment is timed, optional real threads).
        shard_ends: per-shard virtual finish instants of the last
            prefetch, when the deployment is timed (the pipelining
            input); empty otherwise.
        dropped_subbands: sub-band requests served *without* their
            shard's entries because the shard was quarantined — the
            per-scanner degradation counter the engine turns into
            per-query ``degraded`` flags.

    When the deployment carries a
    :class:`repro.fault.supervisor.ShardSupervisor`, every per-shard
    job — a batch prefetch, a physical sub-band scan — runs under it:
    retryable faults back off in virtual time and re-run, a shard that
    exhausts its retries is quarantined, and a quarantined shard's
    sub-bands are dropped with accounting instead of failing the query.
    """

    def __init__(
        self,
        sharded: ShardedPEBTree,
        parallel: bool = False,
        max_workers: int | None = None,
        scheduler: IOScheduler | None = None,
        packed: bool = True,
        policy=None,
    ):
        self.tree = sharded
        self.scheduler = (
            scheduler
            if scheduler is not None
            else IOScheduler(
                getattr(sharded, "sim_clock", None),
                use_threads=parallel,
                max_workers=max_workers,
            )
        )
        self.packed = packed
        self.supervisor = getattr(sharded, "supervisor", None)
        # Each per-shard scanner gets its shard index as the policy
        # scope: concurrent prefetch jobs then touch disjoint stratum
        # keys, so the shared policy's feedback never mixes shards.
        self.scanners = [
            BandScanner(tree, packed=packed, policy=policy, scope=i)
            for i, tree in enumerate(sharded.trees)
        ]
        self.requests = 0
        self.dropped_subbands = 0
        self.shard_ends: dict[int, float] = {}
        self.prefetch_base = 0.0
        self._parts_memo: dict[tuple, list] = {}

    @property
    def parallel(self) -> bool:
        """True when per-shard prefetches run on a real thread pool."""
        return self.scheduler.use_threads

    # ------------------------------------------------------------------
    # Aggregated counters (the executor's reporting surface)
    # ------------------------------------------------------------------

    @property
    def physical_scans(self) -> int:
        """Scans that reached any shard tree (prefetch merges included)."""
        return sum(scanner.physical_scans for scanner in self.scanners)

    @property
    def memo_hits(self) -> int:
        return sum(scanner.memo_hits for scanner in self.scanners)

    @property
    def store_hits(self) -> int:
        return sum(scanner.store_hits for scanner in self.scanners)

    @property
    def deduped(self) -> int:
        """Sub-requests served without a physical scan."""
        return self.memo_hits + self.store_hits

    @property
    def entries_prefetched(self) -> int:
        return sum(scanner.entries_prefetched for scanner in self.scanners)

    @property
    def memo_evictions(self) -> int:
        return sum(scanner.memo_evictions for scanner in self.scanners)

    def policy_outcomes(self) -> dict:
        """Per-stratum accounting across every shard scanner.

        Keys are ``(shard, tid, sv_q)`` — the per-shard scanners carry
        their shard index as scope, so the merged dict never collides.
        """
        merged: dict = {}
        for scanner in self.scanners:
            merged.update(scanner.policy_outcomes())
        return merged

    # ------------------------------------------------------------------
    # Scanning
    # ------------------------------------------------------------------

    def _split(self, band: BandRequest) -> list:
        parts = self._parts_memo.get(band.key)
        if parts is None:
            parts = self.tree.router.split_band(band)
            self._parts_memo[band.key] = parts
        return parts

    def scan(self, band: BandRequest) -> "BandRows | list":
        """All entries of one band, gathered across shards in key order.

        Under a supervisor, a quarantined shard's sub-band is dropped
        (counted in :attr:`dropped_subbands` and the supervisor's
        ``bands_dropped``) and the remaining shards' entries are
        returned — a degraded, never wrong-by-inclusion result.
        """
        self.requests += 1
        parts = self._split(band)
        if self.supervisor is None:
            if len(parts) == 1:
                shard, sub = parts[0]
                return self.scanners[shard].scan(sub)
            results = [self.scanners[shard].scan(sub) for shard, sub in parts]
        else:
            results = []
            for shard, sub in parts:
                if self.supervisor.is_quarantined(shard):
                    self._drop(shard)
                    continue
                ok, rows = self.supervisor.run(
                    shard, lambda s=shard, b=sub: self.scanners[s].scan(b)
                )
                if ok:
                    results.append(rows)
                else:
                    self._drop(shard)
            if not results:
                return BandRows.empty() if self.packed else []
            if len(results) == 1:
                return results[0]
        if all(isinstance(result, BandRows) for result in results):
            return BandRows.concat(results)
        rows: list = []
        for result in results:
            rows.extend(result)
        return rows

    def _drop(self, shard: int) -> None:
        self.dropped_subbands += 1
        self.supervisor.note_dropped_band()

    def prefetch(
        self,
        bands: Iterable[BandRequest],
        speculative: Iterable[BandRequest] = (),
    ) -> None:
        """Scatter the batch's merged bands; prefetch each shard once.

        Per-shard prefetching inherits all of
        :meth:`BandScanner.prefetch`'s semantics (single-SV grouping,
        interval merging, the SV-major layout guard, the firm vs
        speculative split the attached policy arbitrates).  The shard
        jobs run through the scheduler: they touch disjoint trees,
        pools, and counters, so the resulting stores and I/O counts are
        identical to a sequential loop whether the scheduler uses
        threads, virtual overlap, both, or neither.  On a timed
        deployment each shard's virtual finish instant is recorded in
        :attr:`shard_ends` for the engine's verify pipelining.
        """
        per_shard: dict[int, list[BandRequest]] = {}
        spec_shard: dict[int, list[BandRequest]] = {}
        for band in bands:
            for shard, sub in self._split(band):
                per_shard.setdefault(shard, []).append(sub)
        for band in speculative:
            for shard, sub in self._split(band):
                spec_shard.setdefault(shard, []).append(sub)
        jobs = sorted(
            (shard, per_shard.get(shard, []), spec_shard.get(shard, []))
            for shard in per_shard.keys() | spec_shard.keys()
        )
        if self.supervisor is not None:
            # admits() opens the half-open probe window: the first
            # prefetch after a cooldown *is* the probe, run under the
            # retry policy like any other shard job.  A shard whose
            # prefetch fails (or stays quarantined) simply has nothing
            # in its scanner's store; scan() drops it with accounting.
            jobs = [job for job in jobs if self.supervisor.admits(job[0])]
        if not jobs:
            return
        clock = self.scheduler.clock
        self.prefetch_base = clock.cursor() if clock is not None else 0.0
        if self.supervisor is None:
            thunks = [
                (
                    lambda scanner=self.scanners[shard], subs=subs, spec=spec:
                        scanner.prefetch(subs, speculative=spec)
                )
                for shard, subs, spec in jobs
            ]
        else:
            thunks = [
                (
                    lambda shard=shard, subs=subs, spec=spec: self.supervisor.run(
                        shard,
                        lambda: self.scanners[shard].prefetch(
                            subs, speculative=spec
                        ),
                    )
                )
                for shard, subs, spec in jobs
            ]
        recorder = getattr(self.tree, "trace_recorder", None)
        _, ends = self.scheduler.run_timed(
            thunks,
            recorder=recorder,
            span_name="scan.shard",
            labels=[f"shard{shard}" for shard, _, _ in jobs],
            category="device",
        )
        if clock is not None:
            self.shard_ends = {
                shard: end for (shard, _, _), end in zip(jobs, ends)
            }

    def ready_time(self, bands: Iterable[BandRequest]) -> float | None:
        """The instant every given band's owning shards finished
        prefetching, or None when any shard is outside the prefetched
        set (the caller then falls back to the serial schedule)."""
        if not self.shard_ends:
            return None
        ready = self.prefetch_base
        for band in bands:
            for shard, _ in self._split(band):
                end = self.shard_ends.get(shard)
                if end is None:
                    return None
                if end > ready:
                    ready = end
        return ready


class ShardedQueryEngine(QueryEngine):
    """The unified query engine over a sharded deployment.

    Single-query execution works through the inherited paths (the
    facade's ``scan_band`` routes each band); batch execution swaps in
    the scatter scanner so prefetching happens per shard through the
    deployment's I/O scheduler, and — on timed devices — verification
    pipelines against still-running shard scans.

    Args:
        sharded: the deployment to query.
        parallel_prefetch: run per-shard batch prefetches on a real
            thread pool; None (default) inherits the deployment's
            ``parallel_io`` setting.
        max_workers: thread-pool size cap (defaults to one per
            involved shard).
        pipeline_verify: overlap verification CPU with shard scans in
            virtual time (timed deployments only; timing-neutral
            everywhere else).
        prefetch_policy: forwarded to :class:`QueryEngine` — a
            :class:`~repro.engine.policy.PrefetchPolicy`, a mode
            string, or None; the scatter scanner hands it to every
            per-shard scanner with the shard index as scope.
    """

    def __init__(
        self,
        sharded: ShardedPEBTree,
        parallel_prefetch: bool | None = None,
        max_workers: int | None = None,
        pipeline_verify: bool = True,
        packed_scan: bool = True,
        prefetch_policy=None,
    ):
        super().__init__(
            sharded, packed_scan=packed_scan, prefetch_policy=prefetch_policy
        )
        if parallel_prefetch is None:
            parallel_prefetch = sharded.io.use_threads
        self.parallel_prefetch = parallel_prefetch
        self.max_workers = max_workers
        self.pipeline_verify = pipeline_verify
        self._cpu_cursor: float | None = None

    def _batch_scanner(self) -> ShardScatterScanner:
        # The scanner hook runs at the start of every batch: the right
        # moment to baseline the per-shard counters, so the ShardStats
        # attached at the end describes *this* batch's I/O and sums to
        # the delta counters it rides with.
        self._batch_stats_before = self.tree.shard_stats()
        supervisor = getattr(self.tree, "supervisor", None)
        self._batch_faults_before = (
            supervisor.stats.copy() if supervisor is not None else None
        )
        return ShardScatterScanner(
            self.tree,
            parallel=self.parallel_prefetch,
            max_workers=self.max_workers,
            packed=self.packed_scan,
            policy=self.prefetch_policy,
        )

    def _drop_marker(self, scanner) -> int:
        return getattr(scanner, "dropped_subbands", 0)

    # ------------------------------------------------------------------
    # Verify/scan pipelining (timed deployments)
    # ------------------------------------------------------------------

    def _begin_replay(self, scanner) -> None:
        self._cpu_cursor = None
        clock, model = self._timing()
        if clock is None or not self.pipeline_verify:
            return
        if getattr(scanner, "shard_ends", None):
            # The CPU verification timeline forks where the prefetch
            # forked: the verifier may start on the first-landed
            # shard's candidates while later shards still scan.
            self._cpu_cursor = scanner.prefetch_base

    def _charge_verify(self, result, plan, scanner) -> None:
        clock, model = self._timing()
        if clock is None:
            return
        cost = result.candidates_examined * model.verify_us
        ready = (
            scanner.ready_time(planned.band for planned in plan.bands)
            if self._cpu_cursor is not None and plan is not None
            else None
        )
        if ready is None:
            # kNN rounds interleave their own scans with verification,
            # and unprefetched bands have no landing instant: keep the
            # serial schedule for those.
            clock.advance(cost)
            return
        start = self._cpu_cursor if self._cpu_cursor > ready else ready
        self._cpu_cursor = start + cost

    def _end_replay(self, scanner) -> None:
        clock, _ = self._timing()
        if clock is not None and self._cpu_cursor is not None:
            recorder = getattr(self.tree, "trace_recorder", None)
            if recorder is not None and recorder.enabled:
                # The CPU verification window: forked at the prefetch
                # base, landing possibly before (or after) the slowest
                # shard scan — the pipelining the paper's Section 5.3
                # describes, made visible.
                recorder.span(
                    "engine/verify",
                    "verify.pipeline",
                    scanner.prefetch_base,
                    self._cpu_cursor,
                    category="engine",
                )
            clock.join([self._cpu_cursor])

    def _finish_batch_stats(self, report: BatchReport) -> None:
        report.stats.shard_stats = self.tree.shard_stats().delta_from(
            self._batch_stats_before
        )
        supervisor = getattr(self.tree, "supervisor", None)
        if supervisor is not None and self._batch_faults_before is not None:
            report.stats.fault_stats = supervisor.stats.delta_from(
                self._batch_faults_before
            )


__all__ = ["ShardScatterScanner", "ShardedQueryEngine"]
