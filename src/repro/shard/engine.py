"""Scatter/gather query execution over a sharded deployment.

:class:`ShardedQueryEngine` is :class:`repro.engine.QueryEngine` with
one substitution: the batch scanner.  Planning, replay order, skip
rules, and verification are inherited unchanged — which is precisely
what keeps sharded results (and ``candidates_examined``) pinned to the
single-tree engine.  The substituted
:class:`ShardScatterScanner` keeps one
:class:`repro.engine.scanner.BandScanner` per shard and:

* **scatters** every band request to its owning shards
  (:meth:`repro.shard.router.ShardRouter.split_band`, cutting
  boundary-straddling bands at the boundary key),
* runs each shard's **prefetch** against that shard's own tree and
  pool — sequentially by default, or concurrently via a
  ``ThreadPoolExecutor`` fast path (shards share no mutable state:
  separate trees, pools, disks, and counter bundles, and the shared
  store/grid/codec are read-only during queries),
* **gathers** sub-scans back in ascending shard order, which inside a
  time partition is ascending key order, so a replayed band is
  byte-identical to a single tree's scan.

Every query then flows through the inherited executor and the
existing verifier; per-shard breakdowns land on
:attr:`repro.engine.executor.ExecutionStats.shard_stats`.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Iterable

from repro.engine.executor import BatchReport, QueryEngine
from repro.engine.plan import BandRequest
from repro.engine.scanner import BandScanner
from repro.shard.tree import ShardedPEBTree


class ShardScatterScanner:
    """Routes band requests to per-shard scanners; duck-types one scanner.

    One instance defines one deduplication scope, exactly like a
    :class:`BandScanner`: the single-query paths create one per query,
    the batch executor shares one across the whole batch.

    Attributes:
        requests: band requests received via :meth:`scan` (the
            scatter-level count the executor reports).
        parallel: run per-shard prefetches on a thread pool.
    """

    def __init__(
        self,
        sharded: ShardedPEBTree,
        parallel: bool = False,
        max_workers: int | None = None,
    ):
        self.tree = sharded
        self.parallel = parallel
        self.max_workers = max_workers
        self.scanners = [BandScanner(tree) for tree in sharded.trees]
        self.requests = 0
        self._parts_memo: dict[tuple, list] = {}

    # ------------------------------------------------------------------
    # Aggregated counters (the executor's reporting surface)
    # ------------------------------------------------------------------

    @property
    def physical_scans(self) -> int:
        """Scans that reached any shard tree (prefetch merges included)."""
        return sum(scanner.physical_scans for scanner in self.scanners)

    @property
    def memo_hits(self) -> int:
        return sum(scanner.memo_hits for scanner in self.scanners)

    @property
    def store_hits(self) -> int:
        return sum(scanner.store_hits for scanner in self.scanners)

    @property
    def deduped(self) -> int:
        """Sub-requests served without a physical scan."""
        return self.memo_hits + self.store_hits

    # ------------------------------------------------------------------
    # Scanning
    # ------------------------------------------------------------------

    def _split(self, band: BandRequest) -> list:
        parts = self._parts_memo.get(band.key)
        if parts is None:
            parts = self.tree.router.split_band(band)
            self._parts_memo[band.key] = parts
        return parts

    def scan(self, band: BandRequest) -> list:
        """All entries of one band, gathered across shards in key order."""
        self.requests += 1
        parts = self._split(band)
        if len(parts) == 1:
            shard, sub = parts[0]
            return self.scanners[shard].scan(sub)
        rows: list = []
        for shard, sub in parts:
            rows.extend(self.scanners[shard].scan(sub))
        return rows

    def prefetch(self, bands: Iterable[BandRequest]) -> None:
        """Scatter the batch's merged bands; prefetch each shard once.

        Per-shard prefetching inherits all of
        :meth:`BandScanner.prefetch`'s semantics (single-SV grouping,
        interval merging, the SV-major layout guard).  With
        :attr:`parallel` set and more than one shard involved, the
        per-shard prefetches run concurrently — they touch disjoint
        trees, pools, and counters, so the resulting stores and I/O
        counts are identical to the sequential path.
        """
        per_shard: dict[int, list[BandRequest]] = {}
        for band in bands:
            for shard, sub in self._split(band):
                per_shard.setdefault(shard, []).append(sub)
        jobs = sorted(per_shard.items())
        if self.parallel and len(jobs) > 1:
            with ThreadPoolExecutor(
                max_workers=self.max_workers or len(jobs)
            ) as pool:
                futures = [
                    pool.submit(self.scanners[shard].prefetch, subs)
                    for shard, subs in jobs
                ]
                for future in futures:
                    future.result()
        else:
            for shard, subs in jobs:
                self.scanners[shard].prefetch(subs)


class ShardedQueryEngine(QueryEngine):
    """The unified query engine over a sharded deployment.

    Single-query execution works through the inherited paths (the
    facade's ``scan_band`` routes each band); batch execution swaps in
    the scatter scanner so prefetching happens per shard, optionally on
    a thread pool.

    Args:
        sharded: the deployment to query.
        parallel_prefetch: run per-shard batch prefetches concurrently.
        max_workers: thread-pool size cap (defaults to one per
            involved shard).
    """

    def __init__(
        self,
        sharded: ShardedPEBTree,
        parallel_prefetch: bool = False,
        max_workers: int | None = None,
    ):
        super().__init__(sharded)
        self.parallel_prefetch = parallel_prefetch
        self.max_workers = max_workers

    def _batch_scanner(self) -> ShardScatterScanner:
        # The scanner hook runs at the start of every batch: the right
        # moment to baseline the per-shard counters, so the ShardStats
        # attached at the end describes *this* batch's I/O and sums to
        # the delta counters it rides with.
        self._batch_stats_before = self.tree.shard_stats()
        return ShardScatterScanner(
            self.tree,
            parallel=self.parallel_prefetch,
            max_workers=self.max_workers,
        )

    def _finish_batch_stats(self, report: BatchReport) -> None:
        report.stats.shard_stats = self.tree.shard_stats().delta_from(
            self._batch_stats_before
        )


__all__ = ["ShardScatterScanner", "ShardedQueryEngine"]
