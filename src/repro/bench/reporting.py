"""Plain-text experiment tables.

Each benchmark prints the series it regenerates in the shape the paper's
figures plot them — parameter value, PEB-tree I/O, spatial-index I/O —
so paper-vs-measured comparison is a glance at EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SeriesTable:
    """A small column-aligned table accumulated row by row.

    Args:
        title: heading printed above the table (e.g. "Figure 12(a): ...").
        columns: column headers.
    """

    title: str
    columns: list[str]
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, *values) -> None:
        """Append one row; floats are rendered with one decimal."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append([_render(value) for value in values])

    def render(self) -> str:
        """The table as an aligned multi-line string."""
        widths = [len(header) for header in self.columns]
        for row in self.rows:
            widths = [max(width, len(cell)) for width, cell in zip(widths, row)]
        lines = [self.title]
        lines.append("  ".join(h.rjust(w) for h, w in zip(self.columns, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)

    def print(self) -> None:
        print()
        print(self.render())


def _render(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
