"""Brute-force evaluators of the privacy-aware queries.

These apply Definitions 2 and 3 literally over the *server-side* object
states (the linear functions the indexes hold), with no index at all.
Both the PEB-tree algorithms and the spatial-filter baseline must return
exactly these results — the central correctness invariant of the
reproduction (see ``tests/test_integration_equivalence.py``).
"""

from __future__ import annotations

from repro.motion.objects import MovingObject
from repro.policy.store import PolicyStore
from repro.spatial.geometry import Rect, euclidean


def brute_force_prq(
    states: dict[int, MovingObject],
    store: PolicyStore,
    q_uid: int,
    window: Rect,
    t_query: float,
) -> set[int]:
    """Uids satisfying both PRQ conditions of Definition 2."""
    matches: set[int] = set()
    for uid, obj in states.items():
        if uid == q_uid:
            continue
        x, y = obj.position_at(t_query)
        if window.contains(x, y) and store.evaluate(uid, q_uid, x, y, t_query):
            matches.add(uid)
    return matches


def brute_force_pknn(
    states: dict[int, MovingObject],
    store: PolicyStore,
    q_uid: int,
    qx: float,
    qy: float,
    k: int,
    t_query: float,
) -> list[tuple[float, int]]:
    """The k nearest policy-qualifying users per Definition 3.

    Returns ``(distance, uid)`` sorted by distance (ties by uid for
    determinism); fewer than k when fewer users qualify.
    """
    qualified: list[tuple[float, int]] = []
    for uid, obj in states.items():
        if uid == q_uid:
            continue
        x, y = obj.position_at(t_query)
        if store.evaluate(uid, q_uid, x, y, t_query):
            qualified.append((euclidean(qx, qy, x, y), uid))
    qualified.sort()
    return qualified[:k]
