"""Experiment harness (Section 7.1 settings).

One harness instance owns a complete experiment: a movement workload, a
policy store with encoded sequence values, a PEB-tree, and the Bx-tree +
filter baseline — each index on its own simulated disk.  Indexes are
built with a generous build buffer (builds are not part of the reported
numbers); before each query batch the pools are flushed and resized to
the paper's 50-page LRU buffer and the physical-read counters zeroed, so
the reported figure is the paper's "average I/O cost of N queries".
"""

from __future__ import annotations

import gc
import random
import time
from dataclasses import dataclass, field, replace

from repro.bench.oracle import brute_force_pknn, brute_force_prq
from repro.bxtree.filter_baseline import SpatialFilterBaseline
from repro.bxtree.tree import BxTree
from repro.core.checkpoint import clone_peb_tree
from repro.core.peb_tree import PEBTree
from repro.core.pknn import pknn
from repro.core.prq import prq
from repro.engine import QueryEngine, UpdatePipeline
from repro.core.sequencing import EncodingReport, assign_sequence_values
from repro.obs import MetricsRegistry, attach_recorder
from repro.service import (
    BatchPolicy,
    OpenLoopGenerator,
    ServiceStats,
    SimulatedService,
)
from repro.shard import ShardedPEBTree, ShardedQueryEngine
from repro.motion.objects import MovingObject
from repro.motion.partitions import TimePartitioner
from repro.spatial.curves import make_curve
from repro.spatial.grid import Grid
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.workloads.network import NetworkMovement
from repro.workloads.policies import PolicyGenerator
from repro.workloads.queries import QueryGenerator
from repro.workloads.uniform import UniformMovement


@dataclass(frozen=True)
class ExperimentConfig:
    """All knobs of one experiment; defaults follow Table 1.

    The paper-scale defaults (60 K users, 50 policies, 200 queries) are
    expensive in pure Python; the benchmark suite scales them down
    proportionally unless ``REPRO_SCALE=paper`` (see benchmarks/).
    """

    n_users: int = 60_000
    n_policies: int = 50
    grouping_factor: float = 0.7
    group_size: int | None = None
    space_side: float = 1000.0
    max_speed: float = 3.0
    distribution: str = "uniform"  # "uniform" | "network"
    n_destinations: int = 100
    grid_bits: int = 10
    curve: str = "z"  # "z" (paper) | "hilbert" (ablation)
    max_update_interval: float = 120.0
    n_phases: int = 2
    page_size: int = 4096
    buffer_pages: int = 50
    buffer_policy: str = "lru"  # "lru" (paper) | "fifo" | "clock" | "lfu"
    build_buffer_pages: int = 8192
    n_queries: int = 200
    window_side: float = 200.0
    k: int = 5
    time_domain: float = 1440.0
    seed: int = 7

    def scaled(self, **overrides) -> "ExperimentConfig":
        """A copy with some fields replaced (sweep helper)."""
        return replace(self, **overrides)


@dataclass
class QueryCosts:
    """Average per-query physical reads of the two approaches."""

    peb_io: float
    baseline_io: float
    n_queries: int
    peb_result_sizes: list[int] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        """Baseline I/O over PEB-tree I/O (>1 means the PEB-tree wins)."""
        if self.peb_io <= 0:
            return float("inf") if self.baseline_io > 0 else 1.0
        return self.baseline_io / self.peb_io


@dataclass
class BatchQueryCosts:
    """One-at-a-time vs batched execution of the same PRQ workload.

    Attributes:
        sequential_io: physical reads per query, queries run one at a
            time through :func:`repro.core.prq.prq`.
        batched_io: physical reads per query through
            :meth:`repro.engine.QueryEngine.execute_batch`.
        n_queries: batch size.
        dedup_ratio: fraction of band requests the batch served without
            touching the tree (:attr:`repro.engine.ExecutionStats.dedup_ratio`).
        sequential_seconds, batched_seconds: wall-clock of each mode.
    """

    sequential_io: float
    batched_io: float
    n_queries: int
    dedup_ratio: float
    sequential_seconds: float
    batched_seconds: float

    @property
    def io_reduction(self) -> float:
        """Sequential reads over batched reads (>1 means batching wins)."""
        if self.batched_io <= 0:
            return float("inf") if self.sequential_io > 0 else 1.0
        return self.sequential_io / self.batched_io

    @property
    def sequential_qps(self) -> float:
        if self.sequential_seconds <= 0:
            return float("inf")
        return self.n_queries / self.sequential_seconds

    @property
    def batched_qps(self) -> float:
        if self.batched_seconds <= 0:
            return float("inf")
        return self.n_queries / self.batched_seconds


@dataclass
class PackedScanCosts:
    """Packed columnar band scan vs the object-at-a-time reference.

    Two measurements on one built index:

    * **Inner loop** — the same full band consumed through the legacy
      per-entry ``scan_band`` generator (one ``struct.unpack`` and one
      ``MovingObject`` per row) and through ``scan_band_rows`` (one
      ``iter_unpack`` run per leaf, lazy objects), on a warm buffer so
      the ratio isolates decode CPU.
    * **End to end** — the same ``n_queries`` concurrent PRQs batch-
      executed with ``packed_scan=True`` and ``False``, each from a
      cold query buffer; result sets, per-query and total
      ``candidates_examined``, and physical reads are asserted
      identical before the wall-clock ratio is reported.

    Attributes:
        rows: entries in the inner-loop band (sanity: > 0).
        legacy_scan_seconds, packed_scan_seconds: total inner-loop time
            across all repeats, per mode.
        n_queries: end-to-end batch size.
        legacy_batch_seconds, packed_batch_seconds: best-of-repeats
            wall-clock of each end-to-end mode.
        physical_reads: cold-buffer reads of either end-to-end mode
            (asserted equal across modes).
        candidates_examined: total candidates of either mode (asserted
            equal).
    """

    rows: int
    legacy_scan_seconds: float
    packed_scan_seconds: float
    n_queries: int
    legacy_batch_seconds: float
    packed_batch_seconds: float
    physical_reads: int
    candidates_examined: int

    @property
    def inner_speedup(self) -> float:
        """Legacy over packed inner-loop time (>1 means packed wins)."""
        if self.packed_scan_seconds <= 0:
            return float("inf")
        return self.legacy_scan_seconds / self.packed_scan_seconds

    @property
    def batch_speedup(self) -> float:
        """Legacy over packed end-to-end wall-clock."""
        if self.packed_batch_seconds <= 0:
            return float("inf")
        return self.legacy_batch_seconds / self.packed_batch_seconds


@dataclass
class UpdateRoundCosts:
    """One-at-a-time vs pipelined application of one update round.

    Attributes:
        sequential_io: physical reads + writes per update, states
            applied one :meth:`PEBTree.update` at a time.
        batched_io: physical reads + writes per update through
            :class:`repro.engine.UpdatePipeline` at ``batch_size``.
        n_updates: states applied (identical in both modes).
        batch_size: pipeline flush threshold measured.
        in_place_ratio: fraction of states served by an in-place leaf
            rewrite (same PEB-key re-reports).
        descents_saved: root-to-leaf descents batching avoided.
        sequential_seconds, batched_seconds: wall-clock of each mode.
    """

    sequential_io: float
    batched_io: float
    n_updates: int
    batch_size: int
    in_place_ratio: float
    descents_saved: int
    sequential_seconds: float
    batched_seconds: float

    @property
    def io_reduction(self) -> float:
        """Sequential I/O over batched I/O (>1 means the pipeline wins)."""
        if self.batched_io <= 0:
            return float("inf") if self.sequential_io > 0 else 1.0
        return self.sequential_io / self.batched_io

    @property
    def sequential_ups(self) -> float:
        """Updates per second, one-at-a-time mode."""
        if self.sequential_seconds <= 0:
            return float("inf")
        return self.n_updates / self.sequential_seconds

    @property
    def batched_ups(self) -> float:
        """Updates per second, pipelined mode."""
        if self.batched_seconds <= 0:
            return float("inf")
        return self.n_updates / self.batched_seconds


@dataclass
class ShardScalingCosts:
    """One shard count's sharded-vs-single measurement of one workload.

    Both deployments start from the same population, apply the same
    update stream through an :class:`repro.engine.UpdatePipeline`, and
    run the same query batch; per-query results are asserted identical.
    The single tree keeps the paper's one buffer; each shard owns its
    own pool of ``shard_buffer_pages`` — added shards add buffer, which
    is the scale-out story the benchmark quantifies.

    Attributes:
        n_shards: shard count of the sharded deployment.
        workload: ``"uniform"`` or ``"hotspot"``.
        ops_applied: distinct states applied (identical in both modes).
        n_queries: query batch size.
        single_update_reads / single_update_writes: physical I/O of the
            update phase on the single tree (final pool flush included).
        sharded_update_reads / sharded_update_writes: same, summed over
            every shard's pool.
        single_query_reads / sharded_query_reads: physical reads of the
            query batch.
        balance_skew: largest shard over the even-split ideal
            (:attr:`repro.shard.ShardStats.balance_skew`).
    """

    n_shards: int
    workload: str
    ops_applied: int
    n_queries: int
    single_update_reads: int
    single_update_writes: int
    sharded_update_reads: int
    sharded_update_writes: int
    single_query_reads: int
    sharded_query_reads: int
    balance_skew: float

    @property
    def single_ops_per_write(self) -> float:
        """Update throughput of the single tree: ops per physical write."""
        if self.single_update_writes <= 0:
            return float("inf") if self.ops_applied > 0 else 0.0
        return self.ops_applied / self.single_update_writes

    @property
    def sharded_ops_per_write(self) -> float:
        """Update throughput of the sharded deployment."""
        if self.sharded_update_writes <= 0:
            return float("inf") if self.ops_applied > 0 else 0.0
        return self.ops_applied / self.sharded_update_writes

    @property
    def update_throughput_gain(self) -> float:
        """Sharded over single ops-per-write (>1 means sharding wins)."""
        single = self.single_ops_per_write
        sharded = self.sharded_ops_per_write
        if single == sharded:
            return 1.0
        if single <= 0 or sharded == float("inf"):
            return float("inf")
        return sharded / single

    @property
    def single_query_io(self) -> float:
        """Physical reads per query, single tree."""
        return self.single_query_reads / max(1, self.n_queries)

    @property
    def sharded_query_io(self) -> float:
        """Physical reads per query, summed across shards."""
        return self.sharded_query_reads / max(1, self.n_queries)


@dataclass
class OverlapCosts:
    """Simulated-latency comparison: overlapped N-shard vs serial 1-shard.

    Both deployments run on :class:`repro.simio.disk.TimedDisk` devices
    under the same :class:`repro.simio.model.LatencyModel` profile and
    apply the identical workload (an update stream, then a range-query
    batch); results and end state are pinned to an *untimed* single-tree
    reference, so the only thing that differs is the virtual schedule.
    The baseline serializes everything on one device; the sharded run
    overlaps per-shard prefetch scans, per-shard update sweeps, and
    verification (pipelined against still-running scans).

    Attributes:
        profile: latency profile name (``hdd`` / ``ssd`` / ``nvme``).
        n_shards: shard count of the overlapped deployment.
        workload: ``"uniform"`` or ``"hotspot"``.
        parallel_io: whether the sharded run also used real threads
            (virtual times are identical either way; this records the
            mode exercised).
        ops_applied: distinct states applied (identical in all runs).
        n_queries: query batch size.
        baseline_update_us / baseline_query_us: virtual elapsed time of
            each phase on the 1-shard serial deployment.
        sharded_update_us / sharded_query_us: same on the N-shard
            overlapped deployment.
        baseline_reads / baseline_writes: physical I/O of the baseline
            (update + query phases, final pool flush included).
        sharded_reads / sharded_writes: same, summed across shards.
        sharded_busy_us: summed device-serialized time of the sharded
            run — divided by its elapsed time this is the overlap
            factor (1.0 = serial, N = N devices kept busy).
        baseline_busy_us: same for the baseline (≈ its elapsed time).
        baseline_seeks / sharded_seeks: accesses that paid the
            positioning cost (from the devices'
            :class:`~repro.simio.stats.LatencyStats`).
        baseline_sequential_hits / sharded_sequential_hits: accesses
            that rode a sequential run instead — together with the
            seeks, the device-level view of how well merged scans and
            leaf-ordered sweeps preserve sequentiality.
    """

    profile: str
    n_shards: int
    workload: str
    parallel_io: bool
    ops_applied: int
    n_queries: int
    baseline_update_us: float
    baseline_query_us: float
    sharded_update_us: float
    sharded_query_us: float
    baseline_reads: int
    baseline_writes: int
    sharded_reads: int
    sharded_writes: int
    baseline_busy_us: float
    sharded_busy_us: float
    baseline_seeks: int = 0
    baseline_sequential_hits: int = 0
    sharded_seeks: int = 0
    sharded_sequential_hits: int = 0

    @property
    def baseline_elapsed_us(self) -> float:
        return self.baseline_update_us + self.baseline_query_us

    @property
    def sharded_elapsed_us(self) -> float:
        return self.sharded_update_us + self.sharded_query_us

    @property
    def speedup(self) -> float:
        """Virtual wall-clock gain of the overlapped deployment."""
        if self.sharded_elapsed_us <= 0:
            return float("inf") if self.baseline_elapsed_us > 0 else 1.0
        return self.baseline_elapsed_us / self.sharded_elapsed_us

    @property
    def update_speedup(self) -> float:
        if self.sharded_update_us <= 0:
            return float("inf") if self.baseline_update_us > 0 else 1.0
        return self.baseline_update_us / self.sharded_update_us

    @property
    def query_speedup(self) -> float:
        if self.sharded_query_us <= 0:
            return float("inf") if self.baseline_query_us > 0 else 1.0
        return self.baseline_query_us / self.sharded_query_us

    @property
    def overlap_factor(self) -> float:
        """Device busy time over elapsed time on the sharded run.

        1.0 means the devices never overlapped (serial I/O); values
        toward ``n_shards`` mean the scheduler genuinely kept that many
        devices busy at once.  Can dip below 1.0 when CPU verification
        (not device time) contributes to the elapsed tail.
        """
        if self.sharded_elapsed_us <= 0:
            return 1.0
        return self.sharded_busy_us / self.sharded_elapsed_us

    @property
    def baseline_sequential_ratio(self) -> float:
        """Fraction of baseline accesses that skipped the seek."""
        total = self.baseline_seeks + self.baseline_sequential_hits
        return self.baseline_sequential_hits / total if total else 0.0

    @property
    def sharded_sequential_ratio(self) -> float:
        """Fraction of sharded accesses that skipped the seek."""
        total = self.sharded_seeks + self.sharded_sequential_hits
        return self.sharded_sequential_hits / total if total else 0.0

    def snapshot(self) -> dict:
        """JSON-ready form for benchmark reports."""
        return {
            "profile": self.profile,
            "n_shards": self.n_shards,
            "workload": self.workload,
            "parallel_io": self.parallel_io,
            "ops_applied": self.ops_applied,
            "n_queries": self.n_queries,
            "baseline_update_us": self.baseline_update_us,
            "baseline_query_us": self.baseline_query_us,
            "sharded_update_us": self.sharded_update_us,
            "sharded_query_us": self.sharded_query_us,
            "baseline_reads": self.baseline_reads,
            "baseline_writes": self.baseline_writes,
            "sharded_reads": self.sharded_reads,
            "sharded_writes": self.sharded_writes,
            "baseline_busy_us": self.baseline_busy_us,
            "sharded_busy_us": self.sharded_busy_us,
            "speedup": self.speedup,
            "update_speedup": self.update_speedup,
            "query_speedup": self.query_speedup,
            "overlap_factor": self.overlap_factor,
            "baseline_seeks": self.baseline_seeks,
            "baseline_sequential_hits": self.baseline_sequential_hits,
            "baseline_sequential_ratio": self.baseline_sequential_ratio,
            "sharded_seeks": self.sharded_seeks,
            "sharded_sequential_hits": self.sharded_sequential_hits,
            "sharded_sequential_ratio": self.sharded_sequential_ratio,
        }


@dataclass
class ServiceCosts:
    """One open-loop service run: offered load in, tail latency out.

    Produced by :meth:`ExperimentHarness.run_service`.  A stamped
    request stream (Poisson or burst arrivals at ``rate_per_sec``) is
    served by a single batching worker over a timed N-shard deployment;
    every recorded batch is then replayed directly through
    ``UpdatePipeline`` + ``execute_batch`` on an untimed single-tree
    clone and asserted result-identical — the service layer changes
    *when* work runs, never *what* it computes.

    Attributes:
        rate_per_sec: offered arrival rate (virtual requests/second).
        arrival: arrival process (``poisson`` / ``burst``).
        n_shards / profile: deployment shape and latency profile.
        max_batch / max_wait_us: the admission policy swept by the
            service benchmark.
        n_requests: stream length.
        stats: the run's :class:`repro.service.ServiceStats`.
        pinned: True when the direct-replay equivalence check ran (and
            passed — a mismatch raises instead of reporting).
        prefetch: the engine's prefetch policy mode for the run
            (``auto`` / ``merge`` / ``exact``; None = legacy merge).
        policy_state: the policy's final decision snapshot (mode, arm
            scores, stratum counts) when a policy ran; None otherwise.
    """

    rate_per_sec: float
    arrival: str
    n_shards: int
    profile: str
    max_batch: int
    max_wait_us: float
    n_requests: int
    stats: ServiceStats
    pinned: bool
    prefetch: str | None = None
    policy_state: dict | None = None

    @property
    def p99_us(self) -> float:
        return self.stats.overall.p99_us

    @property
    def throughput_per_sec(self) -> float:
        return self.stats.throughput_per_sec

    def snapshot(self) -> dict:
        """JSON-ready form for benchmark reports."""
        return {
            "rate_per_sec": self.rate_per_sec,
            "arrival": self.arrival,
            "n_shards": self.n_shards,
            "profile": self.profile,
            "max_batch": self.max_batch,
            "max_wait_us": self.max_wait_us,
            "n_requests": self.n_requests,
            "pinned": self.pinned,
            "prefetch": self.prefetch,
            "policy_state": self.policy_state,
            "stats": self.stats.snapshot(),
        }


class ExperimentHarness:
    """Builds the full system for one configuration and measures queries."""

    def __init__(self, config: ExperimentConfig):
        self.config = config
        # Independent random streams so e.g. changing the query count
        # never perturbs the dataset.
        self._movement_rng = random.Random(config.seed)
        self._policy_rng = random.Random(config.seed + 1)
        self._query_rng = random.Random(config.seed + 2)

        self.grid = Grid(config.space_side, config.grid_bits, make_curve(config.curve))
        self.partitioner = TimePartitioner(config.max_update_interval, config.n_phases)

        if config.distribution == "uniform":
            self.movement = UniformMovement(
                config.space_side, config.max_speed, self._movement_rng
            )
        elif config.distribution == "network":
            self.movement = NetworkMovement(
                config.space_side, config.n_destinations, self._movement_rng
            )
        else:
            raise ValueError(f"unknown distribution {config.distribution!r}")

        objects = self.movement.initial_objects(config.n_users, t=0.0)
        self.states: dict[int, MovingObject] = {obj.uid: obj for obj in objects}
        self.now = 0.0

        policy_generator = PolicyGenerator(
            config.space_side, config.time_domain, self._policy_rng
        )
        self.store = policy_generator.generate(
            sorted(self.states),
            config.n_policies,
            config.grouping_factor,
            config.group_size,
        )
        self.encoding_report: EncodingReport = assign_sequence_values(
            sorted(self.states), self.store, config.space_side**2
        )
        self.store.set_sequence_values(self.encoding_report.sequence_values)

        self.peb_pool = self._make_pool()
        self.peb_tree = PEBTree(self.peb_pool, self.grid, self.partitioner, self.store)
        self.baseline_pool = self._make_pool()
        self.bx_tree = BxTree(self.baseline_pool, self.grid, self.partitioner)
        self.baseline = SpatialFilterBaseline(self.bx_tree, self.store)
        for obj in objects:
            self.peb_tree.insert(obj)
            self.bx_tree.insert(obj)

        self.query_generator = QueryGenerator(config.space_side, self._query_rng)

    def _make_pool(self) -> BufferPool:
        disk = SimulatedDisk(page_size=self.config.page_size)
        return BufferPool(
            disk,
            capacity=self.config.build_buffer_pages,
            policy=self.config.buffer_policy,
        )

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------

    def _start_measuring(self, pool: BufferPool) -> None:
        """Flush, shrink to the paper's query buffer, zero the counters."""
        pool.flush()
        pool.resize(self.config.buffer_pages)
        pool.stats.reset()

    def _stop_measuring(self, pool: BufferPool) -> int:
        reads = pool.stats.physical_reads
        pool.resize(self.config.build_buffer_pages)
        return reads

    def run_prq_batch(
        self, check_results: bool = False, window_side: float | None = None
    ) -> QueryCosts:
        """Average PRQ I/O over ``n_queries`` fresh random windows.

        ``window_side`` overrides the configured window for this batch
        only (the Figure 15(a) sweep varies it on one built harness).
        """
        side = window_side if window_side is not None else self.config.window_side
        queries = self.query_generator.range_queries(
            sorted(self.states), self.config.n_queries, side, self.now
        )
        result_sizes: list[int] = []

        self._start_measuring(self.peb_pool)
        peb_answers = []
        for query in queries:
            answer = prq(self.peb_tree, query.q_uid, query.window, query.t_query)
            peb_answers.append(answer.uids)
            result_sizes.append(len(answer.users))
        peb_reads = self._stop_measuring(self.peb_pool)

        self._start_measuring(self.baseline_pool)
        base_answers = []
        for query in queries:
            found = self.baseline.range_query(query.q_uid, query.window, query.t_query)
            base_answers.append({obj.uid for obj in found})
        base_reads = self._stop_measuring(self.baseline_pool)

        if check_results:
            for query, peb_set, base_set in zip(queries, peb_answers, base_answers):
                expected = brute_force_prq(
                    self.states, self.store, query.q_uid, query.window, query.t_query
                )
                if peb_set != expected or base_set != expected:
                    raise AssertionError(
                        f"PRQ mismatch for {query}: peb={sorted(peb_set)} "
                        f"base={sorted(base_set)} expected={sorted(expected)}"
                    )

        count = len(queries)
        return QueryCosts(
            peb_io=peb_reads / count,
            baseline_io=base_reads / count,
            n_queries=count,
            peb_result_sizes=result_sizes,
        )

    def run_pknn_batch(
        self, check_results: bool = False, k: int | None = None
    ) -> QueryCosts:
        """Average PkNN I/O over ``n_queries`` issuers at their locations.

        ``k`` overrides the configured neighbour count for this batch
        only (the Figure 15(b) sweep varies it on one built harness).
        """
        k_value = k if k is not None else self.config.k
        queries = self.query_generator.knn_queries(
            self.states, self.config.n_queries, k_value, self.now
        )

        self._start_measuring(self.peb_pool)
        peb_answers = []
        for query in queries:
            answer = pknn(
                self.peb_tree, query.q_uid, query.qx, query.qy, query.k, query.t_query
            )
            peb_answers.append([round(d, 9) for d, _ in answer.neighbors])
        peb_reads = self._stop_measuring(self.peb_pool)

        self._start_measuring(self.baseline_pool)
        base_answers = []
        for query in queries:
            found = self.baseline.knn_query(
                query.q_uid, query.qx, query.qy, query.k, query.t_query
            )
            base_answers.append([round(d, 9) for d, _ in found])
        base_reads = self._stop_measuring(self.baseline_pool)

        if check_results:
            for query, peb_dists, base_dists in zip(queries, peb_answers, base_answers):
                expected = brute_force_pknn(
                    self.states,
                    self.store,
                    query.q_uid,
                    query.qx,
                    query.qy,
                    query.k,
                    query.t_query,
                )
                expected_dists = [round(d, 9) for d, _ in expected]
                if peb_dists != expected_dists or base_dists != expected_dists:
                    raise AssertionError(
                        f"PkNN mismatch for {query}: peb={peb_dists} "
                        f"base={base_dists} expected={expected_dists}"
                    )

        count = len(queries)
        return QueryCosts(
            peb_io=peb_reads / count, baseline_io=base_reads / count, n_queries=count
        )

    def run_batched_prq(
        self,
        n_queries: int | None = None,
        window_side: float | None = None,
        prefetch: str | None = None,
        trace_recorder=None,
    ) -> BatchQueryCosts:
        """Measure one PRQ workload one-at-a-time vs batch-executed.

        The same fresh random query specs run twice on the paper's
        query buffer: first sequentially through :func:`prq`, then
        through the engine's batch executor, which merges overlapping
        band requests across issuers so one physical scan serves every
        query that needs it.  Both phases start from a *cold* buffer —
        otherwise the batched phase would inherit the pages the
        sequential phase just heated and the comparison would credit
        cache warming to batching.  Result sets are asserted identical
        — the batch path is an I/O optimization, never an
        approximation.

        ``prefetch`` selects the batch engine's prefetch-policy mode
        (``"auto"`` / ``"merge"`` / ``"exact"``; None = legacy merge);
        the sequential reference never prefetches, so the identity
        assertion doubles as the policy's safety check.
        """
        count = n_queries if n_queries is not None else self.config.n_queries
        if count < 1:
            raise ValueError(f"n_queries must be positive, got {count}")
        side = window_side if window_side is not None else self.config.window_side
        specs = self.query_generator.range_queries(
            sorted(self.states), count, side, self.now
        )

        self._start_measuring(self.peb_pool)
        self.peb_pool.clear()
        started = time.perf_counter()
        sequential = [
            prq(self.peb_tree, spec.q_uid, spec.window, spec.t_query)
            for spec in specs
        ]
        sequential_seconds = time.perf_counter() - started
        sequential_reads = self._stop_measuring(self.peb_pool)

        self._start_measuring(self.peb_pool)
        self.peb_pool.clear()
        if trace_recorder is not None:
            # The harness tree runs on untimed storage, so these spans
            # carry counters rather than durations; `serve-sim --trace`
            # is the timed surface.
            attach_recorder(self.peb_tree, trace_recorder)
        started = time.perf_counter()
        try:
            report = QueryEngine(
                self.peb_tree, prefetch_policy=prefetch
            ).execute_batch(specs)
        finally:
            if trace_recorder is not None:
                self.peb_tree.trace_recorder = None
        batched_seconds = time.perf_counter() - started
        batched_reads = self._stop_measuring(self.peb_pool)
        if trace_recorder is not None and getattr(trace_recorder, "enabled", False):
            registry = MetricsRegistry()
            report.stats.publish(registry)
            trace_recorder.metadata("metrics", registry.snapshot())
            trace_recorder.metadata(
                "run_config",
                {"verb": "batch-query", "n_queries": count, "prefetch": prefetch},
            )

        for spec, single, batched in zip(specs, sequential, report.results):
            if single.uids != batched.uids:
                raise AssertionError(
                    f"batch mismatch for {spec}: sequential={sorted(single.uids)} "
                    f"batched={sorted(batched.uids)}"
                )

        return BatchQueryCosts(
            sequential_io=sequential_reads / count,
            batched_io=batched_reads / count,
            n_queries=count,
            dedup_ratio=report.stats.dedup_ratio,
            sequential_seconds=sequential_seconds,
            batched_seconds=batched_seconds,
        )

    def run_packed_scan_micro(
        self,
        n_queries: int = 64,
        scan_repeats: int = 20,
        batch_repeats: int = 3,
        window_side: float | None = None,
    ) -> PackedScanCosts:
        """Measure the packed columnar scan against the per-entry path.

        The inner loop times a full-band scan (every SV, the whole Z
        range of the current partition) on a warm buffer, alternating
        modes per repeat so neither benefits from cache drift.  The end
        to end part batch-executes the same PRQ specs through
        ``QueryEngine(tree, packed_scan=...)`` in both modes from cold
        buffers (best of ``batch_repeats``), asserting identical
        results, ``candidates_examined``, and physical reads first —
        the packed path is a CPU optimization, never an approximation.
        """
        tree = self.peb_tree
        tid = self.partitioner.partition_of_label(
            self.partitioner.label_timestamp(self.now)
        )
        sv_hi_q = (1 << tree.codec.sv_bits) - 1
        z_hi = self.grid.max_z
        rows = tree.scan_band_rows(tid, 0, sv_hi_q, 0, z_hi)  # warm the buffer
        n_rows = len(rows)
        legacy_scan = packed_scan = 0.0
        for _ in range(scan_repeats):
            started = time.perf_counter()
            for _zv, _obj in tree.scan_band(tid, 0, sv_hi_q, 0, z_hi):
                pass
            legacy_scan += time.perf_counter() - started
            started = time.perf_counter()
            tree.scan_band_rows(tid, 0, sv_hi_q, 0, z_hi)
            packed_scan += time.perf_counter() - started

        side = window_side if window_side is not None else self.config.window_side
        specs = self.query_generator.range_queries(
            sorted(self.states), n_queries, side, self.now
        )

        def run_mode(packed: bool) -> tuple:
            self._start_measuring(self.peb_pool)
            self.peb_pool.clear()
            # Start each mode from a freshly-collected heap so a GC
            # cycle inherited from the *previous* mode's garbage never
            # lands inside this mode's measurement; collections a mode
            # triggers through its own allocations still count against
            # it, which is exactly the allocation-pressure difference
            # the packed layout is designed to reduce.
            gc.collect()
            started = time.perf_counter()
            report = QueryEngine(tree, packed_scan=packed).execute_batch(specs)
            seconds = time.perf_counter() - started
            reads = self._stop_measuring(self.peb_pool)
            return report, seconds, reads

        legacy_report, legacy_batch, legacy_reads = run_mode(False)
        packed_report, packed_batch, packed_reads = run_mode(True)
        if packed_reads != legacy_reads:
            raise AssertionError(
                f"packed batch read {packed_reads} pages, legacy {legacy_reads}"
            )
        if (
            packed_report.stats.candidates_examined
            != legacy_report.stats.candidates_examined
        ):
            raise AssertionError(
                f"packed examined {packed_report.stats.candidates_examined} "
                f"candidates, legacy {legacy_report.stats.candidates_examined}"
            )
        for spec, legacy_result, packed_result in zip(
            specs, legacy_report.results, packed_report.results
        ):
            if (
                legacy_result.uids != packed_result.uids
                or legacy_result.candidates_examined
                != packed_result.candidates_examined
            ):
                raise AssertionError(f"packed batch mismatch for {spec}")
        for _ in range(batch_repeats - 1):
            _, seconds, _ = run_mode(False)
            legacy_batch = min(legacy_batch, seconds)
            _, seconds, _ = run_mode(True)
            packed_batch = min(packed_batch, seconds)

        return PackedScanCosts(
            rows=n_rows,
            legacy_scan_seconds=legacy_scan,
            packed_scan_seconds=packed_scan,
            n_queries=len(specs),
            legacy_batch_seconds=legacy_batch,
            packed_batch_seconds=packed_batch,
            physical_reads=legacy_reads,
            candidates_examined=legacy_report.stats.candidates_examined,
        )

    # ------------------------------------------------------------------
    # Update rounds (Figure 18)
    # ------------------------------------------------------------------

    def _generate_update_round(self, fraction: float) -> list[MovingObject]:
        """Advance the clock and derive the round's re-reported states.

        The Figure 18 workload: time moves forward by Δt_mu * fraction
        and the stalest ``fraction`` of the population re-reports.  The
        harness's own ``states`` are updated; applying the returned
        list to the indexes is the caller's business, so one generated
        round can drive several application strategies.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        self.now += self.config.max_update_interval * fraction
        batch_size = int(len(self.states) * fraction)
        stalest = sorted(self.states.values(), key=lambda obj: obj.t_update)
        moved_objects = []
        for obj in stalest[:batch_size]:
            moved = self.movement.advance(obj, self.now)
            self.states[moved.uid] = moved
            moved_objects.append(moved)
        return moved_objects

    def apply_update_round(
        self, fraction: float = 0.25, pipeline: UpdatePipeline | None = None
    ) -> None:
        """Advance time one phase and re-report the stalest ``fraction``.

        Figure 18 measures query cost "each time 25% of the data set has
        been updated ... until the data set has been fully updated twice".
        Each round advances the clock by Δt_mu * fraction so four rounds
        cycle the whole population within the maximum update interval.

        With a ``pipeline`` the PEB-tree side of the round flows through
        the batch update pipeline (flushed before returning, so queries
        may follow immediately); the Bx-tree baseline always updates
        one at a time — it has no batch path, which is part of the
        comparison.
        """
        moved_objects = self._generate_update_round(fraction)
        if pipeline is None:
            for moved in moved_objects:
                self.peb_tree.update(moved)
        else:
            if pipeline.tree is not self.peb_tree:
                raise ValueError("pipeline is bound to a different tree")
            pipeline.extend(moved_objects)
            pipeline.flush()
        for moved in moved_objects:
            self.bx_tree.update(moved)

    def run_batched_updates(
        self, batch_size: int = 256, fraction: float = 0.25
    ) -> UpdateRoundCosts:
        """Measure one update round one-at-a-time vs pipelined.

        One Figure 18 round is generated once, then applied twice from
        a cold paper-sized buffer: sequentially to a physically
        identical clone of the PEB-tree (checkpoint round-trip — same
        page images, same ids), and through an
        :class:`repro.engine.UpdatePipeline` to the harness's own tree.
        Counting both physical reads and writes (with a final pool
        flush in each mode) makes the comparison complete for a write
        workload.  Final index contents and invariants are asserted
        identical — batching is an I/O optimization, never a different
        index.
        """
        if batch_size < 1:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        moved_objects = self._generate_update_round(fraction)
        count = len(moved_objects)
        if count == 0:
            raise ValueError("update round produced no states to apply")

        clone = clone_peb_tree(self.peb_tree, buffer_pages=self.config.buffer_pages)
        clone.stats.reset()
        started = time.perf_counter()
        for moved in moved_objects:
            clone.update(moved)
        clone.btree.pool.flush()
        sequential_seconds = time.perf_counter() - started
        sequential_io = clone.stats.physical_reads + clone.stats.physical_writes

        self._start_measuring(self.peb_pool)
        self.peb_pool.clear()
        pipeline = UpdatePipeline(self.peb_tree, capacity=batch_size)
        started = time.perf_counter()
        pipeline.extend(moved_objects)
        pipeline.flush()
        self.peb_pool.flush()
        batched_seconds = time.perf_counter() - started
        batched_io = (
            self.peb_pool.stats.physical_reads + self.peb_pool.stats.physical_writes
        )
        self._stop_measuring(self.peb_pool)

        for moved in moved_objects:
            self.bx_tree.update(moved)

        clone.btree.check_invariants()
        self.peb_tree.btree.check_invariants()
        if clone._live_keys != self.peb_tree._live_keys:
            raise AssertionError("batched update memo diverged from sequential")
        sequential_entries = list(clone.btree.items())
        batched_entries = list(self.peb_tree.btree.items())
        if sequential_entries != batched_entries:
            raise AssertionError(
                "batched update contents diverged from sequential "
                f"({len(sequential_entries)} vs {len(batched_entries)} entries)"
            )

        return UpdateRoundCosts(
            sequential_io=sequential_io / count,
            batched_io=batched_io / count,
            n_updates=count,
            batch_size=batch_size,
            in_place_ratio=pipeline.stats.in_place_ratio,
            descents_saved=pipeline.stats.descents_saved,
            sequential_seconds=sequential_seconds,
            batched_seconds=batched_seconds,
        )

    # ------------------------------------------------------------------
    # Sharded multi-tree scaling
    # ------------------------------------------------------------------

    def _scaling_workload(
        self,
        workload: str,
        n_updates: int | None,
        n_queries: int | None,
        workload_seed: int,
    ) -> tuple[list[MovingObject], list]:
        """One deterministic update stream + query batch for scaling runs.

        Shared by :meth:`run_sharded` and :meth:`run_overlap`; the draw
        depends only on the configuration seed and ``workload_seed``,
        never on how often it is taken — the harness's own states are
        untouched.
        """
        count_updates = n_updates if n_updates is not None else len(self.states)
        count_queries = n_queries if n_queries is not None else self.config.n_queries
        generator = QueryGenerator(
            self.config.space_side,
            random.Random(self.config.seed + 9000 + workload_seed),
        )
        duration = self.config.max_update_interval / 2.0
        if workload == "uniform":
            updates = generator.update_stream(
                self.states, count_updates, self.config.max_speed, self.now, duration
            )
            queries = generator.range_queries(
                sorted(self.states),
                count_queries,
                self.config.window_side,
                self.now + duration,
            )
        elif workload == "hotspot":
            updates, queries = generator.hotspot_stream(
                self.states,
                count_updates,
                count_queries,
                self.config.window_side,
                self.config.max_speed,
                self.now,
                duration,
            )
        else:
            raise ValueError(f"unknown workload {workload!r}")
        return updates, queries

    def run_sharded(
        self,
        n_shards: int,
        workload: str = "uniform",
        n_updates: int | None = None,
        n_queries: int | None = None,
        batch_size: int = 256,
        policy: str = "sv",
        shard_buffer_pages: int | None = None,
        parallel_prefetch: bool = False,
        workload_seed: int = 0,
    ) -> ShardScalingCosts:
        """Measure one workload on a sharded deployment vs the single tree.

        One deterministic workload (an update stream followed by a
        range-query batch, ``workload_seed`` selecting the draw) runs
        twice from the current population:

        * on a physically identical clone of the harness's PEB-tree
          with the paper's ``buffer_pages`` buffer, updates through an
          :class:`repro.engine.UpdatePipeline` and queries through the
          batch executor;
        * on a fresh ``n_shards``-shard
          :class:`repro.shard.ShardedPEBTree` over the same store and
          states, each shard owning ``shard_buffer_pages`` (default:
          the same paper-sized buffer per shard — a shard models an
          added machine), updates through the same pipeline splitting
          sorted runs at shard boundaries, queries through
          :class:`repro.shard.ShardedQueryEngine`.

        ``"uniform"`` draws :meth:`QueryGenerator.update_stream` plus
        uniform windows; ``"hotspot"`` draws the Zipf-skewed
        :meth:`QueryGenerator.hotspot_stream`.  Per-query result sets
        are asserted identical — sharding is a deployment change, never
        an approximation.  The harness's own indexes are untouched.
        """
        if n_shards < 1:
            raise ValueError(f"n_shards must be positive, got {n_shards}")
        updates, queries = self._scaling_workload(
            workload, n_updates, n_queries, workload_seed
        )

        # Single-tree reference: a physically identical clone.
        clone = clone_peb_tree(self.peb_tree, buffer_pages=self.config.buffer_pages)
        clone.stats.reset()
        single_pipeline = UpdatePipeline(clone, capacity=batch_size)
        single_pipeline.extend(updates)
        single_pipeline.flush()
        clone.btree.pool.flush()
        single_update_reads = clone.stats.physical_reads
        single_update_writes = clone.stats.physical_writes
        reads_before = clone.stats.physical_reads
        single_report = QueryEngine(clone).execute_batch(queries)
        single_query_reads = clone.stats.physical_reads - reads_before

        # Sharded deployment over the same population, built warm then
        # shrunk to its per-shard query/update buffers.
        per_shard_pages = (
            shard_buffer_pages
            if shard_buffer_pages is not None
            else self.config.buffer_pages
        )
        sharded = ShardedPEBTree.build(
            n_shards,
            self.grid,
            self.partitioner,
            self.store,
            uids=sorted(self.states),
            policy=policy,
            page_size=self.config.page_size,
            buffer_pages=self.config.build_buffer_pages,
            buffer_policy=self.config.buffer_policy,
        )
        for uid in sorted(self.states):
            sharded.insert(self.states[uid])
        for pool in sharded.pools:
            # clear(), not just flush(): the clone reference starts
            # with a cold pool, so the sharded side must too or its
            # read counts are flattered by build-time residency.
            pool.clear()
            pool.resize(per_shard_pages)
        sharded.stats.reset()

        sharded_pipeline = UpdatePipeline(sharded, capacity=batch_size)
        sharded_pipeline.extend(updates)
        sharded_pipeline.flush()
        for pool in sharded.pools:
            pool.flush()
        sharded_update_reads = sharded.stats.physical_reads
        sharded_update_writes = sharded.stats.physical_writes
        reads_before = sharded.stats.physical_reads
        sharded_report = ShardedQueryEngine(
            sharded, parallel_prefetch=parallel_prefetch
        ).execute_batch(queries)
        sharded_query_reads = sharded.stats.physical_reads - reads_before

        if single_pipeline.stats.ops != sharded_pipeline.stats.ops:
            raise AssertionError(
                "sharded pipeline applied a different op count "
                f"({sharded_pipeline.stats.ops} vs {single_pipeline.stats.ops})"
            )
        for spec, single, shard in zip(
            queries, single_report.results, sharded_report.results
        ):
            if single.uids != shard.uids:
                raise AssertionError(
                    f"sharded result mismatch for {spec}: "
                    f"single={sorted(single.uids)} sharded={sorted(shard.uids)}"
                )

        return ShardScalingCosts(
            n_shards=n_shards,
            workload=workload,
            ops_applied=single_pipeline.stats.ops,
            n_queries=len(queries),
            single_update_reads=single_update_reads,
            single_update_writes=single_update_writes,
            sharded_update_reads=sharded_update_reads,
            sharded_update_writes=sharded_update_writes,
            single_query_reads=single_query_reads,
            sharded_query_reads=sharded_query_reads,
            balance_skew=sharded.shard_stats().balance_skew,
        )

    # ------------------------------------------------------------------
    # Simulated-latency overlap (the simio subsystem's headline)
    # ------------------------------------------------------------------

    def run_overlap(
        self,
        n_shards: int,
        latency: str = "hdd",
        workload: str = "hotspot",
        n_updates: int | None = None,
        n_queries: int | None = None,
        batch_size: int = 256,
        policy: str = "sv",
        shard_buffer_pages: int | None = None,
        parallel_io: bool = True,
        workload_seed: int = 0,
    ) -> OverlapCosts:
        """Measure virtual-time overlap: N timed shards vs one timed shard.

        Three runs of one deterministic workload (update stream, then
        range-query batch, the same draw :meth:`run_sharded` uses):

        * an **untimed single-tree clone** — the result oracle; every
          timed run's per-query results and final index contents are
          asserted identical to it, so latency simulation is proven to
          be timing-only;
        * a **1-shard timed deployment** (``latency`` profile, serial
          scheduling) — the virtual-time baseline;
        * an **N-shard timed deployment** with overlapped scheduling
          (per-shard prefetch scans and update sweeps fork/join on the
          shared clock, verification pipelines against still-running
          scans; ``parallel_io`` additionally exercises the real
          thread pool, which must not change any number).

        Physical I/O counts stay comparable to :meth:`run_sharded`;
        what this method adds is the *time* axis: the virtual elapsed
        microseconds of each phase, and the overlap factor showing how
        many devices the scheduler kept busy at once.
        """
        if n_shards < 1:
            raise ValueError(f"n_shards must be positive, got {n_shards}")
        updates, queries = self._scaling_workload(
            workload, n_updates, n_queries, workload_seed
        )

        # Untimed single-tree reference: pins results and end state.
        clone = clone_peb_tree(self.peb_tree, buffer_pages=self.config.buffer_pages)
        clone.stats.reset()
        reference_pipeline = UpdatePipeline(clone, capacity=batch_size)
        reference_pipeline.extend(updates)
        reference_pipeline.flush()
        clone.btree.pool.flush()
        reference_report = QueryEngine(clone).execute_batch(queries)
        reference_entries = list(clone.btree.items())

        per_shard_pages = (
            shard_buffer_pages
            if shard_buffer_pages is not None
            else self.config.buffer_pages
        )

        def timed_run(shards: int, overlapped: bool):
            deployment = ShardedPEBTree.build(
                shards,
                self.grid,
                self.partitioner,
                self.store,
                uids=sorted(self.states),
                policy=policy,
                page_size=self.config.page_size,
                buffer_pages=self.config.build_buffer_pages,
                buffer_policy=self.config.buffer_policy,
                latency=latency,
                parallel_io=overlapped and parallel_io,
            )
            for uid in sorted(self.states):
                deployment.insert(self.states[uid])
            for pool in deployment.pools:
                pool.clear()
                pool.resize(per_shard_pages)
            deployment.stats.reset()
            clock = deployment.sim_clock

            phase_start = clock.elapsed
            pipeline = UpdatePipeline(deployment, capacity=batch_size)
            pipeline.extend(updates)
            pipeline.flush()
            # The final write-back is per-pool independent work too:
            # route it through the deployment's scheduler so it
            # overlaps like the sweeps that dirtied the pages.
            deployment.io.run(
                [(lambda pool=pool: pool.flush()) for pool in deployment.pools]
            )
            update_us = clock.elapsed - phase_start

            phase_start = clock.elapsed
            engine = ShardedQueryEngine(deployment, pipeline_verify=overlapped)
            report = engine.execute_batch(queries)
            query_us = clock.elapsed - phase_start
            # Counters snapshot *before* the pin checks below: the
            # full-index audit scan is timed too, and must not leak
            # into the measured window.
            reads = deployment.stats.physical_reads
            writes = deployment.stats.physical_writes
            busy_us = deployment.latency_stats.busy_us
            seeks = deployment.latency_stats.seeks
            sequential_hits = deployment.latency_stats.sequential_hits

            if pipeline.stats.ops != reference_pipeline.stats.ops:
                raise AssertionError(
                    "timed pipeline applied a different op count "
                    f"({pipeline.stats.ops} vs {reference_pipeline.stats.ops})"
                )
            for spec, expected, got in zip(
                queries, reference_report.results, report.results
            ):
                if expected.uids != got.uids:
                    raise AssertionError(
                        f"timed result mismatch for {spec}: "
                        f"expected={sorted(expected.uids)} got={sorted(got.uids)}"
                    )
            if list(deployment.items()) != reference_entries:
                raise AssertionError(
                    "timed deployment end state diverged from the reference"
                )
            return update_us, query_us, reads, writes, busy_us, seeks, sequential_hits

        (
            base_update_us,
            base_query_us,
            base_reads,
            base_writes,
            base_busy,
            base_seeks,
            base_seq_hits,
        ) = timed_run(1, overlapped=False)
        (
            shard_update_us,
            shard_query_us,
            shard_reads,
            shard_writes,
            shard_busy,
            shard_seeks,
            shard_seq_hits,
        ) = timed_run(n_shards, overlapped=True)

        return OverlapCosts(
            profile=latency if isinstance(latency, str) else latency.name,
            n_shards=n_shards,
            workload=workload,
            parallel_io=parallel_io,
            ops_applied=reference_pipeline.stats.ops,
            n_queries=len(queries),
            baseline_update_us=base_update_us,
            baseline_query_us=base_query_us,
            sharded_update_us=shard_update_us,
            sharded_query_us=shard_query_us,
            baseline_reads=base_reads,
            baseline_writes=base_writes,
            sharded_reads=shard_reads,
            sharded_writes=shard_writes,
            baseline_busy_us=base_busy,
            sharded_busy_us=shard_busy,
            baseline_seeks=base_seeks,
            baseline_sequential_hits=base_seq_hits,
            sharded_seeks=shard_seeks,
            sharded_sequential_hits=shard_seq_hits,
        )

    # ------------------------------------------------------------------
    # Open-loop service (the service subsystem's headline)
    # ------------------------------------------------------------------

    def run_service(
        self,
        rate_per_sec: float,
        n_requests: int = 256,
        max_batch: int = 64,
        max_wait_us: float = 2000.0,
        arrival: str = "poisson",
        n_shards: int = 2,
        latency: str = "ssd",
        update_fraction: float = 0.5,
        knn_fraction: float = 0.25,
        burst_size: int = 16,
        batch_size: int = 256,
        policy: str = "sv",
        shard_buffer_pages: int | None = None,
        parallel_io: bool = True,
        workload_seed: int = 0,
        pin: bool = True,
        disk_factory=None,
        fault_policy=None,
        breaker_policy=None,
        shed_after_us: float | None = None,
        arm_faults=None,
        prefetch: str | None = None,
        trace_recorder=None,
    ) -> ServiceCosts:
        """Serve one open-loop request stream and report sojourn SLOs.

        A mixed query+update stream (``update_fraction`` updates,
        ``knn_fraction`` of the queries kNN) arrives at ``rate_per_sec``
        under the ``arrival`` process; a single worker batches it under
        ``BatchPolicy(max_batch, max_wait_us)`` over a fresh timed
        ``n_shards``-shard deployment of the harness's population.  The
        stream's draw depends only on the configuration seed and
        ``workload_seed``; the harness's own indexes are untouched.

        With ``pin`` (the default), the run's recorded batches are then
        replayed *directly* — same update batches through an
        ``UpdatePipeline``, same query batches through
        ``execute_batch`` — on an untimed clone of the harness's
        single PEB-tree, and every per-query result plus the final
        index contents are asserted identical.  The service layer is
        thereby proven an orchestration of the engine: batching and
        virtual time change the schedule, never a result.

        ``disk_factory`` / ``fault_policy`` / ``breaker_policy`` build a
        fault-tolerant deployment (see ``ShardedPEBTree.build``);
        ``shed_after_us`` turns on admission-queue load shedding.  Under
        *transient* fault schedules the pin still holds (retry makes
        runs bit-identical); pass ``pin=False`` for quarantine
        scenarios, where deferred updates and dropped sub-bands make the
        served results an honest subset rather than a replica.

        ``arm_faults(deployment)`` is called after build and bulk
        insert, just before the stream is served — the window where
        fault injection belongs (builds are unsupervised).  If it
        returns a callable, that is invoked after the run and before
        the pin's audit scan (heal the disks there so the audit reads
        clean).

        ``prefetch`` selects the engine's band-prefetch policy mode
        (``"auto"`` / ``"merge"`` / ``"exact"``; None keeps the legacy
        unconditional merge).  The pin replays on a policy-free
        reference engine, so a passing pinned run *is* the proof that
        the policy changed only I/O, never results.

        ``trace_recorder`` (a :class:`repro.obs.trace.TraceRecorder`)
        attaches to the freshly built deployment before the run:
        spans land on the shared virtual clock, exemplar tail requests
        are sampled, and the run's stats plus a metrics-registry
        snapshot are embedded as trace metadata.  Tracing is
        observationally inert — a traced run returns bit-identical
        costs — and the pin above runs either way.
        """
        if n_shards < 1:
            raise ValueError(f"n_shards must be positive, got {n_shards}")
        if n_requests < 1:
            raise ValueError(f"n_requests must be positive, got {n_requests}")

        generator = QueryGenerator(
            self.config.space_side,
            random.Random(self.config.seed + 9500 + workload_seed),
        )
        duration = self.config.max_update_interval / 2.0
        stream = OpenLoopGenerator(generator, self.states).generate(
            n_requests,
            rate_per_sec,
            arrival=arrival,
            update_fraction=update_fraction,
            window_side=self.config.window_side,
            k=self.config.k,
            knn_fraction=knn_fraction,
            max_speed=self.config.max_speed,
            t_start=self.now,
            duration=duration,
            burst_size=burst_size,
        )

        per_shard_pages = (
            shard_buffer_pages
            if shard_buffer_pages is not None
            else self.config.buffer_pages
        )
        deployment = ShardedPEBTree.build(
            n_shards,
            self.grid,
            self.partitioner,
            self.store,
            uids=sorted(self.states),
            policy=policy,
            page_size=self.config.page_size,
            buffer_pages=self.config.build_buffer_pages,
            buffer_policy=self.config.buffer_policy,
            latency=latency,
            parallel_io=parallel_io,
            disk_factory=disk_factory,
            fault_policy=fault_policy,
            breaker_policy=breaker_policy,
        )
        for uid in sorted(self.states):
            deployment.insert(self.states[uid])
        for pool in deployment.pools:
            pool.clear()
            pool.resize(per_shard_pages)
        deployment.stats.reset()
        if trace_recorder is not None:
            attach_recorder(deployment, trace_recorder)

        admission = BatchPolicy(
            max_batch=max_batch,
            max_wait_us=max_wait_us,
            shed_after_us=shed_after_us,
        )
        engine = ShardedQueryEngine(deployment, prefetch_policy=prefetch)
        pipeline = UpdatePipeline(deployment, capacity=batch_size)
        service = SimulatedService(engine, pipeline, admission)
        disarm = arm_faults(deployment) if arm_faults is not None else None
        report = service.run(stream)
        if callable(disarm):
            disarm()

        if trace_recorder is not None and getattr(trace_recorder, "enabled", False):
            # One queryable snapshot across every layer's stats dialect,
            # embedded in the trace (read before the pin's audit scan
            # touches the counters).
            registry = MetricsRegistry()
            report.stats.publish(registry)
            pipeline.stats.publish(registry)
            deployment.shard_stats().publish(registry)
            deployment.stats.publish(registry)
            trace_recorder.metadata("metrics", registry.snapshot())
            trace_recorder.metadata(
                "run_config",
                {
                    "rate_per_sec": rate_per_sec,
                    "n_requests": n_requests,
                    "max_batch": max_batch,
                    "max_wait_us": max_wait_us,
                    "arrival": arrival,
                    "n_shards": n_shards,
                    "profile": latency if isinstance(latency, str) else latency.name,
                    "update_fraction": update_fraction,
                    "knn_fraction": knn_fraction,
                    "policy": policy,
                    "prefetch": prefetch,
                    "workload_seed": workload_seed,
                },
            )

        if pin:
            clone = clone_peb_tree(
                self.peb_tree, buffer_pages=self.config.buffer_pages
            )
            clone.stats.reset()
            reference_pipeline = UpdatePipeline(clone, capacity=batch_size)
            reference_engine = QueryEngine(clone)
            for batch in report.batches:
                updates = batch.updates
                if updates:
                    reference_pipeline.extend(updates)
                    reference_pipeline.flush()
                specs = batch.query_specs
                if not specs:
                    continue
                reference = reference_engine.execute_batch(specs).results
                for spec, served, expected in zip(
                    specs, batch.query_results, reference
                ):
                    if hasattr(expected, "uids"):
                        matches = served.uids == expected.uids
                    else:
                        matches = [
                            (round(d, 9), o.uid) for d, o in served.neighbors
                        ] == [(round(d, 9), o.uid) for d, o in expected.neighbors]
                    if not matches:
                        raise AssertionError(
                            f"service result mismatch for {spec}: "
                            f"served={served} expected={expected}"
                        )
            clone.btree.pool.flush()
            if list(deployment.items()) != list(clone.btree.items()):
                raise AssertionError(
                    "service deployment end state diverged from the "
                    "direct-replay reference"
                )

        return ServiceCosts(
            rate_per_sec=rate_per_sec,
            arrival=arrival,
            n_shards=n_shards,
            profile=latency if isinstance(latency, str) else latency.name,
            max_batch=max_batch,
            max_wait_us=max_wait_us,
            n_requests=n_requests,
            stats=report.stats,
            pinned=pin,
            prefetch=prefetch,
            policy_state=(
                engine.prefetch_policy.snapshot()
                if engine.prefetch_policy is not None
                else None
            ),
        )

    # ------------------------------------------------------------------
    # Derived quantities for the cost model (Section 6)
    # ------------------------------------------------------------------

    @property
    def peb_leaf_count(self) -> int:
        """Nl — leaves in the PEB-tree."""
        return self.peb_tree.btree.leaf_count
