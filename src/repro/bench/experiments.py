"""Per-figure experiment drivers (Section 7).

Every figure of the paper's evaluation has a function here that runs the
corresponding parameter sweep and returns its series as a list of row
dicts; the ``benchmarks/`` suite wraps these in pytest-benchmark targets
and prints paper-style tables.

Two scale presets exist:

* ``reduced`` (default) — the same sweeps scaled down ~10x so the whole
  suite runs in minutes of pure Python.  The page size shrinks from
  4 KiB to 1 KiB so the index-pages : buffer-pages ratio stays in the
  paper's regime (a 50-page buffer must not swallow the whole tree).
* ``paper`` — Table 1 verbatim (60 K users default, sweeps to 100 K,
  200 queries, 4 KiB pages).  Select with ``REPRO_SCALE=paper``.

Trends, winners, and crossovers are preserved at reduced scale because
every cost is a page read of the same buffer-managed geometry.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field

from repro.bench.harness import ExperimentConfig, ExperimentHarness
from repro.core.cost_model import CostModel, CostSample
from repro.core.sequencing import assign_sequence_values
from repro.workloads.policies import PolicyGenerator


@dataclass(frozen=True)
class ScalePreset:
    """One bundle of sweep values and base configuration."""

    name: str
    base: ExperimentConfig
    user_sweep: tuple[int, ...]
    policy_sweep: tuple[int, ...]
    theta_sweep: tuple[float, ...]
    window_sweep: tuple[float, ...]
    k_sweep: tuple[int, ...]
    speed_sweep: tuple[float, ...]
    destination_sweep: tuple[int, ...]
    update_rounds: int = 8
    encoding_user_sweep: tuple[int, ...] = ()
    encoding_policy_sweep: tuple[int, ...] = ()


REDUCED = ScalePreset(
    name="reduced",
    base=ExperimentConfig(
        n_users=4000,
        n_policies=20,
        n_queries=25,
        window_side=200.0,
        k=5,
        page_size=1024,
        buffer_pages=50,
        build_buffer_pages=8192,
    ),
    user_sweep=(1000, 2000, 4000, 6000, 8000),
    policy_sweep=(5, 10, 20, 30, 40),
    theta_sweep=(0.0, 0.3, 0.5, 0.7, 0.9, 1.0),
    window_sweep=(50.0, 100.0, 200.0, 400.0, 600.0, 1000.0),
    k_sweep=(1, 2, 3, 5, 8, 10),
    speed_sweep=(1.0, 2.0, 3.0, 4.0, 5.0, 6.0),
    destination_sweep=(25, 50, 100, 200, 500),
    update_rounds=8,
    encoding_user_sweep=(1000, 2000, 4000, 8000, 16000),
    encoding_policy_sweep=(5, 10, 20, 40, 80),
)

PAPER = ScalePreset(
    name="paper",
    base=ExperimentConfig(),  # Table 1 defaults
    user_sweep=tuple(range(10_000, 100_001, 10_000)),
    policy_sweep=(10, 20, 30, 40, 50, 60, 70, 80, 90, 100),
    theta_sweep=(0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
    window_sweep=tuple(float(w) for w in range(100, 1001, 100)),
    k_sweep=tuple(range(1, 11)),
    speed_sweep=(1.0, 2.0, 3.0, 4.0, 5.0, 6.0),
    destination_sweep=(25, 50, 100, 200, 300, 400, 500),
    update_rounds=8,
    encoding_user_sweep=tuple(range(10_000, 100_001, 10_000)),
    encoding_policy_sweep=(10, 20, 30, 40, 50, 60, 70, 80, 90, 100),
)


def scale_preset() -> ScalePreset:
    """The preset selected by the ``REPRO_SCALE`` environment variable."""
    name = os.environ.get("REPRO_SCALE", "reduced").strip().lower()
    if name == "paper":
        return PAPER
    if name == "reduced":
        return REDUCED
    raise ValueError(f"unknown REPRO_SCALE {name!r}; use 'reduced' or 'paper'")


@dataclass
class HarnessCache:
    """Builds each configuration at most once per benchmark session."""

    _cache: dict[ExperimentConfig, ExperimentHarness] = field(default_factory=dict)

    def get(self, config: ExperimentConfig) -> ExperimentHarness:
        if config not in self._cache:
            self._cache[config] = ExperimentHarness(config)
        return self._cache[config]

    def clear(self) -> None:
        self._cache.clear()


# ----------------------------------------------------------------------
# Figure 11 — preprocessing time for policy encoding
# ----------------------------------------------------------------------

def encode_only(
    n_users: int, n_policies: int, theta: float, base: ExperimentConfig
) -> float:
    """Policy-encoding wall-clock seconds for one population.

    Builds only the policy store and runs the sequence-value assignment —
    no movement, no trees — mirroring what Figure 11 times.
    """
    rng = random.Random(base.seed + 1)
    generator = PolicyGenerator(base.space_side, base.time_domain, rng)
    store = generator.generate(list(range(n_users)), n_policies, theta)
    report = assign_sequence_values(
        list(range(n_users)), store, base.space_side**2
    )
    return report.elapsed_seconds


def fig11a_encoding_vs_users(preset: ScalePreset) -> list[dict]:
    """Figure 11(a): encoding time while the user count grows."""
    rows = []
    for n_users in preset.encoding_user_sweep:
        seconds = encode_only(
            n_users, preset.base.n_policies, preset.base.grouping_factor, preset.base
        )
        rows.append({"n_users": n_users, "seconds": seconds})
    return rows


def fig11b_encoding_vs_policies(preset: ScalePreset) -> list[dict]:
    """Figure 11(b): encoding time while policies per user grow."""
    rows = []
    for n_policies in preset.encoding_policy_sweep:
        seconds = encode_only(
            preset.base.n_users, n_policies, preset.base.grouping_factor, preset.base
        )
        rows.append({"n_policies": n_policies, "seconds": seconds})
    return rows


# ----------------------------------------------------------------------
# Query-cost sweeps (Figures 12-17)
# ----------------------------------------------------------------------

def _measure(harness: ExperimentHarness) -> dict:
    prq_costs = harness.run_prq_batch()
    knn_costs = harness.run_pknn_batch()
    return {
        "prq_peb": prq_costs.peb_io,
        "prq_base": prq_costs.baseline_io,
        "knn_peb": knn_costs.peb_io,
        "knn_base": knn_costs.baseline_io,
        "peb_leaves": harness.peb_leaf_count,
    }


def fig12_vs_users(preset: ScalePreset, cache: HarnessCache) -> list[dict]:
    """Figures 12(a)/(b): PRQ and PkNN I/O while the population grows."""
    rows = []
    for n_users in preset.user_sweep:
        harness = cache.get(preset.base.scaled(n_users=n_users))
        rows.append({"n_users": n_users, **_measure(harness)})
    return rows


def fig13_vs_policies(preset: ScalePreset, cache: HarnessCache) -> list[dict]:
    """Figures 13(a)/(b): I/O while policies per user grow."""
    rows = []
    for n_policies in preset.policy_sweep:
        harness = cache.get(preset.base.scaled(n_policies=n_policies))
        rows.append({"n_policies": n_policies, **_measure(harness)})
    return rows


def fig14_vs_grouping(preset: ScalePreset, cache: HarnessCache) -> list[dict]:
    """Figures 14(a)/(b): I/O across the grouping factor."""
    rows = []
    for theta in preset.theta_sweep:
        harness = cache.get(preset.base.scaled(grouping_factor=theta))
        rows.append({"theta": theta, **_measure(harness)})
    return rows


def fig15a_vs_window(preset: ScalePreset, cache: HarnessCache) -> list[dict]:
    """Figure 15(a): PRQ I/O across the query-window side length."""
    harness = cache.get(preset.base)
    rows = []
    for window_side in preset.window_sweep:
        costs = harness.run_prq_batch(window_side=window_side)
        rows.append(
            {
                "window": window_side,
                "prq_peb": costs.peb_io,
                "prq_base": costs.baseline_io,
            }
        )
    return rows


def fig15b_vs_k(preset: ScalePreset, cache: HarnessCache) -> list[dict]:
    """Figure 15(b): PkNN I/O across k."""
    harness = cache.get(preset.base)
    rows = []
    for k in preset.k_sweep:
        costs = harness.run_pknn_batch(k=k)
        rows.append(
            {"k": k, "knn_peb": costs.peb_io, "knn_base": costs.baseline_io}
        )
    return rows


def fig16_vs_destinations(preset: ScalePreset, cache: HarnessCache) -> list[dict]:
    """Figures 16(a)/(b): network datasets with varying hub counts."""
    rows = []
    for n_destinations in preset.destination_sweep:
        harness = cache.get(
            preset.base.scaled(
                distribution="network", n_destinations=n_destinations
            )
        )
        rows.append({"destinations": n_destinations, **_measure(harness)})
    # The paper also plots the uniform dataset as the unskewed extreme.
    harness = cache.get(preset.base)
    rows.append({"destinations": 0, **_measure(harness)})
    return rows


def fig17_vs_speed(preset: ScalePreset, cache: HarnessCache) -> list[dict]:
    """Figures 17(a)/(b): I/O across the maximum object speed."""
    rows = []
    for max_speed in preset.speed_sweep:
        harness = cache.get(preset.base.scaled(max_speed=max_speed))
        rows.append({"max_speed": max_speed, **_measure(harness)})
    return rows


def fig18_vs_updates(preset: ScalePreset) -> list[dict]:
    """Figures 18(a)/(b): I/O after successive 25% update batches.

    Not cached: the harness is mutated by the update rounds.
    """
    harness = ExperimentHarness(preset.base)
    rows = [{"updated_pct": 0, **_measure(harness)}]
    for round_index in range(1, preset.update_rounds + 1):
        harness.apply_update_round(0.25)
        rows.append({"updated_pct": round_index * 25, **_measure(harness)})
    return rows


def fig18_update_io(preset: ScalePreset, batch_size: int = 256) -> list[dict]:
    """Figure 18, write-path variant: amortized update I/O per step.

    The paper's Figure 18 tracks *query* cost while the data set churns;
    this variant reports what each 25% churn step itself costs — the
    physical reads + writes per update when the round is applied
    one :meth:`PEBTree.update` at a time versus through the batch
    update pipeline at ``batch_size``, measured from a cold paper-sized
    buffer on physically identical trees (checkpoint clone).  Not
    cached: the harness is mutated by the update rounds.
    """
    harness = ExperimentHarness(preset.base)
    rows = []
    for round_index in range(1, preset.update_rounds + 1):
        costs = harness.run_batched_updates(batch_size=batch_size)
        rows.append(
            {
                "updated_pct": round_index * 25,
                "seq_io": costs.sequential_io,
                "batched_io": costs.batched_io,
                "io_reduction": costs.io_reduction,
                "in_place_ratio": costs.in_place_ratio,
                "descents_saved": costs.descents_saved,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Figure 19 — cost-model validation
# ----------------------------------------------------------------------

def _sample_from_row(row: dict, preset: ScalePreset, **overrides) -> CostSample:
    merged = {
        "n_users": preset.base.n_users,
        "n_policies": preset.base.n_policies,
        "theta": preset.base.grouping_factor,
        **overrides,
    }
    return CostSample(
        n_users=merged["n_users"],
        n_policies=merged["n_policies"],
        theta=merged["theta"],
        n_leaves=row["peb_leaves"],
        measured_io=row["prq_peb"],
    )


def fig19_cost_model(preset: ScalePreset, cache: HarnessCache) -> dict:
    """Figure 19: estimated vs. measured PRQ I/O across N, Np, and θ.

    The model is calibrated from the two extreme points of the user sweep
    ("taking as input any two sample points ... with the same location
    distribution") and then evaluated against every measured point of the
    three sweeps.
    """
    user_rows = fig12_vs_users(preset, cache)
    policy_rows = fig13_vs_policies(preset, cache)
    theta_rows = fig14_vs_grouping(preset, cache)

    first = _sample_from_row(user_rows[0], preset, n_users=user_rows[0]["n_users"])
    last = _sample_from_row(user_rows[-1], preset, n_users=user_rows[-1]["n_users"])
    model = CostModel.calibrate(first, last, preset.base.space_side)

    def row_series(rows: list[dict], axis: str, **fixed) -> list[dict]:
        series = []
        for row in rows:
            params = {
                "n_users": preset.base.n_users,
                "n_policies": preset.base.n_policies,
                "theta": preset.base.grouping_factor,
                **fixed,
                axis: row[_AXIS_KEYS[axis]],
            }
            estimate = model.estimate(
                n_users=params["n_users"],
                n_policies=params["n_policies"],
                theta=params["theta"],
                n_leaves=row["peb_leaves"],
            )
            series.append(
                {
                    _AXIS_KEYS[axis]: row[_AXIS_KEYS[axis]],
                    "measured": row["prq_peb"],
                    "estimated": estimate,
                }
            )
        return series

    return {
        "model": model,
        "vs_users": row_series(user_rows, "n_users"),
        "vs_policies": row_series(policy_rows, "n_policies"),
        "vs_theta": row_series(theta_rows, "theta"),
    }


_AXIS_KEYS = {"n_users": "n_users", "n_policies": "n_policies", "theta": "theta"}
