"""Experiment harness: workload assembly, I/O measurement, reporting.

* :mod:`repro.bench.oracle` — brute-force evaluators of PRQ/PkNN used as
  the correctness ground truth everywhere;
* :mod:`repro.bench.harness` — builds the PEB-tree and the spatial-filter
  baseline over one shared workload and measures average I/O per query
  under the paper's 50-page LRU buffer;
* :mod:`repro.bench.experiments` — per-figure parameter sweeps;
* :mod:`repro.bench.reporting` — plain-text series tables;
* :mod:`repro.bench.report` — the EXPERIMENTS.md generator with
  automatic paper-vs-measured shape verdicts.
"""

from repro.bench.harness import ExperimentConfig, ExperimentHarness, QueryCosts
from repro.bench.oracle import brute_force_pknn, brute_force_prq

__all__ = [
    "ExperimentConfig",
    "ExperimentHarness",
    "QueryCosts",
    "brute_force_pknn",
    "brute_force_prq",
]
