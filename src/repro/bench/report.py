"""EXPERIMENTS.md generator: paper-vs-measured for every table and figure.

Runs the same experiment drivers the benchmark suite uses
(:mod:`repro.bench.experiments`) and renders one markdown section per
figure: the paper's qualitative claim, the measured series, and an
automatic verdict on whether the claim's *shape* holds (who wins, what
trends, where it flattens).  Absolute numbers are not expected to match
the paper — its substrate was a 2011 testbed, ours a simulated disk —
but winners, trends, and crossovers must.

Run as::

    python -m repro report [--scale reduced|paper] [--output EXPERIMENTS.md]

The reduced preset takes minutes; the paper preset reproduces Table 1
verbatim and takes correspondingly longer.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from repro.bench.experiments import (
    HarnessCache,
    ScalePreset,
    fig11a_encoding_vs_users,
    fig11b_encoding_vs_policies,
    fig12_vs_users,
    fig13_vs_policies,
    fig14_vs_grouping,
    fig15a_vs_window,
    fig15b_vs_k,
    fig16_vs_destinations,
    fig17_vs_speed,
    fig18_vs_updates,
    fig19_cost_model,
    scale_preset,
)
from repro.obs.timer import timer


@dataclass
class Section:
    """One figure's block in EXPERIMENTS.md."""

    figure: str
    title: str
    paper_claim: str
    columns: list[str]
    rows: list[list[str]]
    verdicts: list[str] = field(default_factory=list)

    def to_markdown(self) -> str:
        lines = [f"### {self.figure} — {self.title}", ""]
        lines.append(f"*Paper:* {self.paper_claim}")
        lines.append("")
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(row) + " |")
        lines.append("")
        for verdict in self.verdicts:
            lines.append(f"- {verdict}")
        lines.append("")
        return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def _speedups(rows, peb_key, base_key):
    return [
        row[base_key] / row[peb_key] if row[peb_key] > 0 else float("inf")
        for row in rows
    ]


def _wins_verdict(rows, peb_key, base_key, label) -> list[str]:
    speedups = _speedups(rows, peb_key, base_key)
    wins = sum(1 for s in speedups if s > 1.0)
    verdict = (
        f"PEB-tree wins {wins}/{len(rows)} points on {label}; "
        f"speedup {min(speedups):.1f}x..{max(speedups):.1f}x "
        f"(median {statistics.median(speedups):.1f}x)."
    )
    shape = "HOLDS" if wins == len(rows) else ("MOSTLY HOLDS" if wins >= len(rows) - 1 else "DEVIATES")
    return [verdict, f"Shape: **{shape}**."]


def _trend(values, label, expect: str, tolerance: float = 0.0) -> str:
    """Describe whether a series grows/shrinks/stays flat as expected."""
    first, last = values[0], values[-1]
    if expect == "grows":
        ok = last > first
    elif expect == "shrinks":
        ok = last < first
    else:  # "flat": max within a band of the min (x2.5 or +tolerance)
        ok = max(values) <= max(2.5 * min(values), min(values) + tolerance)
    status = "HOLDS" if ok else "DEVIATES"
    return (
        f"{label}: {first:.2f} -> {last:.2f} "
        f"(expected to {expect.replace('flat', 'stay flat')}): **{status}**."
    )


# ----------------------------------------------------------------------
# Section builders
# ----------------------------------------------------------------------


def build_fig11(preset: ScalePreset) -> list[Section]:
    rows_a = fig11a_encoding_vs_users(preset)
    rows_b = fig11b_encoding_vs_policies(preset)
    section_a = Section(
        figure="Figure 11(a)",
        title="policy-encoding time vs number of users",
        paper_claim=(
            "preprocessing time increases linearly with the number of "
            "users and stays low (about 10 s at 100K users on 2011 hardware)."
        ),
        columns=["users", "seconds"],
        rows=[[_fmt(r["n_users"]), f"{r['seconds']:.3f}"] for r in rows_a],
    )
    seconds = [r["seconds"] for r in rows_a]
    users = [r["n_users"] for r in rows_a]
    # Linearity: time per user at the two ends within a factor ~3.
    per_user_first = seconds[0] / users[0]
    per_user_last = seconds[-1] / users[-1]
    ratio = per_user_last / per_user_first if per_user_first > 0 else float("inf")
    status = "HOLDS" if ratio < 3.0 else "DEVIATES"
    section_a.verdicts = [
        _trend(seconds, "encoding seconds", "grows"),
        f"Per-user cost ratio end/start {ratio:.2f} (≈1 means linear): **{status}**.",
    ]
    section_b = Section(
        figure="Figure 11(b)",
        title="policy-encoding time vs policies per user",
        paper_claim="encoding time increases with the policy count but stays low.",
        columns=["policies/user", "seconds"],
        rows=[[_fmt(r["n_policies"]), f"{r['seconds']:.3f}"] for r in rows_b],
        verdicts=[_trend([r["seconds"] for r in rows_b], "encoding seconds", "grows")],
    )
    return [section_a, section_b]


def build_fig12(preset, cache) -> list[Section]:
    rows = fig12_vs_users(preset, cache)
    table = [
        [
            _fmt(r["n_users"]),
            _fmt(r["prq_peb"]),
            _fmt(r["prq_base"]),
            _fmt(r["knn_peb"]),
            _fmt(r["knn_base"]),
        ]
        for r in rows
    ]
    columns = ["users", "PRQ PEB", "PRQ spatial", "PkNN PEB", "PkNN spatial"]
    prq_section = Section(
        figure="Figure 12(a)",
        title="PRQ I/O vs total number of users",
        paper_claim=(
            "the PEB-tree yields much less I/O; the gap grows with data "
            "size, reaching about 10x at 100K users."
        ),
        columns=columns,
        rows=table,
        verdicts=_wins_verdict(rows, "prq_peb", "prq_base", "PRQ")
        + [
            _trend([r["prq_base"] for r in rows], "spatial-index PRQ I/O", "grows"),
        ],
    )
    knn_section = Section(
        figure="Figure 12(b)",
        title="PkNN I/O vs total number of users",
        paper_claim="the PEB-tree significantly outperforms the spatial index.",
        columns=columns,
        rows=table,
        verdicts=_wins_verdict(rows, "knn_peb", "knn_base", "PkNN"),
    )
    return [prq_section, knn_section]


def build_fig13(preset, cache) -> list[Section]:
    rows = fig13_vs_policies(preset, cache)
    table = [
        [
            _fmt(r["n_policies"]),
            _fmt(r["prq_peb"]),
            _fmt(r["prq_base"]),
            _fmt(r["knn_peb"]),
            _fmt(r["knn_base"]),
        ]
        for r in rows
    ]
    columns = ["policies/user", "PRQ PEB", "PRQ spatial", "PkNN PEB", "PkNN spatial"]
    prq_section = Section(
        figure="Figure 13(a)",
        title="PRQ I/O vs policies per user",
        paper_claim=(
            "PEB cost increases with the number of policies (more "
            "qualifying users per query); the spatial index is "
            "independent of the policy count."
        ),
        columns=columns,
        rows=table,
        verdicts=_wins_verdict(rows, "prq_peb", "prq_base", "PRQ")
        + [
            _trend([r["prq_peb"] for r in rows], "PEB PRQ I/O", "grows"),
            _trend([r["prq_base"] for r in rows], "spatial PRQ I/O", "flat", 5.0),
        ],
    )
    knn_section = Section(
        figure="Figure 13(b)",
        title="PkNN I/O vs policies per user",
        paper_claim="the PEB-tree saves significant I/O vs the spatial index.",
        columns=columns,
        rows=table,
        verdicts=_wins_verdict(rows, "knn_peb", "knn_base", "PkNN"),
    )
    return [prq_section, knn_section]


def build_fig14(preset, cache) -> list[Section]:
    rows = fig14_vs_grouping(preset, cache)
    table = [
        [
            _fmt(r["theta"]),
            _fmt(r["prq_peb"]),
            _fmt(r["prq_base"]),
            _fmt(r["knn_peb"]),
            _fmt(r["knn_base"]),
        ]
        for r in rows
    ]
    columns = ["θ", "PRQ PEB", "PRQ spatial", "PkNN PEB", "PkNN spatial"]
    prq_peb = [r["prq_peb"] for r in rows]
    prq_section = Section(
        figure="Figure 14(a)",
        title="PRQ I/O vs grouping factor",
        paper_claim=(
            "PEB cost tends to decrease as θ grows (better grouping); the "
            "spatial index is unaffected by θ."
        ),
        columns=columns,
        rows=table,
        verdicts=[
            _trend(prq_peb, "PEB PRQ I/O", "shrinks"),
            _trend([r["prq_base"] for r in rows], "spatial PRQ I/O", "flat", 5.0),
        ]
        + _wins_verdict(rows, "prq_peb", "prq_base", "PRQ"),
    )
    knn_section = Section(
        figure="Figure 14(b)",
        title="PkNN I/O vs grouping factor",
        paper_claim="same pattern for PkNN; PEB performs best.",
        columns=columns,
        rows=table,
        verdicts=[_trend([r["knn_peb"] for r in rows], "PEB PkNN I/O", "shrinks")]
        + _wins_verdict(rows, "knn_peb", "knn_base", "PkNN"),
    )
    return [prq_section, knn_section]


def build_fig15(preset, cache) -> list[Section]:
    rows_a = fig15a_vs_window(preset, cache)
    rows_b = fig15b_vs_k(preset, cache)
    section_a = Section(
        figure="Figure 15(a)",
        title="PRQ I/O vs query-window side length",
        paper_claim=(
            "PEB cost is almost constant (bounded by the issuer's friend "
            "count); spatial-index cost increases with the window."
        ),
        columns=["window side", "PRQ PEB", "PRQ spatial"],
        rows=[
            [_fmt(r["window"]), _fmt(r["prq_peb"]), _fmt(r["prq_base"])]
            for r in rows_a
        ],
        verdicts=[
            _trend([r["prq_peb"] for r in rows_a], "PEB PRQ I/O", "flat", 5.0),
            _trend([r["prq_base"] for r in rows_a], "spatial PRQ I/O", "grows"),
        ]
        + _wins_verdict(rows_a, "prq_peb", "prq_base", "PRQ"),
    )
    section_b = Section(
        figure="Figure 15(b)",
        title="PkNN I/O vs k",
        paper_claim=(
            "PEB performance is stable in k; the spatial index degrades "
            "slightly as k grows."
        ),
        columns=["k", "PkNN PEB", "PkNN spatial"],
        rows=[
            [_fmt(r["k"]), _fmt(r["knn_peb"]), _fmt(r["knn_base"])] for r in rows_b
        ],
        verdicts=[
            _trend([r["knn_peb"] for r in rows_b], "PEB PkNN I/O", "flat", 5.0),
        ]
        + _wins_verdict(rows_b, "knn_peb", "knn_base", "PkNN"),
    )
    return [section_a, section_b]


def build_fig16(preset, cache) -> list[Section]:
    rows = fig16_vs_destinations(preset, cache)
    table = [
        [
            "uniform" if r["destinations"] == 0 else _fmt(r["destinations"]),
            _fmt(r["prq_peb"]),
            _fmt(r["prq_base"]),
            _fmt(r["knn_peb"]),
            _fmt(r["knn_base"]),
        ]
        for r in rows
    ]
    columns = ["destinations", "PRQ PEB", "PRQ spatial", "PkNN PEB", "PkNN spatial"]
    prq_section = Section(
        figure="Figure 16(a)",
        title="PRQ I/O vs number of destinations (network data)",
        paper_claim=(
            "PEB much better in all cases; destination count only "
            "slightly affects the PEB-tree (location is not the dominant "
            "key component); spatial index fluctuates slightly."
        ),
        columns=columns,
        rows=table,
        verdicts=_wins_verdict(rows, "prq_peb", "prq_base", "PRQ")
        + [_trend([r["prq_peb"] for r in rows], "PEB PRQ I/O", "flat", 5.0)],
    )
    knn_section = Section(
        figure="Figure 16(b)",
        title="PkNN I/O vs number of destinations (network data)",
        paper_claim="same pattern for PkNN.",
        columns=columns,
        rows=table,
        verdicts=_wins_verdict(rows, "knn_peb", "knn_base", "PkNN"),
    )
    return [prq_section, knn_section]


def build_fig17(preset, cache) -> list[Section]:
    rows = fig17_vs_speed(preset, cache)
    table = [
        [
            _fmt(r["max_speed"]),
            _fmt(r["prq_peb"]),
            _fmt(r["prq_base"]),
            _fmt(r["knn_peb"]),
            _fmt(r["knn_base"]),
        ]
        for r in rows
    ]
    columns = ["max speed", "PRQ PEB", "PRQ spatial", "PkNN PEB", "PkNN spatial"]
    prq_section = Section(
        figure="Figure 17(a)",
        title="PRQ I/O vs maximum object speed",
        paper_claim=(
            "spatial-index cost increases slightly with speed (larger "
            "window enlargement); the PEB-tree is relatively stable."
        ),
        columns=columns,
        rows=table,
        verdicts=[
            _trend([r["prq_base"] for r in rows], "spatial PRQ I/O", "grows"),
            _trend([r["prq_peb"] for r in rows], "PEB PRQ I/O", "flat", 5.0),
        ]
        + _wins_verdict(rows, "prq_peb", "prq_base", "PRQ"),
    )
    knn_section = Section(
        figure="Figure 17(b)",
        title="PkNN I/O vs maximum object speed",
        paper_claim="same pattern for PkNN.",
        columns=columns,
        rows=table,
        verdicts=_wins_verdict(rows, "knn_peb", "knn_base", "PkNN"),
    )
    return [prq_section, knn_section]


def build_fig18(preset) -> list[Section]:
    rows = fig18_vs_updates(preset)
    table = [
        [
            f"{r['updated_pct']}%",
            _fmt(r["prq_peb"]),
            _fmt(r["prq_base"]),
            _fmt(r["knn_peb"]),
            _fmt(r["knn_base"]),
        ]
        for r in rows
    ]
    columns = ["updated", "PRQ PEB", "PRQ spatial", "PkNN PEB", "PkNN spatial"]
    prq_section = Section(
        figure="Figure 18(a)",
        title="PRQ I/O under successive 25% update batches",
        paper_claim=(
            "query cost of both approaches only fluctuates slightly as "
            "the data set is fully updated twice."
        ),
        columns=columns,
        rows=table,
        verdicts=[
            _trend([r["prq_peb"] for r in rows], "PEB PRQ I/O", "flat", 5.0),
        ]
        + _wins_verdict(rows, "prq_peb", "prq_base", "PRQ"),
    )
    knn_section = Section(
        figure="Figure 18(b)",
        title="PkNN I/O under successive 25% update batches",
        paper_claim="same fluctuation-only pattern for PkNN.",
        columns=columns,
        rows=table,
        verdicts=_wins_verdict(rows, "knn_peb", "knn_base", "PkNN"),
    )
    return [prq_section, knn_section]


def build_fig19(preset, cache) -> list[Section]:
    data = fig19_cost_model(preset, cache)
    model = data["model"]
    sections = []
    for axis, rows, label in (
        ("n_users", data["vs_users"], "number of users"),
        ("n_policies", data["vs_policies"], "policies per user"),
        ("theta", data["vs_theta"], "grouping factor"),
    ):
        errors = [
            abs(r["estimated"] - r["measured"]) / r["measured"]
            for r in rows
            if r["measured"] > 0
        ]
        mean_err = statistics.mean(errors) if errors else 0.0
        status = "HOLDS" if mean_err < 0.5 else "DEVIATES"
        sections.append(
            Section(
                figure=f"Figure 19 ({label})",
                title=f"cost-model estimate vs measured PRQ I/O across {label}",
                paper_claim="the estimated cost tracks the actual cost quite well.",
                columns=[axis, "measured", "estimated"],
                rows=[
                    [_fmt(r[axis]), _fmt(r["measured"]), _fmt(r["estimated"])]
                    for r in rows
                ],
                verdicts=[
                    f"Mean relative error {mean_err:.1%} "
                    f"(calibrated a1={model.a1:.3g}, a2={model.a2:.3g}): **{status}**."
                ],
            )
        )
    return sections


# ----------------------------------------------------------------------
# Assembly
# ----------------------------------------------------------------------


def build_all_sections(preset: ScalePreset, cache: HarnessCache) -> list[Section]:
    sections: list[Section] = []
    sections += build_fig11(preset)
    sections += build_fig12(preset, cache)
    sections += build_fig13(preset, cache)
    sections += build_fig14(preset, cache)
    sections += build_fig15(preset, cache)
    sections += build_fig16(preset, cache)
    sections += build_fig17(preset, cache)
    sections += build_fig18(preset)
    sections += build_fig19(preset, cache)
    return sections


def render_report(preset: ScalePreset, sections: list[Section], elapsed: float) -> str:
    base = preset.base
    header = f"""# EXPERIMENTS — paper vs measured

Reproduction of the evaluation of *"A Moving-Object Index for Efficient
Query Processing with Peer-Wise Location Privacy"* (Lin et al., PVLDB
5(1), 2011), Section 7.

Generated by `python -m repro report --scale {preset.name}` in
{elapsed:.0f} s.  Costs are **average physical page reads per query**
over {base.n_queries} fresh random queries on a {base.buffer_pages}-page
LRU buffer ({base.page_size}-byte pages), exactly the paper's
methodology (Section 7.1).  `PEB` is the PEB-tree, `spatial` the
Bx-tree + policy-filter baseline of Section 4.

**Scale.** Preset `{preset.name}`: {base.n_users} users,
{base.n_policies} policies/user, θ = {base.grouping_factor},
window {base.window_side:.0f}, k = {base.k}.  The `paper` preset
(`REPRO_SCALE=paper`) reproduces Table 1 verbatim; the reduced preset
shrinks the population ~10x and the page size to 1 KiB so the
index-pages : buffer-pages ratio stays in the paper's regime.  Shapes
(winners, trends, crossovers) are preserved; absolute I/O counts are
smaller than the paper's.

**Verdict legend.** Each figure ends with automatic checks: **HOLDS**
(the paper's qualitative claim reproduces), **MOSTLY HOLDS** (one point
off), **DEVIATES** (investigate).

## Table 1 — parameters

| parameter | paper default | this run |
|---|---|---|
| buffer | 50 pages | {base.buffer_pages} pages |
| number of users | 60K (10K..100K) | {base.n_users} |
| maximum speed | 3 (1..6) | {base.max_speed} |
| query window side | 200 (100..1000) | {base.window_side:.0f} |
| k | 5 (1..10) | {base.k} |
| grouping factor θ | 0.7 (0..1) | {base.grouping_factor} |
| policies per user | 50 (10..100) | {base.n_policies} |
| page size | 4096 B | {base.page_size} B |

## Figures

"""
    body = "\n".join(section.to_markdown() for section in sections)
    holds = sum("**HOLDS**" in v for s in sections for v in s.verdicts)
    mostly = sum("**MOSTLY HOLDS**" in v for s in sections for v in s.verdicts)
    deviates = sum("**DEVIATES**" in v for s in sections for v in s.verdicts)
    summary = f"""
## Summary

Across all automatic shape checks: {holds} HOLDS, {mostly} MOSTLY HOLDS,
{deviates} DEVIATES.

Beyond the paper's figures, `benchmarks/bench_ablations.py` measures the
design-choice ablations (key field order, PRQ range strategy, PkNN
traversal order, sequence-value encoder, space-filling curve, buffer
policy and size), `benchmarks/bench_tpr_baseline.py` re-instantiates the
Section 4 filtering baseline on the TPR-tree (reproducing the Section 6
cost model's crossover prediction), and
`benchmarks/bench_continuous.py` measures the continuous-PRQ extension
against repeated snapshot queries — run `pytest benchmarks/
--benchmark-only -s` to regenerate those tables.
"""
    return header + body + summary


def generate(output_path: str, preset: ScalePreset | None = None) -> str:
    """Run every experiment and write the report; returns the markdown."""
    active = preset if preset is not None else scale_preset()
    cache = HarnessCache()
    watch = timer()
    sections = build_all_sections(active, cache)
    elapsed = watch.stop()
    markdown = render_report(active, sections, elapsed)
    with open(output_path, "w") as handle:
        handle.write(markdown)
    return markdown
