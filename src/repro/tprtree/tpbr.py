"""Time-parameterized bounding rectangles (TPBRs).

The TPR-tree [27] — the R-tree-family representative in the paper's
Section 2.1 taxonomy — bounds moving objects *conservatively over time*:
a node's rectangle has position bounds valid at a reference time plus
velocity bounds, and the rectangle ``bounds_at(t)`` grows with the most
extreme member velocities.  A TPBR therefore never loses an enclosed
trajectory: once an object's position and velocity fit, they fit at
every later time.

This module is pure geometry/algebra; the tree structure lives in
:mod:`repro.tprtree.tree`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.motion.objects import MovingObject
from repro.spatial.geometry import Rect


@dataclass(frozen=True)
class TPBR:
    """A conservative moving bounding rectangle.

    Attributes:
        x_lo, x_hi, y_lo, y_hi: position bounds at ``t_ref``.
        vx_lo, vx_hi, vy_lo, vy_hi: velocity bounds; the lower position
            bound moves with the lower velocity, the upper with the upper,
            so the rectangle only ever grows (or keeps its width) as time
            advances past ``t_ref``.
        t_ref: the reference time of the position bounds.
    """

    x_lo: float
    x_hi: float
    y_lo: float
    y_hi: float
    vx_lo: float
    vx_hi: float
    vy_lo: float
    vy_hi: float
    t_ref: float

    def __post_init__(self):
        if self.x_lo > self.x_hi or self.y_lo > self.y_hi:
            raise ValueError(f"degenerate position bounds: {self}")
        if self.vx_lo > self.vx_hi or self.vy_lo > self.vy_hi:
            raise ValueError(f"degenerate velocity bounds: {self}")

    @classmethod
    def from_object(cls, obj: MovingObject) -> TPBR:
        """The degenerate (point) TPBR of one moving object."""
        return cls(
            x_lo=obj.x,
            x_hi=obj.x,
            y_lo=obj.y,
            y_hi=obj.y,
            vx_lo=obj.vx,
            vx_hi=obj.vx,
            vy_lo=obj.vy,
            vy_hi=obj.vy,
            t_ref=obj.t_update,
        )

    # ------------------------------------------------------------------
    # Time evolution
    # ------------------------------------------------------------------

    def bounds_at(self, t: float) -> Rect:
        """The conservative rectangle at time ``t`` — any ``t``.

        Forward of ``t_ref`` the lower wall moves with the lower velocity
        and the upper wall with the upper one.  *Backward* the roles
        swap: running a member trajectory backwards, the fastest-right
        member came from furthest left.  Two-sidedness matters because
        ``union`` advances ``t_ref`` to the later operand's — queries at
        the current time may then address a slightly earlier instant
        than a freshly updated entry's reference, and freezing (instead
        of widening) the walls there would drop valid answers; found by
        the hypothesis workload test.
        """
        dt = t - self.t_ref
        if dt >= 0.0:
            return Rect(
                self.x_lo + self.vx_lo * dt,
                self.x_hi + self.vx_hi * dt,
                self.y_lo + self.vy_lo * dt,
                self.y_hi + self.vy_hi * dt,
            )
        return Rect(
            self.x_lo + self.vx_hi * dt,
            self.x_hi + self.vx_lo * dt,
            self.y_lo + self.vy_hi * dt,
            self.y_hi + self.vy_lo * dt,
        )

    def as_of(self, t: float) -> TPBR:
        """The same TPBR re-referenced to a later time ``t``."""
        if t <= self.t_ref:
            return self
        box = self.bounds_at(t)
        return TPBR(
            x_lo=box.x_lo,
            x_hi=box.x_hi,
            y_lo=box.y_lo,
            y_hi=box.y_hi,
            vx_lo=self.vx_lo,
            vx_hi=self.vx_hi,
            vy_lo=self.vy_lo,
            vy_hi=self.vy_hi,
            t_ref=t,
        )

    def union(self, other: TPBR) -> TPBR:
        """The tightest common conservative TPBR of the two.

        Both operands are advanced to the later reference time, then
        position and velocity bounds are merged by min/max.
        """
        t_ref = max(self.t_ref, other.t_ref)
        a = self.as_of(t_ref)
        b = other.as_of(t_ref)
        return TPBR(
            x_lo=min(a.x_lo, b.x_lo),
            x_hi=max(a.x_hi, b.x_hi),
            y_lo=min(a.y_lo, b.y_lo),
            y_hi=max(a.y_hi, b.y_hi),
            vx_lo=min(a.vx_lo, b.vx_lo),
            vx_hi=max(a.vx_hi, b.vx_hi),
            vy_lo=min(a.vy_lo, b.vy_lo),
            vy_hi=max(a.vy_hi, b.vy_hi),
            t_ref=t_ref,
        )

    # ------------------------------------------------------------------
    # Measures
    # ------------------------------------------------------------------

    def area_at(self, t: float) -> float:
        """Area of the conservative rectangle at time ``t``."""
        return self.bounds_at(t).area

    def area_integral(self, t_from: float, t_to: float) -> float:
        """∫ area(t) dt over ``[t_from, t_to]`` — the TPR-tree's insertion
        objective [27] uses the integral over the time horizon.

        Width and height are linear in t, so the area is quadratic and
        the integral has a closed form.
        """
        if t_to < t_from:
            raise ValueError(f"integral bounds reversed: [{t_from}, {t_to}]")
        t0 = max(t_from, self.t_ref)
        if t_to <= t0:
            return 0.0
        # width(t) = w0 + wv * (t - t0); height likewise.
        dt0 = t0 - self.t_ref
        w0 = (self.x_hi - self.x_lo) + (self.vx_hi - self.vx_lo) * dt0
        h0 = (self.y_hi - self.y_lo) + (self.vy_hi - self.vy_lo) * dt0
        wv = self.vx_hi - self.vx_lo
        hv = self.vy_hi - self.vy_lo
        span = t_to - t0
        # ∫ (w0 + wv u)(h0 + hv u) du, u in [0, span]
        return (
            w0 * h0 * span
            + (w0 * hv + h0 * wv) * span**2 / 2.0
            + wv * hv * span**3 / 3.0
        )

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------

    def intersects_at(self, rect: Rect, t: float) -> bool:
        """Conservative rectangle-vs-query test at time ``t``."""
        return self.bounds_at(t).intersects(rect)

    def min_distance_at(self, x: float, y: float, t: float) -> float:
        """Distance from a point to the conservative rectangle at ``t``."""
        return self.bounds_at(t).min_distance(x, y)

    def contains_object(self, obj: MovingObject) -> bool:
        """True when the object's trajectory is enclosed from now on.

        Checked at ``t* = max(t_ref, obj.t_update)``: if the object's
        position fits the bounds at ``t*`` and its velocity fits the
        velocity bounds, conservativeness keeps it inside for all later
        times.  This is the descent test the delete path relies on.
        """
        t_star = max(self.t_ref, obj.t_update)
        x, y = obj.position_at(t_star)
        box = self.bounds_at(t_star)
        eps = 1e-9  # float slack: union() arithmetic may round the walls
        return (
            box.x_lo - eps <= x <= box.x_hi + eps
            and box.y_lo - eps <= y <= box.y_hi + eps
            and self.vx_lo - eps <= obj.vx <= self.vx_hi + eps
            and self.vy_lo - eps <= obj.vy <= self.vy_hi + eps
        )


def union_all(tpbrs: list[TPBR]) -> TPBR:
    """Union of a non-empty list of TPBRs."""
    if not tpbrs:
        raise ValueError("cannot take the union of zero TPBRs")
    merged = tpbrs[0]
    for tpbr in tpbrs[1:]:
        merged = merged.union(tpbr)
    return merged
