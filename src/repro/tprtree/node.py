"""TPR-tree nodes and their byte layout.

Every node packs into one disk page, like the B+-tree's nodes, so the
TPR-tree baseline is measured on exactly the same storage substrate as
the PEB-tree and the Bx-tree.

Leaf page::

    type:u8  count:u16  count * [uid:u32 x:f64 y:f64 vx:f64 vy:f64 t:f64 pntp:u32]

Internal page::

    type:u8  count:u16  count * [child:i64 tpbr:9*f64]

Leaf entries reuse the moving-object record of the other indexes (48
bytes), so leaf fan-out matches; internal entries carry a full TPBR (80
bytes incl. the child pointer), giving the realistically smaller
internal fan-out of R-tree-family structures.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.motion.objects import MovingObject
from repro.tprtree.tpbr import TPBR, union_all

LEAF_TYPE = 1
INTERNAL_TYPE = 2

_HEADER = struct.Struct(">BH")  # type, count
_LEAF_ENTRY = struct.Struct(">IdddddI")  # uid x y vx vy t pntp
_INTERNAL_ENTRY = struct.Struct(">q9d")  # child + tpbr fields

#: Node header bytes.
HEADER_SIZE = _HEADER.size
#: Leaf entry bytes (48).
LEAF_ENTRY_SIZE = _LEAF_ENTRY.size
#: Internal entry bytes (80).
INTERNAL_ENTRY_SIZE = _INTERNAL_ENTRY.size


@dataclass
class TPRLeaf:
    """A leaf: moving-object states plus their policy links."""

    entries: list[tuple[MovingObject, int]] = field(default_factory=list)

    is_leaf = True

    def tpbr(self) -> TPBR:
        """Tightest TPBR over the member objects."""
        return union_all([TPBR.from_object(obj) for obj, _ in self.entries])

    def __len__(self) -> int:
        return len(self.entries)


@dataclass
class TPRInternal:
    """An internal node: child page ids with their conservative TPBRs."""

    entries: list[tuple[int, TPBR]] = field(default_factory=list)

    is_leaf = False

    def tpbr(self) -> TPBR:
        """Tightest TPBR over the child TPBRs."""
        return union_all([tpbr for _, tpbr in self.entries])

    def child_index(self, page_id: int) -> int:
        """Position of a child entry (ValueError when absent)."""
        for index, (child, _) in enumerate(self.entries):
            if child == page_id:
                return index
        raise ValueError(f"page {page_id} is not a child of this node")

    def __len__(self) -> int:
        return len(self.entries)


class TPRNodeSerializer:
    """PageSerializer for TPR-tree nodes."""

    def pack(self, node) -> bytes:
        if node.is_leaf:
            parts = [_HEADER.pack(LEAF_TYPE, len(node.entries))]
            for obj, pntp in node.entries:
                parts.append(
                    _LEAF_ENTRY.pack(
                        obj.uid, obj.x, obj.y, obj.vx, obj.vy, obj.t_update, pntp
                    )
                )
            return b"".join(parts)
        parts = [_HEADER.pack(INTERNAL_TYPE, len(node.entries))]
        for child, tpbr in node.entries:
            parts.append(
                _INTERNAL_ENTRY.pack(
                    child,
                    tpbr.x_lo,
                    tpbr.x_hi,
                    tpbr.y_lo,
                    tpbr.y_hi,
                    tpbr.vx_lo,
                    tpbr.vx_hi,
                    tpbr.vy_lo,
                    tpbr.vy_hi,
                    tpbr.t_ref,
                )
            )
        return b"".join(parts)

    def parse(self, image: bytes):
        node_type, count = _HEADER.unpack_from(image, 0)
        offset = HEADER_SIZE
        if node_type == LEAF_TYPE:
            entries = []
            for _ in range(count):
                uid, x, y, vx, vy, t, pntp = _LEAF_ENTRY.unpack_from(image, offset)
                offset += LEAF_ENTRY_SIZE
                entries.append(
                    (MovingObject(uid=uid, x=x, y=y, vx=vx, vy=vy, t_update=t), pntp)
                )
            return TPRLeaf(entries=entries)
        if node_type == INTERNAL_TYPE:
            children = []
            for _ in range(count):
                fields = _INTERNAL_ENTRY.unpack_from(image, offset)
                offset += INTERNAL_ENTRY_SIZE
                children.append(
                    (
                        fields[0],
                        TPBR(
                            x_lo=fields[1],
                            x_hi=fields[2],
                            y_lo=fields[3],
                            y_hi=fields[4],
                            vx_lo=fields[5],
                            vx_hi=fields[6],
                            vy_lo=fields[7],
                            vy_hi=fields[8],
                            t_ref=fields[9],
                        ),
                    )
                )
            return TPRInternal(entries=children)
        raise ValueError(f"unknown node type byte {node_type!r}")
