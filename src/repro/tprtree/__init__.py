"""The TPR-tree substrate (Šaltenis et al. [27]).

The R-tree-family moving-object index of the paper's Section 2.1
taxonomy, built on the same paged storage engine as the B+-tree-family
indexes.  Used as a *second* spatial baseline for the Section 4
filtering approach:

* :mod:`repro.tprtree.tpbr` — time-parameterized bounding rectangles;
* :mod:`repro.tprtree.node` — page-sized leaf/internal nodes;
* :mod:`repro.tprtree.tree` — the index: area-integral insertion,
  conservative deletion, range and best-first kNN queries;
* :mod:`repro.tprtree.filter_baseline` — TPR-tree + policy filter.
"""

from repro.tprtree.filter_baseline import TPRFilterBaseline
from repro.tprtree.node import TPRInternal, TPRLeaf, TPRNodeSerializer
from repro.tprtree.tpbr import TPBR, union_all
from repro.tprtree.tree import TPRTree, TPRTreeConfig

__all__ = [
    "TPBR",
    "TPRFilterBaseline",
    "TPRInternal",
    "TPRLeaf",
    "TPRNodeSerializer",
    "TPRTree",
    "TPRTreeConfig",
    "union_all",
]
