"""TPR-tree + policy-filter baseline.

The same Section 4 recipe as the Bx-tree baseline — answer the spatial
part with a privacy-unaware index, then filter by policy — but with the
R-tree-family representative underneath.  Comparing both baselines
against the PEB-tree shows the paper's gap is a property of the
*filtering approach*, not of the Bx-tree specifically.
"""

from __future__ import annotations

from repro.motion.objects import MovingObject
from repro.policy.store import PolicyStore
from repro.spatial.geometry import Rect
from repro.tprtree.tree import TPRTree


class TPRFilterBaseline:
    """Privacy-aware queries via TPR-tree search + policy filtering.

    Args:
        tree: the privacy-unaware TPR-tree holding all users.
        store: the policy directory used in the filtering step (policy
            checks are main-memory, exactly as in the paper's accounting).
    """

    def __init__(self, tree: TPRTree, store: PolicyStore):
        self.tree = tree
        self.store = store

    def range_query(
        self, q_uid: int, window: Rect, t_query: float
    ) -> list[MovingObject]:
        """PRQ (Definition 2) by filtering a TPR-tree range query."""
        results = []
        for obj in self.tree.range_query(window, t_query):
            if obj.uid == q_uid:
                continue
            x, y = obj.position_at(t_query)
            if self.store.evaluate(obj.uid, q_uid, x, y, t_query):
                results.append(obj)
        return results

    def knn_query(
        self, q_uid: int, qx: float, qy: float, k: int, t_query: float
    ) -> list[tuple[float, MovingObject]]:
        """PkNN (Definition 3) by pulling best-first neighbours until k
        policy-passing users are found — the Figure 4 walk, literally."""
        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        qualified: list[tuple[float, MovingObject]] = []
        for distance, obj in self.tree.nearest(qx, qy, t_query):
            if obj.uid == q_uid:
                continue
            x, y = obj.position_at(t_query)
            if self.store.evaluate(obj.uid, q_uid, x, y, t_query):
                qualified.append((distance, obj))
                if len(qualified) == k:
                    break
        return qualified
