"""The TPR-tree: a time-parameterized R-tree for moving objects [27].

The paper's Section 2.1 groups moving-object indexes into three
families; the TPR-tree heads the R-tree family, and the benchmark study
the paper cites [3] names it one of the three best indexes.  Having it
next to the Bx-tree lets the evaluation check that the PEB-tree's win
over "a spatial index + policy filter" (Section 4) is not an artifact of
the specific spatial index chosen.

Structure and algorithms follow Šaltenis et al. [27] in their practical
essentials:

* entries are bounded by conservative :class:`~repro.tprtree.tpbr.TPBR`
  rectangles whose walls move with extreme member velocities;
* insertion descends by least enlargement of the **area integral** over
  the time horizon ``H`` (the paper's ∫A(t)dt objective);
* splits pick the axis with the larger center spread at insertion time
  and the division minimizing the two groups' summed area integrals;
* deletion descends only subtrees whose TPBR encloses the object's
  trajectory, removes the entry, prunes empty nodes, and collapses a
  single-child root.

Every node lives in one disk page through the shared buffer pool, so
query costs are measured in the same physical-page reads as the other
indexes.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

from repro.motion.objects import MovingObject
from repro.spatial.geometry import Rect, euclidean
from repro.storage.buffer import BufferPool
from repro.tprtree.node import (
    HEADER_SIZE,
    INTERNAL_ENTRY_SIZE,
    LEAF_ENTRY_SIZE,
    TPRInternal,
    TPRLeaf,
    TPRNodeSerializer,
)
from repro.tprtree.tpbr import TPBR

#: Default time horizon for the area-integral objective (the TPR-tree's
#: H parameter): one maximum update interval, per common practice.
DEFAULT_HORIZON = 120.0


@dataclass(frozen=True)
class TPRTreeConfig:
    """Capacities derived from the page geometry plus the horizon H."""

    page_size: int = 4096
    horizon: float = DEFAULT_HORIZON

    @property
    def leaf_capacity(self) -> int:
        capacity = (self.page_size - HEADER_SIZE) // LEAF_ENTRY_SIZE
        if capacity < 2:
            raise ValueError(f"page size {self.page_size} too small for a leaf")
        return capacity

    @property
    def internal_capacity(self) -> int:
        capacity = (self.page_size - HEADER_SIZE) // INTERNAL_ENTRY_SIZE
        if capacity < 2:
            raise ValueError(f"page size {self.page_size} too small for a node")
        return capacity

    def min_fill(self, capacity: int) -> int:
        return max(1, capacity // 3)


class TPRTree:
    """A paged TPR-tree with insert/delete/update and query operations."""

    def __init__(self, pool: BufferPool, config: TPRTreeConfig | None = None):
        self.pool = pool
        self.config = config if config is not None else TPRTreeConfig(
            page_size=pool.disk.page_size
        )
        if self.config.page_size > pool.disk.page_size:
            raise ValueError(
                f"configured page size {self.config.page_size} exceeds the "
                f"disk's {pool.disk.page_size}"
            )
        self.serializer = TPRNodeSerializer()
        self.root_id = self._allocate(TPRLeaf())
        self._live: dict[int, tuple[MovingObject, int]] = {}
        self.now = 0.0

    # ------------------------------------------------------------------
    # Page plumbing
    # ------------------------------------------------------------------

    def _allocate(self, node) -> int:
        page_id = self.pool.disk.allocate()
        self.pool.put(page_id, node)
        return page_id

    def _node(self, page_id: int):
        return self.pool.get(page_id, self.serializer)

    def _store(self, page_id: int, node) -> None:
        self.pool.put(page_id, node)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def insert(self, obj: MovingObject, pntp: int = 0) -> None:
        """Index an object's current state."""
        if obj.uid in self._live:
            raise KeyError(f"user {obj.uid} is already indexed; use update()")
        self.now = max(self.now, obj.t_update)
        entry_tpbr = TPBR.from_object(obj)

        # Descend by least area-integral enlargement, remembering the path.
        path: list[tuple[int, TPRInternal, int]] = []  # (page, node, child slot)
        page_id = self.root_id
        node = self._node(page_id)
        while not node.is_leaf:
            slot = self._choose_subtree(node, entry_tpbr)
            path.append((page_id, node, slot))
            page_id = node.entries[slot][0]
            node = self._node(page_id)

        node.entries.append((obj, pntp))
        self._live[obj.uid] = (obj, pntp)

        if len(node) <= self.config.leaf_capacity:
            self._store(page_id, node)
            self._widen_path(path, entry_tpbr)
            return
        self._split_and_propagate(page_id, node, path)

    def delete(self, uid: int) -> bool:
        """Remove a user's entry; True if the user was indexed."""
        state = self._live.pop(uid, None)
        if state is None:
            return False
        obj, _ = state
        removed = self._delete_descend(self.root_id, obj)
        if not removed:
            raise RuntimeError(f"update memo out of sync for user {uid}")
        self._collapse_root()
        return True

    def update(self, obj: MovingObject, pntp: int = 0) -> None:
        """Replace a user's entry with a new state (delete + insert)."""
        self.delete(obj.uid)
        self.insert(obj, pntp)

    def contains(self, uid: int) -> bool:
        return uid in self._live

    def __len__(self) -> int:
        return len(self._live)

    @property
    def stats(self):
        """I/O counters of the underlying disk."""
        return self.pool.stats

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def range_query(self, rect: Rect, t: float) -> list[MovingObject]:
        """Objects whose (predicted) position at ``t`` lies inside ``rect``."""
        results: list[MovingObject] = []
        stack = [self.root_id]
        while stack:
            node = self._node(stack.pop())
            if node.is_leaf:
                for obj, _ in node.entries:
                    x, y = obj.position_at(t)
                    if rect.contains(x, y):
                        results.append(obj)
                continue
            for child, tpbr in node.entries:
                if tpbr.intersects_at(rect, t):
                    stack.append(child)
        return results

    def nearest(self, x: float, y: float, t: float):
        """Yield ``(distance, object)`` in ascending distance at time ``t``.

        Classic best-first traversal; consuming lazily lets the policy
        filter baseline pull candidates until k qualify.
        """
        counter = itertools.count()
        heap: list[tuple[float, int, bool, object]] = [
            (0.0, next(counter), False, self.root_id)
        ]
        while heap:
            distance, _, is_object, item = heapq.heappop(heap)
            if is_object:
                yield distance, item
                continue
            node = self._node(item)
            if node.is_leaf:
                for obj, _ in node.entries:
                    ox, oy = obj.position_at(t)
                    heapq.heappush(
                        heap, (euclidean(x, y, ox, oy), next(counter), True, obj)
                    )
            else:
                for child, tpbr in node.entries:
                    heapq.heappush(
                        heap,
                        (tpbr.min_distance_at(x, y, t), next(counter), False, child),
                    )

    def knn(self, x: float, y: float, k: int, t: float) -> list[tuple[float, MovingObject]]:
        """The k nearest objects to ``(x, y)`` at time ``t``."""
        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        return list(itertools.islice(self.nearest(x, y, t), k))

    def fetch_all(self) -> list[MovingObject]:
        """Every indexed object (diagnostic full scan)."""
        results = []
        stack = [self.root_id]
        while stack:
            node = self._node(stack.pop())
            if node.is_leaf:
                results.extend(obj for obj, _ in node.entries)
            else:
                stack.extend(child for child, _ in node.entries)
        return results

    # ------------------------------------------------------------------
    # Structure metrics / invariants
    # ------------------------------------------------------------------

    @property
    def height(self) -> int:
        """Levels from root to leaves (1 when the root is a leaf)."""
        levels = 1
        node = self._node(self.root_id)
        while not node.is_leaf:
            levels += 1
            node = self._node(node.entries[0][0])
        return levels

    def validate(self) -> None:
        """Check structural invariants; raises AssertionError on violation.

        * every internal entry's TPBR conservatively bounds its subtree;
        * all leaves sit at the same depth;
        * no node exceeds its capacity.
        """
        leaf_depths: set[int] = set()

        def check(page_id: int, depth: int, bound: TPBR | None):
            node = self._node(page_id)
            if node.is_leaf:
                assert len(node) <= self.config.leaf_capacity, "leaf overflow"
                leaf_depths.add(depth)
                if bound is not None:
                    for obj, _ in node.entries:
                        assert bound.contains_object(obj), (
                            f"object {obj.uid} escapes its TPBR bound"
                        )
                return
            assert len(node) <= self.config.internal_capacity, "node overflow"
            assert len(node) >= 1, "empty internal node"
            for child, tpbr in node.entries:
                check(child, depth + 1, tpbr)

        check(self.root_id, 0, None)
        assert len(leaf_depths) <= 1, f"leaves at mixed depths: {leaf_depths}"

    # ------------------------------------------------------------------
    # Insertion internals
    # ------------------------------------------------------------------

    def _objective(self, tpbr: TPBR) -> float:
        return tpbr.area_integral(self.now, self.now + self.config.horizon)

    def _choose_subtree(self, node: TPRInternal, entry: TPBR) -> int:
        """Child slot with least area-integral enlargement (ties: smaller)."""
        best_slot = 0
        best_key: tuple[float, float] | None = None
        for slot, (_, tpbr) in enumerate(node.entries):
            current = self._objective(tpbr)
            enlarged = self._objective(tpbr.union(entry))
            key = (enlarged - current, current)
            if best_key is None or key < best_key:
                best_key = key
                best_slot = slot
        return best_slot

    def _widen_path(self, path, entry: TPBR) -> None:
        """Union the new entry into every ancestor's child TPBR."""
        for page_id, node, slot in reversed(path):
            child, tpbr = node.entries[slot]
            node.entries[slot] = (child, tpbr.union(entry))
            self._store(page_id, node)

    def _split_and_propagate(self, page_id, node, path) -> None:
        """Split an overflowing node and push splits up the path."""
        while True:
            sibling = self._split(node)
            sibling_id = self._allocate(sibling)
            self._store(page_id, node)

            if not path:
                # Grow a new root over the two halves.
                root = TPRInternal(
                    entries=[
                        (page_id, node.tpbr()),
                        (sibling_id, sibling.tpbr()),
                    ]
                )
                self.root_id = self._allocate(root)
                return

            parent_id, parent, slot = path.pop()
            parent.entries[slot] = (page_id, node.tpbr())
            parent.entries.insert(slot + 1, (sibling_id, sibling.tpbr()))
            if len(parent) <= self.config.internal_capacity:
                self._store(parent_id, parent)
                self._refresh_path(path)
                return
            page_id, node = parent_id, parent

    def _refresh_path(self, path) -> None:
        """Recompute each ancestor's child TPBR after a lower split."""
        for page_id, node, slot in reversed(path):
            child_id, _ = node.entries[slot]
            child = self._node(child_id)
            node.entries[slot] = (child_id, child.tpbr())
            self._store(page_id, node)

    def _split(self, node):
        """Split an overflowing node; mutates ``node``, returns the sibling.

        Axis: larger spread of entry centers at ``now``.  Division point:
        least summed area integral of the two groups, respecting the
        minimum fill.
        """
        if node.is_leaf:
            tpbrs = [TPBR.from_object(obj) for obj, _ in node.entries]
            capacity = self.config.leaf_capacity
        else:
            tpbrs = [tpbr for _, tpbr in node.entries]
            capacity = self.config.internal_capacity
        centers = [tpbr.bounds_at(self.now).center for tpbr in tpbrs]

        def spread(axis: int) -> float:
            values = [center[axis] for center in centers]
            return max(values) - min(values)

        axis = 0 if spread(0) >= spread(1) else 1
        order = sorted(range(len(tpbrs)), key=lambda i: centers[i][axis])

        min_fill = self.config.min_fill(capacity)
        best_cut = min_fill
        best_cost = None
        for cut in range(min_fill, len(order) - min_fill + 1):
            left = _union_of(tpbrs, order[:cut])
            right = _union_of(tpbrs, order[cut:])
            cost = self._objective(left) + self._objective(right)
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_cut = cut

        entries = node.entries
        left_entries = [entries[i] for i in order[:best_cut]]
        right_entries = [entries[i] for i in order[best_cut:]]
        node.entries = left_entries
        if node.is_leaf:
            return TPRLeaf(entries=right_entries)
        return TPRInternal(entries=right_entries)

    # ------------------------------------------------------------------
    # Deletion internals
    # ------------------------------------------------------------------

    def _delete_descend(self, page_id: int, obj: MovingObject) -> bool:
        node = self._node(page_id)
        if node.is_leaf:
            for index, (entry, _) in enumerate(node.entries):
                if entry.uid == obj.uid:
                    del node.entries[index]
                    self._store(page_id, node)
                    return True
            return False
        for slot, (child, tpbr) in enumerate(node.entries):
            if not tpbr.contains_object(obj):
                continue
            if not self._delete_descend(child, obj):
                continue
            child_node = self._node(child)
            if len(child_node) == 0:
                del node.entries[slot]
                self.pool.discard(child)
                self.pool.disk.free(child)
            else:
                node.entries[slot] = (child, child_node.tpbr())
            self._store(page_id, node)
            return True
        return False

    def _collapse_root(self) -> None:
        """Shrink the tree when the root holds a single internal child."""
        while True:
            root = self._node(self.root_id)
            if root.is_leaf or len(root) != 1:
                return
            child_id = root.entries[0][0]
            child = self._node(child_id)
            if child.is_leaf and len(root) == 1:
                # Promote the leaf to root only when the root is trivial.
                self.pool.discard(self.root_id)
                self.pool.disk.free(self.root_id)
                self.root_id = child_id
                return
            self.pool.discard(self.root_id)
            self.pool.disk.free(self.root_id)
            self.root_id = child_id


def _union_of(tpbrs: list[TPBR], indexes: list[int]) -> TPBR:
    merged = tpbrs[indexes[0]]
    for i in indexes[1:]:
        merged = merged.union(tpbrs[i])
    return merged
