"""Command-line interface: ``python -m repro <subcommand>``.

Six subcommands cover the library's workflows end to end:

* ``demo`` — build a population, run one PRQ and one PkNN on both the
  PEB-tree and the spatial-filter baseline, print answers and I/O.
* ``batch-query`` — run one PRQ workload one-at-a-time and through the
  engine's cross-query band-scan batching, print I/O per query, the
  dedup ratio, and throughput of both modes; ``--shards N`` repeats
  the workload on a sharded multi-tree deployment.
* ``batch-update`` — apply Figure 18 update rounds one ``update`` at a
  time and through the batch update pipeline, print amortized physical
  I/O per update and the reduction per batch size; ``--shards N``
  routes an update stream across a sharded deployment.
* ``encode`` — generate a policy workload and run a sequence-value
  encoder; prints timing and assignment statistics (the Figure 11
  experiment in miniature, any encoder).
* ``serve-sim`` — run an open-loop request stream (Poisson or burst
  arrivals in virtual time) through the batching service front-end on
  a timed sharded deployment; prints the throughput-vs-tail-latency
  sweep across arrival rates (sojourn p50/p95/p99, reads per request,
  saturation).
* ``experiment`` — regenerate one figure of the paper's evaluation and
  print its series as a table.
* ``report`` — regenerate *every* figure and write EXPERIMENTS.md.
* ``cost-model`` — evaluate the Section 6 analytical cost function.
* ``trace-report`` — summarize a ``--trace`` JSON file (per-phase
  virtual-time breakdown, per-device overlap, instant counts) without
  opening Perfetto.

``serve-sim`` and ``batch-query`` accept ``--trace out.json``: the run
records virtual-time spans (queue waits, batch phases, per-shard scans,
fault instants, tail-request exemplars) and writes a Chrome trace-event
file loadable at https://ui.perfetto.dev.  Tracing is observationally
inert: a traced run's results and counters are bit-identical to an
untraced one.

All randomness is seeded; identical invocations print identical numbers.
"""

from __future__ import annotations

import argparse
import random
import sys

from repro.bench.experiments import PAPER, REDUCED
from repro.bench.harness import ExperimentConfig, ExperimentHarness
from repro.bench.reporting import SeriesTable
from repro.core.cost_model import CostModel
from repro.core.encoders import ENCODERS, make_encoder
from repro.workloads.policies import PolicyGenerator

#: Experiment names accepted by the ``experiment`` subcommand.
#: ``fig18u`` is this reproduction's write-path variant of Figure 18:
#: amortized update I/O per churn step instead of query I/O after it.
EXPERIMENTS = (
    "fig11a",
    "fig11b",
    "fig12",
    "fig13",
    "fig14",
    "fig15a",
    "fig15b",
    "fig16",
    "fig17",
    "fig18",
    "fig18u",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "PEB-tree reproduction (Lin et al., PVLDB 5(1), 2011): "
            "privacy-aware moving-object indexing."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    demo = subparsers.add_parser(
        "demo", help="run one PRQ and one PkNN on PEB-tree vs baseline"
    )
    demo.add_argument("--users", type=int, default=2000)
    demo.add_argument("--policies", type=int, default=20)
    demo.add_argument("--theta", type=float, default=0.7)
    demo.add_argument("--window", type=float, default=200.0)
    demo.add_argument("--k", type=int, default=5)
    demo.add_argument("--queries", type=int, default=20)
    demo.add_argument("--curve", choices=("z", "hilbert"), default="z")
    demo.add_argument("--buffer-policy", dest="buffer_policy",
                      choices=("lru", "fifo", "clock", "lfu"), default="lru")
    demo.add_argument("--seed", type=int, default=7)

    batch = subparsers.add_parser(
        "batch-query",
        help="measure cross-query band-scan batching vs one-at-a-time PRQs",
    )
    batch.add_argument("--users", type=int, default=2000)
    batch.add_argument("--policies", type=int, default=20)
    batch.add_argument("--theta", type=float, default=0.7)
    batch.add_argument("--window", type=float, default=200.0)
    batch.add_argument("--queries", type=int, default=64)
    batch.add_argument(
        "--shards",
        type=int,
        default=0,
        help="additionally benchmark an N-shard deployment against a "
        "single-tree clone on a fresh same-shape workload (per-shard "
        "buffers; results verified identical; 0 disables)",
    )
    batch.add_argument(
        "--latency",
        choices=("hdd", "ssd", "nvme"),
        default=None,
        help="additionally price every access through the simulated-"
        "latency subsystem and report virtual elapsed time next to the "
        "read/write counts (N-shard overlapped vs 1-shard serial; N "
        "from --shards, default 4)",
    )
    batch.add_argument(
        "--parallel-io",
        dest="parallel_io",
        action="store_true",
        help="run the overlapped deployment's per-shard work on a real "
        "thread pool too (virtual times and results are identical)",
    )
    batch.add_argument(
        "--prefetch",
        choices=("auto", "merge", "exact"),
        default=None,
        help="band prefetch policy for the batched phase: merge "
        "(unconditional, the default behavior), exact (no prefetch), "
        "or auto (cost-model + feedback driven); results are identical "
        "under every setting",
    )
    batch.add_argument(
        "--trace",
        default=None,
        metavar="OUT.json",
        help="record virtual-time spans of the batched phase and write "
        "a Chrome trace-event file (open in Perfetto; untimed storage "
        "makes these spans counter-only markers — serve-sim --trace is "
        "the timed surface)",
    )
    batch.add_argument("--seed", type=int, default=7)

    batch_update = subparsers.add_parser(
        "batch-update",
        help="measure the batch update pipeline vs one-at-a-time updates",
    )
    batch_update.add_argument("--users", type=int, default=2000)
    batch_update.add_argument("--policies", type=int, default=20)
    batch_update.add_argument("--theta", type=float, default=0.7)
    batch_update.add_argument(
        "--batch-sizes",
        dest="batch_sizes",
        default="64,256,1024",
        help="comma-separated pipeline capacities; one Figure 18 round each",
    )
    batch_update.add_argument(
        "--shards",
        type=int,
        default=0,
        help="additionally route a fresh update stream through an "
        "N-shard deployment vs a single-tree clone (per-shard buffers; "
        "end state verified identical; 0 disables)",
    )
    batch_update.add_argument(
        "--latency",
        choices=("hdd", "ssd", "nvme"),
        default=None,
        help="additionally price every access through the simulated-"
        "latency subsystem and report virtual elapsed time next to the "
        "read/write counts (N-shard overlapped vs 1-shard serial; N "
        "from --shards, default 4)",
    )
    batch_update.add_argument(
        "--parallel-io",
        dest="parallel_io",
        action="store_true",
        help="run the overlapped deployment's per-shard work on a real "
        "thread pool too (virtual times and results are identical)",
    )
    batch_update.add_argument("--seed", type=int, default=7)

    serve = subparsers.add_parser(
        "serve-sim",
        help="sweep open-loop arrival rates through the batching service "
        "front-end on a timed sharded deployment",
    )
    serve.add_argument("--users", type=int, default=2000)
    serve.add_argument("--policies", type=int, default=20)
    serve.add_argument("--theta", type=float, default=0.7)
    serve.add_argument("--requests", type=int, default=128,
                       help="requests per arrival-rate point")
    serve.add_argument(
        "--rates",
        default="500,2000,8000",
        help="comma-separated arrival rates to sweep (requests/second of "
        "virtual time)",
    )
    serve.add_argument(
        "--arrival", choices=("poisson", "burst"), default="poisson"
    )
    serve.add_argument("--max-batch", dest="max_batch", type=int, default=64,
                       help="admission policy: dispatch when this many wait")
    serve.add_argument(
        "--max-wait-us", dest="max_wait_us", type=float, default=2000.0,
        help="admission policy: dispatch when the oldest waited this long",
    )
    serve.add_argument("--shards", type=int, default=2)
    serve.add_argument(
        "--latency", choices=("hdd", "ssd", "nvme"), default="ssd"
    )
    serve.add_argument(
        "--update-fraction", dest="update_fraction", type=float, default=0.5
    )
    serve.add_argument(
        "--no-pin",
        dest="pin",
        action="store_false",
        help="skip the direct-replay equivalence check (faster sweeps)",
    )
    serve.add_argument(
        "--prefetch",
        choices=("auto", "merge", "exact"),
        default=None,
        help="band prefetch policy of the serving engine (auto adapts "
        "per stratum and batch from cost-model + latency feedback; "
        "results are identical under every setting)",
    )
    serve.add_argument(
        "--trace",
        default=None,
        metavar="OUT.json",
        help="record virtual-time spans of the highest-rate sweep point "
        "(queue waits, batch phases, per-shard device tracks, fault "
        "instants, tail-request exemplars) and write a Chrome "
        "trace-event file loadable in Perfetto",
    )
    serve.add_argument("--seed", type=int, default=7)

    encode = subparsers.add_parser(
        "encode", help="run a sequence-value encoder on a policy workload"
    )
    encode.add_argument("--users", type=int, default=5000)
    encode.add_argument("--policies", type=int, default=20)
    encode.add_argument("--theta", type=float, default=0.7)
    encode.add_argument(
        "--encoder", choices=sorted(ENCODERS), default="figure5"
    )
    encode.add_argument("--seed", type=int, default=7)

    experiment = subparsers.add_parser(
        "experiment", help="regenerate one figure of the paper's evaluation"
    )
    experiment.add_argument("name", choices=EXPERIMENTS)
    experiment.add_argument(
        "--scale", choices=("reduced", "paper"), default="reduced"
    )

    report = subparsers.add_parser(
        "report", help="regenerate every figure and write EXPERIMENTS.md"
    )
    report.add_argument(
        "--scale", choices=("reduced", "paper"), default="reduced"
    )
    report.add_argument("--output", default="EXPERIMENTS.md")

    trace_report = subparsers.add_parser(
        "trace-report",
        help="summarize a --trace JSON file: per-phase virtual time, "
        "per-device overlap, instant counts",
    )
    trace_report.add_argument("path", help="trace file written by --trace")

    cost = subparsers.add_parser(
        "cost-model", help="evaluate the Section 6 cost function"
    )
    cost.add_argument("--users", type=int, default=60_000)
    cost.add_argument("--policies", type=int, default=50)
    cost.add_argument("--theta", type=float, default=0.7)
    cost.add_argument("--leaves", type=int, default=1000)
    cost.add_argument("--a1", type=float, default=10.0,
                      help="density coefficient (paper: 10 for uniform data)")
    cost.add_argument("--a2", type=float, default=0.3,
                      help="constant coefficient (paper: 0.3 for uniform data)")
    cost.add_argument("--space-side", dest="space_side", type=float, default=1000.0)

    return parser


# ----------------------------------------------------------------------
# Subcommand implementations (each returns a process exit code)
# ----------------------------------------------------------------------


def _print_latency_table(harness, args, n_updates: int, n_queries: int) -> None:
    """The ``--latency`` report shared by batch-query and batch-update.

    Prices one hotspot workload through the simulated-latency subsystem
    (:meth:`repro.bench.harness.ExperimentHarness.run_overlap`) and
    prints virtual elapsed time next to the physical read/write counts:
    an overlapped N-shard deployment against a serial 1-shard one, both
    on the chosen device profile, results pinned identical to untimed
    single-tree execution.
    """
    n_shards = args.shards if args.shards else 4
    costs = harness.run_overlap(
        n_shards,
        latency=args.latency,
        workload="hotspot",
        n_updates=n_updates,
        n_queries=n_queries,
        parallel_io=args.parallel_io,
    )
    mode = "thread pool" if args.parallel_io else "virtual overlap only"
    table = SeriesTable(
        f"Simulated latency, {costs.profile} profile ({costs.ops_applied} "
        f"updates + {costs.n_queries} queries, {mode})",
        ["metric", "1 shard serial", f"{n_shards} shards overlapped"],
    )
    table.add_row(
        "virtual elapsed (ms)",
        f"{costs.baseline_elapsed_us / 1000:.1f}",
        f"{costs.sharded_elapsed_us / 1000:.1f}",
    )
    table.add_row(
        "  update phase (ms)",
        f"{costs.baseline_update_us / 1000:.1f}",
        f"{costs.sharded_update_us / 1000:.1f}",
    )
    table.add_row(
        "  query phase (ms)",
        f"{costs.baseline_query_us / 1000:.1f}",
        f"{costs.sharded_query_us / 1000:.1f}",
    )
    table.add_row("physical reads", costs.baseline_reads, costs.sharded_reads)
    table.add_row("physical writes", costs.baseline_writes, costs.sharded_writes)
    table.add_row("speedup", "1.00x", f"{costs.speedup:.2f}x")
    table.add_row("overlap factor", "1.00", f"{costs.overlap_factor:.2f}")
    table.print()
    print("\nTimed results verified identical to untimed single-tree execution. OK")


def run_demo(args) -> int:
    config = ExperimentConfig(
        n_users=args.users,
        n_policies=args.policies,
        grouping_factor=args.theta,
        window_side=args.window,
        k=args.k,
        n_queries=args.queries,
        page_size=1024,
        curve=args.curve,
        buffer_policy=args.buffer_policy,
        seed=args.seed,
    )
    print(
        f"Building {config.n_users} users, {config.n_policies} policies/user, "
        f"theta={config.grouping_factor}, curve={config.curve} ..."
    )
    harness = ExperimentHarness(config)
    report = harness.encoding_report
    print(
        f"Policy encoding: {report.related_pair_count} related pairs, "
        f"{report.group_count} groups, {report.elapsed_seconds:.3f}s"
    )

    prq_costs = harness.run_prq_batch(check_results=True)
    knn_costs = harness.run_pknn_batch(check_results=True)

    table = SeriesTable(
        f"Average physical reads per query ({config.n_queries} queries, "
        f"{config.buffer_pages}-page {config.buffer_policy.upper()} buffer)",
        ["query", "PEB-tree", "spatial index", "speedup"],
    )
    table.add_row(
        f"PRQ (window {config.window_side:.0f})",
        prq_costs.peb_io,
        prq_costs.baseline_io,
        f"{prq_costs.speedup:.1f}x",
    )
    table.add_row(
        f"PkNN (k={config.k})",
        knn_costs.peb_io,
        knn_costs.baseline_io,
        f"{knn_costs.speedup:.1f}x",
    )
    table.print()
    print("\nResults verified against brute force over all users. OK")
    return 0


def run_batch_query(args) -> int:
    config = ExperimentConfig(
        n_users=args.users,
        n_policies=args.policies,
        grouping_factor=args.theta,
        window_side=args.window,
        n_queries=args.queries,
        page_size=1024,
        seed=args.seed,
    )
    print(
        f"Building {config.n_users} users, {config.n_policies} policies/user, "
        f"theta={config.grouping_factor} ..."
    )
    harness = ExperimentHarness(config)
    recorder = None
    if args.trace:
        from repro.obs import TraceRecorder

        recorder = TraceRecorder()
    costs = harness.run_batched_prq(
        prefetch=args.prefetch, trace_recorder=recorder
    )

    policy_note = f", prefetch={args.prefetch}" if args.prefetch else ""
    table = SeriesTable(
        f"Cross-query band-scan batching ({costs.n_queries} PRQs, "
        f"window {config.window_side:.0f}, {config.buffer_pages}-page "
        f"buffer{policy_note})",
        ["metric", "one-at-a-time", "batched"],
    )
    table.add_row(
        "physical reads / query",
        f"{costs.sequential_io:.2f}",
        f"{costs.batched_io:.2f}",
    )
    table.add_row(
        "queries / second",
        f"{costs.sequential_qps:.0f}",
        f"{costs.batched_qps:.0f}",
    )
    table.add_row("I/O reduction", "1.0x", f"{costs.io_reduction:.2f}x")
    table.add_row("band dedup ratio", "-", f"{costs.dedup_ratio:.3f}")
    table.print()
    print("\nBatched result sets verified identical to sequential. OK")

    if recorder is not None:
        from repro.obs import write_trace

        write_trace(recorder, args.trace)
        print(f"Wrote trace to {args.trace} (open at https://ui.perfetto.dev)")

    if args.shards:
        sharded = harness.run_sharded(
            args.shards,
            workload="uniform",
            n_queries=args.queries,
            parallel_prefetch=args.parallel_io,
        )
        shard_table = SeriesTable(
            f"Sharded scatter/gather ({args.shards} shards, "
            f"{config.buffer_pages} buffer pages per shard)",
            ["metric", "single tree", f"{args.shards} shards"],
        )
        shard_table.add_row(
            "physical reads / query",
            f"{sharded.single_query_io:.2f}",
            f"{sharded.sharded_query_io:.2f}",
        )
        shard_table.add_row(
            "updates applied / physical write",
            f"{sharded.single_ops_per_write:.2f}",
            f"{sharded.sharded_ops_per_write:.2f}",
        )
        shard_table.add_row("balance skew", "-", f"{sharded.balance_skew:.3f}")
        shard_table.print()
        print("\nSharded results verified identical to the single tree. OK")

    if args.latency:
        print()
        _print_latency_table(
            harness, args, n_updates=args.users // 2, n_queries=args.queries
        )
    return 0


def run_batch_update(args) -> int:
    config = ExperimentConfig(
        n_users=args.users,
        n_policies=args.policies,
        grouping_factor=args.theta,
        page_size=1024,
        seed=args.seed,
    )
    batch_sizes = sorted({int(size) for size in args.batch_sizes.split(",")})
    print(
        f"Building {config.n_users} users, {config.n_policies} policies/user, "
        f"theta={config.grouping_factor} ..."
    )
    harness = ExperimentHarness(config)

    table = SeriesTable(
        f"Batch update pipeline vs one-at-a-time ({config.buffer_pages}-page "
        "cold buffer, one 25% Figure 18 round per row)",
        [
            "batch size",
            "seq I/O per update",
            "batch I/O per update",
            "I/O reduction",
            "in-place ratio",
            "descents saved",
        ],
    )
    for size in batch_sizes:
        costs = harness.run_batched_updates(batch_size=size)
        table.add_row(
            size,
            f"{costs.sequential_io:.2f}",
            f"{costs.batched_io:.2f}",
            f"{costs.io_reduction:.2f}x",
            f"{costs.in_place_ratio:.3f}",
            costs.descents_saved,
        )
    table.print()
    print("\nBatched index contents verified identical to sequential. OK")

    if args.shards:
        sharded = harness.run_sharded(
            args.shards,
            workload="uniform",
            batch_size=max(batch_sizes),
            parallel_prefetch=args.parallel_io,
        )
        shard_table = SeriesTable(
            f"Sharded update routing ({args.shards} shards, "
            f"{config.buffer_pages} buffer pages per shard)",
            ["metric", "single tree", f"{args.shards} shards"],
        )
        shard_table.add_row("ops applied", sharded.ops_applied, sharded.ops_applied)
        shard_table.add_row(
            "physical writes",
            sharded.single_update_writes,
            sharded.sharded_update_writes,
        )
        shard_table.add_row(
            "updates applied / physical write",
            f"{sharded.single_ops_per_write:.2f}",
            f"{sharded.sharded_ops_per_write:.2f}",
        )
        shard_table.add_row("balance skew", "-", f"{sharded.balance_skew:.3f}")
        shard_table.print()
        print("\nSharded end state verified identical to the single tree. OK")

    if args.latency:
        print()
        _print_latency_table(
            harness, args, n_updates=args.users // 2, n_queries=32
        )
    return 0


def run_serve_sim(args) -> int:
    config = ExperimentConfig(
        n_users=args.users,
        n_policies=args.policies,
        grouping_factor=args.theta,
        page_size=1024,
        seed=args.seed,
    )
    rates = sorted({float(rate) for rate in args.rates.split(",")})
    print(
        f"Building {config.n_users} users, {config.n_policies} policies/user, "
        f"theta={config.grouping_factor} ..."
    )
    harness = ExperimentHarness(config)

    policy_note = f", prefetch={args.prefetch}" if args.prefetch else ""
    table = SeriesTable(
        f"Open-loop service ({args.arrival} arrivals, {args.requests} requests"
        f"/point, B={args.max_batch}, T={args.max_wait_us:.0f}us, "
        f"{args.shards} shards, {args.latency}{policy_note})",
        [
            "rate (req/s)",
            "throughput (req/s)",
            "p50 (ms)",
            "p95 (ms)",
            "p99 (ms)",
            "mean batch",
            "reads/req",
            "saturated",
        ],
    )
    recorder = None
    for rate in rates:
        # Trace the highest-rate point: the most interesting tail, and
        # one recorder per run keeps the trace a single coherent axis.
        trace_this = args.trace is not None and rate == rates[-1]
        if trace_this:
            from repro.obs import TraceRecorder

            recorder = TraceRecorder()
        costs = harness.run_service(
            rate,
            n_requests=args.requests,
            max_batch=args.max_batch,
            max_wait_us=args.max_wait_us,
            arrival=args.arrival,
            n_shards=args.shards,
            latency=args.latency,
            update_fraction=args.update_fraction,
            pin=args.pin,
            prefetch=args.prefetch,
            trace_recorder=recorder if trace_this else None,
        )
        stats = costs.stats
        table.add_row(
            f"{rate:.0f}",
            f"{stats.throughput_per_sec:.0f}",
            f"{stats.overall.p50_us / 1000:.2f}",
            f"{stats.overall.p95_us / 1000:.2f}",
            f"{stats.overall.p99_us / 1000:.2f}",
            f"{stats.mean_batch_size:.1f}",
            f"{stats.reads_per_request:.2f}",
            "yes" if stats.saturated else "no",
        )
    table.print()
    if args.pin:
        print(
            "\nEvery batch's results verified identical to direct "
            "pipeline/batch-executor application. OK"
        )
    if recorder is not None:
        from repro.obs import write_trace

        write_trace(recorder, args.trace)
        print(
            f"\nWrote trace of the {rates[-1]:.0f} req/s point to "
            f"{args.trace} (open at https://ui.perfetto.dev)"
        )
    return 0


def run_trace_report(args) -> int:
    from repro.obs import load_trace, render_trace_report

    try:
        trace = load_trace(args.path)
    except (OSError, ValueError) as exc:
        print(f"cannot read trace {args.path}: {exc}", file=sys.stderr)
        return 1
    print(render_trace_report(trace))
    return 0


def run_encode(args) -> int:
    rng = random.Random(args.seed)
    generator = PolicyGenerator(1000.0, 1440.0, rng)
    users = list(range(args.users))
    store = generator.generate(users, args.policies, args.theta)
    encoder = make_encoder(args.encoder)
    report = encoder.encode(users, store, 1000.0**2)

    values = sorted(report.sequence_values.values())
    table = SeriesTable(
        f"Sequence-value encoding: {args.encoder}", ["metric", "value"]
    )
    table.add_row("users", args.users)
    table.add_row("policies per user", args.policies)
    table.add_row("grouping factor", args.theta)
    table.add_row("related pairs", report.related_pair_count)
    table.add_row("groups", report.group_count)
    table.add_row("elapsed seconds", f"{report.elapsed_seconds:.4f}")
    table.add_row("SV range", f"{values[0]:.2f} .. {values[-1]:.2f}")
    table.print()
    return 0


def run_experiment(args) -> int:
    import os

    os.environ["REPRO_SCALE"] = args.scale
    from repro.bench import experiments

    preset = experiments.scale_preset()
    cache = experiments.HarnessCache()

    drivers = {
        "fig11a": lambda: experiments.fig11a_encoding_vs_users(preset),
        "fig11b": lambda: experiments.fig11b_encoding_vs_policies(preset),
        "fig12": lambda: experiments.fig12_vs_users(preset, cache),
        "fig13": lambda: experiments.fig13_vs_policies(preset, cache),
        "fig14": lambda: experiments.fig14_vs_grouping(preset, cache),
        "fig15a": lambda: experiments.fig15a_vs_window(preset, cache),
        "fig15b": lambda: experiments.fig15b_vs_k(preset, cache),
        "fig16": lambda: experiments.fig16_vs_destinations(preset, cache),
        "fig17": lambda: experiments.fig17_vs_speed(preset, cache),
        "fig18": lambda: experiments.fig18_vs_updates(preset),
        "fig18u": lambda: experiments.fig18_update_io(preset),
    }
    rows = drivers[args.name]()
    if not rows:
        print("no data produced", file=sys.stderr)
        return 1
    columns = list(rows[0].keys())
    table = SeriesTable(f"{args.name} [{preset.name} scale]", columns)
    for row in rows:
        table.add_row(*(row[column] for column in columns))
    table.print()
    return 0


def run_report(args) -> int:
    from repro.bench.report import generate

    preset = PAPER if args.scale == "paper" else REDUCED
    print(
        f"Regenerating every figure at '{args.scale}' scale; this runs the "
        "full evaluation and takes a while ..."
    )
    generate(args.output, preset)
    print(f"Wrote {args.output}")
    return 0


def run_cost_model(args) -> int:
    model = CostModel(a1=args.a1, a2=args.a2, space_side=args.space_side)
    estimate = model.estimate(
        n_users=args.users,
        n_policies=args.policies,
        theta=args.theta,
        n_leaves=args.leaves,
    )
    table = SeriesTable("Section 6 cost model (Equation 7)", ["input", "value"])
    table.add_row("N (users)", args.users)
    table.add_row("Np (policies/user)", args.policies)
    table.add_row("theta", args.theta)
    table.add_row("Nl (leaves)", args.leaves)
    table.add_row("a1, a2", f"{args.a1}, {args.a2}")
    table.add_row("estimated PRQ I/O", f"{estimate:.2f}")
    table.print()
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "demo": run_demo,
        "batch-query": run_batch_query,
        "batch-update": run_batch_update,
        "serve-sim": run_serve_sim,
        "encode": run_encode,
        "experiment": run_experiment,
        "report": run_report,
        "cost-model": run_cost_model,
        "trace-report": run_trace_report,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
