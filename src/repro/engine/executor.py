"""Plan execution and cross-query batching (engine layer 3).

:class:`QueryEngine` is the single implementation of the Section 5.3
pipeline.  Every privacy-aware query path in the repository — PRQ
(:mod:`repro.core.prq`), the aggregates (:mod:`repro.core.aggregate`),
the Figure 7 span-scan ablation (:mod:`repro.core.ablation`), the
continuous-query registration scan (:mod:`repro.core.continuous`), and
the adaptive PkNN matrix search (:mod:`repro.core.pknn`) — is a thin
adapter over this engine: the planner decides *what* to scan, the
scanner decides *how* (memoized, prefetched, or physical), the verifier
decides *who qualifies*, and this module drives the three in the
paper's iteration order with the skip rule applied in one place.

Batching (:meth:`QueryEngine.execute_batch`) is the throughput path the
ROADMAP's north star asks for: many concurrent query specs are planned
up front, their band requests are merged across issuers, each merged
band is physically scanned once (:meth:`BandScanner.prefetch`), and
every query is then replayed against the in-memory band store with
*zero additional index I/O*.  Per-query results are bit-identical to
running the queries one at a time — the replay applies the identical
iteration order and skip rules — while the physical reads per query
drop by the cross-query overlap, reported as
:attr:`ExecutionStats.dedup_ratio`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

from repro.engine.plan import QueryPlan, QueryPlanner
from repro.engine.policy import PrefetchPolicy
from repro.engine.scanner import BandScanner
from repro.engine.verify import CandidateVerifier
from repro.motion.rows import BandRows
from repro.spatial.geometry import Rect
from repro.workloads.queries import KnnQuerySpec, RangeQuerySpec

if TYPE_CHECKING:
    from repro.core.peb_tree import PEBTree
    from repro.fault.stats import FaultStats
    from repro.motion.objects import MovingObject
    from repro.shard.stats import ShardStats

#: Callback invoked per qualifying user with its located position;
#: returning True stops the scan early (the existential aggregate).
OnMatch = Callable[["MovingObject", float, float], bool]


@dataclass
class ExecutionStats:
    """Scan-level accounting of one execution (query or whole batch).

    Attributes:
        bands_requested: band requests actually issued to the scanner —
            after the skip rule dropped the bands of already-located
            friends — whether static (range plans) or adaptive (PkNN
            rounds), so the dedup ratio compares like with like.
        bands_scanned: physical scans that reached the tree, including
            batch prefetch merges.
        bands_deduped: requests served from the scanner's memo or the
            prefetched band store instead of the tree.
        candidates_examined: entries located and verified.
        physical_reads: page-level reads the buffer pool could not
            serve, measured across the execution.
        shard_stats: per-shard breakdown of this execution's I/O when
            it ran on a sharded deployment (None on a single tree);
            entries are point-in-time.
        fault_stats: fault-handling events of this execution
            (:class:`repro.fault.stats.FaultStats` delta) when the
            deployment carries a shard supervisor; None otherwise.
        virtual_time_us: simulated elapsed time of this execution in
            virtual microseconds, when the tree runs on timed devices
            (:mod:`repro.simio`); 0.0 on untimed storage.  Overlapped
            scheduling shrinks this number while leaving every counter
            above unchanged — which is exactly why it exists.
            Verification CPU (``verify_us`` per candidate) is priced
            only by batch execution, the simio subsystem's consumer
            surface; single-query executions report device time alone,
            so their virtual times are not directly comparable to a
            batch-of-one's.
        entries_prefetched: index entries transferred by batch prefetch
            scans (0 when prefetching was off or skipped).
        dead_entries: prefetched entries outside every band actually
            requested during replay — the merge policy's over-scan,
            measurable even on untimed storage.
        memo_evictions: bands dropped from the scanner's exact-identity
            memo by its LRU entry bound (0 unless a batch outgrew it).
        seeks: device positionings charged during the execution, when
            the tree runs on timed devices; 0 on untimed storage.
        sequential_hits: accesses that rode a sequential run instead of
            seeking, under the same conditions.
    """

    bands_requested: int = 0
    bands_scanned: int = 0
    bands_deduped: int = 0
    candidates_examined: int = 0
    physical_reads: int = 0
    shard_stats: "ShardStats | None" = None
    fault_stats: "FaultStats | None" = None
    virtual_time_us: float = 0.0
    entries_prefetched: int = 0
    dead_entries: int = 0
    memo_evictions: int = 0
    seeks: int = 0
    sequential_hits: int = 0

    @property
    def dedup_ratio(self) -> float:
        """Fraction of band requests that did not cost a physical scan.

        ``1 - bands_scanned / bands_requested``: 0 when every request
        needed its own scan, approaching 1 when a few physical scans
        (batch prefetch merges included) served many requests.  For a
        single query on a fresh scanner this equals
        ``bands_deduped / bands_requested``.
        """
        if self.bands_requested == 0:
            return 0.0
        return max(0.0, 1.0 - self.bands_scanned / self.bands_requested)

    @property
    def overscan_ratio(self) -> float:
        """Fraction of prefetched entries that no request consumed."""
        if self.entries_prefetched == 0:
            return 0.0
        return self.dead_entries / self.entries_prefetched

    def publish(self, registry, **labels) -> None:
        """Publish this execution into a ``MetricsRegistry``.

        Names follow the ``engine.<field>`` convention documented in
        ``docs/OBSERVABILITY.md``; nested shard/fault stats publish
        under their own prefixes with the same labels.
        """
        registry.counter("engine.bands_requested", self.bands_requested, **labels)
        registry.counter("engine.bands_scanned", self.bands_scanned, **labels)
        registry.counter("engine.bands_deduped", self.bands_deduped, **labels)
        registry.counter(
            "engine.candidates_examined", self.candidates_examined, **labels
        )
        registry.counter("engine.physical_reads", self.physical_reads, **labels)
        registry.counter(
            "engine.entries_prefetched", self.entries_prefetched, **labels
        )
        registry.counter("engine.dead_entries", self.dead_entries, **labels)
        registry.counter("engine.memo_evictions", self.memo_evictions, **labels)
        registry.counter("engine.seeks", self.seeks, **labels)
        registry.counter("engine.sequential_hits", self.sequential_hits, **labels)
        registry.gauge("engine.virtual_time_us", self.virtual_time_us, **labels)
        registry.gauge("engine.dedup_ratio", self.dedup_ratio, **labels)
        registry.gauge("engine.overscan_ratio", self.overscan_ratio, **labels)
        if self.shard_stats is not None:
            self.shard_stats.publish(registry, **labels)
        if self.fault_stats is not None:
            self.fault_stats.publish(registry, **labels)


@dataclass
class RangeExecution:
    """Outcome of one range-shaped plan execution."""

    candidates_examined: int
    stopped_early: bool
    stats: ExecutionStats


@dataclass
class BatchReport:
    """Outcome of one batch execution.

    Attributes:
        results: per-spec results, in spec order — ``PRQResult`` for
            range specs, ``PKNNResult`` for kNN specs, directly
            comparable to the output of :func:`repro.core.prq.prq` and
            :func:`repro.core.pknn.pknn` on the same spec.
        stats: batch-level scan accounting (the dedup headline).
        degraded: per-spec flags, in spec order — True when the query's
            result was served with at least one sub-band dropped by a
            quarantined shard (complete-minus-dropped-shards, never
            wrong-by-inclusion).  All False on fault-free runs and on
            deployments without a supervisor.
    """

    results: list = field(default_factory=list)
    stats: ExecutionStats = field(default_factory=ExecutionStats)
    degraded: list = field(default_factory=list)


class QueryEngine:
    """The unified privacy-aware query engine over one PEB-tree.

    Args:
        tree: the index to query.
        packed_scan: scan bands as packed :class:`BandRows` columns and
            verify candidates in batched form (the default).  False
            restores the per-entry object-at-a-time path — kept as the
            reference the benchmarks and property tests pin the packed
            path against; results and every counter are identical
            either way.
        prefetch_policy: how batch execution prefetches merged bands —
            a :class:`PrefetchPolicy`, a mode string (``"auto"`` /
            ``"merge"`` / ``"exact"``, priced for this tree's device
            via :meth:`PrefetchPolicy.for_tree`), or None for the
            legacy unconditional merge.  Results are identical under
            every setting; only I/O and virtual-time counters differ.
    """

    def __init__(
        self,
        tree: "PEBTree",
        packed_scan: bool = True,
        prefetch_policy: "PrefetchPolicy | str | None" = None,
    ):
        self.tree = tree
        self.packed_scan = packed_scan
        self.prefetch_policy = PrefetchPolicy.coerce(prefetch_policy, tree)
        self.planner = QueryPlanner(tree)

    # ------------------------------------------------------------------
    # Single-query execution
    # ------------------------------------------------------------------

    def execute_range(
        self,
        q_uid: int,
        window: Rect,
        t_query: float,
        on_match: OnMatch | None = None,
        scanner: BandScanner | None = None,
    ) -> RangeExecution:
        """Run the Section 5.3 pipeline for one range-shaped query."""
        plan = self.planner.plan_range(q_uid, window, t_query)
        return self.run_range_plan(plan, on_match, scanner)

    def execute_span_scan(
        self,
        q_uid: int,
        window: Rect,
        t_query: float,
        on_match: OnMatch | None = None,
        scanner: BandScanner | None = None,
    ) -> RangeExecution:
        """Run the literal Figure 7 span-scan procedure (ablation)."""
        plan = self.planner.plan_span_scan(q_uid, window, t_query)
        return self.run_range_plan(plan, on_match, scanner)

    def run_range_plan(
        self,
        plan: QueryPlan,
        on_match: OnMatch | None = None,
        scanner: BandScanner | None = None,
    ) -> RangeExecution:
        """Execute a planned scan schedule with the skip rule applied.

        Bands are visited in plan order; a band whose friend is already
        located is skipped ("a user has only one location").  Each newly
        located candidate is policy-checked and window-tested, and
        ``on_match`` may stop the whole execution early by returning
        True (the ``at_least`` aggregate).
        """
        scanner = (
            scanner
            if scanner is not None
            else BandScanner(self.tree, packed=self.packed_scan)
        )
        verifier = CandidateVerifier(self.tree.store, plan.q_uid, plan.t_query)
        clock = getattr(self.tree, "sim_clock", None)
        elapsed_before = clock.elapsed if clock is not None else 0.0
        reads_before = self.tree.stats.physical_reads
        requests_before = scanner.requests
        scans_before = scanner.physical_scans
        deduped_before = scanner.deduped
        stopped = False
        located = verifier.located
        for planned in plan.bands:
            friend_uid = planned.friend_uid
            if friend_uid is not None and friend_uid in located:
                continue
            rows = scanner.scan(planned.band)
            if isinstance(rows, BandRows):
                stopped = verifier.admit_rows(rows, plan.window, on_match)
            else:
                for _, obj in rows:
                    hit = verifier.admit(obj, within=plan.window)
                    if hit is None:
                        continue
                    x, y, qualifies = hit
                    if not qualifies:
                        continue
                    if on_match is not None and on_match(obj, x, y):
                        stopped = True
                        break
            if stopped:
                break
        stats = ExecutionStats(
            bands_requested=scanner.requests - requests_before,
            bands_scanned=scanner.physical_scans - scans_before,
            bands_deduped=scanner.deduped - deduped_before,
            candidates_examined=verifier.candidates_examined,
            physical_reads=self.tree.stats.physical_reads - reads_before,
            virtual_time_us=(
                clock.elapsed - elapsed_before if clock is not None else 0.0
            ),
        )
        return RangeExecution(
            candidates_examined=verifier.candidates_examined,
            stopped_early=stopped,
            stats=stats,
        )

    def collect_friend_states(
        self, q_uid: int, scanner: BandScanner | None = None
    ) -> "dict[int, MovingObject]":
        """Fetch every friend's current motion function via its SV band.

        The continuous-query registration scan: I/O bounded by the
        friend count, not the population (the Figure 15(a) property).
        Only users actually holding a policy about the issuer are
        returned — entries merely sharing a quantized SV are dropped.
        """
        scanner = (
            scanner
            if scanner is not None
            else BandScanner(self.tree, packed=self.packed_scan)
        )
        plan = self.planner.plan_seed(q_uid)
        store = self.tree.store
        tracked: dict[int, "MovingObject"] = {}
        for planned in plan.bands:
            if planned.friend_uid in tracked:
                continue
            rows = scanner.scan(planned.band)
            if isinstance(rows, BandRows):
                # Columnar fast path: the policy probe needs only the
                # uid, so states materialize just for tracked friends.
                for i, rec in enumerate(rows.records):
                    uid = rec[0]
                    if uid not in tracked and store.policies_for(uid, q_uid):
                        tracked[uid] = rows.object_at(i)
            else:
                for _, obj in rows:
                    if obj.uid not in tracked and store.policies_for(obj.uid, q_uid):
                        tracked[obj.uid] = obj
        return tracked

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------

    def execute_batch(
        self, specs: Sequence, prefetch: bool = True
    ) -> BatchReport:
        """Execute many concurrent query specs with shared band scans.

        Args:
            specs: ``RangeQuerySpec`` / ``KnnQuerySpec`` instances (the
                :mod:`repro.workloads.queries` types), in any mix.
            prefetch: merge and pre-scan the range plans' bands (the
                cross-query dedup); disable to measure the memo tier
                alone.

        Range plans are static, so their bands are known up front and
        prefetched; the skip rule can only *remove* bands, so the
        prefetched superset is always sufficient.  kNN searches are
        adaptive, but their *first* round is static too — the
        ``Dk``-estimate square around the query point — so its bands
        (:meth:`QueryPlanner.plan_knn_probe`) join the prefetch set and
        concurrent kNN queries share the batch's physical scans instead
        of joining it only via the scanner memo; later rounds still run
        adaptively against the same shared scanner.
        """
        # Imported here: repro.core.{prq,pknn} are adapters over this
        # module, so importing them at module scope would cycle.
        from repro.core.pknn import _MatrixSearch
        from repro.core.prq import prq_from_plan

        plans: list[QueryPlan | None] = []
        probe_bands: list = []
        for spec in specs:
            if isinstance(spec, RangeQuerySpec):
                plans.append(self.planner.plan_range(spec.q_uid, spec.window, spec.t_query))
            elif isinstance(spec, KnnQuerySpec):
                plans.append(None)
                if prefetch and spec.k > 0:
                    probe_bands.extend(
                        self.planner.plan_knn_probe(
                            spec.q_uid, spec.qx, spec.qy, spec.k, spec.t_query
                        )
                    )
            else:
                raise TypeError(
                    f"unsupported query spec {spec!r}; expected "
                    "RangeQuerySpec or KnnQuerySpec"
                )

        scanner = self._batch_scanner()
        policy = self.prefetch_policy
        if policy is not None:
            n_knn = sum(1 for plan in plans if plan is None)
            policy.begin_batch(len(plans) - n_knn, n_knn)
        clock = getattr(self.tree, "sim_clock", None)
        elapsed_before = clock.elapsed if clock is not None else 0.0
        reads_before = self.tree.stats.physical_reads
        latency = getattr(self.tree.stats, "latency", None)
        seeks_before = latency.seeks if latency is not None else 0
        seq_before = latency.sequential_hits if latency is not None else 0
        recorder = getattr(self.tree, "trace_recorder", None)
        tracing = recorder is not None and recorder.enabled
        if prefetch:
            def firm_bands():
                for plan in plans:
                    if plan is not None:
                        for planned in plan.bands:
                            yield planned.band

            if tracing:
                t_scan0 = clock.cursor() if clock is not None else 0.0
                recorder.instant(
                    "engine/scan",
                    "plan",
                    t_scan0,
                    category="engine",
                    args={
                        "specs": len(specs),
                        "knn_probe_bands": len(probe_bands),
                    },
                )
            scanner.prefetch(firm_bands(), speculative=probe_bands)
            if tracing:
                recorder.span(
                    "engine/scan",
                    "scan.prefetch",
                    t_scan0,
                    clock.cursor() if clock is not None else 0.0,
                    category="engine",
                    args={
                        "entries_prefetched": scanner.entries_prefetched,
                        "physical_scans": scanner.physical_scans,
                    },
                )

        report = BatchReport()
        if tracing:
            t_replay0 = clock.cursor() if clock is not None else 0.0
        self._begin_replay(scanner)
        for spec, plan in zip(specs, plans):
            drops_before = self._drop_marker(scanner)
            if plan is not None:
                result = prq_from_plan(self, plan, scanner)
            else:
                result = _MatrixSearch(
                    self.tree,
                    spec.q_uid,
                    spec.qx,
                    spec.qy,
                    spec.k,
                    spec.t_query,
                    planner=self.planner,
                    scanner=scanner,
                ).run()
            self._charge_verify(result, plan, scanner)
            report.stats.candidates_examined += result.candidates_examined
            report.results.append(result)
            report.degraded.append(self._drop_marker(scanner) > drops_before)
        self._end_replay(scanner)
        if tracing:
            recorder.span(
                "engine/replay",
                "query.replay",
                t_replay0,
                clock.cursor() if clock is not None else 0.0,
                category="engine",
                args={
                    "queries": len(specs),
                    "candidates": report.stats.candidates_examined,
                },
            )

        report.stats.bands_requested = scanner.requests
        report.stats.bands_scanned = scanner.physical_scans
        report.stats.bands_deduped = scanner.deduped
        report.stats.physical_reads = self.tree.stats.physical_reads - reads_before
        if clock is not None:
            report.stats.virtual_time_us = clock.elapsed - elapsed_before
        outcomes = scanner.policy_outcomes()
        report.stats.entries_prefetched = scanner.entries_prefetched
        report.stats.dead_entries = sum(o.dead_entries for o in outcomes.values())
        report.stats.memo_evictions = scanner.memo_evictions
        if latency is not None:
            report.stats.seeks = latency.seeks - seeks_before
            report.stats.sequential_hits = latency.sequential_hits - seq_before
        if policy is not None:
            policy.observe_batch(
                outcomes,
                physical_reads=report.stats.physical_reads,
                virtual_time_us=report.stats.virtual_time_us,
                n_requests=len(specs),
                seeks=report.stats.seeks,
            )
        self._finish_batch_stats(report)
        return report

    def _batch_scanner(self):
        """The shared scanner one batch execution uses (override point).

        The sharded engine substitutes a scatter/gather scanner that
        routes each band to its owning shards; everything else about
        batch execution — planning, replay order, skip rules — is
        identical, which is what keeps sharded results pinned to the
        single-tree path.
        """
        return BandScanner(
            self.tree, packed=self.packed_scan, policy=self.prefetch_policy
        )

    def _timing(self):
        """``(clock, model)`` when the tree runs on timed devices."""
        clock = getattr(self.tree, "sim_clock", None)
        model = getattr(self.tree, "latency_model", None)
        if clock is None or model is None:
            return None, None
        return clock, model

    def _begin_replay(self, scanner) -> None:
        """Hook before the batch's replay loop (timing setup point)."""

    def _drop_marker(self, scanner) -> int:
        """Monotone drop counter read before/after each replayed query.

        A query whose replay advanced the marker was served degraded
        (some sub-band dropped by a quarantined shard).  The base
        engine never drops anything; the sharded engine reads its
        scatter scanner's ``dropped_subbands``.
        """
        return 0

    def _charge_verify(self, result, plan, scanner) -> None:
        """Charge one replayed query's verification CPU in virtual time.

        The base engine serializes verification after the scans: the
        context cursor (already past the prefetch) advances by
        ``candidates × verify_us``.  The sharded engine overrides this
        to pipeline verification against still-running shard scans.
        Verification is charged here — once per query of a batch — and
        nowhere else, so single-query adapters (which may be replayed
        *by* this loop via ``prq_from_plan``) never double-charge.
        """
        clock, model = self._timing()
        if clock is not None:
            clock.advance(result.candidates_examined * model.verify_us)

    def _end_replay(self, scanner) -> None:
        """Hook after the batch's replay loop (timing join point)."""

    def _finish_batch_stats(self, report: BatchReport) -> None:
        """Attach deployment-specific stats to a finished batch (hook)."""


__all__ = [
    "BatchReport",
    "ExecutionStats",
    "OnMatch",
    "QueryEngine",
    "RangeExecution",
]
