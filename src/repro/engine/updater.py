"""Batch update pipeline (the engine's write path).

The read path amortizes I/O by merging many queries' band scans into
few physical sweeps; this module is its write-side twin.  Location
updates are not applied as they arrive — each costing a full
root-to-leaf descent (two for a moved entry) against whatever page
happens to be buffered — but accumulate in an :class:`UpdateBuffer`
and flush as one :meth:`repro.core.peb_tree.PEBTree.update_batch`
call: the buffered states are partitioned into in-place rewrites and
moved entries, sorted by PEB-key, and swept leaf-ordered through the
tree so every op landing in the same leaf shares one descent, one
page pin, and at most one split or rebalance.

Three pieces, mirroring the scanner/executor split of the read path:

* :class:`UpdateBuffer` — pure accumulation with last-write-wins
  semantics per user (what a server's update queue does anyway).
* :class:`UpdatePipeline` — owns a buffer for one tree, decides *when*
  to flush (buffer full, or an update's time partition rolling over —
  partition-pure runs are what the sharded multi-tree will route), and
  fans each applied state out to attached monitors (continuous
  queries re-registering their tracked motion functions).
* :class:`UpdateStats` — flush-level accounting symmetric with the
  read path's :class:`repro.engine.executor.ExecutionStats`: ops,
  in-place hits, leaf descents saved, physical reads and writes.

Updates applied through the pipeline are observationally identical to
calling ``tree.update`` per state in arrival order; only the I/O
schedule changes.  Queries and updates remain phase-separated: flush
(or close the pipeline) before scanning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Protocol

if TYPE_CHECKING:
    from repro.core.peb_tree import PEBTree
    from repro.fault.stats import FaultStats
    from repro.motion.objects import MovingObject
    from repro.shard.stats import ShardStats


class UpdateMonitor(Protocol):
    """Anything that wants to see applied updates (continuous queries)."""

    def refresh(self, obj: "MovingObject") -> bool: ...


@dataclass
class UpdateStats:
    """Write-path accounting across one pipeline's lifetime.

    Attributes:
        ops: distinct user states applied (post buffer dedup).
        in_place_hits: same-key updates served by a leaf rewrite.
        moved: entries relocated (delete at old key + insert at new).
        inserted: users indexed for the first time.
        flushes: batches the buffer released.
        leaves_visited: leaf visits the batched sweeps paid.
        descents_saved: root-to-leaf descents one-at-a-time application
            would have added on top of those visits.
        physical_reads: pages the buffer pool had to fetch during
            flushes.
        physical_writes: pages written back during flushes (dirty
            evictions; a final pool flush is the harness's business).
        deferred: states a flush re-buffered because their shard was
            quarantined (each re-buffering counts; the state applies —
            and lands in ``ops`` — on a later flush once the shard
            recovers).
        shard_stats: per-shard I/O since the pipeline's first flush
            when it writes to a sharded deployment (None on a single
            tree); entries are point-in-time.
        fault_stats: fault-handling events since the pipeline's first
            flush (:class:`repro.fault.stats.FaultStats` delta) when
            the deployment carries a shard supervisor; None otherwise.
        virtual_time_us: simulated elapsed time of the flushes in
            virtual microseconds, when the tree runs on timed devices
            (:mod:`repro.simio`); 0.0 on untimed storage.  Per-shard
            sweeps overlapping on distinct devices shrink this number
            while the physical counters stay identical.
    """

    ops: int = 0
    in_place_hits: int = 0
    moved: int = 0
    inserted: int = 0
    flushes: int = 0
    leaves_visited: int = 0
    descents_saved: int = 0
    deferred: int = 0
    physical_reads: int = 0
    physical_writes: int = 0
    shard_stats: "ShardStats | None" = None
    fault_stats: "FaultStats | None" = None
    virtual_time_us: float = 0.0

    @property
    def total_io(self) -> int:
        """Physical reads plus writes across all flushes."""
        return self.physical_reads + self.physical_writes

    @property
    def io_per_update(self) -> float:
        """Amortized physical I/O per applied update (0.0 when idle)."""
        if self.ops == 0:
            return 0.0
        return self.total_io / self.ops

    @property
    def in_place_ratio(self) -> float:
        """Fraction of ops that never left their leaf (0.0 when idle)."""
        if self.ops == 0:
            return 0.0
        return self.in_place_hits / self.ops

    def publish(self, registry, **labels) -> None:
        """Publish the write path into a ``MetricsRegistry`` as
        ``update.<field>`` (see ``docs/OBSERVABILITY.md``)."""
        registry.counter("update.ops", self.ops, **labels)
        registry.counter("update.in_place_hits", self.in_place_hits, **labels)
        registry.counter("update.moved", self.moved, **labels)
        registry.counter("update.inserted", self.inserted, **labels)
        registry.counter("update.flushes", self.flushes, **labels)
        registry.counter("update.leaves_visited", self.leaves_visited, **labels)
        registry.counter("update.descents_saved", self.descents_saved, **labels)
        registry.counter("update.deferred", self.deferred, **labels)
        registry.counter("update.physical_reads", self.physical_reads, **labels)
        registry.counter("update.physical_writes", self.physical_writes, **labels)
        registry.gauge("update.virtual_time_us", self.virtual_time_us, **labels)
        registry.gauge("update.io_per_update", self.io_per_update, **labels)
        registry.gauge("update.in_place_ratio", self.in_place_ratio, **labels)
        if self.shard_stats is not None:
            self.shard_stats.publish(registry, **labels)
        if self.fault_stats is not None:
            self.fault_stats.publish(registry, **labels)


class UpdateBuffer:
    """Accumulates pending states with last-write-wins per user."""

    def __init__(self) -> None:
        self._pending: dict[int, tuple["MovingObject", int]] = {}

    def add(self, obj: "MovingObject", pntp: int = 0) -> None:
        """Buffer one state; a newer state for the same user wins.

        A re-added user moves to the *end* of the buffer, so
        last-write-wins also means last-arrival ordering: the position
        :meth:`drain` reports is that of the state actually kept, not
        of a superseded one.
        """
        self._pending.pop(obj.uid, None)
        self._pending[obj.uid] = (obj, pntp)

    def drain(self) -> list[tuple["MovingObject", int]]:
        """Remove and return everything buffered, in arrival order."""
        drained = list(self._pending.values())
        self._pending.clear()
        return drained

    def restore(self, batch: Iterable[tuple["MovingObject", int]]) -> None:
        """Put a failed flush's drained states back, ahead of newer ones.

        The drained states predate anything buffered since the drain,
        so they re-enter at the head of arrival order — except where a
        newer state for the same user has arrived meanwhile, which wins
        (and keeps its later position), exactly as if the drain had
        never happened.
        """
        merged: dict[int, tuple["MovingObject", int]] = {}
        for obj, pntp in batch:
            merged[obj.uid] = (obj, pntp)
        for uid, entry in self._pending.items():
            merged.pop(uid, None)
            merged[uid] = entry
        self._pending = merged

    def __len__(self) -> int:
        return len(self._pending)

    def __contains__(self, uid: int) -> bool:
        return uid in self._pending


class UpdatePipeline:
    """Buffered, leaf-ordered application of updates to one PEB-tree.

    Args:
        tree: the index the pipeline writes to.
        capacity: flush when this many distinct users are buffered.
        flush_on_rollover: flush the buffer whenever an arriving
            update's time partition differs from the previous one's, so
            every batch is partition-pure — the old partition's leaves
            are swept while still hot, and each flushed run is exactly
            the per-shard unit a TID-sharded multi-tree would route.

    Usable as a context manager; leaving the ``with`` block flushes.
    """

    def __init__(
        self,
        tree: "PEBTree",
        capacity: int = 256,
        flush_on_rollover: bool = True,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.tree = tree
        self.capacity = capacity
        self.flush_on_rollover = flush_on_rollover
        self.buffer = UpdateBuffer()
        self.stats = UpdateStats()
        self._monitors: list[UpdateMonitor] = []
        self._last_tid: int | None = None
        self._shard_stats_base = None
        self._fault_stats_base = None

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(self, obj: "MovingObject", pntp: int = 0) -> None:
        """Buffer one update, flushing first if a trigger fires."""
        if self.flush_on_rollover:
            tid = self.tree.partitioner.partition(obj.t_update)
            if self._last_tid is not None and tid != self._last_tid and len(
                self.buffer
            ):
                self.flush()
            self._last_tid = tid
        self.buffer.add(obj, pntp)
        if len(self.buffer) >= self.capacity:
            self.flush()

    def extend(
        self,
        objs: "Iterable[MovingObject | tuple[MovingObject, int]]",
        pntps: Iterable[int] | None = None,
    ) -> None:
        """Submit many updates (a drained server queue).

        Accepts bare states, ``(state, pntp)`` pairs, or — via
        ``pntps`` — a parallel iterable of previous-partition labels
        (must match ``objs`` in length).  Bare states without ``pntps``
        keep the default label of 0.
        """
        if pntps is not None:
            for obj, pntp in zip(objs, pntps, strict=True):
                self.submit(obj, pntp)
            return
        for item in objs:
            if isinstance(item, tuple):
                obj, pntp = item
                self.submit(obj, pntp)
            else:
                self.submit(item)

    def flush(self) -> int:
        """Apply everything buffered as one batch; returns ops applied.

        A failing batch loses nothing: if ``tree.update_batch`` raises
        (an injected :class:`repro.storage.faults.DiskFaultError`, a
        torn page, ...), the drained states are restored to the buffer
        before the exception propagates, so a retry after the fault
        clears applies them exactly once.  No stats are recorded and no
        monitor sees a state from a failed flush.

        A fault-tolerant sharded deployment extends the invariant to
        shard granularity: ``update_batch`` returns normally with the
        quarantined shards' states in ``result.deferred``, which are
        restored to the buffer (ahead of newer arrivals, same
        last-write-wins merge) and excluded from stats and monitor
        fan-out — they apply exactly once, on a flush after the shard
        recovers.
        """
        batch = self.buffer.drain()
        if not batch:
            return 0
        stats = self.tree.stats
        reads_before = stats.physical_reads
        writes_before = stats.physical_writes
        clock = getattr(self.tree, "sim_clock", None)
        elapsed_before = clock.elapsed if clock is not None else 0.0
        shard_stats = getattr(self.tree, "shard_stats", None)
        if callable(shard_stats) and self._shard_stats_base is None:
            # Baseline the per-shard counters before the first flush so
            # the attached breakdown covers exactly this pipeline's I/O.
            self._shard_stats_base = shard_stats()
        supervisor = getattr(self.tree, "supervisor", None)
        if supervisor is not None and self._fault_stats_base is None:
            self._fault_stats_base = supervisor.stats.copy()
        recorder = getattr(self.tree, "trace_recorder", None)
        tracing = recorder is not None and recorder.enabled
        if tracing:
            t_flush0 = clock.cursor() if clock is not None else 0.0
        try:
            result = self.tree.update_batch(batch)
        except BaseException:
            self.buffer.restore(batch)
            raise
        if tracing:
            recorder.span(
                "engine/update",
                "update.flush",
                t_flush0,
                clock.cursor() if clock is not None else 0.0,
                category="engine",
                args={
                    "ops": result.ops,
                    "batch": len(batch),
                    "deferred": len(getattr(result, "deferred", None) or ()),
                },
            )
        deferred_uids: set[int] = set()
        deferred = getattr(result, "deferred", None)
        if deferred:
            pairs = [
                item if isinstance(item, tuple) else (item, 0) for item in deferred
            ]
            deferred_uids = {obj.uid for obj, _ in pairs}
            self.buffer.restore(pairs)
            self.stats.deferred += len(pairs)
        self.stats.flushes += 1
        self.stats.ops += result.ops
        self.stats.in_place_hits += result.in_place
        self.stats.moved += result.moved
        self.stats.inserted += result.inserted
        self.stats.leaves_visited += result.leaves_visited
        self.stats.descents_saved += result.descents_saved
        self.stats.physical_reads += stats.physical_reads - reads_before
        self.stats.physical_writes += stats.physical_writes - writes_before
        if clock is not None:
            self.stats.virtual_time_us += clock.elapsed - elapsed_before
        if callable(shard_stats):
            self.stats.shard_stats = shard_stats().delta_from(self._shard_stats_base)
        if supervisor is not None:
            self.stats.fault_stats = supervisor.stats.delta_from(
                self._fault_stats_base
            )
        for obj, _ in batch:
            if obj.uid in deferred_uids:
                continue  # not applied; the monitor sees it post-recovery
            for monitor in self._monitors:
                monitor.refresh(obj)
        return result.ops

    # ------------------------------------------------------------------
    # Monitors (continuous-query re-registration)
    # ------------------------------------------------------------------

    def attach_monitor(self, monitor: UpdateMonitor) -> None:
        """Fan applied updates out to a continuous query's tracker.

        The monitor's ``refresh`` sees every state the pipeline applies
        (after the flush, so index and tracker agree); monitors ignore
        users they do not care about, as
        :meth:`repro.core.continuous.ContinuousPRQ.refresh` does.
        """
        if monitor not in self._monitors:
            self._monitors.append(monitor)

    def detach_monitor(self, monitor: UpdateMonitor) -> bool:
        """Stop notifying a monitor; True if it was attached."""
        try:
            self._monitors.remove(monitor)
        except ValueError:
            return False
        return True

    @property
    def pending(self) -> int:
        """Distinct users currently buffered, not yet applied."""
        return len(self.buffer)

    # ------------------------------------------------------------------
    # Context management
    # ------------------------------------------------------------------

    def __enter__(self) -> "UpdatePipeline":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.flush()


__all__ = ["UpdateBuffer", "UpdateMonitor", "UpdatePipeline", "UpdateStats"]
