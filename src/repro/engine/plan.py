"""Query planning: band requests and query plans (engine layer 1).

The planner turns a query specification — issuer, window, query time —
into a :class:`QueryPlan`: the ordered list of *band requests* the
Section 5.3 pipeline scans.  A band request is one key-contiguous
stretch of the PEB-tree,

    ``[TID ⊕ SV_lo ⊕ ZV_lo ; TID ⊕ SV_hi ⊕ ZV_hi]``,

with ``SV_lo == SV_hi`` for the per-friend bands of the default
algorithm and ``SV_lo < SV_hi`` for the coarse whole-friend-list span of
the Figure 7 ablation.

A plan captures everything *static* about a query: the live partition
contexts (per-partition window enlargements of Figure 2), the issuer's
friend list sorted ascending by sequence value, and one band per
(partition, friend).  The paper's skip rule — "once a candidate user is
found, the remaining search intervals formed by this user's SV value
are skipped ... a user has only one location" — depends on scan
results, so it cannot be resolved at plan time; each planned band
instead records the friend it serves and the executor
(:mod:`repro.engine.executor`) applies the rule in exactly one place.

Keeping plans declarative is what enables cross-query batching: the
batch executor can collect the bands of many concurrent plans, merge
the overlapping ones, and serve every issuer from one physical scan
(:meth:`repro.engine.scanner.BandScanner.prefetch`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, NamedTuple

from repro.bxtree.queries import enlargement_for_label, estimate_knn_distance
from repro.spatial.geometry import Rect

if TYPE_CHECKING:
    from repro.core.peb_tree import PEBTree


class BandRequest(NamedTuple):
    """One key-contiguous scan request against the PEB-tree.

    A NamedTuple rather than a dataclass: plans allocate one per
    (partition, friend), so construction cost is on the per-query path.

    Attributes:
        tid: time-partition id the band lives in.
        sv_lo_q, sv_hi_q: inclusive *quantized* sequence-value bounds
            (equal for the per-friend bands of Section 5.3).
        z_lo, z_hi: inclusive curve-value bounds.
    """

    tid: int
    sv_lo_q: int
    sv_hi_q: int
    z_lo: int
    z_hi: int

    @property
    def is_single_sv(self) -> bool:
        """True for the per-friend bands the batch store can subdivide."""
        return self.sv_lo_q == self.sv_hi_q

    @property
    def key(self) -> "BandRequest":
        """Hashable identity used for scan memoization (the tuple itself)."""
        return self


@dataclass(frozen=True)
class PartitionContext:
    """One live time partition and its per-side window enlargements."""

    tid: int
    label: float
    dx: float
    dy: float

    def enlarged(self, rect: Rect) -> Rect:
        """The rectangle grown by this partition's enlargement (Figure 2)."""
        return rect.expanded(self.dx, self.dy)


class PlannedBand(NamedTuple):
    """A band request annotated with the friend it serves.

    ``friend_uid`` is None for bands not tied to a single friend (the
    span-scan ablation); the executor's skip rule only applies when a
    friend is recorded.
    """

    friend_uid: int | None
    band: BandRequest


@dataclass
class QueryPlan:
    """The static scan schedule of one range-shaped query.

    Bands are ordered partition-major, then friend-ascending-by-SV —
    the exact iteration order of the paper's Figure 7 procedure, which
    the executor replays with the skip rule applied.
    """

    q_uid: int
    t_query: float
    friends: list[tuple[float, int]]
    contexts: list[PartitionContext]
    bands: list[PlannedBand]
    window: Rect | None = None


class QueryPlanner:
    """Turns query specs into :class:`QueryPlan` objects for one tree."""

    def __init__(self, tree: "PEBTree"):
        self.tree = tree

    # ------------------------------------------------------------------
    # Shared building blocks (also used by the adaptive PkNN search)
    # ------------------------------------------------------------------

    def friends(self, q_uid: int) -> list[tuple[float, int]]:
        """The issuer's friend list: ``(sv, uid)`` ascending by SV."""
        return self.tree.store.friend_list(q_uid)

    def contexts(self, t_query: float) -> list[PartitionContext]:
        """Live partition contexts with their Figure 2 enlargements."""
        tree = self.tree
        out = []
        for label in tree.partitioner.live_labels(t_query):
            out.append(
                PartitionContext(
                    tid=tree.partitioner.partition_of_label(label),
                    label=label,
                    dx=enlargement_for_label(label, t_query, tree.max_speed_x),
                    dy=enlargement_for_label(label, t_query, tree.max_speed_y),
                )
            )
        return out

    def band(self, tid: int, sv: float, z_lo: int, z_hi: int) -> BandRequest:
        """The per-friend band ``[TID ⊕ SV ⊕ ZV_lo ; TID ⊕ SV ⊕ ZV_hi]``."""
        sv_q = self.tree.codec.quantize_sv(sv)
        return BandRequest(tid=tid, sv_lo_q=sv_q, sv_hi_q=sv_q, z_lo=z_lo, z_hi=z_hi)

    def knn_step(self, k: int) -> float:
        """The PkNN radius step ``rq = Dk / k`` (Section 5.4).

        ``Dk`` is the estimated k-th-neighbour distance of Tao et
        al. [33]; the step is floored at one grid cell so the round
        count stays finite when ``k / N`` is tiny.  Single source of
        the value for the adaptive matrix search *and* the batch
        prefetch probe below — the probe is only a prefetch hint, but
        it must name the exact bands round one will request or the
        prefetch store never serves them.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        step = estimate_knn_distance(
            k, max(len(self.tree), 1), self.tree.grid.space_side
        )
        return max(step / k, self.tree.grid.cell_size)

    # ------------------------------------------------------------------
    # Plans
    # ------------------------------------------------------------------

    def plan_range(self, q_uid: int, window: Rect, t_query: float) -> QueryPlan:
        """Plan a PRQ-shaped scan (also serves the aggregates).

        Per live partition the window is enlarged and reduced to its
        single covering Z-span (see :mod:`repro.core.prq` for why one
        span per (partition, SV) matches the per-interval I/O); one band
        is planned per (partition, friend).
        """
        friends = self.friends(q_uid)
        contexts = self.contexts(t_query)
        bands: list[PlannedBand] = []
        if friends:
            quantize_sv = self.tree.codec.quantize_sv
            quantized = [(quantize_sv(sv), uid) for sv, uid in friends]
            for context in contexts:
                span = self.tree.grid.z_span(context.enlarged(window))
                if span is None:
                    continue
                z_lo, z_hi = span
                tid = context.tid
                bands.extend(
                    PlannedBand(
                        friend_uid, BandRequest(tid, sv_q, sv_q, z_lo, z_hi)
                    )
                    for sv_q, friend_uid in quantized
                )
        return QueryPlan(
            q_uid=q_uid,
            t_query=t_query,
            friends=friends,
            contexts=contexts,
            bands=bands,
            window=window,
        )

    def plan_span_scan(self, q_uid: int, window: Rect, t_query: float) -> QueryPlan:
        """Plan the literal Figure 7 procedure (the ablation variant).

        Per (partition, Z-interval) one coarse band spans the issuer's
        whole ``[SV_min ; SV_max]`` friend range; the Z-intervals come
        from the coarsened exact decomposition rather than one covering
        span, as in the seed ablation.
        """
        friends = self.friends(q_uid)
        contexts = self.contexts(t_query)
        bands: list[PlannedBand] = []
        if friends:
            codec = self.tree.codec
            sv_lo_q = codec.quantize_sv(friends[0][0])
            sv_hi_q = codec.quantize_sv(friends[-1][0])
            for context in contexts:
                for z_lo, z_hi in self.tree.grid.decompose(
                    context.enlarged(window), coarsen=True
                ):
                    bands.append(
                        PlannedBand(
                            None,
                            BandRequest(context.tid, sv_lo_q, sv_hi_q, z_lo, z_hi),
                        )
                    )
        return QueryPlan(
            q_uid=q_uid,
            t_query=t_query,
            friends=friends,
            contexts=contexts,
            bands=bands,
            window=window,
        )

    def plan_knn_probe(
        self, q_uid: int, qx: float, qy: float, k: int, t_query: float
    ) -> list[BandRequest]:
        """The band requests of a PkNN search's *first* round.

        The adaptive matrix search (:mod:`repro.core.pknn`) cannot be
        planned statically — later rounds depend on scan results — but
        its first column is: the square of half-side ``rq`` around the
        query point, enlarged per live partition, one band per
        (partition, friend).  The batch executor adds these to the
        cross-query prefetch set so concurrent kNN queries share
        physical scans with the whole batch instead of joining it only
        via the scanner memo.  A probe is a prefetch superset hint:
        bands the search never requests cost prefetch I/O but can
        never change results.
        """
        friends = self.friends(q_uid)
        if not friends or k <= 0:
            return []
        square = Rect.from_center(qx, qy, self.knn_step(k))
        bands: list[BandRequest] = []
        for context in self.contexts(t_query):
            span = self.tree.grid.z_span(context.enlarged(square))
            if span is None:
                continue
            z_lo, z_hi = span
            for sv, _ in friends:
                bands.append(self.band(context.tid, sv, z_lo, z_hi))
        return bands

    def plan_seed(self, q_uid: int) -> QueryPlan:
        """Plan a whole-space sweep of every friend's SV band.

        The continuous-query registration scan: one full-Z-range band
        per (partition, friend), over *all* partitions — registration
        has no query time, so every partition may hold a friend's entry.
        """
        friends = self.friends(q_uid)
        max_z = self.tree.grid.max_z
        bands = [
            PlannedBand(friend_uid, self.band(tid, sv, 0, max_z))
            for tid in range(self.tree.partitioner.num_partitions)
            for sv, friend_uid in friends
        ]
        return QueryPlan(
            q_uid=q_uid,
            t_query=0.0,
            friends=friends,
            contexts=[],
            bands=bands,
            window=None,
        )


__all__ = [
    "BandRequest",
    "PartitionContext",
    "PlannedBand",
    "QueryPlan",
    "QueryPlanner",
]
