"""Candidate verification: locate, evaluate, deduplicate (engine layer 4).

Every query type ends the same way: a scanned entry is *located* by
evaluating its linear motion function at query time, its owner's policy
toward the issuer is evaluated at that located position (Definition 2),
and — per the paper's skip rule — each user is examined at most once,
"a user has only one location".  The verifier centralizes those three
steps so the adapters in :mod:`repro.core` cannot drift apart, and so
``candidates_examined`` (the intermediate-result size the PEB-tree is
designed to keep small, Figure 15(a)) is counted identically everywhere.

Range queries pass their window via ``within`` so containment is tested
*before* the policy evaluation — candidates the Figure 2 enlargement
dragged in from outside the real window are rejected without paying a
policy lookup.  The PkNN search has no window (it ranks by distance)
and omits ``within``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:
    from repro.motion.objects import MovingObject
    from repro.motion.rows import BandRows
    from repro.policy.store import PolicyStore
    from repro.spatial.geometry import Rect


class CandidateVerifier:
    """Per-query verification state: the ``located`` set and counters.

    Attributes:
        located: uids whose entry has been seen — never examined again,
            in later bands, partitions, or enlargement rounds.
        candidates_examined: entries located and policy-checked.
    """

    def __init__(self, store: "PolicyStore", q_uid: int, t_query: float):
        self.store = store
        self.q_uid = q_uid
        self.t_query = t_query
        self.located: set[int] = set()
        self.candidates_examined = 0
        # Lazily-built owner -> visible-region bounds for (q_uid, t_query),
        # shared by every admit_rows call this query makes.
        self._visible: "dict[int, tuple] | None" = None

    def seen(self, uid: int) -> bool:
        """True when the user was already located (skip-rule predicate)."""
        return uid in self.located

    def admit(
        self, obj: "MovingObject", within: "Rect | None" = None
    ) -> tuple[float, float, bool] | None:
        """Locate and verify one scanned entry.

        Returns None when the user was already located (the entry is
        skipped without counting); otherwise marks the user located,
        counts the candidate, and returns ``(x, y, qualifies)`` where
        ``(x, y)`` is the position at query time and ``qualifies`` is
        containment in ``within`` (when given) plus the Definition 2
        policy condition for the issuer — in that order, so an
        out-of-window candidate never costs a policy evaluation.
        """
        if obj.uid in self.located:
            return None
        self.located.add(obj.uid)
        self.candidates_examined += 1
        x, y = obj.position_at(self.t_query)
        if within is not None and not within.contains(x, y):
            return x, y, False
        return x, y, self.store.evaluate(obj.uid, self.q_uid, x, y, self.t_query)

    def admit_rows(
        self,
        rows: "BandRows",
        within: "Rect | None" = None,
        on_qualify: "Callable[[MovingObject, float, float], bool] | None" = None,
    ) -> bool:
        """Batched :meth:`admit` over one band's decoded columns.

        One pass over ``rows.records`` replaces a per-object call
        chain: identical located-set updates, candidate counting,
        window test, and policy evaluation, in scan order, without
        constructing a ``MovingObject`` per row (the location is
        extrapolated straight from the decoded record fields, with the
        same arithmetic as ``position_at``).  ``on_qualify(obj, x, y)``
        runs inline for each qualifying row — the object materializes
        here, lazily, so only qualifying rows ever pay for one — and
        may return True to stop the scan immediately; rows after the
        stop are neither located nor counted, exactly as breaking out
        of the per-entry loop leaves them.  Returns True when stopped
        early.
        """
        located = self.located
        t_query = self.t_query
        visible = self._visible
        if visible is None:
            # The time condition is constant across the query, so the
            # policy directory collapses to one small dict for the whole
            # verification pass (see PolicyStore.visibility_map).
            visible = self._visible = self.store.visibility_map(
                self.q_uid, t_query
            )
        bounds_of = visible.get
        windowed = within is not None
        if windowed:
            w_xlo = within.x_lo
            w_xhi = within.x_hi
            w_ylo = within.y_lo
            w_yhi = within.y_hi
        examined = 0
        try:
            for i, (uid, x0, y0, vx, vy, t0, _pntp) in enumerate(rows.records):
                if uid in located:
                    continue
                located.add(uid)
                examined += 1
                dt = t_query - t0
                x = x0 + vx * dt
                y = y0 + vy * dt
                if windowed and not (
                    w_xlo <= x <= w_xhi and w_ylo <= y <= w_yhi
                ):
                    continue
                bounds = bounds_of(uid)
                if bounds is None:
                    continue
                for x_lo, x_hi, y_lo, y_hi in bounds:
                    if x_lo <= x <= x_hi and y_lo <= y <= y_hi:
                        break
                else:
                    continue
                if on_qualify is not None and on_qualify(
                    rows.object_at(i), x, y
                ):
                    return True
            return False
        finally:
            self.candidates_examined += examined


__all__ = ["CandidateVerifier"]
