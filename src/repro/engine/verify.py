"""Candidate verification: locate, evaluate, deduplicate (engine layer 4).

Every query type ends the same way: a scanned entry is *located* by
evaluating its linear motion function at query time, its owner's policy
toward the issuer is evaluated at that located position (Definition 2),
and — per the paper's skip rule — each user is examined at most once,
"a user has only one location".  The verifier centralizes those three
steps so the adapters in :mod:`repro.core` cannot drift apart, and so
``candidates_examined`` (the intermediate-result size the PEB-tree is
designed to keep small, Figure 15(a)) is counted identically everywhere.

Range queries pass their window via ``within`` so containment is tested
*before* the policy evaluation — candidates the Figure 2 enlargement
dragged in from outside the real window are rejected without paying a
policy lookup.  The PkNN search has no window (it ranks by distance)
and omits ``within``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.motion.objects import MovingObject
    from repro.policy.store import PolicyStore
    from repro.spatial.geometry import Rect


class CandidateVerifier:
    """Per-query verification state: the ``located`` set and counters.

    Attributes:
        located: uids whose entry has been seen — never examined again,
            in later bands, partitions, or enlargement rounds.
        candidates_examined: entries located and policy-checked.
    """

    def __init__(self, store: "PolicyStore", q_uid: int, t_query: float):
        self.store = store
        self.q_uid = q_uid
        self.t_query = t_query
        self.located: set[int] = set()
        self.candidates_examined = 0

    def seen(self, uid: int) -> bool:
        """True when the user was already located (skip-rule predicate)."""
        return uid in self.located

    def admit(
        self, obj: "MovingObject", within: "Rect | None" = None
    ) -> tuple[float, float, bool] | None:
        """Locate and verify one scanned entry.

        Returns None when the user was already located (the entry is
        skipped without counting); otherwise marks the user located,
        counts the candidate, and returns ``(x, y, qualifies)`` where
        ``(x, y)`` is the position at query time and ``qualifies`` is
        containment in ``within`` (when given) plus the Definition 2
        policy condition for the issuer — in that order, so an
        out-of-window candidate never costs a policy evaluation.
        """
        if obj.uid in self.located:
            return None
        self.located.add(obj.uid)
        self.candidates_examined += 1
        x, y = obj.position_at(self.t_query)
        if within is not None and not within.contains(x, y):
            return x, y, False
        return x, y, self.store.evaluate(obj.uid, self.q_uid, x, y, self.t_query)


__all__ = ["CandidateVerifier"]
