"""The unified privacy-aware query engine.

Every query type the reproduction supports runs the same Section 5.3
pipeline: fetch the issuer's friend list, enlarge the window per live
time partition (Figure 2), convert it to curve-value windows, scan the
per-(partition, SV) key bands of the PEB-tree, and locate-and-verify
each candidate against the policy store.  This package implements that
pipeline exactly once, in four layers (plus the write-path twin):

1. :mod:`repro.engine.plan` — the **planner**: query spec in,
   :class:`~repro.engine.plan.QueryPlan` of band requests out, with the
   paper's skip rules expressed once as plan metadata.
2. :mod:`repro.engine.scanner` — the **band scanner**: executes band
   requests against the tree with per-``(tid, sv, z-range)``
   memoization inside a batch, plus a prefetch store that merges
   overlapping requests across issuers; :mod:`repro.engine.policy`
   supplies the optional **prefetch policy** that decides per stratum
   whether merging pays under the active device profile, tuned online
   by executor and service feedback.
3. :mod:`repro.engine.executor` — the **executor**: drives plans in the
   paper's iteration order, and batches many concurrent query specs so
   one physical scan serves every query that needs it, returning
   per-query results plus :class:`~repro.engine.executor.ExecutionStats`.
4. :mod:`repro.engine.verify` — the **verifier**: centralizes
   ``position_at`` + ``store.evaluate`` + once-per-user deduplication.
5. :mod:`repro.engine.updater` — the **update pipeline**: buffers
   location updates and flushes them as key-sorted, leaf-ordered
   batches through :meth:`repro.core.peb_tree.PEBTree.update_batch`,
   amortizing write I/O the way the scanner amortizes reads, and
   fanning applied states out to continuous-query monitors.

The public query functions (:func:`repro.core.prq.prq`,
:func:`repro.core.pknn.pknn`, :func:`repro.core.aggregate.pcount`, …)
keep their signatures; they are thin adapters over
:class:`~repro.engine.executor.QueryEngine`.
"""

from repro.engine.executor import (
    BatchReport,
    ExecutionStats,
    QueryEngine,
    RangeExecution,
)
from repro.engine.plan import (
    BandRequest,
    PartitionContext,
    PlannedBand,
    QueryPlan,
    QueryPlanner,
)
from repro.engine.policy import PrefetchPolicy, StratumOutcome
from repro.engine.scanner import BandScanner
from repro.engine.updater import UpdateBuffer, UpdatePipeline, UpdateStats
from repro.engine.verify import CandidateVerifier

__all__ = [
    "BandRequest",
    "BandScanner",
    "BatchReport",
    "CandidateVerifier",
    "ExecutionStats",
    "PartitionContext",
    "PlannedBand",
    "PrefetchPolicy",
    "QueryPlan",
    "QueryPlanner",
    "QueryEngine",
    "RangeExecution",
    "StratumOutcome",
    "UpdateBuffer",
    "UpdatePipeline",
    "UpdateStats",
]
