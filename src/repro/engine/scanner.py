"""Band scanning with cross-request deduplication (engine layer 2).

The scanner is the only component that touches the index during query
execution.  It serves :class:`repro.engine.plan.BandRequest` objects
from three tiers, cheapest first:

1. **Memo** — an exact-identity cache: a band already scanned in this
   scanner's lifetime (one query, or one whole batch) is replayed from
   memory.  Two friends sharing a quantized SV, or two queries asking
   for the identical band, cost one physical scan.  The memo is
   bounded (:data:`DEFAULT_MEMO_ENTRIES` entries, LRU): a long-lived
   batch scanner over a huge stratum evicts its coldest bands and
   re-scans them on a later request — eviction can only cost I/O,
   never change a result.
2. **Prefetch store** — :meth:`BandScanner.prefetch` takes the union of
   many plans' band requests, groups the single-SV ones by
   ``(tid, sv_q)``, merges their overlapping Z-intervals, and scans
   each merged interval *once*.  Later requests contained in the
   prefetched coverage are answered by bisecting the in-memory entries
   — this is the cross-query sharing that makes batch execution cheap.
   When a :class:`~repro.engine.policy.PrefetchPolicy` is attached, it
   decides per stratum whether that merge happens at all, which
   intervals join it (speculative kNN probes are segregated from firm
   plan bands), and whether coverage runs are coalesced across gaps —
   the store always serves by exact bisection, so the policy can only
   move I/O counters, never results.
3. **Physical scan** — anything else goes to the tree.

The scanner assumes the tree is not mutated while it is alive (queries
and updates are phase-separated in all the harnesses).  The prefetch
store's Z-subdivision additionally requires the SV-major key layout of
Equation 5 (all entries of one quantized SV key-contiguous, ordered by
ZV); :meth:`BandScanner.prefetch` checks the codec's ``sv_major``
marker and becomes a no-op on the ZV-first ablation layout, whose
scans fall through to the memo/physical tiers — those are
layout-agnostic, so batch results stay identical to sequential on any
codec.

By default the scanner runs *packed*: physical scans go through the
tree's ``scan_band_rows`` and every tier stores and serves
:class:`repro.motion.rows.BandRows` — parallel (zv, record) columns
whose ``MovingObject`` states materialize lazily, only for entries a
verifier actually admits.  ``BandRows`` iterates as ``(zv, object)``
pairs in key order, exactly the sequence a direct ``scan_sv_zrange``
would yield, so replaying a plan against the scanner is observationally
identical to scanning the tree whether a consumer uses the columns or
the legacy pair protocol.  Constructing with ``packed=False`` (or a
tree without ``scan_band_rows``) restores the per-entry generator path,
kept as the benchmark reference.

Alongside the tiers the scanner keeps per-stratum accounting
(:class:`~repro.engine.policy.StratumOutcome`): how much each
``(tid, sv_q)`` group prefetched, how much of that coverage the
replayed queries actually requested, and how many transferred entries
were *dead* (outside every requested interval).  The executor surfaces
the totals on :class:`~repro.engine.executor.ExecutionStats` and feeds
the per-stratum detail back to the policy.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import OrderedDict
from typing import TYPE_CHECKING, Iterable

from repro.engine.plan import BandRequest
from repro.engine.policy import StratumOutcome
from repro.motion.rows import BandRows
from repro.spatial.decompose import ZInterval, merge_intervals

if TYPE_CHECKING:
    from repro.core.peb_tree import PEBTree
    from repro.engine.policy import PrefetchPolicy

#: Default bound on the exact-identity memo, in stored entries.  Large
#: enough that no in-repo workload evicts (the pins stay exact-cost),
#: small enough that a pathological stratum cannot hold the whole
#: dataset in the memo on top of the prefetch store.
DEFAULT_MEMO_ENTRIES = 262_144


class BandScanner:
    """Executes band requests with memoization and batch prefetching.

    One scanner instance defines one deduplication scope: the single
    query adapters create a fresh scanner per query, the batch executor
    shares one scanner across every query of the batch.

    Args:
        tree: the index to scan.
        packed: serve scans as :class:`BandRows` columns (the default);
            trees without a ``scan_band_rows`` fast path fall back to
            the per-entry protocol automatically.
        policy: optional :class:`PrefetchPolicy` consulted per stratum
            during :meth:`prefetch`; None keeps the unconditional-merge
            behavior.
        memo_entries: LRU bound on the exact-identity memo, counted in
            stored entries (not bands).
        scope: opaque id namespacing this scanner's strata in policy
            state — the sharded engine gives each per-shard scanner its
            shard index, so concurrent shards never share a stratum key.

    Attributes:
        requests: band requests received via :meth:`scan`.
        physical_scans: scans that reached the tree (including prefetch
            merges).
        memo_hits: requests served from the exact-identity cache.
        store_hits: requests served from the prefetched band store.
        memo_evictions: bands evicted from the memo by the LRU bound.
        entries_prefetched: entries transferred by prefetch scans.
    """

    def __init__(
        self,
        tree: "PEBTree",
        packed: bool = True,
        policy: "PrefetchPolicy | None" = None,
        memo_entries: int = DEFAULT_MEMO_ENTRIES,
        scope: int = 0,
    ):
        self.tree = tree
        self.packed = bool(packed) and hasattr(tree, "scan_band_rows")
        self.policy = policy
        self.memo_entries = memo_entries
        self.scope = scope
        self.requests = 0
        self.physical_scans = 0
        self.memo_hits = 0
        self.store_hits = 0
        self.memo_evictions = 0
        self.entries_prefetched = 0
        self._memo: "OrderedDict[tuple, BandRows | list]" = OrderedDict()
        self._memo_size = 0
        # (tid, sv_q) -> (coverage intervals, sorted zvs, rows); the
        # zvs list mirrors the rows for bisection.
        self._store: dict[
            tuple[int, int], tuple[list[ZInterval], list[int], "BandRows | list"]
        ] = {}
        self._outcomes: dict[tuple[int, int], StratumOutcome] = {}

    @property
    def deduped(self) -> int:
        """Requests served without a physical scan."""
        return self.memo_hits + self.store_hits

    # ------------------------------------------------------------------
    # Scanning
    # ------------------------------------------------------------------

    def scan(self, band: BandRequest) -> "BandRows | list":
        """All entries of one band, as ``(zv, object)`` rows in key order."""
        self.requests += 1
        single_sv = band.sv_lo_q == band.sv_hi_q
        outcome = None
        if single_sv:
            outcome = self._outcome(band.tid, band.sv_lo_q)
            outcome.requests += 1
            outcome.requested.append((band.z_lo, band.z_hi))
        key = band.key
        cached = self._memo.get(key)
        if cached is not None:
            self.memo_hits += 1
            self._memo.move_to_end(key)
            return cached
        if single_sv:
            served = self._from_store(band)
            if served is not None:
                self.store_hits += 1
                self._memo_put(key, served)
                return served
        rows = self._physical_scan(band)
        if outcome is not None:
            outcome.observed_entries += len(rows)
            outcome.observed_zv += band.z_hi - band.z_lo + 1
        self._memo_put(key, rows)
        return rows

    def prefetch(
        self,
        bands: Iterable[BandRequest],
        speculative: Iterable[BandRequest] = (),
    ) -> None:
        """Scan the merged union of many plans' bands once, up front.

        Single-SV bands are grouped by ``(tid, sv_q)`` and their
        Z-intervals merged, so overlapping requests from different
        issuers share one physical scan.  Multi-SV bands are left to the
        memo/physical tiers, and non-SV-major key layouts skip
        prefetching entirely (subdividing their scans by ZV would
        return entries a direct scan excludes).

        Args:
            bands: firm band requests — static range plans whose bands
                are known to be (an upper bound on) what replay asks.
            speculative: probe hints (the kNN first-round squares) that
                replay may never request.  Without a policy they join
                the merge unconditionally, preserving the legacy
                behavior; with one, the policy decides per stratum.
        """
        if not getattr(self.tree.codec, "sv_major", False):
            return
        grouped: dict[tuple[int, int], tuple[list[ZInterval], list[ZInterval]]] = {}
        for band in bands:
            if band.is_single_sv:
                grouped.setdefault((band.tid, band.sv_lo_q), ([], []))[0].append(
                    (band.z_lo, band.z_hi)
                )
        for band in speculative:
            if band.is_single_sv:
                grouped.setdefault((band.tid, band.sv_lo_q), ([], []))[1].append(
                    (band.z_lo, band.z_hi)
                )
        for (tid, sv_q), (firm, spec) in grouped.items():
            if self.policy is not None:
                coverage = self.policy.decide(self.scope, tid, sv_q, firm, spec)
                if coverage is None:
                    continue
            else:
                coverage = merge_intervals(sorted(firm + spec))
            parts = [
                self._physical_scan(BandRequest(tid, sv_q, sv_q, z_lo, z_hi))
                for z_lo, z_hi in coverage
            ]
            # Physical scan order is key order, so the concatenation is
            # already sorted by (zv, uid) and bisectable by zv.
            if self.packed:
                rows = BandRows.concat(parts) if parts else BandRows.empty()
                self._store[(tid, sv_q)] = (coverage, rows.zvs, rows)
                prefetched = len(rows)
            else:
                entries = [entry for part in parts for entry in part]
                self._store[(tid, sv_q)] = (
                    coverage,
                    [zv for zv, _ in entries],
                    entries,
                )
                prefetched = len(entries)
            self.entries_prefetched += prefetched
            outcome = self._outcome(tid, sv_q)
            outcome.coverage_runs += len(coverage)
            outcome.coverage_zv += sum(hi - lo + 1 for lo, hi in coverage)
            outcome.prefetched_entries += prefetched

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def _outcome(self, tid: int, sv_q: int) -> StratumOutcome:
        outcome = self._outcomes.get((tid, sv_q))
        if outcome is None:
            outcome = self._outcomes[(tid, sv_q)] = StratumOutcome(tid, sv_q)
        return outcome

    def stratum_outcomes(self) -> dict[tuple[int, int], StratumOutcome]:
        """Finalized per-stratum accounting for this scanner's lifetime.

        Derives the summary fields from the raw requested intervals:
        the distinct-band count, the requested-union width, and — for
        prefetched strata — how many stored entries fell outside every
        requested interval (:attr:`StratumOutcome.dead_entries`).
        Idempotent; call after the batch's replay loop.
        """
        for (tid, sv_q), outcome in self._outcomes.items():
            if outcome.requested:
                merged = merge_intervals(sorted(outcome.requested))
                outcome.unique_bands = len(set(outcome.requested))
                outcome.requested_zv = sum(hi - lo + 1 for lo, hi in merged)
            else:
                merged = []
                outcome.unique_bands = 0
                outcome.requested_zv = 0
            stored = self._store.get((tid, sv_q))
            if stored is None:
                outcome.dead_entries = 0
                continue
            _, zvs, _ = stored
            used = sum(
                bisect_right(zvs, hi) - bisect_left(zvs, lo) for lo, hi in merged
            )
            outcome.dead_entries = len(zvs) - used
        return self._outcomes

    def policy_outcomes(
        self,
    ) -> dict[tuple[int, int, int], StratumOutcome]:
        """Finalized outcomes keyed for policy feedback: (scope, tid, sv_q).

        The scatter/gather scanner exposes the same method aggregating
        its per-shard scanners, so the executor feeds the policy one
        uniform dict whatever the deployment shape.
        """
        return {
            (self.scope, tid, sv_q): outcome
            for (tid, sv_q), outcome in self.stratum_outcomes().items()
        }

    @property
    def dead_entries(self) -> int:
        """Prefetched entries no replayed request asked for (finalized)."""
        return sum(o.dead_entries for o in self.stratum_outcomes().values())

    # ------------------------------------------------------------------
    # Tiers
    # ------------------------------------------------------------------

    def _memo_put(self, key: tuple, rows: "BandRows | list") -> None:
        """Insert into the memo, evicting LRU bands past the entry bound.

        The newest band is always kept, even when it alone exceeds the
        bound — evicting it would make the memo useless for the very
        request that populated it.
        """
        self._memo[key] = rows
        self._memo_size += len(rows)
        while self._memo_size > self.memo_entries and len(self._memo) > 1:
            _, evicted = self._memo.popitem(last=False)
            self._memo_size -= len(evicted)
            self.memo_evictions += 1

    def _from_store(self, band: BandRequest) -> "BandRows | list | None":
        """Serve a band from the prefetched store, or None if uncovered."""
        stored = self._store.get((band.tid, band.sv_lo_q))
        if stored is None:
            return None
        coverage, zvs, rows = stored
        for z_lo, z_hi in coverage:
            if z_lo <= band.z_lo and band.z_hi <= z_hi:
                lo = bisect_left(zvs, band.z_lo)
                hi = bisect_right(zvs, band.z_hi)
                return rows[lo:hi]
        return None

    def _physical_scan(self, band: BandRequest) -> "BandRows | list":
        self.physical_scans += 1
        if self.packed:
            return self.tree.scan_band_rows(
                band.tid, band.sv_lo_q, band.sv_hi_q, band.z_lo, band.z_hi
            )
        return list(
            self.tree.scan_band(
                band.tid, band.sv_lo_q, band.sv_hi_q, band.z_lo, band.z_hi
            )
        )


__all__ = ["BandScanner", "DEFAULT_MEMO_ENTRIES"]
