"""Band scanning with cross-request deduplication (engine layer 2).

The scanner is the only component that touches the index during query
execution.  It serves :class:`repro.engine.plan.BandRequest` objects
from three tiers, cheapest first:

1. **Memo** — an exact-identity cache: a band already scanned in this
   scanner's lifetime (one query, or one whole batch) is replayed from
   memory.  Two friends sharing a quantized SV, or two queries asking
   for the identical band, cost one physical scan.
2. **Prefetch store** — :meth:`BandScanner.prefetch` takes the union of
   many plans' band requests, groups the single-SV ones by
   ``(tid, sv_q)``, merges their overlapping Z-intervals, and scans
   each merged interval *once*.  Later requests contained in the
   prefetched coverage are answered by bisecting the in-memory entries
   — this is the cross-query sharing that makes batch execution cheap.
3. **Physical scan** — anything else goes to the tree.

The scanner assumes the tree is not mutated while it is alive (queries
and updates are phase-separated in all the harnesses).  The prefetch
store's Z-subdivision additionally requires the SV-major key layout of
Equation 5 (all entries of one quantized SV key-contiguous, ordered by
ZV); :meth:`BandScanner.prefetch` checks the codec's ``sv_major``
marker and becomes a no-op on the ZV-first ablation layout, whose
scans fall through to the memo/physical tiers — those are
layout-agnostic, so batch results stay identical to sequential on any
codec.

By default the scanner runs *packed*: physical scans go through the
tree's ``scan_band_rows`` and every tier stores and serves
:class:`repro.motion.rows.BandRows` — parallel (zv, record) columns
whose ``MovingObject`` states materialize lazily, only for entries a
verifier actually admits.  ``BandRows`` iterates as ``(zv, object)``
pairs in key order, exactly the sequence a direct ``scan_sv_zrange``
would yield, so replaying a plan against the scanner is observationally
identical to scanning the tree whether a consumer uses the columns or
the legacy pair protocol.  Constructing with ``packed=False`` (or a
tree without ``scan_band_rows``) restores the per-entry generator path,
kept as the benchmark reference.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import TYPE_CHECKING, Iterable

from repro.engine.plan import BandRequest
from repro.motion.rows import BandRows
from repro.spatial.decompose import ZInterval, merge_intervals

if TYPE_CHECKING:
    from repro.core.peb_tree import PEBTree


class BandScanner:
    """Executes band requests with memoization and batch prefetching.

    One scanner instance defines one deduplication scope: the single
    query adapters create a fresh scanner per query, the batch executor
    shares one scanner across every query of the batch.

    Args:
        tree: the index to scan.
        packed: serve scans as :class:`BandRows` columns (the default);
            trees without a ``scan_band_rows`` fast path fall back to
            the per-entry protocol automatically.

    Attributes:
        requests: band requests received via :meth:`scan`.
        physical_scans: scans that reached the tree (including prefetch
            merges).
        memo_hits: requests served from the exact-identity cache.
        store_hits: requests served from the prefetched band store.
    """

    def __init__(self, tree: "PEBTree", packed: bool = True):
        self.tree = tree
        self.packed = bool(packed) and hasattr(tree, "scan_band_rows")
        self.requests = 0
        self.physical_scans = 0
        self.memo_hits = 0
        self.store_hits = 0
        self._memo: dict[tuple, "BandRows | list"] = {}
        # (tid, sv_q) -> (coverage intervals, sorted zvs, rows); the
        # zvs list mirrors the rows for bisection.
        self._store: dict[
            tuple[int, int], tuple[list[ZInterval], list[int], "BandRows | list"]
        ] = {}

    @property
    def deduped(self) -> int:
        """Requests served without a physical scan."""
        return self.memo_hits + self.store_hits

    # ------------------------------------------------------------------
    # Scanning
    # ------------------------------------------------------------------

    def scan(self, band: BandRequest) -> "BandRows | list":
        """All entries of one band, as ``(zv, object)`` rows in key order."""
        self.requests += 1
        key = band.key
        cached = self._memo.get(key)
        if cached is not None:
            self.memo_hits += 1
            return cached
        if band.sv_lo_q == band.sv_hi_q:
            served = self._from_store(band)
            if served is not None:
                self.store_hits += 1
                self._memo[key] = served
                return served
        rows = self._physical_scan(band)
        self._memo[key] = rows
        return rows

    def prefetch(self, bands: Iterable[BandRequest]) -> None:
        """Scan the merged union of many plans' bands once, up front.

        Single-SV bands are grouped by ``(tid, sv_q)`` and their
        Z-intervals merged, so overlapping requests from different
        issuers share one physical scan.  Multi-SV bands are left to the
        memo/physical tiers, and non-SV-major key layouts skip
        prefetching entirely (subdividing their scans by ZV would
        return entries a direct scan excludes).
        """
        if not getattr(self.tree.codec, "sv_major", False):
            return
        grouped: dict[tuple[int, int], list[ZInterval]] = {}
        for band in bands:
            if band.is_single_sv:
                grouped.setdefault((band.tid, band.sv_lo_q), []).append(
                    (band.z_lo, band.z_hi)
                )
        for (tid, sv_q), intervals in grouped.items():
            coverage = merge_intervals(sorted(intervals))
            parts = [
                self._physical_scan(BandRequest(tid, sv_q, sv_q, z_lo, z_hi))
                for z_lo, z_hi in coverage
            ]
            # Physical scan order is key order, so the concatenation is
            # already sorted by (zv, uid) and bisectable by zv.
            if self.packed:
                rows = BandRows.concat(parts) if parts else BandRows.empty()
                self._store[(tid, sv_q)] = (coverage, rows.zvs, rows)
            else:
                entries = [entry for part in parts for entry in part]
                self._store[(tid, sv_q)] = (
                    coverage,
                    [zv for zv, _ in entries],
                    entries,
                )

    # ------------------------------------------------------------------
    # Tiers
    # ------------------------------------------------------------------

    def _from_store(self, band: BandRequest) -> "BandRows | list | None":
        """Serve a band from the prefetched store, or None if uncovered."""
        stored = self._store.get((band.tid, band.sv_lo_q))
        if stored is None:
            return None
        coverage, zvs, rows = stored
        for z_lo, z_hi in coverage:
            if z_lo <= band.z_lo and band.z_hi <= z_hi:
                lo = bisect_left(zvs, band.z_lo)
                hi = bisect_right(zvs, band.z_hi)
                return rows[lo:hi]
        return None

    def _physical_scan(self, band: BandRequest) -> "BandRows | list":
        self.physical_scans += 1
        if self.packed:
            return self.tree.scan_band_rows(
                band.tid, band.sv_lo_q, band.sv_hi_q, band.z_lo, band.z_hi
            )
        return list(
            self.tree.scan_band(
                band.tid, band.sv_lo_q, band.sv_hi_q, band.z_lo, band.z_hi
            )
        )


__all__ = ["BandScanner"]
