"""Adaptive prefetch policy: merge vs exact band scanning (engine layer).

:meth:`BandScanner.prefetch` merges every overlapping band request per
``(tid, sv_q)`` stratum and scans the union once.  That is the right
call on range-dominant batches, where many issuers share the merged
coverage — but the service bench showed it flips sign on kNN-heavy
streams: the speculative probe bands widen the coverage with pages the
adaptive search never asks for, and the merged scan transfers dead
pages a per-band scan would have skipped.

:class:`PrefetchPolicy` closes that loop online.  It decides

* **per batch** whether the speculative kNN probe bands join the
  prefetch set at all (a deterministic two-armed explore/exploit choice
  scored by observed cost per request), and
* **per stratum** whether the firm requests of one ``(tid, sv_q)``
  group are served by a merged prefetch, by exact on-demand band scans,
  or by a hybrid coverage whose runs are coalesced only while the gap's
  transfer cost undercuts a fresh seek —

seeded from :class:`repro.core.cost_model.BandScanCostModel` (the
Section 6 pricing, per scan) under the deployment's active
:class:`~repro.simio.model.DeviceProfile`, then corrected by feedback:
the executor reports per-stratum outcomes (entries prefetched vs dead,
coverage runs, requested widths) plus batch-level physical reads and
``virtual_time_us`` after every batch, and the service worker adds the
per-class signal the SLO bench actually measures (service time and
reads per request).

Every decision is *observationally safe by construction*: the policy
only chooses which coverage (if any) lands in the scanner's prefetch
store, and the store serves requests by exact bisection of the stored
rows.  Results, ``candidates_examined``, and post-run tree state are
bit-identical under any policy — only I/O and virtual-time counters
move.  Decisions are also deterministic: the explore/exploit arm is a
pure function of observed counters (no randomness, no wall clock), and
it is fixed before a batch forks any shard threads.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.core.cost_model import BandScanCostModel
from repro.spatial.decompose import ZInterval, merge_intervals

#: Policy modes accepted everywhere a policy is configured.
PREFETCH_MODES = ("auto", "merge", "exact")

#: Strata flip between merge and exact only after this many observed
#: batches; colder strata behave exactly like the static merge policy.
MIN_STRATUM_SAMPLES = 2

#: Every Nth kNN-bearing batch re-runs the currently losing arm, so a
#: workload shift (kNN probes becoming profitable again) is noticed.
REEXPLORE_EVERY = 16

#: EWMA smoothing for all feedback signals.
EWMA_ALPHA = 0.5


@dataclass
class StratumOutcome:
    """One scanner's accounting for one ``(tid, sv_q)`` prefetch stratum.

    Filled by :class:`~repro.engine.scanner.BandScanner` over its
    lifetime (one batch in the executor) and fed back verbatim through
    :meth:`PrefetchPolicy.observe_batch`.

    Attributes:
        tid: partition id of the stratum.
        sv_q: quantized sequence value of the stratum.
        requests: ``scan()`` calls that targeted this stratum.
        unique_bands: distinct requested Z-intervals among them.
        requested_zv: ZV width of the union of requested intervals.
        coverage_runs: contiguous coverage intervals the prefetch
            scanned (0 when the stratum was served exactly).
        coverage_zv: total ZV width of the prefetched coverage.
        prefetched_entries: entries transferred by the prefetch scans.
        dead_entries: prefetched entries outside every requested
            interval — the merge waste, measurable even untimed.
        observed_entries: entries returned by on-demand physical scans
            of this stratum (the density signal when nothing was
            prefetched).
        observed_zv: ZV width those on-demand scans covered.
    """

    tid: int
    sv_q: int
    requests: int = 0
    unique_bands: int = 0
    requested_zv: int = 0
    coverage_runs: int = 0
    coverage_zv: int = 0
    prefetched_entries: int = 0
    dead_entries: int = 0
    observed_entries: int = 0
    observed_zv: int = 0
    #: Raw requested intervals; consumed by the scanner's finalizer to
    #: derive the summary fields above, not part of the feedback API.
    requested: list[ZInterval] = field(default_factory=list, repr=False)


class _Ewma:
    """Exponentially weighted mean with a sample counter."""

    __slots__ = ("value", "samples")

    def __init__(self):
        self.value = 0.0
        self.samples = 0

    def update(self, x: float) -> None:
        if self.samples == 0:
            self.value = float(x)
        else:
            self.value += EWMA_ALPHA * (float(x) - self.value)
        self.samples += 1


class _StratumState:
    """Smoothed per-stratum observations driving the merge/exact flip."""

    __slots__ = ("density", "unique_bands", "requested_zv", "samples")

    def __init__(self):
        self.density = _Ewma()  # entries per unit of ZV width
        self.unique_bands = _Ewma()
        self.requested_zv = _Ewma()
        self.samples = 0


class PrefetchPolicy:
    """Online merge-vs-exact decision maker for batch band prefetching.

    Args:
        cost: the per-scan pricing model; defaults to SSD-like pricing.
        mode: ``"auto"`` (adaptive), ``"merge"`` (always merge — the
            legacy behavior, bit-identical coverage), or ``"exact"``
            (never prefetch; every band is scanned on demand).

    One policy instance serves one engine — including a sharded engine,
    whose per-shard scanners call :meth:`decide` concurrently from I/O
    threads with disjoint ``scope`` values; all shared state is behind
    a lock, and the per-batch arm is fixed in :meth:`begin_batch`
    before any thread forks.
    """

    def __init__(
        self, cost: BandScanCostModel | None = None, mode: str = "auto"
    ):
        if mode not in PREFETCH_MODES:
            raise ValueError(
                f"mode must be one of {PREFETCH_MODES}, got {mode!r}"
            )
        self.cost = cost if cost is not None else BandScanCostModel()
        self.mode = mode
        self._lock = threading.Lock()
        self._strata: dict[tuple[int, int, int], _StratumState] = {}
        # Two-armed explore/exploit over "do kNN probe bands join the
        # prefetch?": True = speculative prefetch on, False = off.
        self._arm_scores: dict[bool, _Ewma] = {True: _Ewma(), False: _Ewma()}
        self._service_scores: dict[bool, _Ewma] = {True: _Ewma(), False: _Ewma()}
        self._arm_speculative = True
        self._batch_arm: bool | None = None
        self._knn_batches = 0
        self.knn_share = _Ewma()
        # Decision counters, for introspection and tests.
        self.merged_strata = 0
        self.exact_strata = 0
        self.coalesced_runs = 0
        self.seeks_observed = 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def for_tree(cls, tree, mode: str = "auto") -> "PrefetchPolicy":
        """Build a policy priced for ``tree``'s device and page geometry.

        Seek/transfer costs come from the tree's ``latency_model`` (the
        active :class:`DeviceProfile`); untimed trees fall back to the
        default SSD-like pricing, where only the ratios matter.  Entry
        density per page comes from the B+-tree leaf capacity.
        """
        model = getattr(tree, "latency_model", None)
        profile = getattr(model, "profile", None)
        inner = tree
        trees = getattr(tree, "trees", None)
        if trees:
            inner = trees[0]
        btree = getattr(inner, "btree", None)
        capacity = None
        if btree is not None:
            capacity = getattr(getattr(btree, "config", None), "leaf_capacity", None)
        entries_per_page = float(capacity) if capacity else 16.0
        if profile is not None:
            cost = BandScanCostModel.from_device(
                profile, entries_per_page=entries_per_page
            )
        else:
            cost = BandScanCostModel(entries_per_page=entries_per_page)
        return cls(cost=cost, mode=mode)

    @classmethod
    def coerce(cls, policy, tree) -> "PrefetchPolicy | None":
        """Accept a policy, a mode string, or None (legacy behavior)."""
        if policy is None or isinstance(policy, cls):
            return policy
        if isinstance(policy, str):
            return cls.for_tree(tree, mode=policy)
        raise TypeError(
            f"prefetch policy must be a PrefetchPolicy, a mode string "
            f"{PREFETCH_MODES}, or None; got {policy!r}"
        )

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------

    def begin_batch(self, n_range: int, n_knn: int) -> None:
        """Fix this batch's speculative-prefetch arm (called pre-fork).

        Static modes pin the arm.  In auto mode, batches without kNN
        specs have no speculative bands, so no arm is scored; kNN-
        bearing batches explore each arm once, then exploit the arm
        with the lower observed cost per request, re-running the loser
        every :data:`REEXPLORE_EVERY` kNN batches to track drift.
        """
        with self._lock:
            total = n_range + n_knn
            if total > 0:
                self.knn_share.update(n_knn / total)
            self._batch_arm = None
            if self.mode == "merge":
                self._arm_speculative = True
                return
            if self.mode == "exact":
                self._arm_speculative = False
                return
            if n_knn == 0:
                self._arm_speculative = True
                return
            self._knn_batches += 1
            if self._arm_scores[True].samples == 0:
                arm = True
            elif self._arm_scores[False].samples == 0:
                arm = False
            elif self._knn_batches % REEXPLORE_EVERY == 0:
                arm = not self._best_arm()
            else:
                arm = self._best_arm()
            self._arm_speculative = arm
            self._batch_arm = arm

    def _best_arm(self) -> bool:
        """The arm with the lower smoothed cost per request.

        Batch-level scores (virtual time when timed, physical reads
        otherwise) decide; the service worker's per-request signal
        breaks ties, and a dead heat keeps speculative prefetch on
        (the legacy behavior).
        """
        on, off = self._arm_scores[True].value, self._arm_scores[False].value
        if on != off:
            return on < off
        s_on, s_off = self._service_scores[True], self._service_scores[False]
        if s_on.samples and s_off.samples and s_on.value != s_off.value:
            return s_on.value < s_off.value
        return True

    def decide(
        self,
        scope: int,
        tid: int,
        sv_q: int,
        firm: list[ZInterval],
        speculative: list[ZInterval],
    ) -> list[ZInterval] | None:
        """Coverage to prefetch for one stratum, or None to scan exact.

        ``firm`` intervals come from static range plans (the skip rule
        can only remove requests, so they are an upper bound on what
        will be asked); ``speculative`` intervals are kNN probe hints
        that the adaptive search may never touch.  The returned
        coverage only feeds the prefetch store — requests are always
        served by exact bisection — so any return value is safe.
        """
        if self.mode == "merge":
            intervals = firm + speculative
            return merge_intervals(sorted(intervals)) if intervals else None
        if self.mode == "exact":
            return None
        intervals = list(firm)
        if self._arm_speculative:
            intervals += speculative
        if not intervals:
            return None
        coverage = merge_intervals(sorted(intervals))
        with self._lock:
            state = self._strata.get((scope, tid, sv_q))
            if state is None or state.samples < MIN_STRATUM_SAMPLES:
                # Cold stratum: behave like the static merge policy.
                self.merged_strata += 1
                return coverage
            density = max(state.density.value, 1e-9)
            merged_entries = density * sum(hi - lo + 1 for lo, hi in coverage)
            # Fractional expected scans: a stratum requested in half
            # its observed batches prices half a seek per batch, which
            # is what lets rarely-requested strata flip to exact.
            exact_scans = state.unique_bands.value
            exact_entries = density * state.requested_zv.value
            if not self.cost.prefer_merge(
                merged_entries, len(coverage), exact_entries, exact_scans
            ):
                self.exact_strata += 1
                return None
            self.merged_strata += 1
            coalesced = self._coalesce(coverage, density)
            self.coalesced_runs += len(coverage) - len(coalesced)
            return coalesced

    def _coalesce(
        self, coverage: list[ZInterval], density: float
    ) -> list[ZInterval]:
        """Fuse coverage runs whose gap transfers cheaper than a seek."""
        budget = self.cost.gap_entry_budget()
        out = [coverage[0]]
        for lo, hi in coverage[1:]:
            gap_entries = (lo - out[-1][1] - 1) * density
            if gap_entries <= budget:
                out[-1] = (out[-1][0], hi)
            else:
                out.append((lo, hi))
        return out

    # ------------------------------------------------------------------
    # Feedback
    # ------------------------------------------------------------------

    def observe_batch(
        self,
        outcomes: "dict[tuple[int, int, int], StratumOutcome]",
        *,
        physical_reads: int,
        virtual_time_us: float,
        n_requests: int,
        seeks: int = 0,
    ) -> None:
        """Fold one finished batch's measurements into the policy.

        Args:
            outcomes: per-``(scope, tid, sv_q)`` stratum accounting from
                the batch's scanner(s).
            physical_reads: page reads the buffer pool could not serve.
            virtual_time_us: simulated elapsed time (0.0 untimed).
            n_requests: query specs the batch served.
            seeks: non-sequential device positionings charged (0
                untimed); tracked for introspection — the time signal
                already prices them through the device profile.
        """
        with self._lock:
            self.seeks_observed += seeks
            for (scope, tid, sv_q), out in outcomes.items():
                state = self._strata.setdefault(
                    (scope, tid, sv_q), _StratumState()
                )
                if out.coverage_zv > 0:
                    state.density.update(out.prefetched_entries / out.coverage_zv)
                elif out.observed_zv > 0:
                    state.density.update(out.observed_entries / out.observed_zv)
                if out.requests > 0 or out.coverage_zv > 0:
                    # A prefetched-but-unrequested batch is an
                    # observation too — of zero demand.  Those strata
                    # (skip-rule casualties, unused probe superset) are
                    # precisely the ones that must flip to exact.
                    state.unique_bands.update(out.unique_bands)
                    state.requested_zv.update(out.requested_zv)
                    state.samples += 1
            if self._batch_arm is not None:
                per_request = max(1, n_requests)
                if virtual_time_us > 0.0:
                    score = virtual_time_us / per_request
                else:
                    score = physical_reads / per_request
                self._arm_scores[self._batch_arm].update(score)
                self._batch_arm = None

    def observe_service(
        self,
        *,
        n_range: int,
        n_knn: int,
        n_updates: int,
        service_us: float,
        physical_reads: int,
    ) -> None:
        """Fold one served request batch's class mix and cost per request.

        Called by the service worker after each admitted batch, so the
        policy tunes against the quantity the SLO bench gates — time
        (and reads) per request at the service level, update work
        included.
        """
        requests = n_range + n_knn
        if requests == 0:
            return
        with self._lock:
            self.knn_share.update(n_knn / requests)
            arm = self._arm_speculative
            if service_us > 0.0:
                self._service_scores[arm].update(service_us / requests)
            else:
                self._service_scores[arm].update(physical_reads / requests)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Current decision state, for benches and debugging."""
        with self._lock:
            return {
                "mode": self.mode,
                "knn_share": self.knn_share.value,
                "arm_speculative": self._arm_speculative,
                "arm_scores": {
                    "on": self._arm_scores[True].value,
                    "off": self._arm_scores[False].value,
                },
                "strata_tracked": len(self._strata),
                "merged_strata": self.merged_strata,
                "exact_strata": self.exact_strata,
                "coalesced_runs": self.coalesced_runs,
            }


__all__ = [
    "EWMA_ALPHA",
    "MIN_STRATUM_SAMPLES",
    "PREFETCH_MODES",
    "PrefetchPolicy",
    "REEXPLORE_EVERY",
    "StratumOutcome",
]
