"""Buffer replacement policies.

Section 7.1 pins the paper's experiments to "a 50-page LRU buffer"; the
pool therefore defaults to LRU.  Real database systems ship several
strategies, and how much the *choice* matters for the PEB-tree's access
pattern (short scans over a few friend SV bands, re-touched across
queries) is a worthwhile ablation — so the policy is pluggable.

A policy only tracks *page ids* and picks eviction victims; the pool owns
the frames, dirty set, and write-back.  The contract:

* ``on_admit(page_id)`` — a page entered the pool.
* ``on_access(page_id)`` — a resident page was touched.
* ``on_remove(page_id)`` — the pool dropped the page (eviction already
  decided, or an explicit discard).
* ``victim()`` — choose the page to evict next (must be resident).

All four policies here are deterministic, so I/O counts are reproducible
run to run.
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from typing import Protocol


class ReplacementPolicy(Protocol):
    """Victim selection strategy for the buffer pool."""

    name: str

    def on_admit(self, page_id: int) -> None: ...

    def on_access(self, page_id: int) -> None: ...

    def on_remove(self, page_id: int) -> None: ...

    def victim(self) -> int: ...


class LRUPolicy:
    """Evict the least recently used page (the paper's configuration)."""

    name = "lru"

    def __init__(self):
        self._order: OrderedDict[int, None] = OrderedDict()

    def on_admit(self, page_id: int) -> None:
        self._order[page_id] = None

    def on_access(self, page_id: int) -> None:
        self._order.move_to_end(page_id)

    def on_remove(self, page_id: int) -> None:
        self._order.pop(page_id, None)

    def victim(self) -> int:
        if not self._order:
            raise LookupError("no resident pages to evict")
        return next(iter(self._order))


class FIFOPolicy:
    """Evict the page resident longest, ignoring accesses."""

    name = "fifo"

    def __init__(self):
        self._order: OrderedDict[int, None] = OrderedDict()

    def on_admit(self, page_id: int) -> None:
        self._order[page_id] = None

    def on_access(self, page_id: int) -> None:
        pass  # recency is irrelevant to FIFO

    def on_remove(self, page_id: int) -> None:
        self._order.pop(page_id, None)

    def victim(self) -> int:
        if not self._order:
            raise LookupError("no resident pages to evict")
        return next(iter(self._order))


class ClockPolicy:
    """Second-chance: a circular sweep clears reference bits until it
    finds an unreferenced page.

    The classic low-overhead LRU approximation; with every page
    referenced, the sweep degenerates to FIFO after one full lap.
    """

    name = "clock"

    def __init__(self):
        self._ring: OrderedDict[int, bool] = OrderedDict()  # id -> ref bit

    def on_admit(self, page_id: int) -> None:
        self._ring[page_id] = True

    def on_access(self, page_id: int) -> None:
        self._ring[page_id] = True

    def on_remove(self, page_id: int) -> None:
        self._ring.pop(page_id, None)

    def victim(self) -> int:
        if not self._ring:
            raise LookupError("no resident pages to evict")
        while True:
            page_id, referenced = next(iter(self._ring.items()))
            if not referenced:
                return page_id
            # Clear the bit and rotate the hand past this page.
            self._ring[page_id] = False
            self._ring.move_to_end(page_id)


class LFUPolicy:
    """Evict the least frequently used page; FIFO among frequency ties."""

    name = "lfu"

    def __init__(self):
        self._counts: Counter[int] = Counter()
        self._arrival: dict[int, int] = {}
        self._clock = 0

    def on_admit(self, page_id: int) -> None:
        self._counts[page_id] = 1
        self._arrival[page_id] = self._clock
        self._clock += 1

    def on_access(self, page_id: int) -> None:
        self._counts[page_id] += 1

    def on_remove(self, page_id: int) -> None:
        self._counts.pop(page_id, None)
        self._arrival.pop(page_id, None)

    def victim(self) -> int:
        if not self._counts:
            raise LookupError("no resident pages to evict")
        return min(
            self._counts, key=lambda pid: (self._counts[pid], self._arrival[pid])
        )


#: Registry used by the pool constructor, the harness config, and the CLI.
POLICIES: dict[str, type] = {
    LRUPolicy.name: LRUPolicy,
    FIFOPolicy.name: FIFOPolicy,
    ClockPolicy.name: ClockPolicy,
    LFUPolicy.name: LFUPolicy,
}


def make_policy(name: str) -> ReplacementPolicy:
    """Instantiate a registered replacement policy by name."""
    try:
        factory = POLICIES[name]
    except KeyError:
        known = ", ".join(sorted(POLICIES))
        raise ValueError(f"unknown replacement policy {name!r}; known: {known}") from None
    return factory()
