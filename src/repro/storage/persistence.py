"""Binary snapshots of the simulated disk.

Building a paper-scale index (60 K users × 50 policies) costs minutes of
pure Python; a snapshot turns that into a one-time cost.  The format is
deliberately dumb — a versioned header followed by raw page images —
because the disk itself is a flat page map:

    magic:8s  version:u32  page_size:u32  next_page_id:u64  page_count:u64
    page_count * [page_id:u64  length:u32  image:length bytes]

Integers are big-endian.  The *buffer pool* is not part of a snapshot:
callers flush before saving (:func:`save_disk` refuses dirty state it
cannot see, so use :func:`save_pool` when a pool is in play) and start
cold after loading.
"""

from __future__ import annotations

import struct

from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.storage.stats import IOStats

MAGIC = b"REPRODSK"
#: Snapshot format version.  Bumped to 2 when leaf pages switched from
#: interleaved entries to packed key/uid/value columns: raw page images
#: written by version-1 builds parse into garbage under the columnar
#: layout, so old snapshots must be rejected, not misread.
VERSION = 2

_HEADER = struct.Struct(">8sIIQQ")
_PAGE_HEADER = struct.Struct(">QI")


class SnapshotError(ValueError):
    """A snapshot file is malformed or incompatible."""


def save_disk(disk: SimulatedDisk, path: str) -> int:
    """Write every written page to ``path``; returns bytes written.

    The caller is responsible for having flushed any buffer pool in
    front of ``disk`` — unflushed dirty pages are invisible here.
    Delegating wrappers (:class:`repro.simio.disk.TimedDisk`) are
    unwrapped: a snapshot captures the page store, not the timing or
    fault layers around it.
    """
    while hasattr(disk, "inner"):
        disk = disk.inner
    pages = sorted(disk._pages.items())
    parts = [
        _HEADER.pack(
            MAGIC, VERSION, disk.page_size, disk.allocated_count, len(pages)
        )
    ]
    for page_id, image in pages:
        parts.append(_PAGE_HEADER.pack(page_id, len(image)))
        parts.append(image)
    blob = b"".join(parts)
    with open(path, "wb") as handle:
        handle.write(blob)
    return len(blob)


def save_pool(pool: BufferPool, path: str) -> int:
    """Flush the pool, then snapshot its disk."""
    pool.flush()
    return save_disk(pool.disk, path)


def load_disk(path: str, stats: IOStats | None = None) -> SimulatedDisk:
    """Reconstruct a :class:`SimulatedDisk` from a snapshot file.

    The returned disk has fresh (or caller-supplied) I/O counters; the
    restore itself charges nothing, as with a machine rebooting with its
    disk intact.
    """
    with open(path, "rb") as handle:
        blob = handle.read()
    if len(blob) < _HEADER.size:
        raise SnapshotError(f"{path}: truncated header")
    magic, version, page_size, next_page_id, page_count = _HEADER.unpack_from(
        blob, 0
    )
    if magic != MAGIC:
        raise SnapshotError(f"{path}: not a disk snapshot (magic {magic!r})")
    if version != VERSION:
        raise SnapshotError(
            f"{path}: snapshot version {version}, this build reads {VERSION}"
        )

    disk = SimulatedDisk(page_size=page_size, stats=stats)
    offset = _HEADER.size
    for _ in range(page_count):
        if offset + _PAGE_HEADER.size > len(blob):
            raise SnapshotError(f"{path}: truncated page table")
        page_id, length = _PAGE_HEADER.unpack_from(blob, offset)
        offset += _PAGE_HEADER.size
        if offset + length > len(blob):
            raise SnapshotError(f"{path}: truncated page {page_id}")
        if page_id >= next_page_id:
            raise SnapshotError(
                f"{path}: page {page_id} beyond allocation count {next_page_id}"
            )
        disk._pages[page_id] = blob[offset : offset + length]
        offset += length
    if offset != len(blob):
        raise SnapshotError(f"{path}: {len(blob) - offset} trailing bytes")
    disk._next_page_id = next_page_id
    return disk
