"""Failure injection for the storage substrate.

The I/O numbers of the reproduction only mean something if the storage
stack is *honest* — a tree that silently tolerates lost writes or
corrupted pages would also silently tolerate bugs in its own fan-out
arithmetic.  Two wrappers make dishonesty loud:

* :class:`FaultyDisk` — injects read/write failures on a schedule
  (explicit page ids, every N-th access, a :class:`FaultSchedule`, or
  never).  Index code must surface the resulting
  :class:`DiskFaultError` unchanged; tests then verify the index still
  answers correctly once the fault clears (no partial state was kept).
* :class:`ChecksummedDisk` — guards every page image with CRC-32 and
  raises :class:`CorruptPageError` when a read does not match what was
  written.  The test hook :meth:`ChecksummedDisk.corrupt` flips a bit in
  a stored image to prove detection actually happens.

Deterministic fault *schedules* extend the explicit page sets for the
fault-tolerance layer (:mod:`repro.fault`):

* :class:`TransientFaultSchedule` — an explicit, finite set of failing
  access attempt indices.  Because the set is finite, the schedule
  *eventually clears* by construction, which is exactly the hypothesis
  the retry property tests generate over.
* :class:`FaultWindowSchedule` — faults while the calling context's
  cursor on a :class:`repro.simio.clock.SimClock` lies inside a
  virtual-time window; retry backoff (priced on the same clock) is
  what moves a context past the window.

Checksum verification happens on *physical reads only*: the
:class:`repro.storage.buffer.BufferPool` caches deserialized node
objects, so a pool hit never touches the disk and therefore never
re-verifies the stored image.  A page corrupted on disk *after* it was
cached is masked until the frame is evicted and re-read — detection is
a property of the physical read path, not of every logical access.
The fault-tolerance tests pin this invariant; recovery paths that need
a verified image must drop the cached frame (``pool.invalidate()`` /
``pool.discard``) before re-reading.
"""

from __future__ import annotations

import zlib

from repro.storage.disk import SimulatedDisk
from repro.storage.stats import IOStats


class DiskFaultError(IOError):
    """An injected I/O failure (the simulated medium misbehaved)."""


class CorruptPageError(IOError):
    """A page image failed checksum verification."""


class FaultSchedule:
    """Deterministic fault oracle: should this access attempt fail?

    Subclasses decide from the access ``kind`` (``"read"`` /
    ``"write"``), the ``page_id``, and the 1-based per-kind ``attempt``
    counter — pure state the disk already tracks, so a schedule replays
    identically run after run.  The base class never fails.
    """

    def should_fail(self, kind: str, page_id: int, attempt: int) -> bool:
        return False


class TransientFaultSchedule(FaultSchedule):
    """Fail an explicit, finite set of access attempts, then clear.

    Args:
        fail_reads: 1-based read attempt indices that fail.
        fail_writes: 1-based write attempt indices that fail.

    Finite sets make "eventually clears" structural: once the disk's
    attempt counters pass :attr:`max_failing_attempt`, every access
    succeeds — which is what lets hypothesis generate arbitrary
    instances and still guarantee a retried run terminates.
    """

    def __init__(self, fail_reads=(), fail_writes=()):
        self.fail_reads = frozenset(fail_reads)
        self.fail_writes = frozenset(fail_writes)
        if any(a < 1 for a in self.fail_reads | self.fail_writes):
            raise ValueError("attempt indices are 1-based; got an index < 1")

    @property
    def max_failing_attempt(self) -> int:
        """The last failing attempt index (0 when the schedule is empty)."""
        return max(self.fail_reads | self.fail_writes, default=0)

    def should_fail(self, kind: str, page_id: int, attempt: int) -> bool:
        failing = self.fail_reads if kind == "read" else self.fail_writes
        return attempt in failing

    def __repr__(self) -> str:
        return (
            f"TransientFaultSchedule(fail_reads={sorted(self.fail_reads)}, "
            f"fail_writes={sorted(self.fail_writes)})"
        )


class FaultWindowSchedule(FaultSchedule):
    """Fail every access inside a virtual-time window ``[start, end)``.

    Args:
        clock: the :class:`repro.simio.clock.SimClock` whose *calling
            context's cursor* decides window membership — share the
            deployment's clock so backoff and device time move contexts
            through the window.
        start_us / end_us: window bounds in virtual microseconds.
        kinds: access kinds the window affects.
    """

    def __init__(
        self,
        clock,
        start_us: float,
        end_us: float,
        kinds: tuple[str, ...] = ("read", "write"),
    ):
        if end_us < start_us:
            raise ValueError(f"window end {end_us} before start {start_us}")
        self.clock = clock
        self.start_us = start_us
        self.end_us = end_us
        self.kinds = tuple(kinds)

    def should_fail(self, kind: str, page_id: int, attempt: int) -> bool:
        if kind not in self.kinds:
            return False
        return self.start_us <= self.clock.cursor() < self.end_us


class FaultyDisk(SimulatedDisk):
    """A disk that fails on demand.

    Args:
        page_size: page image size limit, as in the base disk.
        stats: shared counters, as in the base disk.
        fail_read_pages: page ids whose reads always fail.
        fail_write_pages: page ids whose writes always fail.
        fail_every_nth_read: if set, every N-th physical read fails
            (1-based: ``fail_every_nth_read=3`` fails reads 3, 6, 9, ...).
        schedule: a :class:`FaultSchedule` consulted per access with the
            disk's attempt counters (composes with the explicit sets).

    A failed access raises *before* touching the page store and charges
    no I/O — the paper's cost accounting counts completed transfers.
    """

    def __init__(
        self,
        page_size: int = 4096,
        stats: IOStats | None = None,
        fail_read_pages: set[int] | None = None,
        fail_write_pages: set[int] | None = None,
        fail_every_nth_read: int | None = None,
        schedule: FaultSchedule | None = None,
    ):
        super().__init__(page_size=page_size, stats=stats)
        if fail_every_nth_read is not None and fail_every_nth_read < 1:
            raise ValueError(
                f"fail_every_nth_read must be >= 1, got {fail_every_nth_read}"
            )
        self.fail_read_pages = set(fail_read_pages or ())
        self.fail_write_pages = set(fail_write_pages or ())
        self.fail_every_nth_read = fail_every_nth_read
        self.schedule = schedule
        self._read_attempts = 0
        self._write_attempts = 0
        self.injected_faults = 0

    def read(self, page_id: int) -> bytes:
        self._read_attempts += 1
        if page_id in self.fail_read_pages:
            self.injected_faults += 1
            raise DiskFaultError(f"injected read fault on page {page_id}")
        if (
            self.fail_every_nth_read is not None
            and self._read_attempts % self.fail_every_nth_read == 0
        ):
            self.injected_faults += 1
            raise DiskFaultError(
                f"injected read fault (attempt #{self._read_attempts})"
            )
        if self.schedule is not None and self.schedule.should_fail(
            "read", page_id, self._read_attempts
        ):
            self.injected_faults += 1
            raise DiskFaultError(
                f"scheduled read fault on page {page_id} "
                f"(attempt #{self._read_attempts})"
            )
        return super().read(page_id)

    def write(self, page_id: int, image: bytes) -> None:
        self._write_attempts += 1
        if page_id in self.fail_write_pages:
            self.injected_faults += 1
            raise DiskFaultError(f"injected write fault on page {page_id}")
        if self.schedule is not None and self.schedule.should_fail(
            "write", page_id, self._write_attempts
        ):
            self.injected_faults += 1
            raise DiskFaultError(
                f"scheduled write fault on page {page_id} "
                f"(attempt #{self._write_attempts})"
            )
        super().write(page_id, image)

    def heal(self) -> None:
        """Clear every configured fault (the medium recovered).

        The attempt counters reset too, so a re-armed
        ``fail_every_nth_read`` or attempt-indexed schedule restarts
        deterministically from attempt 1 instead of continuing from
        wherever the pre-fault counter happened to be.
        """
        self.fail_read_pages.clear()
        self.fail_write_pages.clear()
        self.fail_every_nth_read = None
        self.schedule = None
        self._read_attempts = 0
        self._write_attempts = 0


class ChecksummedDisk(SimulatedDisk):
    """A disk that detects torn or corrupted page images via CRC-32.

    Detection happens on physical reads only — see the module
    docstring for the buffer-pool cache-hit caveat.
    """

    def __init__(self, page_size: int = 4096, stats: IOStats | None = None):
        super().__init__(page_size=page_size, stats=stats)
        self._checksums: dict[int, int] = {}

    def write(self, page_id: int, image: bytes) -> None:
        super().write(page_id, image)
        self._checksums[page_id] = zlib.crc32(image)

    def read(self, page_id: int) -> bytes:
        image = super().read(page_id)
        expected = self._checksums.get(page_id)
        if expected is not None and zlib.crc32(image) != expected:
            raise CorruptPageError(
                f"page {page_id}: checksum mismatch (stored image was altered)"
            )
        return image

    def free(self, page_id: int) -> None:
        super().free(page_id)
        self._checksums.pop(page_id, None)

    def corrupt(self, page_id: int, bit: int = 0) -> None:
        """Flip one bit of the stored image (test hook).

        Args:
            page_id: page to damage; must hold an image.
            bit: bit offset within the image to flip.
        """
        image = bytearray(self._pages[page_id])
        byte_index, bit_index = divmod(bit, 8)
        if byte_index >= len(image):
            raise ValueError(
                f"bit {bit} beyond page image of {len(image)} bytes"
            )
        image[byte_index] ^= 1 << bit_index
        # Bypass write() so the checksum records the *original* image.
        self._pages[page_id] = bytes(image)
