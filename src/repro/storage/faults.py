"""Failure injection for the storage substrate.

The I/O numbers of the reproduction only mean something if the storage
stack is *honest* — a tree that silently tolerates lost writes or
corrupted pages would also silently tolerate bugs in its own fan-out
arithmetic.  Two wrappers make dishonesty loud:

* :class:`FaultyDisk` — injects read/write failures on a schedule
  (explicit page ids, every N-th access, or never).  Index code must
  surface the resulting :class:`DiskFaultError` unchanged; tests then
  verify the index still answers correctly once the fault clears
  (no partial state was kept).
* :class:`ChecksummedDisk` — guards every page image with CRC-32 and
  raises :class:`CorruptPageError` when a read does not match what was
  written.  The test hook :meth:`ChecksummedDisk.corrupt` flips a bit in
  a stored image to prove detection actually happens.
"""

from __future__ import annotations

import zlib

from repro.storage.disk import SimulatedDisk
from repro.storage.stats import IOStats


class DiskFaultError(IOError):
    """An injected I/O failure (the simulated medium misbehaved)."""


class CorruptPageError(IOError):
    """A page image failed checksum verification."""


class FaultyDisk(SimulatedDisk):
    """A disk that fails on demand.

    Args:
        page_size: page image size limit, as in the base disk.
        stats: shared counters, as in the base disk.
        fail_read_pages: page ids whose reads always fail.
        fail_write_pages: page ids whose writes always fail.
        fail_every_nth_read: if set, every N-th physical read fails
            (1-based: ``fail_every_nth_read=3`` fails reads 3, 6, 9, ...).

    A failed access raises *before* touching the page store and charges
    no I/O — the paper's cost accounting counts completed transfers.
    """

    def __init__(
        self,
        page_size: int = 4096,
        stats: IOStats | None = None,
        fail_read_pages: set[int] | None = None,
        fail_write_pages: set[int] | None = None,
        fail_every_nth_read: int | None = None,
    ):
        super().__init__(page_size=page_size, stats=stats)
        if fail_every_nth_read is not None and fail_every_nth_read < 1:
            raise ValueError(
                f"fail_every_nth_read must be >= 1, got {fail_every_nth_read}"
            )
        self.fail_read_pages = set(fail_read_pages or ())
        self.fail_write_pages = set(fail_write_pages or ())
        self.fail_every_nth_read = fail_every_nth_read
        self._read_attempts = 0
        self.injected_faults = 0

    def read(self, page_id: int) -> bytes:
        self._read_attempts += 1
        if page_id in self.fail_read_pages:
            self.injected_faults += 1
            raise DiskFaultError(f"injected read fault on page {page_id}")
        if (
            self.fail_every_nth_read is not None
            and self._read_attempts % self.fail_every_nth_read == 0
        ):
            self.injected_faults += 1
            raise DiskFaultError(
                f"injected read fault (attempt #{self._read_attempts})"
            )
        return super().read(page_id)

    def write(self, page_id: int, image: bytes) -> None:
        if page_id in self.fail_write_pages:
            self.injected_faults += 1
            raise DiskFaultError(f"injected write fault on page {page_id}")
        super().write(page_id, image)

    def heal(self) -> None:
        """Clear every configured fault (the medium recovered)."""
        self.fail_read_pages.clear()
        self.fail_write_pages.clear()
        self.fail_every_nth_read = None


class ChecksummedDisk(SimulatedDisk):
    """A disk that detects torn or corrupted page images via CRC-32."""

    def __init__(self, page_size: int = 4096, stats: IOStats | None = None):
        super().__init__(page_size=page_size, stats=stats)
        self._checksums: dict[int, int] = {}

    def write(self, page_id: int, image: bytes) -> None:
        super().write(page_id, image)
        self._checksums[page_id] = zlib.crc32(image)

    def read(self, page_id: int) -> bytes:
        image = super().read(page_id)
        expected = self._checksums.get(page_id)
        if expected is not None and zlib.crc32(image) != expected:
            raise CorruptPageError(
                f"page {page_id}: checksum mismatch (stored image was altered)"
            )
        return image

    def free(self, page_id: int) -> None:
        super().free(page_id)
        self._checksums.pop(page_id, None)

    def corrupt(self, page_id: int, bit: int = 0) -> None:
        """Flip one bit of the stored image (test hook).

        Args:
            page_id: page to damage; must hold an image.
            bit: bit offset within the image to flip.
        """
        image = bytearray(self._pages[page_id])
        byte_index, bit_index = divmod(bit, 8)
        if byte_index >= len(image):
            raise ValueError(
                f"bit {bit} beyond page image of {len(image)} bytes"
            )
        image[byte_index] ^= 1 << bit_index
        # Bypass write() so the checksum records the *original* image.
        self._pages[page_id] = bytes(image)
