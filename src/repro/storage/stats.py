"""I/O statistics counters shared by the disk and buffer layers.

:class:`IOStats` is the mutable counter bundle one disk/pool pair
shares; :class:`StatsView` is a *live* read-side aggregate over several
bundles, for deployments that spread one logical index across many
pools (the sharded multi-tree) but must report one coherent set of
counters — harness code reads ``view.physical_reads`` exactly as it
would a single pool's, instead of hand-summing per-shard counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence


@dataclass
class IOStats:
    """Mutable bundle of I/O counters.

    The paper's experiments report the *average I/O cost per query*, where
    one I/O is one physical page read that the LRU buffer could not serve.
    Physical writes are tracked as well (dirty evictions and explicit
    flushes) so that update experiments can report complete numbers.

    Attributes:
        physical_reads: pages fetched from the simulated disk (buffer misses).
        physical_writes: pages written back to the simulated disk.
        logical_reads: page requests made by the index code, hit or miss.
        logical_writes: page dirty-markings made by the index code.
    """

    physical_reads: int = 0
    physical_writes: int = 0
    logical_reads: int = 0
    logical_writes: int = 0
    _marks: dict[str, tuple[int, int, int, int]] = field(
        default_factory=dict, repr=False
    )

    def reset(self) -> None:
        """Zero every counter (marks survive so old deltas become invalid)."""
        self.physical_reads = 0
        self.physical_writes = 0
        self.logical_reads = 0
        self.logical_writes = 0
        self._marks.clear()

    @property
    def total_io(self) -> int:
        """Physical reads plus physical writes."""
        return self.physical_reads + self.physical_writes

    @property
    def hit_ratio(self) -> float:
        """Fraction of logical reads served by the buffer (1.0 if idle)."""
        if self.logical_reads == 0:
            return 1.0
        return 1.0 - self.physical_reads / self.logical_reads

    def mark(self, label: str = "default") -> None:
        """Remember the current counters under ``label`` for later deltas."""
        self._marks[label] = (
            self.physical_reads,
            self.physical_writes,
            self.logical_reads,
            self.logical_writes,
        )

    def reads_since(self, label: str = "default") -> int:
        """Physical reads accumulated since :meth:`mark` was called."""
        return self.physical_reads - self._marks.get(label, (0, 0, 0, 0))[0]

    def writes_since(self, label: str = "default") -> int:
        """Physical writes accumulated since :meth:`mark` was called."""
        return self.physical_writes - self._marks.get(label, (0, 0, 0, 0))[1]

    def snapshot(self) -> dict[str, int]:
        """Return an immutable view of the counters for reporting."""
        return {
            "physical_reads": self.physical_reads,
            "physical_writes": self.physical_writes,
            "logical_reads": self.logical_reads,
            "logical_writes": self.logical_writes,
        }

    def publish(self, registry, **labels) -> None:
        """Publish into a ``MetricsRegistry`` as ``io.<field>``."""
        registry.counter("io.physical_reads", self.physical_reads, **labels)
        registry.counter("io.physical_writes", self.physical_writes, **labels)
        registry.counter("io.logical_reads", self.logical_reads, **labels)
        registry.counter("io.logical_writes", self.logical_writes, **labels)
        registry.gauge("io.hit_ratio", self.hit_ratio, **labels)


class StatsView:
    """A live aggregate over several :class:`IOStats` bundles.

    Every counter access recomputes the sum from the underlying
    bundles, so a view taken once (e.g. as a sharded deployment's
    ``stats`` attribute) stays current as the member pools keep doing
    I/O — callers can take before/after deltas on the view exactly as
    they do on a single pool's :class:`IOStats`.

    The view mirrors the read-side surface of :class:`IOStats`
    (counters, :attr:`total_io`, :attr:`hit_ratio`, :meth:`snapshot`)
    plus :meth:`reset`, which fans out to every member.  Per-bundle
    ``mark``/``*_since`` bookkeeping stays on the members — a deadline
    mark on an aggregate of moving parts would silently mix scopes.

    Deployments on simulated-latency devices additionally carry a
    ``latency`` aggregate (a :class:`repro.simio.stats.LatencyView`
    over the devices' virtual-time bundles, duck-typed here so the
    storage layer needs no simio import); it rides along so harness
    code finds counters and times on one object, and :meth:`reset`
    fans out to it too.
    """

    def __init__(
        self,
        parts: Sequence[IOStats] | Iterable[IOStats],
        latency=None,
    ):
        self._parts = tuple(parts)
        if not self._parts:
            raise ValueError("StatsView needs at least one IOStats bundle")
        self.latency = latency

    @property
    def parts(self) -> tuple[IOStats, ...]:
        """The member bundles, in aggregation order."""
        return self._parts

    @property
    def physical_reads(self) -> int:
        return sum(part.physical_reads for part in self._parts)

    @property
    def physical_writes(self) -> int:
        return sum(part.physical_writes for part in self._parts)

    @property
    def logical_reads(self) -> int:
        return sum(part.logical_reads for part in self._parts)

    @property
    def logical_writes(self) -> int:
        return sum(part.logical_writes for part in self._parts)

    @property
    def total_io(self) -> int:
        """Physical reads plus physical writes across every member."""
        return self.physical_reads + self.physical_writes

    @property
    def hit_ratio(self) -> float:
        """Fraction of logical reads served by the buffers (1.0 if idle)."""
        logical = self.logical_reads
        if logical == 0:
            return 1.0
        return 1.0 - self.physical_reads / logical

    def reset(self) -> None:
        """Zero every member bundle's counters (latency bundles too)."""
        for part in self._parts:
            part.reset()
        if self.latency is not None:
            self.latency.reset()

    def snapshot(self) -> dict:
        """Return an immutable merged view of the counters for reporting."""
        merged: dict = {
            "physical_reads": self.physical_reads,
            "physical_writes": self.physical_writes,
            "logical_reads": self.logical_reads,
            "logical_writes": self.logical_writes,
        }
        if self.latency is not None:
            merged["latency"] = self.latency.snapshot()
        return merged

    def publish(self, registry, **labels) -> None:
        """Publish the merged counters (same ``io.<field>`` names a
        single bundle uses; the latency aggregate rides along)."""
        registry.counter("io.physical_reads", self.physical_reads, **labels)
        registry.counter("io.physical_writes", self.physical_writes, **labels)
        registry.counter("io.logical_reads", self.logical_reads, **labels)
        registry.counter("io.logical_writes", self.logical_writes, **labels)
        registry.gauge("io.hit_ratio", self.hit_ratio, **labels)
        if self.latency is not None and hasattr(self.latency, "publish"):
            self.latency.publish(registry, **labels)


def merge_stats(parts: Iterable[IOStats], latency=None) -> StatsView:
    """One coherent live view over several counter bundles."""
    return StatsView(tuple(parts), latency=latency)
