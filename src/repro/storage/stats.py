"""I/O statistics counters shared by the disk and buffer layers."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class IOStats:
    """Mutable bundle of I/O counters.

    The paper's experiments report the *average I/O cost per query*, where
    one I/O is one physical page read that the LRU buffer could not serve.
    Physical writes are tracked as well (dirty evictions and explicit
    flushes) so that update experiments can report complete numbers.

    Attributes:
        physical_reads: pages fetched from the simulated disk (buffer misses).
        physical_writes: pages written back to the simulated disk.
        logical_reads: page requests made by the index code, hit or miss.
        logical_writes: page dirty-markings made by the index code.
    """

    physical_reads: int = 0
    physical_writes: int = 0
    logical_reads: int = 0
    logical_writes: int = 0
    _marks: dict[str, tuple[int, int, int, int]] = field(
        default_factory=dict, repr=False
    )

    def reset(self) -> None:
        """Zero every counter (marks survive so old deltas become invalid)."""
        self.physical_reads = 0
        self.physical_writes = 0
        self.logical_reads = 0
        self.logical_writes = 0
        self._marks.clear()

    @property
    def total_io(self) -> int:
        """Physical reads plus physical writes."""
        return self.physical_reads + self.physical_writes

    @property
    def hit_ratio(self) -> float:
        """Fraction of logical reads served by the buffer (1.0 if idle)."""
        if self.logical_reads == 0:
            return 1.0
        return 1.0 - self.physical_reads / self.logical_reads

    def mark(self, label: str = "default") -> None:
        """Remember the current counters under ``label`` for later deltas."""
        self._marks[label] = (
            self.physical_reads,
            self.physical_writes,
            self.logical_reads,
            self.logical_writes,
        )

    def reads_since(self, label: str = "default") -> int:
        """Physical reads accumulated since :meth:`mark` was called."""
        return self.physical_reads - self._marks.get(label, (0, 0, 0, 0))[0]

    def writes_since(self, label: str = "default") -> int:
        """Physical writes accumulated since :meth:`mark` was called."""
        return self.physical_writes - self._marks.get(label, (0, 0, 0, 0))[1]

    def snapshot(self) -> dict[str, int]:
        """Return an immutable view of the counters for reporting."""
        return {
            "physical_reads": self.physical_reads,
            "physical_writes": self.physical_writes,
            "logical_reads": self.logical_reads,
            "logical_writes": self.logical_writes,
        }
