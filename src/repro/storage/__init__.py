"""Paged storage substrate: simulated disk, LRU buffer pool, I/O statistics.

The paper (Section 7.1) measures query performance in page I/Os with a
4 KiB page size and a 50-page LRU buffer.  This package provides that
measurement substrate:

* :class:`~repro.storage.disk.SimulatedDisk` stores serialized pages and
  counts physical reads and writes.
* :class:`~repro.storage.buffer.BufferPool` is an LRU cache of deserialized
  pages in front of the disk; a miss is a physical read, an eviction of a
  dirty page is a physical write.
* :class:`~repro.storage.stats.IOStats` is the counter bundle shared by the
  two layers.
* :mod:`~repro.storage.replacement` supplies the eviction policies (LRU
  per the paper; FIFO/CLOCK/LFU for the buffer-policy ablation).
* :mod:`~repro.storage.faults` injects disk failures and page corruption
  for the failure-handling tests.

Index structures (``repro.btree`` and everything built on it) never touch
the disk directly; all their page traffic flows through a buffer pool so
that experiments observe exactly the I/O the paper reports.
"""

from repro.storage.buffer import BufferPool
from repro.storage.disk import PAGE_SIZE, SimulatedDisk
from repro.storage.faults import (
    ChecksummedDisk,
    CorruptPageError,
    DiskFaultError,
    FaultyDisk,
)
from repro.storage.page import PageSerializer
from repro.storage.persistence import SnapshotError, load_disk, save_disk, save_pool
from repro.storage.replacement import POLICIES, make_policy
from repro.storage.stats import IOStats, StatsView, merge_stats

__all__ = [
    "PAGE_SIZE",
    "POLICIES",
    "BufferPool",
    "ChecksummedDisk",
    "CorruptPageError",
    "DiskFaultError",
    "FaultyDisk",
    "IOStats",
    "PageSerializer",
    "SimulatedDisk",
    "SnapshotError",
    "StatsView",
    "load_disk",
    "make_policy",
    "merge_stats",
    "save_disk",
    "save_pool",
]
