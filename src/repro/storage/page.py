"""Serialization protocol connecting in-memory nodes to disk page images.

The buffer pool caches *deserialized* node objects; the serializer is the
bridge used on miss (parse) and on dirty eviction / flush (pack).  Keeping
the protocol abstract here lets the B+-tree define its own node layout in
``repro.btree.serialization`` without the storage layer knowing about keys
or fan-out.
"""

from __future__ import annotations

from typing import Any, Protocol


class PageSerializer(Protocol):
    """Packs cached objects to page images and back.

    Implementations must round-trip: ``parse(pack(obj))`` reconstructs an
    object that behaves identically to ``obj``.  ``pack`` must never return
    more than the disk's page size in bytes.
    """

    def pack(self, obj: Any) -> bytes:
        """Serialize ``obj`` into a page image."""
        ...

    def parse(self, image: bytes) -> Any:
        """Reconstruct the object stored in ``image``."""
        ...


class RawBytesSerializer:
    """Identity serializer for callers that already produce ``bytes``."""

    def pack(self, obj: bytes) -> bytes:
        if not isinstance(obj, (bytes, bytearray)):
            raise TypeError(f"expected bytes, got {type(obj).__name__}")
        return bytes(obj)

    def parse(self, image: bytes) -> bytes:
        return image
