"""A simulated page-addressed disk.

The experiments in the paper run on a disk with 4 KiB pages.  We simulate
the disk as a mapping from page id to page image and count every physical
access.  The simulation is deliberately strict: a page image larger than
:data:`PAGE_SIZE` raises, because an index node that does not fit its page
would silently corrupt fan-out arithmetic and with it every I/O number the
benchmark harness reports.
"""

from __future__ import annotations

from repro.storage.stats import IOStats

#: Disk page size in bytes (Section 7.1: "The disk page size is set at 4K").
PAGE_SIZE = 4096


class PageOverflowError(ValueError):
    """Raised when a page image exceeds :data:`PAGE_SIZE` bytes."""


class SimulatedDisk:
    """Page-addressed storage with physical I/O accounting.

    Pages are allocated sequentially.  Reads of unwritten pages raise
    ``KeyError`` — a correctly layered index never reads a page it has not
    allocated and written.

    Args:
        page_size: maximum page image size in bytes.
        stats: shared counter bundle; a fresh one is created if omitted.
    """

    def __init__(self, page_size: int = PAGE_SIZE, stats: IOStats | None = None):
        if page_size <= 0:
            raise ValueError(f"page_size must be positive, got {page_size}")
        self.page_size = page_size
        self.stats = stats if stats is not None else IOStats()
        self._pages: dict[int, bytes] = {}
        self._next_page_id = 0

    def allocate(self) -> int:
        """Reserve a new page id (no I/O is charged for allocation)."""
        page_id = self._next_page_id
        self._next_page_id += 1
        return page_id

    def read(self, page_id: int) -> bytes:
        """Fetch a page image, charging one physical read."""
        image = self._pages[page_id]
        self.stats.physical_reads += 1
        return image

    def write(self, page_id: int, image: bytes) -> None:
        """Store a page image, charging one physical write."""
        if len(image) > self.page_size:
            raise PageOverflowError(
                f"page {page_id}: image is {len(image)} bytes, "
                f"page size is {self.page_size}"
            )
        if page_id >= self._next_page_id:
            raise KeyError(f"page {page_id} was never allocated")
        self._pages[page_id] = image
        self.stats.physical_writes += 1

    def free(self, page_id: int) -> None:
        """Drop a page image (deallocated pages may be read never again)."""
        self._pages.pop(page_id, None)

    def contains(self, page_id: int) -> bool:
        """True if the page has been written at least once."""
        return page_id in self._pages

    @property
    def page_count(self) -> int:
        """Number of pages currently holding an image."""
        return len(self._pages)

    @property
    def allocated_count(self) -> int:
        """Number of page ids handed out so far."""
        return self._next_page_id
