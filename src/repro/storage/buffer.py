"""Buffer pool over the simulated disk.

Section 7.1 of the paper: *"a 50-page LRU buffer is simulated"*.  The pool
caches deserialized node objects keyed by page id.  A request that misses
costs one physical read; evicting a dirty page costs one physical write.

The pool supports *resizing between experiment phases*: the benchmark
harness builds indexes with a large buffer (builds are not part of the
reported numbers) and then shrinks to the paper's 50 pages and resets the
counters before replaying queries.

Victim selection is delegated to a pluggable
:class:`repro.storage.replacement.ReplacementPolicy` (LRU by default, per
the paper; FIFO/CLOCK/LFU available for the buffer-policy ablation).
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.storage.disk import SimulatedDisk
from repro.storage.page import PageSerializer
from repro.storage.replacement import ReplacementPolicy, make_policy
from repro.storage.stats import StatsView, merge_stats

#: Paper default (Table 1): a 50-page LRU buffer.
DEFAULT_BUFFER_PAGES = 50


class BufferPool:
    """Page cache with write-back semantics and pluggable eviction.

    Args:
        disk: backing simulated disk.
        capacity: maximum number of resident pages.
        serializer: packs/parses node objects; may be swapped per tree if
            several trees share one pool (each ``get`` names its serializer).
        policy: replacement policy instance or registered name
            (default ``"lru"``, the paper's configuration).
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        capacity: int = DEFAULT_BUFFER_PAGES,
        serializer: PageSerializer | None = None,
        policy: ReplacementPolicy | str = "lru",
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.disk = disk
        self.capacity = capacity
        self.serializer = serializer
        self.policy = make_policy(policy) if isinstance(policy, str) else policy
        self._frames: dict[int, Any] = {}
        self._dirty: set[int] = set()
        self._guard_base: int | None = None

    @property
    def stats(self):
        """The disk's shared I/O counter bundle."""
        return self.disk.stats

    @staticmethod
    def merged_stats(pools: "Iterable[BufferPool]") -> StatsView:
        """One live counter view over several pools' I/O statistics.

        Multi-pool deployments (one pool per shard of a sharded index)
        report through this instead of hand-summing per-pool counters:
        the returned :class:`repro.storage.stats.StatsView` recomputes
        on every access, so before/after deltas work exactly as on a
        single pool's stats.
        """
        return merge_stats(pool.stats for pool in pools)

    # ------------------------------------------------------------------
    # Core page API
    # ------------------------------------------------------------------

    def get(self, page_id: int, serializer: PageSerializer | None = None) -> Any:
        """Return the cached object for ``page_id``, reading disk on a miss."""
        self.stats.logical_reads += 1
        if page_id in self._frames:
            self.policy.on_access(page_id)
            return self._frames[page_id]
        codec = serializer if serializer is not None else self.serializer
        if codec is None:
            raise RuntimeError("BufferPool has no serializer configured")
        obj = codec.parse(self.disk.read(page_id))
        self._admit(page_id, obj)
        return obj

    def put(self, page_id: int, obj: Any, dirty: bool = True) -> None:
        """Install a (typically brand-new) object for ``page_id``."""
        if page_id in self._frames:
            self.policy.on_access(page_id)
            self._frames[page_id] = obj
        else:
            self._admit(page_id, obj)
        if dirty:
            self.mark_dirty(page_id)

    def mark_dirty(self, page_id: int) -> None:
        """Record that the cached object diverges from its disk image."""
        if page_id not in self._frames:
            raise KeyError(f"page {page_id} is not resident")
        self.stats.logical_writes += 1
        self._dirty.add(page_id)

    def discard(self, page_id: int) -> None:
        """Drop a page from the pool without writing it back (for deletes)."""
        if self._frames.pop(page_id, None) is not None:
            self.policy.on_remove(page_id)
        self._dirty.discard(page_id)

    def flush(self) -> None:
        """Write back every dirty page; the pool stays populated."""
        for page_id in sorted(self._dirty):
            self._write_back(page_id)
        self._dirty.clear()

    def clear(self) -> None:
        """Flush and then empty the pool (a cold cache)."""
        self.flush()
        for page_id in list(self._frames):
            self.policy.on_remove(page_id)
        self._frames.clear()

    def resize(self, capacity: int) -> None:
        """Change capacity, evicting policy victims if shrinking."""
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        while len(self._frames) > self.capacity:
            self._evict()

    def invalidate(self) -> None:
        """Empty the pool *without* write-back (cached state is abandoned).

        Recovery uses this after restoring page images directly on the
        disk: the cached objects no longer describe any on-disk page, so
        flushing them (as :meth:`clear` would) would clobber the
        restored state.  Any active sweep guard is abandoned with the
        frames it was protecting.
        """
        for page_id in list(self._frames):
            self.policy.on_remove(page_id)
        self._frames.clear()
        self._dirty.clear()
        self._guard_base = None

    # ------------------------------------------------------------------
    # Sweep guard: a no-steal window for retryable write sweeps
    # ------------------------------------------------------------------
    #
    # A batch sweep that faults mid-way leaves some leaves rewritten and
    # others not — unretryable against the disk alone.  The guard makes
    # the sweep all-or-nothing at the pool layer: while active, dirty
    # frames are never evicted (clean frames still are; the pool may
    # exceed capacity when everything resident is dirty), so the disk
    # keeps its pre-sweep images for every *pre-existing* page and only
    # guard-allocated pages (splits) carry new images.  Rollback then
    # discards every dirtied frame and frees the guard allocations,
    # restoring the exact pre-sweep logical state; commit flushes.

    @property
    def guard_active(self) -> bool:
        return self._guard_base is not None

    def begin_sweep_guard(self) -> None:
        """Open a no-steal window.  Requires a clean pool (flush first)."""
        if self._guard_base is not None:
            raise RuntimeError("sweep guard already active")
        if self._dirty:
            raise RuntimeError(
                f"sweep guard needs a clean pool; {len(self._dirty)} dirty pages"
            )
        self._guard_base = self.disk.allocated_count

    def rollback_sweep_guard(self) -> None:
        """Undo the guarded sweep: drop dirtied frames, free new pages."""
        if self._guard_base is None:
            raise RuntimeError("no sweep guard active")
        base = self._guard_base
        self._guard_base = None
        for page_id in list(self._dirty):
            self.discard(page_id)
        for page_id in range(base, self.disk.allocated_count):
            self.discard(page_id)
            self.disk.free(page_id)

    def commit_sweep_guard(self) -> None:
        """Close the window, flushing the sweep's writes to disk.

        The flush runs *before* the guard clears: a write fault leaves
        the guard active with ``_dirty`` intact, so a retried commit
        resumes the write-back (rewriting an already-flushed page is
        idempotent) without ever re-applying the sweep.
        """
        if self._guard_base is None:
            raise RuntimeError("no sweep guard active")
        self.flush()
        self._guard_base = None
        while len(self._frames) > self.capacity:
            self._evict()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._frames

    def __len__(self) -> int:
        return len(self._frames)

    @property
    def resident_pages(self) -> list[int]:
        """Resident page ids in admission order (oldest first)."""
        return list(self._frames)

    @property
    def dirty_pages(self) -> set[int]:
        """Ids of resident pages awaiting write-back."""
        return set(self._dirty)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _admit(self, page_id: int, obj: Any) -> None:
        if self._guard_base is not None:
            # No-steal: evict clean victims only; overflow capacity when
            # every resident frame is dirty rather than lose undo state.
            while len(self._frames) >= self.capacity:
                if not self._evict_clean():
                    break
        else:
            while len(self._frames) >= self.capacity:
                self._evict()
        self._frames[page_id] = obj
        self.policy.on_admit(page_id)

    def _evict_clean(self) -> bool:
        for page_id in self._frames:
            if page_id not in self._dirty:
                self._frames.pop(page_id)
                self.policy.on_remove(page_id)
                return True
        return False

    def _evict(self) -> None:
        page_id = self.policy.victim()
        obj = self._frames.pop(page_id)
        self.policy.on_remove(page_id)
        if page_id in self._dirty:
            self._write_back(page_id, obj)
            self._dirty.discard(page_id)

    def _write_back(self, page_id: int, obj: Any | None = None) -> None:
        codec = self.serializer
        if codec is None:
            raise RuntimeError("BufferPool has no serializer configured")
        if obj is None:
            obj = self._frames[page_id]
        self.disk.write(page_id, codec.pack(obj))
