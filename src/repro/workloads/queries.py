"""Query workloads for the experiments.

Range queries use square windows of a configurable side length placed
uniformly (Table 1 default: side 200 in the 1000 x 1000 space); kNN
queries are issued from a user's own current location, matching
Definition 3 where ``qLoc`` is the query issuer's position.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.motion.objects import MovingObject
from repro.spatial.geometry import Rect


@dataclass(frozen=True)
class RangeQuerySpec:
    """One PRQ instance: issuer, window, query time."""

    q_uid: int
    window: Rect
    t_query: float


@dataclass(frozen=True)
class KnnQuerySpec:
    """One PkNN instance: issuer, issuer location, k, query time."""

    q_uid: int
    qx: float
    qy: float
    k: int
    t_query: float


class QueryGenerator:
    """Draws random query workloads over a user population."""

    def __init__(self, space_side: float, rng: random.Random):
        self.space_side = space_side
        self.rng = rng

    def range_queries(
        self, uids: list[int], count: int, window_side: float, t_query: float
    ) -> list[RangeQuerySpec]:
        """``count`` PRQs with square windows of side ``window_side``."""
        if window_side <= 0 or window_side > self.space_side:
            raise ValueError(
                f"window_side must be in (0, {self.space_side}], got {window_side}"
            )
        queries = []
        for _ in range(count):
            x_lo = self.rng.uniform(0.0, self.space_side - window_side)
            y_lo = self.rng.uniform(0.0, self.space_side - window_side)
            queries.append(
                RangeQuerySpec(
                    q_uid=self.rng.choice(uids),
                    window=Rect(x_lo, x_lo + window_side, y_lo, y_lo + window_side),
                    t_query=t_query,
                )
            )
        return queries

    def knn_queries(
        self,
        states: dict[int, MovingObject],
        count: int,
        k: int,
        t_query: float,
    ) -> list[KnnQuerySpec]:
        """``count`` PkNNs issued from users' own current positions."""
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        issuers = self.rng.choices(sorted(states), k=count)
        queries = []
        for uid in issuers:
            x, y = states[uid].position_at(t_query)
            queries.append(KnnQuerySpec(q_uid=uid, qx=x, qy=y, k=k, t_query=t_query))
        return queries

    def update_stream(
        self,
        states: dict[int, MovingObject],
        count: int,
        max_speed: float,
        t_start: float,
        duration: float,
    ) -> list[MovingObject]:
        """A time-ordered re-report stream for the update pipeline.

        ``count`` location updates as a server's queue would receive
        them: random existing users (with repetition — frequent
        re-reporters are the norm, and the pipeline's last-write-wins
        buffer is exactly for them) re-reporting fresh uniform
        positions and velocities at ascending timestamps drawn from
        ``[t_start, t_start + duration)``.  A ``duration`` longer than
        the partitioner's phase makes the stream cross time-partition
        rollovers mid-run, which is what exercises the pipeline's
        rollover flush trigger.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if max_speed <= 0:
            raise ValueError(f"max_speed must be positive, got {max_speed}")
        if duration < 0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        uids = sorted(states)
        times = sorted(
            self.rng.uniform(t_start, t_start + duration) for _ in range(count)
        )
        stream = []
        for t_update in times:
            stream.append(
                MovingObject(
                    uid=self.rng.choice(uids),
                    x=self.rng.uniform(0.0, self.space_side),
                    y=self.rng.uniform(0.0, self.space_side),
                    vx=self.rng.uniform(-max_speed, max_speed),
                    vy=self.rng.uniform(-max_speed, max_speed),
                    t_update=t_update,
                )
            )
        return stream

    def hotspot_stream(
        self,
        states: dict[int, MovingObject],
        n_updates: int,
        n_queries: int,
        window_side: float,
        max_speed: float,
        t_start: float,
        duration: float,
        skew: float = 1.1,
        hotspot_fraction: float = 0.25,
    ) -> tuple[list[MovingObject], list[RangeQuerySpec]]:
        """A skewed (Zipf-style hotspot) update *and* query workload.

        The uniform :meth:`update_stream` spreads load evenly over users
        and space; real traffic does not.  This generator concentrates
        both dimensions the way a city-centre rush hour would:

        * **who**: update issuers and query issuers are drawn with
          Zipf-like weights ``1 / rank**skew`` over the uid-sorted
          population, so a small head of users dominates;
        * **where**: every re-reported position and query window centre
          falls inside one hotspot square of side ``hotspot_fraction *
          space_side``, placed once per stream by this generator's RNG.

        Because sequence values cluster policy-related users, the head
        users' entries land in few key regions — the workload that
        exercises a sharded deployment's balance/skew statistics and
        per-shard buffer locality, used by
        ``benchmarks/bench_shard_scaling.py``.  Update timestamps
        ascend across ``[t_start, t_start + duration)``; queries are
        issued at ``t_start + duration``, after the stream.
        """
        if n_updates < 0 or n_queries < 0:
            raise ValueError(
                f"counts must be non-negative, got {n_updates}/{n_queries}"
            )
        if max_speed <= 0:
            raise ValueError(f"max_speed must be positive, got {max_speed}")
        if duration < 0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        if skew < 0:
            raise ValueError(f"skew must be non-negative, got {skew}")
        if not 0.0 < hotspot_fraction <= 1.0:
            raise ValueError(
                f"hotspot_fraction must be in (0, 1], got {hotspot_fraction}"
            )
        if window_side <= 0 or window_side > self.space_side:
            raise ValueError(
                f"window_side must be in (0, {self.space_side}], got {window_side}"
            )
        uids = sorted(states)
        weights = [1.0 / (rank + 1.0) ** skew for rank in range(len(uids))]
        side = self.space_side * hotspot_fraction
        x_lo = self.rng.uniform(0.0, self.space_side - side)
        y_lo = self.rng.uniform(0.0, self.space_side - side)

        times = sorted(
            self.rng.uniform(t_start, t_start + duration) for _ in range(n_updates)
        )
        issuers = self.rng.choices(uids, weights=weights, k=n_updates)
        updates = [
            MovingObject(
                uid=uid,
                x=self.rng.uniform(x_lo, x_lo + side),
                y=self.rng.uniform(y_lo, y_lo + side),
                vx=self.rng.uniform(-max_speed, max_speed),
                vy=self.rng.uniform(-max_speed, max_speed),
                t_update=t_update,
            )
            for uid, t_update in zip(issuers, times)
        ]

        t_query = t_start + duration
        queries = []
        for uid in self.rng.choices(uids, weights=weights, k=n_queries):
            cx = self.rng.uniform(x_lo, x_lo + side)
            cy = self.rng.uniform(y_lo, y_lo + side)
            w_lo = min(max(cx - window_side / 2.0, 0.0), self.space_side - window_side)
            h_lo = min(max(cy - window_side / 2.0, 0.0), self.space_side - window_side)
            queries.append(
                RangeQuerySpec(
                    q_uid=uid,
                    window=Rect(w_lo, w_lo + window_side, h_lo, h_lo + window_side),
                    t_query=t_query,
                )
            )
        return updates, queries

    def mixed_queries(
        self,
        states: dict[int, MovingObject],
        count: int,
        window_side: float,
        k: int,
        t_query: float,
        range_fraction: float = 0.5,
    ) -> list[RangeQuerySpec | KnnQuerySpec]:
        """A shuffled mix of PRQs and PkNNs, as a server queue would see.

        The natural input for the batch executor
        (:meth:`repro.engine.QueryEngine.execute_batch`): roughly
        ``range_fraction`` of the ``count`` specs are range queries,
        the rest kNN, interleaved deterministically by this generator's
        RNG.
        """
        if not 0.0 <= range_fraction <= 1.0:
            raise ValueError(
                f"range_fraction must be in [0, 1], got {range_fraction}"
            )
        n_range = round(count * range_fraction)
        specs: list[RangeQuerySpec | KnnQuerySpec] = []
        specs.extend(
            self.range_queries(sorted(states), n_range, window_side, t_query)
        )
        specs.extend(self.knn_queries(states, count - n_range, k, t_query))
        self.rng.shuffle(specs)
        return specs
