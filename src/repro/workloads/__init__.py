"""Synthetic workload generators (Section 7.1).

* :mod:`repro.workloads.uniform` — uniformly distributed users moving in
  random directions at speeds in ``[0, max_speed]``;
* :mod:`repro.workloads.network` — network-based movement in the style
  of the generator of Šaltenis et al. [27]: two-way routes connecting a
  configurable number of destinations, three speed classes, acceleration
  out of and deceleration into destinations;
* :mod:`repro.workloads.policies` — random location-privacy policies
  with the grouping-factor group structure of Section 6, plus the
  multi-policy variant for the Section 8 extension;
* :mod:`repro.workloads.queries` — PRQ / PkNN query workloads.
"""

from repro.workloads.network import NetworkMovement
from repro.workloads.policies import MultiPolicyGenerator, PolicyGenerator
from repro.workloads.queries import QueryGenerator
from repro.workloads.uniform import UniformMovement

__all__ = [
    "MultiPolicyGenerator",
    "NetworkMovement",
    "PolicyGenerator",
    "QueryGenerator",
    "UniformMovement",
]
