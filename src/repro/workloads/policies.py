"""Random location-privacy policies with grouped structure (Section 6).

"To simulate different relationships among users, we first randomly
divide users into groups and then generate policies for each user based
on ... the grouping factor θ = Ngr / Np, where Ngr is the number of
policies that a user has regarding other users in the same group and Np
is the user's total number of policies."

* θ = 1: every policy targets a same-group user;
* θ = 0: no groups — targets are drawn from the whole population.

The paper does not state the group size; we default to ``2 * Np``
(documented in DESIGN.md) so the intra-group quota is always satisfiable.
Each user's targets are split round-robin over three role names, one LPP
per role, matching the paper's one-policy-per-peer assumption
(Section 7.4) while exercising role-based sharing.
"""

from __future__ import annotations

import random

from repro.policy.lpp import LocationPrivacyPolicy
from repro.policy.store import PolicyStore
from repro.policy.timeset import TimeInterval, TimeSet
from repro.spatial.geometry import Rect

#: Role names cycled over each user's policies.
ROLE_NAMES = ("family", "friend", "colleague")


class PolicyGenerator:
    """Draws random LPPs over a user population.

    Args:
        space_side: side length L of the space domain.
        time_domain: duration T of the cyclic time domain.
        rng: dedicated random generator.
        region_fraction: ``(lo, hi)`` — policy regions have side lengths
            drawn uniformly from ``[lo*L, hi*L]``.  The default favours
            permissive regions so a realistic share of policies admit at
            query time.
        duration_fraction: ``(lo, hi)`` — policy time windows cover this
            fraction range of the time domain.
    """

    def __init__(
        self,
        space_side: float,
        time_domain: float,
        rng: random.Random,
        region_fraction: tuple[float, float] = (0.4, 0.9),
        duration_fraction: tuple[float, float] = (0.5, 1.0),
    ):
        self.space_side = space_side
        self.time_domain = time_domain
        self.rng = rng
        self.region_fraction = region_fraction
        self.duration_fraction = duration_fraction

    # ------------------------------------------------------------------
    # Population-level generation
    # ------------------------------------------------------------------

    def generate(
        self,
        uids: list[int],
        n_policies: int,
        grouping_factor: float,
        group_size: int | None = None,
    ) -> PolicyStore:
        """Build a :class:`PolicyStore` for the whole population.

        Args:
            uids: all user ids.
            n_policies: Np — policies per user.
            grouping_factor: θ in [0, 1].
            group_size: users per group; default ``2 * n_policies``.
        """
        if not 0.0 <= grouping_factor <= 1.0:
            raise ValueError(f"grouping_factor must be in [0, 1], got {grouping_factor}")
        if n_policies < 0:
            raise ValueError(f"n_policies must be non-negative, got {n_policies}")
        if n_policies >= len(uids):
            raise ValueError(
                f"cannot give each of {len(uids)} users {n_policies} distinct peers"
            )
        store = self._make_store()
        groups = self._partition_into_groups(uids, n_policies, group_size)
        group_of = {
            uid: index for index, group in enumerate(groups) for uid in group
        }
        population = list(uids)
        for uid in uids:
            targets = self._pick_targets(
                uid, groups[group_of[uid]], population, n_policies, grouping_factor
            )
            self._install_policies(store, uid, targets)
        return store

    def _make_store(self) -> PolicyStore:
        """The directory policies are installed into (subclass hook)."""
        return PolicyStore(time_domain=self.time_domain)

    def _partition_into_groups(
        self, uids: list[int], n_policies: int, group_size: int | None
    ) -> list[list[int]]:
        if group_size is None:
            group_size = max(2 * n_policies, 2)
        group_size = min(group_size, len(uids))
        shuffled = list(uids)
        self.rng.shuffle(shuffled)
        return [
            shuffled[start : start + group_size]
            for start in range(0, len(shuffled), group_size)
        ]

    def _pick_targets(
        self,
        uid: int,
        group: list[int],
        population: list[int],
        n_policies: int,
        theta: float,
    ) -> list[int]:
        if theta == 0.0:
            # No groups at all: any user may be a peer (Section 6).
            candidates = [peer for peer in population if peer != uid]
            return self.rng.sample(candidates, n_policies)
        in_group_quota = round(theta * n_policies)
        group_peers = [peer for peer in group if peer != uid]
        in_group_quota = min(in_group_quota, len(group_peers))
        targets = self.rng.sample(group_peers, in_group_quota)
        out_quota = n_policies - len(targets)
        if out_quota > 0:
            group_members = set(group)
            outsiders = [peer for peer in population if peer not in group_members]
            targets.extend(self.rng.sample(outsiders, min(out_quota, len(outsiders))))
        return targets

    def _install_policies(
        self, store: PolicyStore, owner: int, targets: list[int]
    ) -> None:
        buckets: dict[str, list[int]] = {}
        for index, target in enumerate(targets):
            role = ROLE_NAMES[index % len(ROLE_NAMES)]
            buckets.setdefault(role, []).append(target)
        for role, members in buckets.items():
            policy = LocationPrivacyPolicy(
                owner=owner,
                role=role,
                locr=self.random_region(),
                tint=self.random_interval(),
            )
            store.add_policy(policy, members)

    # ------------------------------------------------------------------
    # Single-policy draws (also used directly by tests and examples)
    # ------------------------------------------------------------------

    def random_region(self) -> Rect:
        """A random policy region, clamped inside the space."""
        lo, hi = self.region_fraction
        width = self.rng.uniform(lo, hi) * self.space_side
        height = self.rng.uniform(lo, hi) * self.space_side
        x_lo = self.rng.uniform(0.0, max(self.space_side - width, 0.0))
        y_lo = self.rng.uniform(0.0, max(self.space_side - height, 0.0))
        return Rect(x_lo, x_lo + width, y_lo, y_lo + height)

    def random_interval(self) -> TimeInterval | TimeSet:
        """A random policy time window on the cyclic domain.

        The start is uniform over the whole day and the window *wraps*
        midnight when needed (e.g. a night-shift policy from 22:00 to
        06:00 becomes the union [22:00, 24:00) ∪ [00:00, 06:00)), so
        every instant of the day is covered with the same probability —
        otherwise experiments querying near t = 0 would see almost no
        qualifying policies.
        """
        lo, hi = self.duration_fraction
        duration = self.rng.uniform(lo, hi) * self.time_domain
        start = self.rng.uniform(0.0, self.time_domain)
        end = start + duration
        if end <= self.time_domain:
            return TimeInterval(start, end)
        return TimeSet(
            [
                TimeInterval(start, self.time_domain),
                TimeInterval(0.0, end - self.time_domain),
            ]
        )


class MultiPolicyGenerator(PolicyGenerator):
    """Workload generator for the multi-policy extension (Section 8).

    Target selection (groups, θ) is inherited unchanged; what differs is
    installation: each (owner, target) pair receives between one and
    ``max_policies_per_pair`` *stacked* policies with independently drawn
    regions and time windows — Bob shares his downtown location during
    work hours *and* the gym district in the evening.  The produced
    directory is a :class:`repro.policy.multistore.MultiPolicyStore`, so
    the sequence-value encoders automatically use set-compatibility.

    Args:
        max_policies_per_pair: upper bound on stacked policies per pair
            (drawn uniformly from ``1..max``); remaining arguments as in
            :class:`PolicyGenerator`.
    """

    def __init__(self, *args, max_policies_per_pair: int = 3, **kwargs):
        super().__init__(*args, **kwargs)
        if max_policies_per_pair < 1:
            raise ValueError(
                f"max_policies_per_pair must be >= 1, got {max_policies_per_pair}"
            )
        self.max_policies_per_pair = max_policies_per_pair

    def _make_store(self) -> PolicyStore:
        # Imported here to keep the single-policy path free of the
        # multistore module (and its core.multipolicy dependency).
        from repro.policy.multistore import MultiPolicyStore

        return MultiPolicyStore(time_domain=self.time_domain)

    def _install_policies(
        self, store: PolicyStore, owner: int, targets: list[int]
    ) -> None:
        for index, target in enumerate(targets):
            role = ROLE_NAMES[index % len(ROLE_NAMES)]
            for _ in range(self.rng.randint(1, self.max_policies_per_pair)):
                policy = LocationPrivacyPolicy(
                    owner=owner,
                    role=role,
                    locr=self.random_region(),
                    tint=self.random_interval(),
                )
                store.add_policy(policy, [target])
