"""Uniform movement workload.

"In the uniform datasets, user positions are chosen randomly, and they
move in randomly chosen directions and at speeds ranging from 0 to 3"
(Section 7.1).  Objects bounce off the space boundary so the population
stays inside the domain across update rounds.
"""

from __future__ import annotations

import math
import random

from repro.motion.objects import MovingObject


class UniformMovement:
    """Generates and advances uniformly distributed movers.

    Args:
        space_side: side length of the square space.
        max_speed: objects draw a speed uniformly from ``[0, max_speed]``.
        rng: dedicated random generator (reproducibility).
    """

    def __init__(self, space_side: float, max_speed: float, rng: random.Random):
        if max_speed < 0:
            raise ValueError(f"max_speed must be non-negative, got {max_speed}")
        self.space_side = space_side
        self.max_speed = max_speed
        self.rng = rng

    def initial_objects(self, count: int, t: float = 0.0) -> list[MovingObject]:
        """Fresh population of ``count`` movers at time ``t``."""
        return [self._spawn(uid, t) for uid in range(count)]

    def advance(self, obj: MovingObject, t: float) -> MovingObject:
        """The object's true state at ``t > t_update``: move along the
        velocity vector, bounce at boundaries, and draw a new heading."""
        x, y = obj.position_at(t)
        x, vx_sign = self._bounce(x)
        y, vy_sign = self._bounce(y)
        speed = self.rng.uniform(0.0, self.max_speed)
        heading = self.rng.uniform(0.0, 2.0 * math.pi)
        return MovingObject(
            uid=obj.uid,
            x=x,
            y=y,
            vx=vx_sign * speed * math.cos(heading),
            vy=vy_sign * speed * math.sin(heading),
            t_update=t,
        )

    def _spawn(self, uid: int, t: float) -> MovingObject:
        speed = self.rng.uniform(0.0, self.max_speed)
        heading = self.rng.uniform(0.0, 2.0 * math.pi)
        return MovingObject(
            uid=uid,
            x=self.rng.uniform(0.0, self.space_side),
            y=self.rng.uniform(0.0, self.space_side),
            vx=speed * math.cos(heading),
            vy=speed * math.sin(heading),
            t_update=t,
        )

    def _bounce(self, coordinate: float) -> tuple[float, float]:
        """Reflect a coordinate back into ``[0, space_side]``."""
        side = self.space_side
        if coordinate < 0.0:
            return min(-coordinate, side), -1.0
        if coordinate > side:
            return max(2.0 * side - coordinate, 0.0), -1.0
        return coordinate, 1.0
