"""Network-based movement workload.

Re-implementation of the documented behaviour of the moving-object
generator of Šaltenis et al. [27] used in Section 7.1: "users move in a
network of two-way routes that connect a varying number of destinations.
Objects start at random positions on routes and are assigned at random
to one of three groups of objects with maximum speeds of 0.75, 1.5, and
3.  Whenever an object reaches one of the destinations, it chooses the
next target destination at random.  Objects accelerate as they leave a
destination, and they decelerate as they approach a destination."

The route graph connects every destination to its nearest neighbours
plus a spatial chain that guarantees connectivity.  Fewer destinations
concentrate the population on fewer routes — the spatial skew that
Figure 16 varies.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.motion.objects import MovingObject

#: The three object classes of the generator (maximum speeds).
SPEED_CLASSES = (0.75, 1.5, 3.0)

#: Fraction of an edge over which objects ramp speed up/down at the ends.
_RAMP_FRACTION = 0.25

#: Slowest fraction of the class maximum (objects never fully stop).
_MIN_SPEED_FRACTION = 0.2


@dataclass
class _TravelState:
    """Where one object currently is on the network."""

    origin: int        # destination index the object came from
    target: int        # destination index the object heads to
    progress: float    # distance travelled along the current edge
    vmax: float        # the object's speed-class maximum
    t: float           # simulation time of this state


class NetworkMovement:
    """Generates and advances objects moving on a destination network.

    Args:
        space_side: side length of the square space.
        n_destinations: number of hubs; the paper sweeps 25..500.
        rng: dedicated random generator.
        degree: nearest-neighbour edges added per destination.
    """

    def __init__(
        self,
        space_side: float,
        n_destinations: int,
        rng: random.Random,
        degree: int = 3,
    ):
        if n_destinations < 2:
            raise ValueError(f"need at least 2 destinations, got {n_destinations}")
        self.space_side = space_side
        self.rng = rng
        self.max_speed = max(SPEED_CLASSES)
        self.destinations = [
            (rng.uniform(0.0, space_side), rng.uniform(0.0, space_side))
            for _ in range(n_destinations)
        ]
        self.neighbors = self._build_routes(degree)
        self._states: dict[int, _TravelState] = {}

    # ------------------------------------------------------------------
    # Route graph
    # ------------------------------------------------------------------

    def _build_routes(self, degree: int) -> list[list[int]]:
        count = len(self.destinations)
        adjacency: list[set[int]] = [set() for _ in range(count)]
        for i, (xi, yi) in enumerate(self.destinations):
            ranked = sorted(
                (j for j in range(count) if j != i),
                key=lambda j: (self.destinations[j][0] - xi) ** 2
                + (self.destinations[j][1] - yi) ** 2,
            )
            for j in ranked[:degree]:
                adjacency[i].add(j)
                adjacency[j].add(i)  # routes are two-way
        # A chain over the spatially sorted hubs keeps the network connected.
        order = sorted(range(count), key=lambda j: self.destinations[j])
        for a, b in zip(order, order[1:]):
            adjacency[a].add(b)
            adjacency[b].add(a)
        return [sorted(peers) for peers in adjacency]

    def _edge_length(self, a: int, b: int) -> float:
        (xa, ya), (xb, yb) = self.destinations[a], self.destinations[b]
        return math.hypot(xb - xa, yb - ya)

    # ------------------------------------------------------------------
    # Object lifecycle
    # ------------------------------------------------------------------

    def initial_objects(self, count: int, t: float = 0.0) -> list[MovingObject]:
        """Population of ``count`` objects at random points on routes."""
        objects = []
        for uid in range(count):
            origin = self.rng.randrange(len(self.destinations))
            target = self.rng.choice(self.neighbors[origin])
            state = _TravelState(
                origin=origin,
                target=target,
                progress=self.rng.uniform(0.0, self._edge_length(origin, target)),
                vmax=self.rng.choice(SPEED_CLASSES),
                t=t,
            )
            self._states[uid] = state
            objects.append(self._emit(uid, state))
        return objects

    def advance(self, obj: MovingObject, t: float) -> MovingObject:
        """The object's true state at ``t``, simulated along the network."""
        state = self._states[obj.uid]
        remaining = t - state.t
        if remaining < 0:
            raise ValueError(f"cannot rewind object {obj.uid} to t={t}")
        # Integrate in small hops so the trapezoidal speed profile and
        # junction turns are followed reasonably closely.
        while remaining > 1e-9:
            hop = min(remaining, 1.0)
            self._step(state, hop)
            remaining -= hop
        state.t = t
        return self._emit(obj.uid, state)

    # ------------------------------------------------------------------
    # Simulation internals
    # ------------------------------------------------------------------

    def _speed(self, state: _TravelState) -> float:
        """Trapezoidal profile: slow near both endpoints of the edge."""
        length = self._edge_length(state.origin, state.target)
        if length <= 0:
            return state.vmax * _MIN_SPEED_FRACTION
        ramp = max(length * _RAMP_FRACTION, 1e-9)
        end_distance = min(state.progress, length - state.progress)
        fraction = max(_MIN_SPEED_FRACTION, min(1.0, end_distance / ramp))
        return state.vmax * fraction

    def _step(self, state: _TravelState, dt: float) -> None:
        state.progress += self._speed(state) * dt
        length = self._edge_length(state.origin, state.target)
        while state.progress >= length:
            state.progress -= length
            arrived = state.target
            choices = self.neighbors[arrived]
            if len(choices) > 1:
                next_target = state.origin
                while next_target == state.origin:
                    next_target = self.rng.choice(choices)
            else:
                next_target = choices[0]
            state.origin = arrived
            state.target = next_target
            length = self._edge_length(state.origin, state.target)
            if length <= 0:
                break

    def _emit(self, uid: int, state: _TravelState) -> MovingObject:
        (xa, ya) = self.destinations[state.origin]
        (xb, yb) = self.destinations[state.target]
        length = self._edge_length(state.origin, state.target)
        if length <= 0:
            return MovingObject(uid=uid, x=xa, y=ya, vx=0.0, vy=0.0, t_update=state.t)
        fraction = state.progress / length
        ux, uy = (xb - xa) / length, (yb - ya) / length
        speed = self._speed(state)
        return MovingObject(
            uid=uid,
            x=xa + (xb - xa) * fraction,
            y=ya + (yb - ya) * fraction,
            vx=ux * speed,
            vy=uy * speed,
            t_update=state.t,
        )
