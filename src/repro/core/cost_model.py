"""Analytical I/O cost model for PRQ on the PEB-tree (Section 6).

The sequence value dominates the PEB-key, so the model focuses on how the
SV assignment scatters a query's related users across leaf nodes:

    C1 = 1 + Np - Np**θ          if Np <= Nl          (Equation 6)
    C1 = 1 + Nl - Np**θ          if Np >  Nl

with ``Np`` the number of policies per user (the worst-case cost — one
leaf per related user), ``Nl`` the number of leaves (an absolute bound),
``θ`` the grouping factor (``Np**θ`` is the benefit of grouping), and the
constant 1 the best case of a single leaf.

The effect of the total user count ``N`` is linear and enters through the
density ``N / L²``:

    C = 1 + (a1 · N/L² + a2) · (min(Np, Nl) - Np**θ)   (Equation 7)

``a1``/``a2`` "are obtained by taking as input any two sample points
(i.e., the query cost C) from the experiments on the datasets with the
same location distribution".
"""

from __future__ import annotations

from dataclasses import dataclass


def base_cost(n_policies: int, theta: float, n_leaves: int) -> float:
    """Equation 6 — the grouping-only cost estimate C1."""
    _validate(n_policies, theta, n_leaves)
    bound = min(n_policies, n_leaves)
    return 1.0 + bound - n_policies**theta


@dataclass(frozen=True)
class CostSample:
    """One calibration observation: a measured average query I/O."""

    n_users: int
    n_policies: int
    theta: float
    n_leaves: int
    measured_io: float


@dataclass(frozen=True)
class CostModel:
    """Equation 7 with calibrated density coefficients.

    Args:
        a1: weight of the object density ``N / L²``.
        a2: density-independent weight.
        space_side: side length L of the space domain.
    """

    a1: float
    a2: float
    space_side: float

    def estimate(
        self, n_users: int, n_policies: int, theta: float, n_leaves: int
    ) -> float:
        """Predicted average I/O per privacy-aware range query."""
        _validate(n_policies, theta, n_leaves)
        density = n_users / (self.space_side * self.space_side)
        bound = min(n_policies, n_leaves)
        return 1.0 + (self.a1 * density + self.a2) * (bound - n_policies**theta)

    @classmethod
    def calibrate(
        cls, first: CostSample, second: CostSample, space_side: float
    ) -> "CostModel":
        """Solve for ``(a1, a2)`` from two measured sample points.

        Rearranging Equation 7, each sample yields one linear equation
        ``a1 · density + a2 = (C - 1) / (min(Np, Nl) - Np**θ)``.
        """
        rows = []
        for sample in (first, second):
            bound = min(sample.n_policies, sample.n_leaves)
            spread = bound - sample.n_policies**sample.theta
            if spread <= 0:
                raise ValueError(
                    "calibration sample has no grouping spread "
                    f"(Np={sample.n_policies}, θ={sample.theta}); "
                    "pick a sample with θ < 1"
                )
            density = sample.n_users / (space_side * space_side)
            rows.append((density, (sample.measured_io - 1.0) / spread))
        (d1, rhs1), (d2, rhs2) = rows
        if abs(d1 - d2) < 1e-12:
            raise ValueError(
                "calibration samples must differ in user density to "
                "separate a1 from a2"
            )
        a1 = (rhs1 - rhs2) / (d1 - d2)
        a2 = rhs1 - a1 * d1
        return cls(a1=a1, a2=a2, space_side=space_side)


def _validate(n_policies: int, theta: float, n_leaves: int) -> None:
    if n_policies < 0:
        raise ValueError(f"n_policies must be non-negative, got {n_policies}")
    if not 0.0 <= theta <= 1.0:
        raise ValueError(f"theta must be in [0, 1], got {theta}")
    if n_leaves < 1:
        raise ValueError(f"n_leaves must be positive, got {n_leaves}")
