"""Analytical I/O cost model for PRQ on the PEB-tree (Section 6).

The sequence value dominates the PEB-key, so the model focuses on how the
SV assignment scatters a query's related users across leaf nodes:

    C1 = 1 + Np - Np**θ          if Np <= Nl          (Equation 6)
    C1 = 1 + Nl - Np**θ          if Np >  Nl

with ``Np`` the number of policies per user (the worst-case cost — one
leaf per related user), ``Nl`` the number of leaves (an absolute bound),
``θ`` the grouping factor (``Np**θ`` is the benefit of grouping), and the
constant 1 the best case of a single leaf.

The effect of the total user count ``N`` is linear and enters through the
density ``N / L²``:

    C = 1 + (a1 · N/L² + a2) · (min(Np, Nl) - Np**θ)   (Equation 7)

``a1``/``a2`` "are obtained by taking as input any two sample points
(i.e., the query cost C) from the experiments on the datasets with the
same location distribution".
"""

from __future__ import annotations

from dataclasses import dataclass


def base_cost(n_policies: int, theta: float, n_leaves: int) -> float:
    """Equation 6 — the grouping-only cost estimate C1."""
    _validate(n_policies, theta, n_leaves)
    bound = min(n_policies, n_leaves)
    return 1.0 + bound - n_policies**theta


@dataclass(frozen=True)
class CostSample:
    """One calibration observation: a measured average query I/O."""

    n_users: int
    n_policies: int
    theta: float
    n_leaves: int
    measured_io: float


@dataclass(frozen=True)
class CostModel:
    """Equation 7 with calibrated density coefficients.

    Args:
        a1: weight of the object density ``N / L²``.
        a2: density-independent weight.
        space_side: side length L of the space domain.
    """

    a1: float
    a2: float
    space_side: float

    def estimate(
        self, n_users: int, n_policies: int, theta: float, n_leaves: int
    ) -> float:
        """Predicted average I/O per privacy-aware range query."""
        _validate(n_policies, theta, n_leaves)
        density = n_users / (self.space_side * self.space_side)
        bound = min(n_policies, n_leaves)
        return 1.0 + (self.a1 * density + self.a2) * (bound - n_policies**theta)

    @classmethod
    def calibrate(
        cls, first: CostSample, second: CostSample, space_side: float
    ) -> "CostModel":
        """Solve for ``(a1, a2)`` from two measured sample points.

        Rearranging Equation 7, each sample yields one linear equation
        ``a1 · density + a2 = (C - 1) / (min(Np, Nl) - Np**θ)``.
        """
        rows = []
        for sample in (first, second):
            bound = min(sample.n_policies, sample.n_leaves)
            spread = bound - sample.n_policies**sample.theta
            if spread <= 0:
                raise ValueError(
                    "calibration sample has no grouping spread "
                    f"(Np={sample.n_policies}, θ={sample.theta}); "
                    "pick a sample with θ < 1"
                )
            density = sample.n_users / (space_side * space_side)
            rows.append((density, (sample.measured_io - 1.0) / spread))
        (d1, rhs1), (d2, rhs2) = rows
        if abs(d1 - d2) < 1e-12:
            raise ValueError(
                "calibration samples must differ in user density to "
                "separate a1 from a2"
            )
        a1 = (rhs1 - rhs2) / (d1 - d2)
        a2 = rhs1 - a1 * d1
        return cls(a1=a1, a2=a2, space_side=space_side)


def _validate(n_policies: int, theta: float, n_leaves: int) -> None:
    if n_policies < 0:
        raise ValueError(f"n_policies must be non-negative, got {n_policies}")
    if not 0.0 <= theta <= 1.0:
        raise ValueError(f"theta must be in [0, 1], got {theta}")
    if n_leaves < 1:
        raise ValueError(f"n_leaves must be positive, got {n_leaves}")


@dataclass(frozen=True)
class BandScanCostModel:
    """Merge-vs-exact band-scan pricing (the Section 6 model, per scan).

    Equation 7 prices a whole query; the adaptive prefetch layer needs
    the *marginal* trade-off underneath it: a merged prefetch pays one
    positioning cost per contiguous coverage run and then transfers
    every page under the coverage — dead pages included — while exact
    band scans pay one positioning cost per requested band but transfer
    only requested pages.  The crossover is governed by the device's
    seek/transfer ratio (huge on hdd, small on nvme) and by how much of
    the merged coverage the queries actually consume.

    Costs are in virtual microseconds so they are directly comparable
    to :class:`repro.simio.model.DeviceProfile` pricing; on untimed
    storage the *ratios* still order the alternatives correctly.

    Attributes:
        seek_us: positioning cost paid before each non-sequential scan.
        read_us: per-page transfer cost once positioned.
        entries_per_page: expected index entries per leaf page — the
            unit converter between entry counts (what the scanner
            observes) and page counts (what the device charges).
    """

    seek_us: float = 60.0
    read_us: float = 10.0
    entries_per_page: float = 16.0

    def __post_init__(self):
        if self.seek_us < 0:
            raise ValueError(f"seek_us must be >= 0, got {self.seek_us}")
        if self.read_us <= 0:
            raise ValueError(f"read_us must be positive, got {self.read_us}")
        if self.entries_per_page <= 0:
            raise ValueError(
                f"entries_per_page must be positive, got {self.entries_per_page}"
            )

    @classmethod
    def from_device(
        cls, profile, entries_per_page: float = 16.0
    ) -> "BandScanCostModel":
        """Derive pricing from a :class:`DeviceProfile`-shaped object."""
        return cls(
            seek_us=profile.seek_us,
            read_us=profile.read_us,
            entries_per_page=entries_per_page,
        )

    def pages(self, entries: float) -> float:
        """Expected page transfers for ``entries`` scanned entries."""
        if entries <= 0:
            return 0.0
        return max(1.0, entries / self.entries_per_page)

    def scan_cost_us(self, entries: float, runs: float = 1.0) -> float:
        """Cost of scanning ``entries`` entries in ``runs`` contiguous runs.

        Each run pays one seek; transfers are per page, with at least
        one page per non-empty run (a run exists because something in
        it was requested).  ``runs`` may be fractional — an *expected*
        scan count, e.g. a stratum requested in half its observed
        batches prices half a seek.
        """
        if runs < 0:
            raise ValueError(f"runs must be >= 0, got {runs}")
        if runs == 0 or entries <= 0:
            return 0.0
        return runs * self.seek_us + max(float(runs), self.pages(entries)) * self.read_us

    def gap_entry_budget(self) -> float:
        """Dead entries worth transferring through to save one seek.

        Coalescing two coverage runs scans the gap between them
        sequentially instead of re-positioning: profitable while the
        gap's page transfers cost less than the seek they replace.
        """
        return (self.seek_us / self.read_us) * self.entries_per_page

    def prefer_merge(
        self,
        merged_entries: float,
        merged_runs: float,
        exact_entries: float,
        exact_scans: float,
    ) -> bool:
        """True when the merged prefetch prices at or below exact scans.

        ``merged_entries``/``merged_runs`` describe the prefetched
        coverage (dead entries included); ``exact_entries`` /
        ``exact_scans`` the expected on-demand alternative (requested
        entries only, one positioning per distinct band).
        """
        return self.scan_cost_us(merged_entries, merged_runs) <= self.scan_cost_us(
            exact_entries, exact_scans
        )
