"""The Policy-Embedded Bx-tree (Section 5.2).

A leaf entry is ``<PEB_key, UID, x, y, vx, vy, t, Pntp>``; the key packs
``[TID]2 ⊕ [SV]2 ⊕ [ZV]2`` so "users who have policies related to one
another will tend to be stored close to each other, which reduces the
cost of processing privacy-aware queries".

Insertion and deletion are plain B+-tree operations — "the PEB-tree has
similarly efficient update performance as the B+-tree" — with the same
in-memory update memo the Bx-tree keeps (uid -> current key) so an update
deletes exactly the stale entry.
"""

from __future__ import annotations

from repro.btree.tree import BPlusTree, BTreeConfig
from repro.core.peb_key import DEFAULT_SV_BITS, DEFAULT_SV_SCALE, PEBKeyCodec
from repro.motion.objects import MovingObject, ObjectRecordCodec
from repro.motion.partitions import TimePartitioner
from repro.policy.store import PolicyStore
from repro.spatial.grid import Grid
from repro.storage.buffer import BufferPool


class PEBTree:
    """Moving-object index over PEB-keys.

    Args:
        pool: buffer pool (and disk) this index owns.
        grid: space grid for the Z-curve mapping.
        partitioner: time partitioning (Δt_mu and n).
        store: policy directory; must already carry the sequence values
            produced by :func:`repro.core.sequencing.assign_sequence_values`.
        sv_bits, sv_scale: sequence-value packing parameters.
    """

    def __init__(
        self,
        pool: BufferPool,
        grid: Grid,
        partitioner: TimePartitioner,
        store: PolicyStore,
        sv_bits: int = DEFAULT_SV_BITS,
        sv_scale: int = DEFAULT_SV_SCALE,
    ):
        self.grid = grid
        self.partitioner = partitioner
        self.store = store
        self.codec = PEBKeyCodec(
            tid_count=partitioner.num_partitions,
            sv_bits=sv_bits,
            zv_bits=grid.zv_bits,
            sv_scale=sv_scale,
        )
        self.records = ObjectRecordCodec()
        config = BTreeConfig(
            key_bytes=self.codec.key_bytes,
            value_bytes=ObjectRecordCodec.SIZE,
            page_size=pool.disk.page_size,
        )
        self.btree = BPlusTree(pool, config)
        self._live_keys: dict[int, int] = {}
        self.max_speed_x = 0.0
        self.max_speed_y = 0.0

    @classmethod
    def attach(
        cls,
        btree: BPlusTree,
        grid: Grid,
        partitioner: TimePartitioner,
        store: PolicyStore,
        codec: PEBKeyCodec,
        live_keys: dict[int, int],
        max_speed_x: float,
        max_speed_y: float,
    ) -> "PEBTree":
        """Bind to an already-built index (the checkpoint-restore path).

        No pages are allocated; the supplied B+-tree, codec, and update
        memo are adopted verbatim.  See :mod:`repro.core.checkpoint`.
        """
        tree = cls.__new__(cls)
        tree.grid = grid
        tree.partitioner = partitioner
        tree.store = store
        tree.codec = codec
        tree.records = ObjectRecordCodec()
        tree.btree = btree
        tree._live_keys = dict(live_keys)
        tree.max_speed_x = max_speed_x
        tree.max_speed_y = max_speed_y
        return tree

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def insert(self, obj: MovingObject, pntp: int = 0) -> None:
        """Index a user's state as of its label timestamp."""
        if obj.uid in self._live_keys:
            raise KeyError(f"user {obj.uid} is already indexed; use update()")
        key = self.key_for(obj)
        self.btree.insert(key, obj.uid, self.records.pack(obj, pntp))
        self._live_keys[obj.uid] = key
        self.max_speed_x = max(self.max_speed_x, abs(obj.vx))
        self.max_speed_y = max(self.max_speed_y, abs(obj.vy))

    def delete(self, uid: int) -> bool:
        """Remove a user's entry; True if the user was indexed."""
        key = self._live_keys.pop(uid, None)
        if key is None:
            return False
        removed = self.btree.delete(key, uid)
        if not removed:
            raise RuntimeError(f"update memo out of sync for user {uid}")
        return True

    def update(self, obj: MovingObject, pntp: int = 0) -> None:
        """Replace a user's entry with a new state.

        When the new PEB-key equals the memoized live key — the user
        re-reported from the same grid cell within the same time
        partition, a common case for slow or stationary users — the
        leaf payload is rewritten in place: one descent, no structural
        delete/reinsert, no rebalancing.  Otherwise the entry moves via
        the usual delete + insert.
        """
        old_key = self._live_keys.get(obj.uid)
        if old_key is None:
            self.insert(obj, pntp)
            return
        new_key = self.key_for(obj)
        if new_key == old_key:
            if not self.btree.replace(old_key, obj.uid, self.records.pack(obj, pntp)):
                raise RuntimeError(f"update memo out of sync for user {obj.uid}")
            self.max_speed_x = max(self.max_speed_x, abs(obj.vx))
            self.max_speed_y = max(self.max_speed_y, abs(obj.vy))
            return
        self.delete(obj.uid)
        self.insert(obj, pntp)

    def key_for(self, obj: MovingObject) -> int:
        """The PEB-key for the object's current state (Equation 5)."""
        label = self.partitioner.label_timestamp(obj.t_update)
        tid = self.partitioner.partition_of_label(label)
        x, y = obj.position_at(label)
        zv = self.grid.z_value(x, y)
        sv = self.store.sequence_value(obj.uid)
        return self.codec.compose(tid, sv, zv)

    def contains(self, uid: int) -> bool:
        return uid in self._live_keys

    def __len__(self) -> int:
        return len(self._live_keys)

    @property
    def stats(self):
        """I/O counters of the underlying disk."""
        return self.btree.pool.stats

    def fetch_all(self) -> list[MovingObject]:
        """Every indexed object state (diagnostic full scan)."""
        return [self.records.unpack(value)[0] for _, _, value in self.btree.items()]

    # ------------------------------------------------------------------
    # Scan primitives shared by the query engine
    # ------------------------------------------------------------------

    def scan_band(self, tid: int, sv_lo_q: int, sv_hi_q: int, z_lo: int, z_hi: int):
        """Yield ``(zv, object)`` for one key-contiguous band.

        The generalized search range
        ``[TID ⊕ SV_lo ⊕ ZV_lo ; TID ⊕ SV_hi ⊕ ZV_hi]`` over *quantized*
        sequence-value bounds: equal bounds give the per-friend ranges
        of Section 5.3, distinct bounds the coarse whole-friend-list
        span of Figure 7's pseudo-code.  The engine's band scanner uses
        the returned curve values to subdivide prefetched scans.
        """
        lo = self.codec.compose_quantized(tid, sv_lo_q, z_lo)
        hi = self.codec.compose_quantized(tid, sv_hi_q, z_hi)
        for key, _, payload in self.btree.scan_range(lo, hi):
            obj, _ = self.records.unpack(payload)
            yield self.codec.decompose(key)[2], obj

    def scan_sv_zrange(self, tid: int, sv: float, z_lo: int, z_hi: int):
        """Yield object states with this exact (quantized) SV and a
        Z-value in ``[z_lo, z_hi]`` inside partition ``tid``.

        One search range of Section 5.3:
        ``[TID ⊕ SV ⊕ ZV_lo ; TID ⊕ SV ⊕ ZV_hi]``.
        """
        sv_q = self.codec.quantize_sv(sv)
        for _, obj in self.scan_band(tid, sv_q, sv_q, z_lo, z_hi):
            yield obj
