"""The Policy-Embedded Bx-tree (Section 5.2).

A leaf entry is ``<PEB_key, UID, x, y, vx, vy, t, Pntp>``; the key packs
``[TID]2 ⊕ [SV]2 ⊕ [ZV]2`` so "users who have policies related to one
another will tend to be stored close to each other, which reduces the
cost of processing privacy-aware queries".

Insertion and deletion are plain B+-tree operations — "the PEB-tree has
similarly efficient update performance as the B+-tree" — with the same
in-memory update memo the Bx-tree keeps (uid -> current key) so an update
deletes exactly the stale entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.btree.tree import MAX_UID, BatchOp, BPlusTree, BTreeConfig
from repro.core.peb_key import DEFAULT_SV_BITS, DEFAULT_SV_SCALE, PEBKeyCodec
from repro.motion.objects import MovingObject, ObjectRecordCodec
from repro.motion.rows import BandRows
from repro.motion.partitions import TimePartitioner
from repro.policy.store import PolicyStore
from repro.spatial.grid import Grid
from repro.storage.buffer import BufferPool

#: One buffered update: a bare object state, or ``(state, pntp)``.
UpdateItem = MovingObject | tuple[MovingObject, int]


@dataclass
class BatchUpdateResult:
    """Outcome of one :meth:`PEBTree.update_batch` call.

    ``descents_saved`` is the amortization headline: sequential
    application pays one root-to-leaf descent per op (two per moved
    entry — delete plus insert), the batch pays one leaf visit per
    *leaf*, however many ops land in it.
    """

    ops: int = 0
    in_place: int = 0
    moved: int = 0
    inserted: int = 0
    leaves_visited: int = 0
    #: Updates NOT applied because their shard was quarantined (the
    #: original :data:`UpdateItem` values, for re-buffering); the
    #: counters above exclude them.
    deferred: list = field(default_factory=list)

    @property
    def sequential_descents(self) -> int:
        """Descents the same updates cost applied one at a time."""
        return self.in_place + 2 * self.moved + self.inserted

    @property
    def descents_saved(self) -> int:
        return max(0, self.sequential_descents - self.leaves_visited)


@dataclass
class BatchUpdatePlan:
    """The classified, key-sorted schedule of one update buffer.

    Produced by :func:`plan_update_batch` and consumed by
    :meth:`PEBTree.update_batch` (two sweeps over one tree) and the
    sharded facade (the same sweeps cut at shard-key boundaries) —
    classification lives in exactly one place so the two application
    paths cannot drift.
    """

    result: BatchUpdateResult
    sweep_old: list[BatchOp] = field(default_factory=list)
    sweep_new: list[BatchOp] = field(default_factory=list)
    #: uid -> key the user's entry ends at.
    new_keys: dict[int, int] = field(default_factory=dict)
    #: uid -> key the user's entry started at (None for first inserts).
    old_keys: dict[int, "int | None"] = field(default_factory=dict)
    max_vx: float = 0.0
    max_vy: float = 0.0


def plan_update_batch(
    updates: Iterable[UpdateItem],
    lookup_key: Callable[[int], "int | None"],
    key_for: Callable[[MovingObject], int],
    pack: Callable[[MovingObject, int], bytes],
    max_vx: float,
    max_vy: float,
) -> BatchUpdatePlan:
    """Classify and sort one update buffer into two leaf-ordered sweeps.

    The buffer is deduplicated last-write-wins per user, then each
    surviving state is partitioned against the live-key ``lookup_key``:
    same-key re-reports become in-place leaf rewrites, moved entries a
    delete at the old key plus an insert at the new one, unindexed
    users plain inserts.  Rewrites and deletes are sorted by old key,
    inserts by new key.  The speed maxima (seeded with the caller's
    current bounds) are monotone safety bounds for the Figure 2
    enlargements: even a state superseded within the batch raises
    them, exactly as sequential application would.
    """
    latest: dict[int, tuple[MovingObject, int]] = {}
    for item in updates:
        if isinstance(item, MovingObject):
            obj, pntp = item, 0
        else:
            obj, pntp = item
        latest[obj.uid] = (obj, pntp)
        max_vx = max(max_vx, abs(obj.vx))
        max_vy = max(max_vy, abs(obj.vy))

    plan = BatchUpdatePlan(
        result=BatchUpdateResult(ops=len(latest)), max_vx=max_vx, max_vy=max_vy
    )
    for uid, (obj, pntp) in latest.items():
        old_key = lookup_key(uid)
        new_key = key_for(obj)
        payload = pack(obj, pntp)
        if old_key is None:
            plan.sweep_new.append(("insert", new_key, uid, payload))
            plan.result.inserted += 1
        elif new_key == old_key:
            plan.sweep_old.append(("replace", old_key, uid, payload))
            plan.result.in_place += 1
        else:
            plan.sweep_old.append(("delete", old_key, uid, None))
            plan.sweep_new.append(("insert", new_key, uid, payload))
            plan.result.moved += 1
        plan.new_keys[uid] = new_key
        plan.old_keys[uid] = old_key

    plan.sweep_old.sort(key=lambda op: (op[1], op[2]))
    plan.sweep_new.sort(key=lambda op: (op[1], op[2]))
    return plan


class PEBTree:
    """Moving-object index over PEB-keys.

    Args:
        pool: buffer pool (and disk) this index owns.
        grid: space grid for the Z-curve mapping.
        partitioner: time partitioning (Δt_mu and n).
        store: policy directory; must already carry the sequence values
            produced by :func:`repro.core.sequencing.assign_sequence_values`.
        sv_bits, sv_scale: sequence-value packing parameters.
    """

    def __init__(
        self,
        pool: BufferPool,
        grid: Grid,
        partitioner: TimePartitioner,
        store: PolicyStore,
        sv_bits: int = DEFAULT_SV_BITS,
        sv_scale: int = DEFAULT_SV_SCALE,
    ):
        self.grid = grid
        self.partitioner = partitioner
        self.store = store
        self.codec = PEBKeyCodec(
            tid_count=partitioner.num_partitions,
            sv_bits=sv_bits,
            zv_bits=grid.zv_bits,
            sv_scale=sv_scale,
        )
        self.records = ObjectRecordCodec()
        config = BTreeConfig(
            key_bytes=self.codec.key_bytes,
            value_bytes=ObjectRecordCodec.SIZE,
            page_size=pool.disk.page_size,
        )
        self.btree = BPlusTree(pool, config)
        self._live_keys: dict[int, int] = {}
        self.max_speed_x = 0.0
        self.max_speed_y = 0.0

    @classmethod
    def attach(
        cls,
        btree: BPlusTree,
        grid: Grid,
        partitioner: TimePartitioner,
        store: PolicyStore,
        codec: PEBKeyCodec,
        live_keys: dict[int, int],
        max_speed_x: float,
        max_speed_y: float,
        recompute_speeds: bool = False,
    ) -> "PEBTree":
        """Bind to an already-built index (the checkpoint-restore path).

        No pages are allocated; the supplied B+-tree, codec, and update
        memo are adopted verbatim.  See :mod:`repro.core.checkpoint`.

        The supplied speed maxima are a *correctness* input, not a mere
        statistic: query planning enlarges windows by them (Figure 2),
        so maxima smaller than any indexed velocity silently drop
        results.  Pass ``recompute_speeds=True`` to rescan the indexed
        entries and derive the maxima from them instead of trusting the
        caller's values (one full leaf-chain read), or run
        :meth:`check_consistency` afterwards to audit without the scan
        cost being mandatory.
        """
        tree = cls.__new__(cls)
        tree.grid = grid
        tree.partitioner = partitioner
        tree.store = store
        tree.codec = codec
        tree.records = ObjectRecordCodec()
        tree.btree = btree
        tree._live_keys = dict(live_keys)
        tree.max_speed_x = max_speed_x
        tree.max_speed_y = max_speed_y
        if recompute_speeds:
            max_vx, max_vy = tree._scan_speed_maxima()
            tree.max_speed_x = max(tree.max_speed_x, max_vx)
            tree.max_speed_y = max(tree.max_speed_y, max_vy)
        return tree

    def _scan_speed_maxima(self) -> tuple[float, float]:
        """Greatest |vx| and |vy| among the indexed entries."""
        max_vx = max_vy = 0.0
        unpack_records = self.records.unpack_records
        for _, run in self.btree.leaf_runs():
            for rec in unpack_records(run):
                vx = abs(rec[3])
                vy = abs(rec[4])
                if vx > max_vx:
                    max_vx = vx
                if vy > max_vy:
                    max_vy = vy
        return max_vx, max_vy

    def check_consistency(self, repair: bool = False) -> list[str]:
        """Audit the memo and speed maxima against the index itself.

        Walks every leaf entry once and reports (as human-readable
        problem strings; empty list means consistent):

        * entries the ``_live_keys`` memo does not know, or knows under
          a different key;
        * memoized users with no entry in the tree;
        * speed maxima smaller than an indexed velocity — the stale-
          checkpoint hazard that silently shrinks the Figure 2 window
          enlargements and drops query results.

        With ``repair=True`` the speed maxima are raised to cover the
        indexed velocities (memo divergence is never auto-repaired —
        it means the index and its metadata are from different worlds).
        """
        problems: list[str] = []
        seen: dict[int, int] = {}
        max_vx = max_vy = 0.0
        unpack_records = self.records.unpack_records
        for keys, run in self.btree.leaf_runs():
            for (key, uid), rec in zip(keys, unpack_records(run)):
                seen[uid] = key
                max_vx = max(max_vx, abs(rec[3]))
                max_vy = max(max_vy, abs(rec[4]))
        for uid, key in seen.items():
            memo_key = self._live_keys.get(uid)
            if memo_key is None:
                problems.append(f"entry for user {uid} missing from the memo")
            elif memo_key != key:
                problems.append(
                    f"user {uid} indexed under key {key} but memoized as {memo_key}"
                )
        for uid in self._live_keys.keys() - seen.keys():
            problems.append(f"memoized user {uid} has no index entry")
        if max_vx > self.max_speed_x:
            problems.append(
                f"max_speed_x={self.max_speed_x} below indexed |vx|={max_vx}"
            )
        if max_vy > self.max_speed_y:
            problems.append(
                f"max_speed_y={self.max_speed_y} below indexed |vy|={max_vy}"
            )
        if repair:
            self.max_speed_x = max(self.max_speed_x, max_vx)
            self.max_speed_y = max(self.max_speed_y, max_vy)
        return problems

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def insert(self, obj: MovingObject, pntp: int = 0) -> None:
        """Index a user's state as of its label timestamp."""
        if obj.uid in self._live_keys:
            raise KeyError(f"user {obj.uid} is already indexed; use update()")
        key = self.key_for(obj)
        self.btree.insert(key, obj.uid, self.records.pack(obj, pntp))
        self._live_keys[obj.uid] = key
        self.max_speed_x = max(self.max_speed_x, abs(obj.vx))
        self.max_speed_y = max(self.max_speed_y, abs(obj.vy))

    def delete(self, uid: int) -> bool:
        """Remove a user's entry; True if the user was indexed."""
        key = self._live_keys.pop(uid, None)
        if key is None:
            return False
        removed = self.btree.delete(key, uid)
        if not removed:
            raise RuntimeError(f"update memo out of sync for user {uid}")
        return True

    def update(self, obj: MovingObject, pntp: int = 0) -> None:
        """Replace a user's entry with a new state.

        When the new PEB-key equals the memoized live key — the user
        re-reported from the same grid cell within the same time
        partition, a common case for slow or stationary users — the
        leaf payload is rewritten in place: one descent, no structural
        delete/reinsert, no rebalancing.  Otherwise the entry moves via
        the usual delete + insert.
        """
        old_key = self._live_keys.get(obj.uid)
        if old_key is None:
            self.insert(obj, pntp)
            return
        new_key = self.key_for(obj)
        if new_key == old_key:
            if not self.btree.replace(old_key, obj.uid, self.records.pack(obj, pntp)):
                raise RuntimeError(f"update memo out of sync for user {obj.uid}")
            self.max_speed_x = max(self.max_speed_x, abs(obj.vx))
            self.max_speed_y = max(self.max_speed_y, abs(obj.vy))
            return
        self.delete(obj.uid)
        self.insert(obj, pntp)

    def update_batch(self, updates: Iterable[UpdateItem]) -> BatchUpdateResult:
        """Apply a buffer of updates in two leaf-ordered tree sweeps.

        Args:
            updates: object states, or ``(state, pntp)`` pairs.  When a
                user appears more than once, the last state wins (the
                buffer semantics of a server's update queue).

        The schedule comes from :func:`plan_update_batch` (shared with
        the sharded facade): same-key re-reports become in-place leaf
        rewrites, moved entries a delete at the old key plus an insert
        at the new one, unindexed users plain inserts; rewrites and
        deletes sorted by old key, inserts by new key.  Each sorted run
        feeds :meth:`repro.btree.BPlusTree.apply_sorted_batch`, which
        applies every op landing in the same leaf during a single visit
        — one descent and at most one split or rebalance per *leaf*
        instead of per *op*.  The final index is observationally
        identical to calling :meth:`update` once per buffered state, in
        any order.
        """
        plan = plan_update_batch(
            updates,
            self._live_keys.get,
            self.key_for,
            self.records.pack,
            self.max_speed_x,
            self.max_speed_y,
        )
        stats_old = self.btree.apply_sorted_batch(plan.sweep_old)
        stats_new = self.btree.apply_sorted_batch(plan.sweep_new)
        plan.result.leaves_visited = (
            stats_old.leaves_visited + stats_new.leaves_visited
        )
        self._live_keys.update(plan.new_keys)
        self.max_speed_x = plan.max_vx
        self.max_speed_y = plan.max_vy
        return plan.result

    def key_for(self, obj: MovingObject) -> int:
        """The PEB-key for the object's current state (Equation 5)."""
        label = self.partitioner.label_timestamp(obj.t_update)
        tid = self.partitioner.partition_of_label(label)
        x, y = obj.position_at(label)
        zv = self.grid.z_value(x, y)
        sv = self.store.sequence_value(obj.uid)
        return self.codec.compose(tid, sv, zv)

    def contains(self, uid: int) -> bool:
        return uid in self._live_keys

    def __len__(self) -> int:
        return len(self._live_keys)

    @property
    def stats(self):
        """I/O counters of the underlying disk."""
        return self.btree.pool.stats

    def fetch_all(self) -> list[MovingObject]:
        """Every indexed object state (diagnostic full scan).

        Decodes each leaf's payload run in one ``iter_unpack`` pass —
        no per-entry unpack or ``(obj, pntp)`` tuple allocations.
        """
        unpack_many = self.records.unpack_many
        out: list[MovingObject] = []
        for _, run in self.btree.leaf_runs():
            out.extend(obj for obj, _ in unpack_many(run))
        return out

    # ------------------------------------------------------------------
    # Scan primitives shared by the query engine
    # ------------------------------------------------------------------

    def scan_band(self, tid: int, sv_lo_q: int, sv_hi_q: int, z_lo: int, z_hi: int):
        """Yield ``(zv, object)`` for one key-contiguous band.

        The generalized search range
        ``[TID ⊕ SV_lo ⊕ ZV_lo ; TID ⊕ SV_hi ⊕ ZV_hi]`` over *quantized*
        sequence-value bounds: equal bounds give the per-friend ranges
        of Section 5.3, distinct bounds the coarse whole-friend-list
        span of Figure 7's pseudo-code.  The engine's band scanner uses
        the returned curve values to subdivide prefetched scans.
        """
        lo = self.codec.compose_quantized(tid, sv_lo_q, z_lo)
        hi = self.codec.compose_quantized(tid, sv_hi_q, z_hi)
        unpack = self.records.unpack
        zv_of = self.codec.zv_of
        for key, _, payload in self.btree.scan_range(lo, hi):
            yield zv_of(key), unpack(payload)[0]

    def scan_band_rows(
        self, tid: int, sv_lo_q: int, sv_hi_q: int, z_lo: int, z_hi: int
    ) -> BandRows:
        """One band as packed columns (:class:`repro.motion.rows.BandRows`).

        The batched twin of :meth:`scan_band`: same entries, same
        order, same page traffic (both walk the identical leaf chain),
        but decoded per leaf run — one masked comprehension extracts
        the ZV column from each key slice, one ``struct.iter_unpack``
        pass decodes the payload run — and the returned rows
        materialize :class:`MovingObject` states lazily, only for
        entries a consumer actually touches.  The engine's band scanner
        uses this end to end; :meth:`scan_band` remains the per-entry
        reference path.
        """
        lo = self.codec.compose_quantized(tid, sv_lo_q, z_lo)
        hi = self.codec.compose_quantized(tid, sv_hi_q, z_hi)
        zvs: list[int] = []
        records: list[tuple] = []
        zvs_of = self.codec.zvs_of
        unpack_records = self.records.unpack_records
        for keys, run in self.btree.scan_chunks((lo, 0), (hi, MAX_UID)):
            zvs += zvs_of(keys)
            records += unpack_records(run)
        return BandRows(zvs, records)

    def scan_sv_zrange(self, tid: int, sv: float, z_lo: int, z_hi: int):
        """Yield object states with this exact (quantized) SV and a
        Z-value in ``[z_lo, z_hi]`` inside partition ``tid``.

        One search range of Section 5.3:
        ``[TID ⊕ SV ⊕ ZV_lo ; TID ⊕ SV ⊕ ZV_hi]``.  Decoded one leaf
        run at a time through the batched codec (still lazy per leaf).
        """
        sv_q = self.codec.quantize_sv(sv)
        lo = self.codec.compose_quantized(tid, sv_q, z_lo)
        hi = self.codec.compose_quantized(tid, sv_q, z_hi)
        unpack_many = self.records.unpack_many
        for _, run in self.btree.scan_chunks((lo, 0), (hi, MAX_UID)):
            for obj, _ in unpack_many(run):
                yield obj
