"""Compatibility over *sets* of policies between two users.

Section 8 names this the paper's first future-work item: "it is relevant
to consider multiple policies between two users for computing policy
compatibility degree", and Section 5.1 anticipates it ("the above
equations can be extended to cover the case where multiple policies
exist between two users").

The extension follows directly from reading a policy as a box in the
three-dimensional space-time domain ``space x [0, T)``: a policy
``<role, locr, tint>`` grants visibility inside the region ``locr``
during ``tint``, i.e. on the set ``locr x tint``.  A *set* of policies
grants visibility on the union of its boxes, and the two Section 5.1
cases generalize verbatim:

* **Mutual**: the users can sometimes see each other simultaneously —
  their grant sets intersect in space-time.  With ``W`` the volume of
  that intersection::

      α = W / (S · T)

  For single policies ``W = O(locr1, locr2) · D(tint1, tint2)``, so this
  reduces exactly to the paper's formula.

* **Non-simultaneous**: the grant sets are disjoint (or one side grants
  nothing).  With ``V1``, ``V2`` the per-side grant volumes::

      α = 1/2 (V1/(S·T) + V2/(S·T))

  again reducing to ``1/2 (|locr|/S · |tint|/T + ...)`` for single
  policies, with a missing side's term omitted.

``C`` then follows Equation 4 unchanged.  Volumes of unions of boxes are
computed exactly by sweeping the time axis: between two consecutive
interval endpoints the active region set is constant, so each time slab
contributes ``union_area(active regions) x slab duration``.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.compatibility import CompatibilityResult
from repro.policy.lpp import LocationPrivacyPolicy
from repro.policy.timeset import TimeInterval, TimeSet
from repro.spatial.geometry import Rect
from repro.spatial.union import pairwise_intersections, union_area


def time_pieces(tint: TimeInterval | TimeSet) -> list[TimeInterval]:
    """The disjoint intervals making up a policy's ``tint``."""
    if isinstance(tint, TimeSet):
        return list(tint.intervals)
    return [tint]


def _boxes(
    policies: Sequence[LocationPrivacyPolicy],
) -> list[tuple[Rect, float, float]]:
    """Flatten policies into ``(region, t_start, t_end)`` space-time boxes."""
    boxes = []
    for policy in policies:
        for piece in time_pieces(policy.tint):
            if piece.duration > 0.0 and policy.locr.area > 0.0:
                boxes.append((policy.locr, piece.start, piece.end))
    return boxes


def _sweep_volume(boxes: list[tuple[Rect, float, float]]) -> float:
    """Exact volume of a union of space-time boxes (time-axis sweep)."""
    if not boxes:
        return 0.0
    breakpoints = sorted({t for _, start, end in boxes for t in (start, end)})
    volume = 0.0
    for t_lo, t_hi in zip(breakpoints, breakpoints[1:]):
        duration = t_hi - t_lo
        if duration <= 0.0:
            continue
        active = [
            region for region, start, end in boxes if start <= t_lo and end >= t_hi
        ]
        if active:
            volume += union_area(active) * duration
    return volume


def grant_volume(
    policies: Sequence[LocationPrivacyPolicy], time_domain: float
) -> float:
    """Space-time volume of the visibility one user grants another.

    The measure of ``∪ (locr_i x tint_i)`` — overlapping policies are not
    double-counted, which is what keeps α within its normalization even
    when a user stacks redundant policies on the same peer.
    """
    if time_domain <= 0:
        raise ValueError(f"time_domain must be positive, got {time_domain}")
    return _sweep_volume(_boxes(policies))


def simultaneous_volume(
    granted_by_u1: Sequence[LocationPrivacyPolicy],
    granted_by_u2: Sequence[LocationPrivacyPolicy],
    time_domain: float,
) -> float:
    """Volume of space-time where both users are visible to each other.

    ``(∪ boxes1) ∩ (∪ boxes2)`` is itself a union of boxes — one per
    (piece1, piece2) pair with intersecting regions and intervals — so
    the same sweep applies.
    """
    if time_domain <= 0:
        raise ValueError(f"time_domain must be positive, got {time_domain}")
    boxes1 = _boxes(granted_by_u1)
    boxes2 = _boxes(granted_by_u2)
    overlaps: list[tuple[Rect, float, float]] = []
    for region1, start1, end1 in boxes1:
        for region2, start2, end2 in boxes2:
            t_lo = max(start1, start2)
            t_hi = min(end1, end2)
            if t_hi <= t_lo:
                continue
            pieces = pairwise_intersections([region1], [region2])
            overlaps.extend((piece, t_lo, t_hi) for piece in pieces)
    return _sweep_volume(overlaps)


def set_compatibility(
    granted_by_u1: Sequence[LocationPrivacyPolicy],
    granted_by_u2: Sequence[LocationPrivacyPolicy],
    space_area: float,
    time_domain: float,
) -> CompatibilityResult:
    """α and C(u1, u2) generalized to policy sets.

    Args:
        granted_by_u1: u1's policies regarding u2 (possibly empty).
        granted_by_u2: u2's policies regarding u1 (possibly empty).
        space_area: S, the area of the space domain.
        time_domain: T, the duration of the (cyclic) time domain.

    Returns the same :class:`CompatibilityResult` the single-policy
    :func:`repro.core.compatibility.compatibility` produces; for
    one-element inputs the two functions agree exactly (property-tested).
    """
    if space_area <= 0 or time_domain <= 0:
        raise ValueError("space_area and time_domain must be positive")
    if not granted_by_u1 and not granted_by_u2:
        return CompatibilityResult(alpha=0.0, degree=0.0, mutual=False)

    normalizer = space_area * time_domain
    shared = simultaneous_volume(granted_by_u1, granted_by_u2, time_domain)
    if shared > 0.0:
        alpha = shared / normalizer
        return CompatibilityResult(
            alpha=alpha, degree=(1.0 + alpha) / 2.0, mutual=True
        )

    alpha = (
        grant_volume(granted_by_u1, time_domain)
        + grant_volume(granted_by_u2, time_domain)
    ) / (2.0 * normalizer)
    return CompatibilityResult(alpha=alpha, degree=alpha, mutual=False)
