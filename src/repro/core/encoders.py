"""Alternative sequence-value encoders (Section 8: "new encoding ...
techniques").

The Figure 5 algorithm (:func:`repro.core.sequencing.assign_sequence_values`)
is one way to linearize the *compatibility graph* — users as vertices,
non-zero C(u, v) as weighted edges — into one real per user.  Any
linearization that keeps related users close produces a working PEB-tree;
what changes is how well each friend cluster lands on few leaf pages.

Three alternatives are provided behind a common interface, plus the
paper's own algorithm wrapped for uniform access:

* :class:`Figure5Encoder` — the paper's group-by-group assignment.
* :class:`BFSEncoder` — breadth-first traversal of the compatibility
  graph from high-degree seeds; neighbours are visited in descending
  compatibility, and each visited user gets the predecessor's SV plus
  ``1 - C`` to its BFS parent.  Greedier locality within a group than
  Figure 5's one-level star.
* :class:`SpectralEncoder` — classic spectral seriation: order users by
  the Fiedler vector of the compatibility graph's Laplacian (computed
  per connected component with dense numpy eigendecomposition, falling
  back to BFS for oversized components), then space consecutive users by
  ``1 - C`` (or δ across component boundaries).

All encoders emit assignments consumable by
:meth:`repro.policy.store.PolicyStore.set_sequence_values`; the index and
query algorithms are oblivious to which encoder produced the values, so
result sets are identical across encoders (asserted in the tests) while
I/O costs differ (measured in ``benchmarks/bench_ablations.py``).
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from typing import Protocol

from repro.core.sequencing import (
    DEFAULT_DELTA,
    DEFAULT_INITIAL_SV,
    EncodingReport,
    assign_sequence_values,
)
from repro.obs.timer import timer
from repro.policy.store import PolicyStore

#: Components larger than this fall back to BFS ordering inside the
#: spectral encoder — dense eigendecomposition is O(n^3).
SPECTRAL_COMPONENT_LIMIT = 1500


class SequenceEncoder(Protocol):
    """Anything that turns a policy store into sequence values."""

    name: str

    def encode(
        self, users: list[int], store: PolicyStore, space_area: float
    ) -> EncodingReport:
        """Assign one sequence value per user."""
        ...


def _compatibility_graph(
    users: list[int], store: PolicyStore, space_area: float
) -> tuple[dict[tuple[int, int], float], dict[int, list[int]]]:
    """Edges (C > 0) and adjacency of the compatibility graph."""
    degree: dict[tuple[int, int], float] = {}
    adjacency: dict[int, list[int]] = defaultdict(list)
    for u, v in store.related_pairs():
        result = store.pair_compatibility(u, v, space_area)
        if result.degree > 0.0:
            degree[(u, v) if u < v else (v, u)] = result.degree
            adjacency[u].append(v)
            adjacency[v].append(u)
    return degree, adjacency


def _edge(degree: dict[tuple[int, int], float], u: int, v: int) -> float:
    return degree.get((u, v) if u < v else (v, u), 0.0)


class Figure5Encoder:
    """The paper's own algorithm, wrapped in the encoder interface."""

    name = "figure5"

    def __init__(
        self, initial_sv: float = DEFAULT_INITIAL_SV, delta: float = DEFAULT_DELTA
    ):
        self.initial_sv = initial_sv
        self.delta = delta

    def encode(
        self, users: list[int], store: PolicyStore, space_area: float
    ) -> EncodingReport:
        return assign_sequence_values(
            users, store, space_area, self.initial_sv, self.delta
        )


class BFSEncoder:
    """Breadth-first linearization of the compatibility graph.

    Seeds are picked in descending vertex degree (as in Figure 5's sort);
    from each seed, users are dequeued in descending compatibility to
    their BFS parent, and each dequeued user is placed ``1 - C(parent,
    child)`` after the previously placed user.  Unlike Figure 5 — which
    only spreads a leader's *direct* neighbours before jumping δ ahead —
    BFS keeps second- and third-degree relations inside the same SV
    neighbourhood.
    """

    name = "bfs"

    def __init__(
        self, initial_sv: float = DEFAULT_INITIAL_SV, delta: float = DEFAULT_DELTA
    ):
        if initial_sv <= 1.0:
            raise ValueError(f"initial sequence value must exceed 1, got {initial_sv}")
        if delta <= 1.0:
            raise ValueError(f"delta must exceed 1, got {delta}")
        self.initial_sv = initial_sv
        self.delta = delta

    def encode(
        self, users: list[int], store: PolicyStore, space_area: float
    ) -> EncodingReport:
        watch = timer()
        degree, adjacency = _compatibility_graph(users, store, space_area)

        seeds = sorted(users, key=lambda uid: -len(adjacency.get(uid, ())))
        values: dict[int, float] = {}
        cursor = self.initial_sv - self.delta
        group_count = 0
        for seed in seeds:
            if seed in values:
                continue
            group_count += 1
            cursor += self.delta
            values[seed] = cursor
            # Max-heap on compatibility; ties broken by uid for determinism.
            frontier = [
                (-_edge(degree, seed, peer), peer)
                for peer in adjacency.get(seed, ())
                if peer not in values
            ]
            heapq.heapify(frontier)
            while frontier:
                neg_compat, uid = heapq.heappop(frontier)
                if uid in values:
                    continue
                cursor = cursor + (1.0 + neg_compat)  # 1 - C to the parent
                values[uid] = cursor
                for peer in adjacency.get(uid, ()):
                    if peer not in values:
                        heapq.heappush(
                            frontier, (-_edge(degree, uid, peer), peer)
                        )

        elapsed = watch.stop()
        return EncodingReport(
            sequence_values=values,
            elapsed_seconds=elapsed,
            group_count=group_count,
            related_pair_count=len(degree),
            compatibilities=degree,
        )


class SpectralEncoder:
    """Fiedler-vector seriation of the compatibility graph.

    For each connected component (up to
    :data:`SPECTRAL_COMPONENT_LIMIT` vertices), users are sorted by their
    entry in the eigenvector of the second-smallest eigenvalue of the
    component's weighted graph Laplacian — the classic relaxation of the
    minimum-linear-arrangement problem, which is exactly what the SV
    assignment approximates.  Consecutive users are spaced by ``1 - C``
    (δ when not directly related), and components are laid out in
    descending size, δ apart.
    """

    name = "spectral"

    def __init__(
        self, initial_sv: float = DEFAULT_INITIAL_SV, delta: float = DEFAULT_DELTA
    ):
        if initial_sv <= 1.0:
            raise ValueError(f"initial sequence value must exceed 1, got {initial_sv}")
        if delta <= 1.0:
            raise ValueError(f"delta must exceed 1, got {delta}")
        self.initial_sv = initial_sv
        self.delta = delta

    def encode(
        self, users: list[int], store: PolicyStore, space_area: float
    ) -> EncodingReport:
        watch = timer()
        degree, adjacency = _compatibility_graph(users, store, space_area)

        components = _connected_components(users, adjacency)
        # Descending size mirrors Figure 5's "higher priority to larger
        # groups"; ties by smallest member for determinism.
        components.sort(key=lambda comp: (-len(comp), min(comp)))

        values: dict[int, float] = {}
        cursor = self.initial_sv - self.delta
        for component in components:
            ordering = _component_order(component, adjacency, degree)
            cursor += self.delta
            values[ordering[0]] = cursor
            for previous, uid in zip(ordering, ordering[1:]):
                compat = _edge(degree, previous, uid)
                step = (1.0 - compat) if compat > 0.0 else self.delta
                cursor += step
                values[uid] = cursor

        elapsed = watch.stop()
        return EncodingReport(
            sequence_values=values,
            elapsed_seconds=elapsed,
            group_count=len(components),
            related_pair_count=len(degree),
            compatibilities=degree,
        )


def _connected_components(
    users: list[int], adjacency: dict[int, list[int]]
) -> list[list[int]]:
    """Connected components; isolated users are singleton components."""
    seen: set[int] = set()
    components: list[list[int]] = []
    for uid in users:
        if uid in seen:
            continue
        stack = [uid]
        seen.add(uid)
        component = []
        while stack:
            node = stack.pop()
            component.append(node)
            for peer in adjacency.get(node, ()):
                if peer not in seen:
                    seen.add(peer)
                    stack.append(peer)
        components.append(component)
    return components


def _component_order(
    component: list[int],
    adjacency: dict[int, list[int]],
    degree: dict[tuple[int, int], float],
) -> list[int]:
    """Fiedler ordering of one component (BFS fallback when oversized)."""
    if len(component) <= 2:
        return sorted(component)
    if len(component) > SPECTRAL_COMPONENT_LIMIT:
        return _bfs_order(component, adjacency, degree)

    import numpy as np

    nodes = sorted(component)
    index = {uid: i for i, uid in enumerate(nodes)}
    laplacian = np.zeros((len(nodes), len(nodes)))
    for uid in nodes:
        for peer in adjacency.get(uid, ()):
            weight = _edge(degree, uid, peer)
            i, j = index[uid], index[peer]
            laplacian[i, j] -= weight
            laplacian[i, i] += weight
    eigenvalues, eigenvectors = np.linalg.eigh(laplacian)
    fiedler = eigenvectors[:, np.argsort(eigenvalues)[1]]
    # Stable sort on (fiedler entry, uid): deterministic under eigenvector
    # sign ambiguity up to a global reversal, which is locality-neutral.
    order = sorted(range(len(nodes)), key=lambda i: (fiedler[i], nodes[i]))
    return [nodes[i] for i in order]


def _bfs_order(
    component: list[int],
    adjacency: dict[int, list[int]],
    degree: dict[tuple[int, int], float],
) -> list[int]:
    """Compatibility-greedy BFS order (fallback for huge components)."""
    start = max(component, key=lambda uid: (len(adjacency.get(uid, ())), -uid))
    order = [start]
    seen = {start}
    frontier = [
        (-_edge(degree, start, peer), peer) for peer in adjacency.get(start, ())
    ]
    heapq.heapify(frontier)
    while frontier:
        _, uid = heapq.heappop(frontier)
        if uid in seen:
            continue
        seen.add(uid)
        order.append(uid)
        for peer in adjacency.get(uid, ()):
            if peer not in seen:
                heapq.heappush(frontier, (-_edge(degree, uid, peer), peer))
    # A component is connected by construction, but guard regardless.
    for uid in sorted(component):
        if uid not in seen:
            order.append(uid)
    return order


#: Registry used by the CLI and the ablation benchmarks.
ENCODERS: dict[str, type] = {
    Figure5Encoder.name: Figure5Encoder,
    BFSEncoder.name: BFSEncoder,
    SpectralEncoder.name: SpectralEncoder,
}


def make_encoder(name: str, **kwargs) -> SequenceEncoder:
    """Instantiate a registered encoder by name."""
    try:
        factory = ENCODERS[name]
    except KeyError:
        known = ", ".join(sorted(ENCODERS))
        raise ValueError(f"unknown encoder {name!r}; known: {known}") from None
    return factory(**kwargs)
