"""Privacy-aware aggregate queries (Section 8 future work).

Two aggregates frequently requested of location services:

* :func:`pcount` — how many policy-qualifying users are inside a range
  right now?  Runs the PRQ search but returns only the count, never
  materializing user states for the issuer; with ``at_least`` it turns
  *existential* ("is any friend nearby?") and stops scanning the moment
  the threshold is reached — skipping whole SV bands is where the
  PEB-tree layout pays off.
* :func:`pdensity_grid` — the count per cell of a coarse grid over a
  range, the building block of privacy-respecting heat maps: the issuer
  learns how many of their visible friends are in each cell, not where
  exactly each friend stands.

Both are thin adapters over :class:`repro.engine.QueryEngine`: the
scanning, skip rules, and verification are the PRQ pipeline; only the
per-match action (count, bucket) and the early-stop predicate differ.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.peb_tree import PEBTree
from repro.engine import QueryEngine
from repro.spatial.geometry import Rect


@dataclass
class CountResult:
    """Outcome of a privacy-aware count.

    Attributes:
        count: qualifying users found (exact unless terminated early).
        candidates_examined: entries fetched and verified.
        terminated_early: True when an ``at_least`` threshold stopped the
            scan — ``count`` is then a certified lower bound, not a total.
    """

    count: int = 0
    candidates_examined: int = 0
    terminated_early: bool = False


def pcount(
    tree: PEBTree,
    q_uid: int,
    window: Rect,
    t_query: float,
    at_least: int | None = None,
) -> CountResult:
    """Count users satisfying both Definition-2 conditions in ``window``.

    Args:
        tree: the PEB-tree.
        q_uid: the query issuer.
        window: the counted rectangle.
        t_query: evaluation time.
        at_least: optional threshold; scanning stops as soon as this many
            qualifying users are confirmed.  ``at_least=1`` is the
            existential query.
    """
    if at_least is not None and at_least < 1:
        raise ValueError(f"at_least must be positive, got {at_least}")
    result = CountResult()

    def tally(obj, x, y) -> bool:
        result.count += 1
        return at_least is not None and result.count >= at_least

    execution = QueryEngine(tree).execute_range(q_uid, window, t_query, tally)
    result.candidates_examined = execution.candidates_examined
    result.terminated_early = execution.stopped_early
    return result


@dataclass
class DensityResult:
    """Per-cell counts of qualifying users over a range.

    Attributes:
        cells: ``(row, column) -> count`` for non-empty cells; ``row``
            indexes y (bottom-up), ``column`` indexes x (left-right).
        total: total qualifying users (sum of the cells).
        candidates_examined: entries fetched and verified.
    """

    rows: int
    columns: int
    cells: dict[tuple[int, int], int] = field(default_factory=dict)
    total: int = 0
    candidates_examined: int = 0

    def count_at(self, row: int, column: int) -> int:
        """Count of one cell (0 when empty or out of range)."""
        return self.cells.get((row, column), 0)


def pdensity_grid(
    tree: PEBTree,
    q_uid: int,
    window: Rect,
    t_query: float,
    rows: int = 4,
    columns: int = 4,
) -> DensityResult:
    """Histogram of qualifying users over an ``rows x columns`` grid.

    The scan is the PRQ search; each qualifying user increments exactly
    one bucket, determined by its *verified* position at query time.
    """
    if rows < 1 or columns < 1:
        raise ValueError(f"grid must be at least 1x1, got {rows}x{columns}")
    if window.width <= 0 or window.height <= 0:
        raise ValueError("density window must have positive area")
    result = DensityResult(rows=rows, columns=columns)
    cell_width = window.width / columns
    cell_height = window.height / rows

    def bucket(obj, x, y) -> bool:
        column = min(int((x - window.x_lo) / cell_width), columns - 1)
        row = min(int((y - window.y_lo) / cell_height), rows - 1)
        result.cells[(row, column)] = result.cells.get((row, column), 0) + 1
        result.total += 1
        return False

    execution = QueryEngine(tree).execute_range(q_uid, window, t_query, bucket)
    result.candidates_examined = execution.candidates_examined
    return result
