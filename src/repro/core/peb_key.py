"""The PEB-key codec: ``PEB_key = [TID]2 ⊕ [SV]2 ⊕ [ZV]2`` (Equation 5).

"The construction of the PEB key gives higher priority to sequence values
than to location mapping values" (Section 5.2): the time-partition id
occupies the most significant bits, the sequence value the middle bits,
and the Z-value the least significant bits, so plain integer comparison
orders users first by partition, then by policy proximity, then by
location.

Sequence values are reals; they are packed order-preservingly as
fixed-point integers with ``sv_scale`` sub-unit steps.  The default scale
of 128 (7 fractional bits) is finer than the resolution of the
compatibility degree, so distinct group offsets never collide by
quantization alone (members whose C ties still share an SV — the
composite ``(key, uid)`` entry identity in the B+-tree handles that).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

#: Default fixed-point scale for sequence values (7 fractional bits).
DEFAULT_SV_SCALE = 128

#: Default bit width of the packed sequence value; holds SVs up to
#: 2**32 / 128 = 33.5 million, comfortably above ``sv0 + δ·N`` for the
#: paper's largest N of 100 K users.
DEFAULT_SV_BITS = 32


@dataclass(frozen=True)
class PEBKeyCodec:
    """Packs and unpacks PEB-keys.

    Args:
        tid_count: number of distinct time-partition ids (``n + 1``).
        sv_bits: bit width of the quantized sequence value.
        zv_bits: bit width of the Z-value (twice the grid bits).
        sv_scale: fixed-point scale applied to sequence values.
    """

    #: Key layout marker: True when the SV field sits above the ZV field
    #: (Equation 5), so all entries of one quantized SV are key-contiguous
    #: and ordered by ZV.  Layout-dependent optimizations — the engine's
    #: batch prefetch store subdivides scans by ZV — must check this;
    #: the ZV-first ablation codec overrides it to False.
    sv_major: ClassVar[bool] = True

    tid_count: int
    sv_bits: int = DEFAULT_SV_BITS
    zv_bits: int = 20
    sv_scale: int = DEFAULT_SV_SCALE

    def __post_init__(self):
        if self.tid_count < 1:
            raise ValueError("tid_count must be at least 1")
        if self.sv_bits < 1 or self.zv_bits < 1:
            raise ValueError("sv_bits and zv_bits must be positive")
        if self.sv_scale < 1:
            raise ValueError("sv_scale must be at least 1")
        # Precomputed once: zv_of runs per scanned row.
        object.__setattr__(self, "_zv_mask", (1 << self.zv_bits) - 1)

    @property
    def tid_bits(self) -> int:
        """Bits needed for the partition id field."""
        return max(1, (self.tid_count - 1).bit_length())

    @property
    def total_bits(self) -> int:
        """Width of a complete PEB-key."""
        return self.tid_bits + self.sv_bits + self.zv_bits

    @property
    def key_bytes(self) -> int:
        """Byte width a B+-tree must reserve for these keys."""
        return (self.total_bits + 7) // 8

    def quantize_sv(self, sv: float) -> int:
        """Order-preserving fixed-point image of a sequence value."""
        if sv < 0:
            raise ValueError(f"sequence values must be non-negative, got {sv}")
        quantized = round(sv * self.sv_scale)
        if quantized.bit_length() > self.sv_bits:
            raise ValueError(
                f"sequence value {sv} does not fit in {self.sv_bits} bits "
                f"at scale {self.sv_scale}"
            )
        return quantized

    def compose(self, tid: int, sv: float, zv: int) -> int:
        """Equation 5: concatenate the three binary components."""
        return self.compose_quantized(tid, self.quantize_sv(sv), zv)

    def compose_quantized(self, tid: int, sv_q: int, zv: int) -> int:
        """Compose from an already-quantized sequence value."""
        if not 0 <= tid < self.tid_count:
            raise ValueError(f"tid {tid} outside [0, {self.tid_count})")
        if zv.bit_length() > self.zv_bits:
            raise ValueError(f"zv {zv} does not fit in {self.zv_bits} bits")
        if zv < 0 or sv_q < 0:
            raise ValueError("key components must be non-negative")
        return ((tid << self.sv_bits) | sv_q) << self.zv_bits | zv

    def decompose(self, key: int) -> tuple[int, int, int]:
        """Split a key into ``(tid, quantized_sv, zv)``."""
        zv = key & ((1 << self.zv_bits) - 1)
        rest = key >> self.zv_bits
        sv_q = rest & ((1 << self.sv_bits) - 1)
        tid = rest >> self.sv_bits
        return tid, sv_q, zv

    def zv_of(self, key: int) -> int:
        """The Z-value field alone — one precomputed mask, no full
        decomposition.

        The band-scan hot path runs this once per returned row; see
        ``benchmarks/bench_batch_updates.py --micro`` for what skipping
        the tuple build and extra shifts of :meth:`decompose` is worth
        there.  Layout variants that move the ZV field (the ZV-first
        ablation codec) override this to match their ``decompose``.
        """
        return key & self._zv_mask

    def zvs_of(self, keys: "list[tuple[int, int]]") -> list[int]:
        """Batched :meth:`zv_of` over one leaf run's composite keys.

        One mask load and one comprehension per leaf instead of a
        method call per row — the packed band scan's ZV column.
        Layout variants must override this in step with :meth:`zv_of`.
        """
        mask = self._zv_mask
        return [key & mask for key, _ in keys]

    def search_range(
        self, tid: int, sv: float, z_lo: int, z_hi: int
    ) -> tuple[int, int]:
        """Key interval ``[TID ⊕ SV ⊕ ZV_lo ; TID ⊕ SV ⊕ ZV_hi]``.

        These are the per-(SV, Z-interval) search ranges of Section 5.3.
        """
        sv_q = self.quantize_sv(sv)
        return (
            self.compose_quantized(tid, sv_q, z_lo),
            self.compose_quantized(tid, sv_q, z_hi),
        )
